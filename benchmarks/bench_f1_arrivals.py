"""Benchmark: regenerate F1 — Diurnal submission pattern, weekday vs weekend (Figure 1).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f1_arrivals(experiment_runner):
    result = experiment_runner("F1")
    assert result.rows or result.series
