"""Benchmark: regenerate A5 — learned runtime predictions vs estimates (ablation).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_a5_predictions(experiment_runner):
    result = experiment_runner("A5")
    assert result.rows or result.series
