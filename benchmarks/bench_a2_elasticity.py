"""Benchmark: regenerate A2 — Elastic (Pollux-style) resizing vs rigid backfill (ablation).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_a2_elasticity(experiment_runner):
    result = experiment_runner("A2")
    assert result.rows or result.series
