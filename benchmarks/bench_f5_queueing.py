"""Benchmark: regenerate F5 — Queueing-delay CDF per scheduling policy (Figure 5).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f5_queueing(experiment_runner):
    result = experiment_runner("F5")
    assert result.rows or result.series
