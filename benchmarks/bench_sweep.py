"""Benchmark: the sweep engine — serial vs fan-out vs warm cache.

Regenerates the full experiment suite four ways and checks the engine's
two contracts while timing them:

* **determinism** — rendered output is identical whichever way cells
  execute (serial / worker pool / cache replay); only F10's wall-clock
  columns may differ between separate *cold* runs, and even those replay
  byte-identically from the cache because ``wall_s`` is part of the
  cached result;
* **performance** — the warm-cache run skips every simulation.

Results go to ``BENCH_sweep.json`` at the repo root.  The recorded
``cpu_count``/``usable_cpus`` qualify the parallel number: fan-out can
only beat serial when the runner actually has spare cores, so on a
single-core machine the pool's spawn overhead makes it *slower* — the
cache, not the pool, is the win there.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import sweep
from repro.experiments import EXPERIMENTS

BENCH_PATH = Path(__file__).parent.parent / "BENCH_sweep.json"

#: F10's rendered rows include wall-clock columns, so two *cold* runs of
#: it differ; every other experiment renders pure simulation output.
TIMING_SENSITIVE = {"F10"}


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def run_suite(seed: int, scale: float, **engine) -> tuple[dict[str, str], dict]:
    """Render every experiment under one sweep-engine configuration."""
    rendered: dict[str, str] = {}
    with sweep.execution(**engine) as runner:
        for experiment_id, spec in EXPERIMENTS.items():
            rendered[experiment_id] = spec.run(seed=seed, scale=scale).render()
        stats = runner.stats.snapshot()
    return rendered, stats


def assert_identical(a: dict[str, str], b: dict[str, str], *, strict: bool) -> None:
    for experiment_id in a:
        if not strict and experiment_id in TIMING_SENSITIVE:
            continue
        assert a[experiment_id] == b[experiment_id], (
            f"{experiment_id} rendered differently across execution modes"
        )


def test_sweep_engine(request, benchmark, capsys, tmp_path):
    scale = float(request.config.getoption("--repro-scale"))
    seed = int(request.config.getoption("--repro-seed"))
    pool_jobs = max(2, min(4, _usable_cpus()))
    cache_dir = tmp_path / "sweep-cache"

    # 1. cold serial, no cache — the baseline everything compares against
    started = time.perf_counter()
    serial, serial_stats = benchmark.pedantic(
        lambda: run_suite(seed, scale, jobs=1, no_cache=True),
        rounds=1,
        iterations=1,
    )
    cold_serial_s = time.perf_counter() - started

    # 2. cold fan-out, no cache — same bytes, modulo F10's wall clocks
    started = time.perf_counter()
    parallel, _ = run_suite(seed, scale, jobs=pool_jobs, no_cache=True)
    cold_parallel_s = time.perf_counter() - started
    assert_identical(serial, parallel, strict=False)

    # 3. cold serial populating the cache
    started = time.perf_counter()
    populate, _ = run_suite(seed, scale, jobs=1, cache_dir=cache_dir)
    cold_cached_s = time.perf_counter() - started
    assert_identical(serial, populate, strict=False)

    # 4. warm replay — byte-identical INCLUDING F10 (wall_s is cached)
    started = time.perf_counter()
    warm, warm_stats = run_suite(seed, scale, jobs=1, cache_dir=cache_dir)
    warm_s = time.perf_counter() - started
    assert_identical(populate, warm, strict=True)
    assert warm_stats["cache_misses"] == 0
    assert warm_stats["cache_hits"] == warm_stats["cells"]
    assert warm_stats["traces_synthesized"] == 0

    entry = {
        "date": "latest",
        "seed": seed,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "usable_cpus": _usable_cpus(),
        "pool_jobs": pool_jobs,
        "cells": serial_stats["cells"],
        "traces_synthesized": serial_stats["traces_synthesized"],
        "trace_memo_hits": serial_stats["trace_memo_hits"],
        "cold_serial_s": round(cold_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3),
        "cold_cached_s": round(cold_cached_s, 3),
        "warm_s": round(warm_s, 3),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 3),
        "warm_fraction_of_cold": round(warm_s / cold_serial_s, 3),
    }
    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {
        "benchmark": (
            "sweep engine: full experiment suite regenerated cold-serial, "
            "cold-parallel, cold-cached, and warm-cache; run "
            "benchmarks/bench_sweep.py to refresh the 'latest' entry"
        ),
        "determinism": (
            "all four modes render byte-identical output (F10's wall-clock "
            "columns excepted between separate cold runs; the warm replay "
            "reproduces even those exactly because wall_s is cached)"
        ),
        "honesty": (
            "parallel_speedup is only meaningful when usable_cpus > 1; on a "
            "single-core runner the spawn-pool overhead makes fan-out slower "
            "than serial and the cache provides the entire win"
        ),
        "runs": [],
    }
    doc["runs"] = [run for run in doc["runs"] if run.get("date") != "latest"]
    doc["runs"].append(entry)
    BENCH_PATH.write_text(json.dumps(doc, indent=1) + "\n")

    with capsys.disabled():
        print(
            f"\n  cells={entry['cells']} usable_cpus={entry['usable_cpus']}"
            f" pool_jobs={pool_jobs}"
            f"\n  cold serial   {cold_serial_s:8.2f}s"
            f"\n  cold parallel {cold_parallel_s:8.2f}s"
            f"  (speedup {entry['parallel_speedup']:.2f}x)"
            f"\n  cold cached   {cold_cached_s:8.2f}s"
            f"\n  warm cache    {warm_s:8.2f}s"
            f"  ({100 * entry['warm_fraction_of_cold']:.0f}% of cold serial)"
        )

    # The cache must make the warm pass dramatically cheaper than cold:
    # every cell replays, nothing synthesizes, nothing simulates.
    assert warm_s < cold_serial_s
