"""Benchmark: regenerate S1 — Serving SLO attainment vs offered load.

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_s1_serving_slo(experiment_runner):
    result = experiment_runner("S1")
    assert result.rows and result.series
    # Harvesting must dominate the fixed fleet at the top of the sweep.
    top = max(row["load_x"] for row in result.rows)
    by_arm = {(row["load_x"], row["arm"]): row for row in result.rows}
    assert (
        by_arm[(top, "autoscaled")]["slo_attainment"]
        >= by_arm[(top, "fixed")]["slo_attainment"]
    )
