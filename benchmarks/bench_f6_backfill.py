"""Benchmark: regenerate F6 — Backfill ablation: none vs conservative vs EASY (Figure 6).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f6_backfill(experiment_runner):
    result = experiment_runner("F6")
    assert result.rows or result.series
