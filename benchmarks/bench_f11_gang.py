"""Benchmark: regenerate F11 — Gang time-slicing vs interactive wait (Figure 11).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f11_gang(experiment_runner):
    result = experiment_runner("F11")
    assert result.rows or result.series
