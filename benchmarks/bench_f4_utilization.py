"""Benchmark: regenerate F4 — Utilization and queue depth over a two-week replay (Figure 4).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f4_utilization(experiment_runner):
    result = experiment_runner("F4")
    assert result.rows or result.series
