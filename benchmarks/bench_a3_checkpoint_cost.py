"""Benchmark: regenerate A3 — Preemption checkpoint cost vs free-tier usefulness (ablation).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_a3_checkpoint_cost(experiment_runner):
    result = experiment_runner("A3")
    assert result.rows or result.series
