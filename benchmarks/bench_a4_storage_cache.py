"""Benchmark: regenerate A4 — Dataset staging vs node-local cache capacity (ablation).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_a4_storage_cache(experiment_runner):
    result = experiment_runner("A4")
    assert result.rows or result.series
