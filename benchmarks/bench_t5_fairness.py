"""Benchmark: regenerate T5 — Cross-lab fairness and quota adherence (Table 5).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_t5_fairness(experiment_runner):
    result = experiment_runner("T5")
    assert result.rows or result.series
