"""Benchmark: regenerate T4 — Compiler-layer delta-upload savings (Table 4).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_t4_compiler_cache(experiment_runner):
    result = experiment_runner("T4")
    assert result.rows or result.series
