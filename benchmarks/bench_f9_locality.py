"""Benchmark: regenerate F9 — Locality vs training throughput per comm substrate (Figure 9).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f9_locality(experiment_runner):
    result = experiment_runner("F9")
    assert result.rows or result.series
