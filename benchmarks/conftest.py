"""Shared harness for the per-table/figure benchmarks.

Each benchmark regenerates one experiment from the study via the registry,
times it with pytest-benchmark (single round — these are simulations, not
microbenchmarks), prints the rendered table/series, and writes the output
under ``benchmarks/out/`` so the artifacts survive the run.

Scale/seed can be overridden from the command line::

    pytest benchmarks/ --benchmark-only --repro-scale 1.0 --repro-seed 7

Sweep-engine knobs: ``--repro-jobs N`` fans simulation cells over a
worker pool; ``--repro-cache-dir PATH`` enables the content-addressed
result cache (off by default so benchmarks measure real execution).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import sweep
from repro.experiments import EXPERIMENTS

OUT_DIR = Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="0.35",
        help="experiment scale factor (1.0 = paper scale)",
    )
    parser.addoption(
        "--repro-seed", action="store", default="0", help="experiment seed"
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        default="1",
        help="worker processes for simulation cells (default 1 = in-process)",
    )
    parser.addoption(
        "--repro-cache-dir",
        action="store",
        default=None,
        help="sweep result cache root (default: caching disabled)",
    )


@pytest.fixture
def experiment_runner(request, benchmark, capsys):
    """Returns run(experiment_id): benchmark it, print + persist the result."""
    scale = float(request.config.getoption("--repro-scale"))
    seed = int(request.config.getoption("--repro-seed"))
    jobs = int(request.config.getoption("--repro-jobs"))
    cache_dir = request.config.getoption("--repro-cache-dir")

    def run(experiment_id: str):
        spec = EXPERIMENTS[experiment_id]
        with sweep.execution(
            jobs=jobs, cache_dir=cache_dir, no_cache=cache_dir is None
        ):
            result = benchmark.pedantic(
                lambda: spec.run(seed=seed, scale=scale), rounds=1, iterations=1
            )
        rendered = result.render()
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{experiment_id}.txt").write_text(rendered)
        result.export_csv(OUT_DIR / f"{experiment_id}.csv")
        with capsys.disabled():
            print(f"\n{rendered}")
        return result

    return run
