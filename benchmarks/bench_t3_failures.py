"""Benchmark: regenerate T3 — Failure taxonomy under node-fault injection (Table 3).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_t3_failures(experiment_runner):
    result = experiment_runner("T3")
    assert result.rows or result.series
