"""Benchmark: regenerate F2 — GPU-demand mix: job share vs GPU-hour share (Figure 2).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f2_gpu_demand(experiment_runner):
    result = experiment_runner("F2")
    assert result.rows or result.series
