"""Benchmark: scheduler hot-path wall time vs cluster size.

Sweeps uniform clusters (8-GPU nodes) under the same fixed-load workload as
F10 — a 2-day tacc-campus trace synthesised at 0.9 load per size — and
records simulator wall time plus the :class:`repro.perf.PerfCounters`
scheduler-pass telemetry for each size.  At full scale the sweep reaches
32k GPUs; a separate fleet benchmark replays a month-long ~1M-job trace
(vectorized synthesis) against the 32k-GPU cluster.

Results are appended to ``BENCH_hotpath.json`` at the repo root as a
*trajectory*: the checked-in file carries the pre-index baseline rows, the
rows measured when the incremental cluster index landed, and the rows from
the calendar-queue/incremental-backfill rework; each run of this benchmark
replaces the ``latest`` (and ``fleet-latest``) entry, so regressions
against the recorded trajectory are visible in the diff.

At ``--repro-scale`` < 1.0 the sweep stops at 256 GPUs (CI smoke); at full
scale it reaches 32768 GPUs.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

from repro.cluster.cluster import uniform_cluster
from repro.experiments.common import run_policy
from repro.sched import make_scheduler
from repro.sim import SimConfig
from repro.workload.fleet import fleet_trace
from repro.workload.models import assign_models
from repro.workload.synth import (
    DurationModel,
    TraceSynthesizer,
    tacc_campus,
    with_load,
)

BENCH_PATH = Path(__file__).parent.parent / "BENCH_hotpath.json"
FULL_NODE_COUNTS = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
SMOKE_NODE_COUNTS = [4, 8, 16, 32]

FLEET_NODES = 4096  # 32768 GPUs
FLEET_DAYS = 30.0


def run_hotpath_sweep(node_counts: list[int], seed: int) -> list[dict]:
    """One row per cluster size: wall time + scheduler-pass perf counters."""
    rows = []
    for nodes in node_counts:
        cluster = uniform_cluster(nodes, gpus_per_node=8)
        config = with_load(
            tacc_campus(days=2.0), cluster.total_gpus, 0.9, seed=seed + nodes
        )
        trace = TraceSynthesizer(config, seed=seed + nodes).generate()
        assign_models(trace, seed=seed)
        scheduler = make_scheduler("backfill-easy")
        started = time.perf_counter()
        result = run_policy(scheduler, trace, cluster=cluster)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "gpus": nodes * 8,
                "jobs": len(trace),
                "events": result.events_processed,
                "sim_wall_s": round(elapsed, 6),
                "perf": {
                    key: round(value, 6)
                    for key, value in result.perf.as_dict().items()
                },
            }
        )
    return rows


def fleet_month_config(seed: int):
    """Month-long fleet mix calibrated to ~1M jobs on 32k GPUs.

    The campus duration mix at 0.95 load would put a month on 32k GPUs at
    ~600k jobs; fleet-scale clusters skew shorter per job at much higher
    volume, so the medians are scaled to 0.65x, which calibrates to ~33k
    jobs/day (~1M over the month) at the same offered load.
    """
    base = tacc_campus(days=FLEET_DAYS, name="tacc-fleet")
    duration = DurationModel(
        median_minutes={
            gpus: minutes * 0.65
            for gpus, minutes in base.duration.median_minutes.items()
        },
        sigma=base.duration.sigma,
    )
    return with_load(
        replace(base, duration=duration), FLEET_NODES * 8, 0.95, seed=seed
    )


def run_fleet_month(seed: int) -> dict:
    """The 32k-GPU ~1M-job month: vectorized synthesis + lean simulation."""
    config = fleet_month_config(seed)
    started = time.perf_counter()
    trace = fleet_trace(config, seed=seed)
    assign_models(trace, seed=seed)
    trace_gen_s = time.perf_counter() - started

    cluster = uniform_cluster(FLEET_NODES, gpus_per_node=8)
    scheduler = make_scheduler("backfill-easy")
    started = time.perf_counter()
    result = run_policy(
        scheduler,
        trace,
        cluster=cluster,
        sim_config=SimConfig(
            sample_interval_s=3600.0,
            record_transitions=False,
        ),
    )
    sim_wall_s = time.perf_counter() - started
    return {
        "gpus": FLEET_NODES * 8,
        "jobs": len(trace),
        "days": FLEET_DAYS,
        "events": result.events_processed,
        "trace_gen_s": round(trace_gen_s, 3),
        "sim_wall_s": round(sim_wall_s, 3),
        "jobs_completed": result.metrics.jobs_completed,
        "avg_utilization": round(result.metrics.avg_utilization, 4),
        "perf": {
            key: round(value, 6) for key, value in result.perf.as_dict().items()
        },
    }


def update_trajectory(rows: list[dict], seed: int, label: str = "latest") -> None:
    """Replace the *label* entry of the BENCH_hotpath.json trajectory."""
    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {
        "benchmark": "scheduler hot path",
        "trajectory": [],
    }
    doc["trajectory"] = [
        entry for entry in doc["trajectory"] if entry.get("label") != label
    ]
    doc["trajectory"].append({"label": label, "seed": seed, "rows": rows})
    BENCH_PATH.write_text(json.dumps(doc, indent=1) + "\n")


def test_perf_hotpath(request, benchmark, capsys):
    scale = float(request.config.getoption("--repro-scale"))
    seed = int(request.config.getoption("--repro-seed"))
    node_counts = FULL_NODE_COUNTS if scale >= 1.0 else SMOKE_NODE_COUNTS

    rows = benchmark.pedantic(
        lambda: run_hotpath_sweep(node_counts, seed), rounds=1, iterations=1
    )
    update_trajectory(rows, seed)

    with capsys.disabled():
        print("\n  gpus  wall_s    attempts  nodes/attempt  blocked-hit%")
        for row in rows:
            perf = row["perf"]
            print(
                f"  {row['gpus']:>5} {row['sim_wall_s']:>8.4f}"
                f" {perf['placement_attempts']:>9.0f}"
                f" {perf['nodes_per_attempt']:>13.2f}"
                f" {perf.get('blocked_cache_hit_rate', 0.0):>12.0%}"
            )
    assert rows
    # The index keeps per-attempt scan cost far below cluster size: on the
    # largest swept cluster, a placement attempt must touch only a small
    # fraction of the nodes (the pre-index scan examined most of them).
    largest = rows[-1]
    if largest["perf"]["placement_attempts"]:
        assert largest["perf"]["nodes_per_attempt"] < largest["gpus"] / 8 / 2


def test_perf_fleet_month(request, benchmark, capsys):
    """32k GPUs, ~1M jobs, one month — must finish in single-digit minutes."""
    scale = float(request.config.getoption("--repro-scale"))
    seed = int(request.config.getoption("--repro-seed"))
    if scale < 1.0:
        import pytest

        pytest.skip("fleet month runs at --repro-scale 1.0 only")

    row = benchmark.pedantic(lambda: run_fleet_month(seed), rounds=1, iterations=1)
    update_trajectory([row], seed, label="fleet-latest")

    with capsys.disabled():
        print(
            f"\n  fleet: {row['jobs']:,} jobs on {row['gpus']:,} GPUs over"
            f" {row['days']:.0f} days — trace {row['trace_gen_s']:.1f}s,"
            f" sim {row['sim_wall_s']:.1f}s,"
            f" util {row['avg_utilization']:.0%}"
        )
    assert row["jobs"] > 700_000
    assert row["sim_wall_s"] < 600.0
