"""Benchmark: scheduler hot-path wall time vs cluster size.

Sweeps uniform clusters (8-GPU nodes) under the same fixed-load workload as
F10 — a 2-day tacc-campus trace synthesised at 0.9 load per size — and
records simulator wall time plus the :class:`repro.perf.PerfCounters`
scheduler-pass telemetry for each size.

Results are appended to ``BENCH_hotpath.json`` at the repo root as a
*trajectory*: the checked-in file carries the pre-index baseline rows and
the rows measured when the incremental cluster index landed; each run of
this benchmark replaces the ``latest`` entry, so regressions against the
recorded trajectory are visible in the diff.

At ``--repro-scale`` < 1.0 the sweep stops at 256 GPUs (CI smoke); at full
scale it reaches 2048 GPUs, where the index shows its >=3x win.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster.cluster import uniform_cluster
from repro.experiments.common import run_policy
from repro.experiments.scheduling import make_scheduler
from repro.workload.models import assign_models
from repro.workload.synth import TraceSynthesizer, tacc_campus, with_load

BENCH_PATH = Path(__file__).parent.parent / "BENCH_hotpath.json"
FULL_NODE_COUNTS = [4, 8, 16, 32, 64, 128, 256]
SMOKE_NODE_COUNTS = [4, 8, 16, 32]


def run_hotpath_sweep(node_counts: list[int], seed: int) -> list[dict]:
    """One row per cluster size: wall time + scheduler-pass perf counters."""
    rows = []
    for nodes in node_counts:
        cluster = uniform_cluster(nodes, gpus_per_node=8)
        config = with_load(
            tacc_campus(days=2.0), cluster.total_gpus, 0.9, seed=seed + nodes
        )
        trace = TraceSynthesizer(config, seed=seed + nodes).generate()
        assign_models(trace, seed=seed)
        scheduler = make_scheduler("backfill-easy")
        started = time.perf_counter()
        result = run_policy(scheduler, trace, cluster=cluster)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "gpus": nodes * 8,
                "jobs": len(trace),
                "events": result.events_processed,
                "sim_wall_s": round(elapsed, 6),
                "perf": {
                    key: round(value, 6)
                    for key, value in result.perf.as_dict().items()
                },
            }
        )
    return rows


def update_trajectory(rows: list[dict], seed: int) -> None:
    """Replace the ``latest`` entry of the BENCH_hotpath.json trajectory."""
    doc = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {
        "benchmark": "scheduler hot path",
        "trajectory": [],
    }
    doc["trajectory"] = [
        entry for entry in doc["trajectory"] if entry.get("label") != "latest"
    ]
    doc["trajectory"].append({"label": "latest", "seed": seed, "rows": rows})
    BENCH_PATH.write_text(json.dumps(doc, indent=1) + "\n")


def test_perf_hotpath(request, benchmark, capsys):
    scale = float(request.config.getoption("--repro-scale"))
    seed = int(request.config.getoption("--repro-seed"))
    node_counts = FULL_NODE_COUNTS if scale >= 1.0 else SMOKE_NODE_COUNTS

    rows = benchmark.pedantic(
        lambda: run_hotpath_sweep(node_counts, seed), rounds=1, iterations=1
    )
    update_trajectory(rows, seed)

    with capsys.disabled():
        print("\n  gpus  wall_s    attempts  nodes/attempt")
        for row in rows:
            perf = row["perf"]
            print(
                f"  {row['gpus']:>5} {row['sim_wall_s']:>8.4f}"
                f" {perf['placement_attempts']:>9.0f}"
                f" {perf['nodes_per_attempt']:>13.2f}"
            )
    assert rows
    # The index keeps per-attempt scan cost far below cluster size: on the
    # largest swept cluster, a placement attempt must touch only a small
    # fraction of the nodes (the pre-index scan examined most of them).
    largest = rows[-1]
    if largest["perf"]["placement_attempts"]:
        assert largest["perf"]["nodes_per_attempt"] < largest["gpus"] / 8 / 2
