"""Benchmark: regenerate T2 — Scheduler comparison: JCT/wait/utilization/makespan (Table 2).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_t2_sched_comparison(experiment_runner):
    result = experiment_runner("T2")
    assert result.rows or result.series
