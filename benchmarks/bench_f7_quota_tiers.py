"""Benchmark: regenerate F7 — Two-tier quota: wait and preemptions per tier (Figure 7).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f7_quota_tiers(experiment_runner):
    result = experiment_runner("F7")
    assert result.rows or result.series
