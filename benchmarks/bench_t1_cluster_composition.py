"""Benchmark: regenerate T1 — Cluster composition: node groups, GPU types, fabric (Table 1).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_t1_cluster_composition(experiment_runner):
    result = experiment_runner("T1")
    assert result.rows or result.series
