"""Benchmark: regenerate S2 — Training-tier impact of co-located serving.

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_s2_serving_colocation(experiment_runner):
    result = experiment_runner("S2")
    assert result.rows
    arms = {row["arm"] for row in result.rows}
    assert arms == {"training-only", "co-located"}
