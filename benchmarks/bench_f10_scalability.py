"""Benchmark: regenerate F10 — Simulator wall-clock scalability vs cluster size (Figure 10).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f10_scalability(experiment_runner):
    result = experiment_runner("F10")
    assert result.rows or result.series
