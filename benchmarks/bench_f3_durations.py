"""Benchmark: regenerate F3 — Duration CDFs per GPU-demand class (Figure 3).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f3_durations(experiment_runner):
    result = experiment_runner("F3")
    assert result.rows or result.series
