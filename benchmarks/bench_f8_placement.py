"""Benchmark: regenerate F8 — Placement ablation incl. HiveD buddy cells (Figure 8).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_f8_placement(experiment_runner):
    result = experiment_runner("F8")
    assert result.rows or result.series
