"""Benchmark: regenerate A1 — Wall-time estimate noise vs SJF/backfill quality (ablation).

Run with higher fidelity via ``--repro-scale 1.0``.
"""


def test_a1_estimate_quality(experiment_runner):
    result = experiment_runner("A1")
    assert result.rows or result.series
