"""Regenerate the committed simlint baseline (``simlint-baseline.json``).

The CI gate fails on any finding not in the baseline, so the baseline is
the set of *grandfathered* findings — violations that predate a rule and
are queued for cleanup.  Regenerate it ONLY when:

* a new rule lands and fixing every existing violation in the same PR is
  out of scope (the baseline grows — explain each entry in the PR), or
* baselined findings were fixed (the baseline shrinks — always fine).

Never regenerate to absorb a violation your own change introduced: fix it
or add an inline ``# simlint: disable=RULE`` with a reason comment.

Usage: PYTHONPATH=src python scripts/simlint_baseline.py [paths…]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "simlint-baseline.json"
DEFAULT_PATHS = (REPO / "src", REPO / "benchmarks")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(p) for p in argv] or list(DEFAULT_PATHS)
    report = analyze_paths(paths)
    Baseline.from_findings(report.findings).save(OUT)
    for finding in report.findings:
        print(finding.render())
    print(
        f"simlint baseline: {len(report.findings)} finding(s) over "
        f"{report.files_analyzed} file(s) -> {OUT.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
