"""Regenerate or verify the committed simlint baseline.

The CI gate fails on any finding not in the baseline, so the baseline is
the set of *grandfathered* findings — violations that predate a rule and
are queued for cleanup.  Regenerate it ONLY when:

* a new rule lands and fixing every existing violation in the same PR is
  out of scope (the baseline grows — explain each entry in the PR), or
* baselined findings were fixed (the baseline shrinks — always fine).

Never regenerate to absorb a violation your own change introduced: fix it
or add an inline ``# simlint: disable=RULE`` with a reason comment.

``--check`` verifies instead of writing: it exits nonzero when the
committed baseline differs from what a fresh run would produce, so a
baseline edited by hand (or gone stale after fixes) fails CI instead of
being trusted blind.

Usage: PYTHONPATH=src python scripts/simlint_baseline.py [--check] [paths…]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "simlint-baseline.json"
DEFAULT_PATHS = (REPO / "src", REPO / "benchmarks")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check = "--check" in argv
    argv = [arg for arg in argv if arg != "--check"]
    paths = [Path(p) for p in argv] or list(DEFAULT_PATHS)
    report = analyze_paths(paths)
    fresh = Baseline.from_findings(report.findings)

    if check:
        try:
            committed = Baseline.load(OUT)
        except (OSError, ValueError, KeyError) as exc:
            print(f"simlint baseline: cannot read {OUT.name}: {exc}", file=sys.stderr)
            return 2
        if committed.counts == fresh.counts:
            print(
                f"simlint baseline: {OUT.name} is in sync "
                f"({len(report.findings)} finding(s) over "
                f"{report.files_analyzed} file(s))"
            )
            return 0
        stale = sorted(set(committed.counts) - set(fresh.counts))
        missing = sorted(set(fresh.counts) - set(committed.counts))
        drifted = sorted(
            key
            for key in set(committed.counts) & set(fresh.counts)
            if committed.counts[key] != fresh.counts[key]
        )
        for key in stale:
            print(f"simlint baseline: stale entry (violation fixed): {key}")
        for key in missing:
            print(f"simlint baseline: unbaselined finding: {key}")
        for key in drifted:
            print(
                f"simlint baseline: multiplicity drift for {key}: "
                f"committed {committed.counts[key]}, fresh {fresh.counts[key]}"
            )
        print(
            "simlint baseline: out of sync — fix new findings, or rerun "
            "scripts/simlint_baseline.py if shrinkage is intended",
            file=sys.stderr,
        )
        return 1

    fresh.save(OUT)
    for finding in report.findings:
        print(finding.render())
    print(
        f"simlint baseline: {len(report.findings)} finding(s) over "
        f"{report.files_analyzed} file(s) -> {OUT.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
