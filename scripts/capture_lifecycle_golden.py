"""Capture the lifecycle-golden fixture used by tests/test_refactor_golden.py.

Runs a battery of short, lifecycle-heavy simulations — failure injection,
wall-time kills, preemption limits, gang time-slicing, elastic resizing,
tiered-quota reclaim, and a co-located serving fleet — and records every
run's ``summary()`` to ``tests/data/lifecycle_golden.json``.

The fixture pins the simulator's observable behaviour bit-for-bit across
refactors of the state-mutation machinery: regenerate it ONLY for an
intentional behaviour change, never to make a refactor pass.

Usage: PYTHONPATH=src python scripts/capture_lifecycle_golden.py
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.experiments.common import campus_trace, fresh_trace_copy, run_policy
from repro.experiments.serving import serving_quota, serving_workload
from repro.sched import (
    ElasticScheduler,
    GangScheduler,
    QuotaConfig,
    TieredQuotaScheduler,
    make_scheduler,
)
from repro.serving import AutoscalerConfig, ServingFleet
from repro.sim.failures import FailureConfig
from repro.sim.simulator import SimConfig

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "lifecycle_golden.json"


def scenarios():
    """(name, scheduler factory, sim kwargs, trace kwargs) per scenario.

    Each exercises a different set of lifecycle transition paths; together
    they cover every edge of the job state machine.
    """
    trace = campus_trace(0, 1.0, days=2.0)

    def quota():
        return QuotaConfig.equal_shares(trace.labs(), 176, fraction=0.6)

    yield (
        "backfill_failures_walltime",
        lambda: make_scheduler("backfill-easy"),
        dict(
            failure_config=FailureConfig(mtbf_hours=100.0, max_job_restarts=1),
            sim_config=SimConfig(
                sample_interval_s=1800.0,
                enforce_walltime=True,
                provisioning=True,
                seed=0,
            ),
        ),
        trace,
    )
    yield (
        "gang_preemption_limit",
        lambda: GangScheduler(quantum_s=1800.0),
        dict(
            sim_config=SimConfig(
                sample_interval_s=1800.0,
                checkpoint_loss_s=60.0,
                max_job_preemptions=3,
            ),
        ),
        trace,
    )
    yield (
        "tiered_quota_failures",
        lambda: TieredQuotaScheduler(quota()),
        dict(
            failure_config=FailureConfig(mtbf_hours=200.0),
            sim_config=SimConfig(sample_interval_s=1800.0),
        ),
        trace,
    )
    yield (
        "elastic_resizing",
        lambda: ElasticScheduler(),
        dict(sim_config=SimConfig(sample_interval_s=1800.0)),
        trace,
    )

    serving_trace = campus_trace(0, 1.0, days=1.0, load=0.9)
    yield (
        "serving_colocated",
        lambda: TieredQuotaScheduler(serving_quota(serving_trace)),
        dict(
            serving=ServingFleet(
                serving_workload(2.0),
                days=1.0,
                autoscaler=AutoscalerConfig(enabled=True),
                seed=13,
            ),
            sim_config=SimConfig(sample_interval_s=1800.0),
        ),
        serving_trace,
    )


def capture() -> dict[str, dict[str, float]]:
    fixture: dict[str, dict[str, float]] = {}
    for name, make, kwargs, trace in scenarios():
        result = run_policy(make(), fresh_trace_copy(trace), **kwargs)
        summary = {
            key: ("nan" if isinstance(value, float) and math.isnan(value) else value)
            for key, value in result.summary().items()
        }
        fixture[name] = summary
        print(f"{name}: {len(summary)} metrics, events={summary['events']}")
    return fixture


def main() -> None:
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(capture(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
