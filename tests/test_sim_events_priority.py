"""Equal-timestamp event ordering is total, explicit, and deterministic.

The PRIORITY table is the simulator's tie-break law: every concrete event
class must appear in it with a unique rank, so that any set of events
sharing a timestamp dispatches in one well-defined order (with insertion
sequence as the final tie-break within a class).  A new event class that
forgets to register here would silently sort last — these tests make that
a loud failure instead.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.events import (
    PRIORITY,
    DependencyRelease,
    Event,
    JobArrival,
    JobFinish,
    MetricsSample,
    NodeFailure,
    NodeRepair,
    QuantumExpiry,
    RequestRateChange,
    SchedulerTick,
    ServiceScaleDown,
    ServiceScaleUp,
    StageComplete,
    priority_of,
)


def all_event_classes() -> list[type]:
    # Other test modules subclass Event for probes; only the simulator's
    # own event vocabulary is bound by the PRIORITY contract.
    return [
        cls for cls in Event.__subclasses__() if cls.__module__ == Event.__module__
    ]


class TestPriorityTable:
    def test_every_event_class_has_a_priority(self):
        missing = [cls.__name__ for cls in all_event_classes() if cls not in PRIORITY]
        assert not missing, f"event classes missing from PRIORITY: {missing}"

    def test_priorities_are_unique(self):
        ranks = list(PRIORITY.values())
        assert len(ranks) == len(set(ranks)), "duplicate priorities break total order"

    def test_priority_of_matches_table(self):
        samples = {
            JobFinish: JobFinish("j1", 1),
            DependencyRelease: DependencyRelease("j1"),
            StageComplete: StageComplete("j1"),
            NodeRepair: NodeRepair("n1"),
            NodeFailure: NodeFailure("n1"),
            JobArrival: JobArrival("j1"),
            RequestRateChange: RequestRateChange("svc", 10.0),
            ServiceScaleDown: ServiceScaleDown("svc", 1),
            ServiceScaleUp: ServiceScaleUp("svc", 1),
            QuantumExpiry: QuantumExpiry(),
            SchedulerTick: SchedulerTick(),
            MetricsSample: MetricsSample(),
        }
        assert set(samples) == set(PRIORITY), "sample set drifted from PRIORITY"
        for cls, event in samples.items():
            assert priority_of(event) == PRIORITY[cls]

    def test_unknown_event_sorts_after_known(self):
        @dataclasses.dataclass(frozen=True)
        class Exotic(Event):
            pass

        assert priority_of(Exotic()) > max(PRIORITY.values())

    def test_semantic_ordering(self):
        """Releases before arrivals, serving between arrivals and the pass."""
        order = [
            JobFinish,
            DependencyRelease,
            JobArrival,
            RequestRateChange,
            ServiceScaleDown,
            ServiceScaleUp,
            SchedulerTick,
            MetricsSample,
        ]
        ranks = [PRIORITY[cls] for cls in order]
        assert ranks == sorted(ranks)


class TestEngineTieBreak:
    @pytest.mark.parametrize("salt", [0, 1, 2])
    def test_equal_timestamp_dispatch_follows_priority(self, salt):
        """Events at one timestamp pop in PRIORITY order however inserted."""
        events = [
            MetricsSample(),
            ServiceScaleUp("svc", 1),
            JobArrival("j1"),
            SchedulerTick(),
            RequestRateChange("svc", 5.0),
            JobFinish("j1", 1),
            ServiceScaleDown("svc", 1),
        ]
        # Rotate insertion order; dispatch order must not change.
        rotated = events[salt:] + events[:salt]
        engine = SimulationEngine()
        dispatched: list[Event] = []
        for cls in {type(e) for e in events}:
            engine.register(cls, lambda now, event: dispatched.append(event))
        for event in rotated:
            engine.schedule_at(10.0, event)
        while engine.pending:
            engine.step()
        assert [priority_of(e) for e in dispatched] == sorted(
            priority_of(e) for e in events
        )

    def test_same_class_ties_break_by_insertion_sequence(self):
        engine = SimulationEngine()
        dispatched: list[Event] = []
        engine.register(JobArrival, lambda now, event: dispatched.append(event))
        first = JobArrival("j-first")
        second = JobArrival("j-second")
        engine.schedule_at(5.0, first)
        engine.schedule_at(5.0, second)
        while engine.pending:
            engine.step()
        assert dispatched == [first, second]
