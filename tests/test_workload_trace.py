"""Tests for trace containers, serialisation, and model assignment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, TraceError
from repro.workload import (
    FailureCategory,
    FailurePlan,
    JobTier,
    MODEL_CATALOG,
    Trace,
    assign_models,
    default_profile_for,
    get_model_profile,
    profile_of,
    synthesize,
)
from tests.conftest import make_job


def small_trace():
    jobs = [
        make_job("job-000002", submit_time=200.0, num_gpus=8, duration=7200.0),
        make_job("job-000000", submit_time=0.0, num_gpus=1, duration=600.0),
        make_job(
            "job-000001",
            submit_time=100.0,
            num_gpus=2,
            duration=1800.0,
            tier=JobTier.OPPORTUNISTIC,
            interactive=True,
            failure_plan=FailurePlan(FailureCategory.OOM, 0.5),
            gpu_type="a100-80",
            gpus_per_node=2,
            name="demo",
        ),
    ]
    return Trace(jobs, name="small")


class TestTraceBasics:
    def test_sorted_by_submit_time(self):
        trace = small_trace()
        assert [job.job_id for job in trace] == ["job-000000", "job-000001", "job-000002"]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TraceError, match="duplicate"):
            Trace([make_job("a"), make_job("a")])

    def test_span_and_gpu_seconds(self):
        trace = small_trace()
        assert trace.span_seconds == 200.0
        assert trace.total_gpu_seconds_requested == 600 + 2 * 1800 + 8 * 7200

    def test_filter_and_head(self):
        trace = small_trace()
        wide = trace.filter(lambda job: job.num_gpus >= 2)
        assert len(wide) == 2
        assert len(trace.head(1)) == 1

    def test_users_and_labs(self):
        trace = small_trace()
        assert trace.users() == ("user-00-00",)
        assert trace.labs() == ("lab-00",)

    def test_histograms(self):
        trace = small_trace()
        assert trace.gpu_demand_histogram() == {1: 1, 2: 1, 8: 1}
        hours = trace.gpu_hours_by_demand()
        assert hours[8] == pytest.approx(16.0)

    def test_summary_fields(self):
        summary = small_trace().summary()
        assert summary["jobs"] == 3.0
        assert summary["single_gpu_fraction"] == pytest.approx(1 / 3)

    def test_empty_trace_summary(self):
        assert Trace([]).summary() == {"jobs": 0.0}
        assert Trace([]).span_seconds == 0.0


class TestSerialisation:
    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_roundtrip_preserves_static_fields(self, tmp_path, fmt):
        trace = small_trace()
        path = tmp_path / f"trace.{fmt}"
        getattr(trace, f"to_{fmt}")(path)
        restored = getattr(Trace, f"from_{fmt}")(path)
        assert len(restored) == len(trace)
        for original, loaded in zip(trace, restored):
            assert loaded.job_id == original.job_id
            assert loaded.submit_time == original.submit_time
            assert loaded.duration == original.duration
            assert loaded.request == original.request
            assert loaded.tier == original.tier
            assert loaded.interactive == original.interactive
            assert loaded.failure_plan == original.failure_plan
            assert loaded.walltime_estimate == original.walltime_estimate
            assert loaded.name == original.name

    def test_jsonl_preserves_metadata(self, tmp_path):
        trace = small_trace()
        trace.metadata["origin"] = "unit-test"
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        restored = Trace.from_jsonl(path)
        assert restored.name == "small"
        assert restored.metadata == {"origin": "unit-test"}

    def test_runtime_state_not_serialised(self, tmp_path):
        trace = small_trace()
        trace.jobs[0].start(0.0, ("n1",))
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        restored = Trace.from_csv(path)
        assert restored.jobs[0].state.value == "queued"
        assert restored.jobs[0].attempts == 0

    def test_csv_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("job_id,user_id\n1,u\n")
        with pytest.raises(TraceError, match="missing columns"):
            Trace.from_csv(path)

    def test_csv_bad_row_reports_line(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        content = path.read_text().splitlines()
        content[1] = content[1].replace("600.0", "not-a-number")
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(TraceError, match=":2:"):
            Trace.from_csv(path)

    def test_jsonl_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace": "x", "metadata": {}}\n{broken\n')
        with pytest.raises(TraceError, match=":2:"):
            Trace.from_jsonl(path)


class TestModelProfiles:
    def test_catalog_lookup(self):
        assert get_model_profile("resnet50").gradient_mb == pytest.approx(98.0)
        with pytest.raises(ConfigError, match="known models"):
            get_model_profile("resnet-9000")

    def test_comm_intensity_ordering(self):
        assert (
            get_model_profile("pointnet").comm_intensity
            < get_model_profile("resnet50").comm_intensity
            < get_model_profile("gpt2-xl").comm_intensity
        )

    def test_default_profile_by_width(self):
        assert default_profile_for(1).name == "resnet50"
        assert default_profile_for(8).name == "bert-base"
        assert default_profile_for(64).name == "bert-large"

    def test_assign_models_covers_all_jobs_and_is_deterministic(self):
        trace_a = synthesize("tacc-campus", days=1.0, seed=5, jobs_per_day=80)
        trace_b = synthesize("tacc-campus", days=1.0, seed=5, jobs_per_day=80)
        assign_models(trace_a, seed=9)
        assign_models(trace_b, seed=9)
        assert all(job.model_name in MODEL_CATALOG for job in trace_a)
        assert [j.model_name for j in trace_a] == [j.model_name for j in trace_b]

    def test_assign_models_respects_existing(self):
        trace = small_trace()
        trace.jobs[0].model_name = "gpt2-xl"
        assign_models(trace, seed=0)
        assert trace.jobs[0].model_name == "gpt2-xl"

    def test_profile_of_falls_back(self):
        job = make_job(num_gpus=16)
        assert profile_of(job).name == "bert-large"
        job.model_name = "dlrm"
        assert profile_of(job).name == "dlrm"

    def test_model_roundtrips_in_csv(self, tmp_path):
        trace = small_trace()
        assign_models(trace, seed=1)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        restored = Trace.from_csv(path)
        assert [j.model_name for j in restored] == [j.model_name for j in trace]
