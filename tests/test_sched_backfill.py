"""Tests for EASY/conservative backfill and the reservation machinery."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.sched import ConservativeBackfillScheduler, EasyBackfillScheduler
from repro.sched.backfill import compute_reservation
from repro.sched.base import ScheduleContext
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Trace
from tests.conftest import make_job


def run_trace(scheduler, jobs, num_nodes=1):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        Trace(list(jobs)),
        config=SimConfig(sample_interval_s=0.0, verify_every=10),
    )
    return simulator.run(), cluster


class TestReservation:
    def build_ctx(self, cluster, running):
        return ScheduleContext(
            now=0.0,
            cluster=cluster,
            running=running,
            start_job=lambda *a: None,
            preempt_job=lambda *a: None,
        )

    def test_immediate_when_capacity_free(self, small_cluster):
        ctx = self.build_ctx(small_cluster, {})
        head = make_job("head", num_gpus=8)
        reservation = compute_reservation(ctx, head)
        assert reservation.shadow_time == 0.0
        assert reservation.extra_gpus == 24

    def test_shadow_time_from_estimates(self, small_cluster):
        running = make_job("r", num_gpus=8, duration=500.0, walltime_estimate=1000.0)
        small_cluster.allocate("r", {"v100-000": 8})
        running.start(0.0, ("v100-000",))
        # Fill the rest so the head job must wait for `r`.
        for index, node in enumerate(sorted(small_cluster.nodes)[1:]):
            filler = make_job(f"f{index}", num_gpus=8, walltime_estimate=5000.0)
            small_cluster.allocate(f"f{index}", {node: 8})
            filler.start(0.0, (node,))
            running_map = None
        running_map = {"r": running}
        for index, node in enumerate(sorted(small_cluster.nodes)[1:]):
            job = make_job(f"f{index}", num_gpus=8, walltime_estimate=5000.0)
            job.start(0.0, (node,))
            running_map[f"f{index}"] = job
        ctx = self.build_ctx(small_cluster, running_map)
        head = make_job("head", num_gpus=8)
        reservation = compute_reservation(ctx, head)
        # The earliest 8 GPUs come from `r` at its ESTIMATED end (1000s),
        # not its true duration (500s).
        assert reservation.shadow_time == pytest.approx(1000.0)

    def test_unsatisfiable_reservation_infinite(self, small_cluster):
        ctx = self.build_ctx(small_cluster, {})
        head = make_job("head", num_gpus=64)
        assert compute_reservation(ctx, head).shadow_time == float("inf")


class TestEasyBackfill:
    def test_short_job_backfills_into_hole(self):
        jobs = [
            make_job("run", num_gpus=6, duration=1000.0, submit_time=0.0, walltime_estimate=1000.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0, walltime_estimate=100.0),
            # Fits in 2 free GPUs and finishes before the shadow time (1000).
            make_job("fill", num_gpus=2, duration=50.0, submit_time=2.0, walltime_estimate=50.0),
        ]
        run_trace(EasyBackfillScheduler(), jobs)
        assert jobs[2].first_start_time == pytest.approx(2.0)
        assert jobs[1].first_start_time == pytest.approx(1000.0)  # not delayed

    def test_long_narrow_job_must_not_delay_head(self):
        jobs = [
            make_job("run", num_gpus=6, duration=1000.0, submit_time=0.0, walltime_estimate=1000.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0, walltime_estimate=100.0),
            # Would still be running at shadow time and holds GPUs the head
            # needs (extra = 0 here) — must NOT backfill.
            make_job("greedy", num_gpus=2, duration=5000.0, submit_time=2.0, walltime_estimate=5000.0),
        ]
        run_trace(EasyBackfillScheduler(), jobs)
        assert jobs[1].first_start_time == pytest.approx(1000.0)
        assert jobs[2].first_start_time >= 1000.0

    def test_long_job_on_extra_gpus_allowed(self):
        # Two nodes. At the head's shadow time (1000, when run_a ends) 12
        # GPUs are available and the head needs 8, leaving 4 "extra" —
        # a long 4-GPU job may hold those past the shadow time.
        jobs = [
            make_job("run_a", num_gpus=8, duration=1000.0, submit_time=0.0, walltime_estimate=1000.0),
            make_job("run_b", num_gpus=4, duration=5000.0, submit_time=0.0, walltime_estimate=5000.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0, walltime_estimate=100.0),
            make_job("long", num_gpus=4, duration=9000.0, submit_time=2.0, walltime_estimate=9000.0),
        ]
        run_trace(EasyBackfillScheduler(), jobs, num_nodes=2)
        assert jobs[3].first_start_time == pytest.approx(2.0)
        assert jobs[2].first_start_time == pytest.approx(1000.0)

    def test_estimate_overrun_can_delay_head(self):
        # A backfilled job whose TRUE runtime exceeds its estimate delays the
        # head — the cost of trusting user estimates (EASY's known flaw).
        jobs = [
            make_job("run", num_gpus=6, duration=1000.0, submit_time=0.0, walltime_estimate=1000.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0, walltime_estimate=100.0),
            make_job("liar", num_gpus=2, duration=2000.0, submit_time=2.0, walltime_estimate=900.0),
        ]
        run_trace(EasyBackfillScheduler(), jobs)
        assert jobs[2].first_start_time == pytest.approx(2.0)
        assert jobs[1].first_start_time == pytest.approx(2002.0)


class TestConservativeBackfill:
    def test_respects_every_reservation(self):
        jobs = [
            make_job("run", num_gpus=6, duration=1000.0, submit_time=0.0, walltime_estimate=1000.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0, walltime_estimate=100.0),
            # Finishes before shadow (1000): conservative allows it.
            make_job("ok", num_gpus=2, duration=50.0, submit_time=2.0, walltime_estimate=50.0),
            # Would finish after shadow: conservative refuses even though
            # EASY's extra-GPU rule might allow it.
            make_job("late", num_gpus=1, duration=5000.0, submit_time=3.0, walltime_estimate=5000.0),
        ]
        run_trace(ConservativeBackfillScheduler(), jobs)
        assert jobs[2].first_start_time == pytest.approx(2.0)
        assert jobs[3].first_start_time >= 1000.0

    def test_drains_idle_cluster(self):
        jobs = [make_job(f"j{i}", num_gpus=2, duration=10.0, submit_time=0.0) for i in range(4)]
        result, _ = run_trace(ConservativeBackfillScheduler(), jobs)
        assert result.metrics.jobs_completed == 4


class TestBackfillUtilizationOrdering:
    def test_easy_at_least_as_utilizing_as_fifo(self):
        """On a congested synthetic mix, EASY backfill must not lose to
        strict FIFO on average JCT."""
        from repro.sched import FifoScheduler
        from repro.workload import synthesize
        from repro.experiments import fresh_trace_copy

        trace = synthesize("tacc-campus", days=1.0, seed=13, jobs_per_day=250)
        fifo_result, _ = run_trace(FifoScheduler(), list(fresh_trace_copy(trace)), num_nodes=4)
        easy_result, _ = run_trace(
            EasyBackfillScheduler(), list(fresh_trace_copy(trace)), num_nodes=4
        )
        assert easy_result.metrics.jct_mean_s <= fifo_result.metrics.jct_mean_s * 1.01
