"""Tests for the HiveD-style buddy-cell allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.errors import PlacementError
from repro.sched.placement.hived import (
    BuddyCellPlacement,
    _NodeCells,
    next_pow2,
    pow2_decompose,
)
from repro.workload import ResourceRequest


class TestPow2Helpers:
    @pytest.mark.parametrize(
        "value,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16)]
    )
    def test_next_pow2(self, value, expected):
        assert next_pow2(value) == expected

    def test_next_pow2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_pow2(0)

    @pytest.mark.parametrize(
        "value,parts", [(8, [8]), (6, [4, 2]), (7, [4, 2, 1]), (1, [1])]
    )
    def test_pow2_decompose(self, value, parts):
        assert pow2_decompose(value) == parts


class TestNodeCells:
    def test_fresh_node_one_full_cell(self):
        cells = _NodeCells.fresh(8)
        assert cells.free == {8: [0]}
        assert cells.free_gpus() == 8

    def test_split_keeps_low_offset(self):
        cells = _NodeCells.fresh(8)
        offset = cells.take(2)
        assert offset == 0
        assert cells.free == {2: [2], 4: [4]}

    def test_release_merges_buddies(self):
        cells = _NodeCells.fresh(8)
        a = cells.take(2)
        b = cells.take(2)
        cells.release(2, a)
        cells.release(2, b)
        assert cells.free == {8: [0]}

    def test_no_merge_with_non_buddy(self):
        cells = _NodeCells.fresh(8)
        a = cells.take(2)  # offset 0
        b = cells.take(2)  # offset 2
        c = cells.take(2)  # offset 4
        cells.release(2, b)
        # b's buddy (offset 0) is still held, so the 2-cell at 2 stays split
        # (offset 6 is the remainder of c's split and is also free).
        assert cells.free[2] == [2, 6]
        cells.release(2, a)
        cells.release(2, c)
        assert cells.free == {8: [0]}

    def test_take_without_capacity_raises(self):
        cells = _NodeCells.fresh(4)
        cells.take(4)
        with pytest.raises(PlacementError):
            cells.take(1)

    def test_non_pow2_capacity(self):
        cells = _NodeCells.fresh(6)
        assert cells.free == {4: [0], 2: [4]}
        assert cells.free_gpus() == 6

    def test_verify_detects_overlap(self):
        cells = _NodeCells.fresh(8)
        cells.take(4)  # free is now {4: [4]}
        cells.free[8] = [0]  # corrupt: 0-8 overlaps the free 4-8 cell
        with pytest.raises(PlacementError):
            cells.verify()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=30))
    def test_random_take_release_always_merges_back(self, sizes):
        cells = _NodeCells.fresh(8)
        held: list[tuple[int, int]] = []
        for size in sizes:
            if cells.can_host(size):
                held.append((size, cells.take(size)))
            elif held:
                cells.release(*held.pop(0))
            cells.verify()
        for size, offset in held:
            cells.release(size, offset)
        assert cells.free == {8: [0]}


class TestBuddyCellPlacement:
    def place_and_commit(self, policy, cluster, job_id, request):
        placement = policy.place(cluster, request)
        assert placement is not None
        cluster.allocate(job_id, placement)
        policy.on_allocate(cluster, job_id, placement)
        return placement

    def free_and_release(self, policy, cluster, job_id):
        allocation = cluster.free(job_id)
        policy.on_free(cluster, job_id, allocation.placement)

    def test_alignment_rounds_up(self, small_cluster):
        policy = BuddyCellPlacement()
        self.place_and_commit(policy, small_cluster, "j1", ResourceRequest(num_gpus=3))
        assert policy.waste_gpus == 1  # 3 GPUs occupy a 4-cell

    def test_small_jobs_pack_without_shredding(self, small_cluster):
        policy = BuddyCellPlacement()
        # Four 2-GPU jobs should fill one node's cells, not spread.
        for index in range(4):
            placement = self.place_and_commit(
                policy, small_cluster, f"j{index}", ResourceRequest(num_gpus=2)
            )
            assert placement == {"v100-000": 2}
        # Fifth goes to the next node.
        placement = self.place_and_commit(
            policy, small_cluster, "j5", ResourceRequest(num_gpus=2)
        )
        assert placement == {"v100-001": 2}

    def test_wide_job_preserved_by_packing(self, small_cluster):
        policy = BuddyCellPlacement()
        for index in range(3):
            self.place_and_commit(policy, small_cluster, f"s{index}", ResourceRequest(num_gpus=2))
        # All three small jobs sit on node 0; an 8-GPU job still fits on
        # any of the remaining three whole nodes.
        placement = policy.place(small_cluster, ResourceRequest(num_gpus=8))
        assert placement is not None and list(placement.values()) == [8]

    def test_place_is_pure(self, small_cluster):
        policy = BuddyCellPlacement()
        request = ResourceRequest(num_gpus=4)
        first = policy.place(small_cluster, request)
        second = policy.place(small_cluster, request)
        assert first == second
        policy.verify_invariants(small_cluster)

    def test_free_merges_cells_back(self, small_cluster):
        policy = BuddyCellPlacement()
        self.place_and_commit(policy, small_cluster, "j1", ResourceRequest(num_gpus=4))
        self.place_and_commit(policy, small_cluster, "j2", ResourceRequest(num_gpus=4))
        self.free_and_release(policy, small_cluster, "j1")
        self.free_and_release(policy, small_cluster, "j2")
        policy.verify_invariants(small_cluster)
        placement = policy.place(small_cluster, ResourceRequest(num_gpus=8))
        assert placement is not None

    def test_double_free_rejected(self, small_cluster):
        policy = BuddyCellPlacement()
        self.place_and_commit(policy, small_cluster, "j1", ResourceRequest(num_gpus=2))
        self.free_and_release(policy, small_cluster, "j1")
        with pytest.raises(PlacementError, match="no cells"):
            policy.on_free(small_cluster, "j1", {"v100-000": 2})

    def test_declines_on_aligned_exhaustion(self, small_cluster):
        policy = BuddyCellPlacement()
        # Two 3-GPU jobs per node consume two 4-cells: node full in cell
        # terms even though 2 GPUs per node are physically free.
        for node_index in range(4):
            for slot in range(2):
                self.place_and_commit(
                    policy,
                    small_cluster,
                    f"j{node_index}-{slot}",
                    ResourceRequest(num_gpus=3),
                )
        assert policy.place(small_cluster, ResourceRequest(num_gpus=2)) is None
        assert small_cluster.free_gpus == 8  # the alignment cost, visible

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from([1, 2, 3, 4, 8]), min_size=1, max_size=25))
    def test_random_workload_keeps_cell_books_consistent(self, widths):
        cluster = uniform_cluster(3, gpus_per_node=8)
        policy = BuddyCellPlacement()
        live: list[str] = []
        for index, width in enumerate(widths):
            request = ResourceRequest(num_gpus=width)
            placement = policy.place(cluster, request)
            if placement is not None:
                job_id = f"j{index}"
                cluster.allocate(job_id, placement)
                policy.on_allocate(cluster, job_id, placement)
                live.append(job_id)
            elif live:
                job_id = live.pop(0)
                allocation = cluster.free(job_id)
                policy.on_free(cluster, job_id, allocation.placement)
            policy.verify_invariants(cluster)
            cluster.verify_invariants()
        for job_id in live:
            allocation = cluster.free(job_id)
            policy.on_free(cluster, job_id, allocation.placement)
        policy.verify_invariants(cluster)
