"""Tests for the discrete-event engine and event ordering."""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EventOrderError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import (
    Event,
    JobArrival,
    JobFinish,
    MetricsSample,
    NodeFailure,
    NodeRepair,
    QuantumExpiry,
    SchedulerTick,
    priority_of,
)


@dataclass(frozen=True)
class _Probe(Event):
    tag: str


def recording_engine():
    engine = SimulationEngine()
    log: list[tuple[float, str]] = []
    engine.register(_Probe, lambda now, event: log.append((now, event.tag)))
    return engine, log


class TestEventPriorities:
    def test_release_before_arrival_before_tick(self):
        assert (
            priority_of(JobFinish("j", 1))
            < priority_of(JobArrival("j"))
            < priority_of(SchedulerTick())
            < priority_of(MetricsSample())
        )

    def test_repair_before_failure(self):
        assert priority_of(NodeRepair("n")) < priority_of(NodeFailure("n"))

    def test_unknown_event_runs_last(self):
        assert priority_of(_Probe("x")) > priority_of(MetricsSample())

    def test_quantum_between_arrival_and_tick(self):
        assert priority_of(JobArrival("j")) < priority_of(QuantumExpiry()) < priority_of(
            SchedulerTick()
        )


class TestEngineBasics:
    def test_events_run_in_time_order(self):
        engine, log = recording_engine()
        engine.schedule_at(5.0, _Probe("b"))
        engine.schedule_at(1.0, _Probe("a"))
        engine.schedule_at(9.0, _Probe("c"))
        engine.run()
        assert log == [(1.0, "a"), (5.0, "b"), (9.0, "c")]
        assert engine.now == 9.0
        assert engine.events_processed == 3

    def test_same_time_insertion_order_tiebreak(self):
        engine, log = recording_engine()
        for tag in "abc":
            engine.schedule_at(1.0, _Probe(tag))
        engine.run()
        assert [tag for _t, tag in log] == ["a", "b", "c"]

    def test_schedule_in_relative(self):
        engine, log = recording_engine()
        engine.schedule_in(2.0, _Probe("x"))
        engine.run()
        assert log == [(2.0, "x")]

    def test_past_scheduling_rejected(self):
        engine, _log = recording_engine()
        engine.schedule_at(5.0, _Probe("x"))
        engine.run()
        with pytest.raises(EventOrderError):
            engine.schedule_at(1.0, _Probe("y"))
        with pytest.raises(EventOrderError):
            engine.schedule_in(-1.0, _Probe("y"))

    def test_handler_can_schedule_followups(self):
        engine, log = recording_engine()

        @dataclass(frozen=True)
        class Chain(Event):
            n: int

        def on_chain(now, event):
            log.append((now, f"chain{event.n}"))
            if event.n < 3:
                engine.schedule_in(1.0, Chain(event.n + 1))

        engine.register(Chain, on_chain)
        engine.schedule_at(0.0, Chain(1))
        engine.run()
        assert [tag for _t, tag in log] == ["chain1", "chain2", "chain3"]

    def test_unregistered_event_raises(self):
        engine = SimulationEngine()
        engine.schedule_at(0.0, _Probe("x"))
        with pytest.raises(SimulationError, match="no handler"):
            engine.run()

    def test_double_registration_rejected(self):
        engine, _log = recording_engine()
        with pytest.raises(SimulationError, match="already registered"):
            engine.register(_Probe, lambda now, event: None)


class TestRunControls:
    def test_until_stops_and_advances_clock(self):
        engine, log = recording_engine()
        engine.schedule_at(1.0, _Probe("a"))
        engine.schedule_at(10.0, _Probe("b"))
        processed = engine.run(until=5.0)
        assert processed == 1
        assert engine.now == 5.0
        assert engine.pending == 1
        engine.run()
        assert [tag for _t, tag in log] == ["a", "b"]

    def test_until_with_empty_queue_advances_clock(self):
        engine, _log = recording_engine()
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_max_events_guard(self):
        engine, _log = recording_engine()

        @dataclass(frozen=True)
        class Loop(Event):
            pass

        engine.register(Loop, lambda now, event: engine.schedule_in(0.0, Loop()))
        engine.schedule_at(0.0, Loop())
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)

    def test_stop_requested_from_handler(self):
        engine, log = recording_engine()

        @dataclass(frozen=True)
        class Stopper(Event):
            pass

        engine.register(Stopper, lambda now, event: engine.stop())
        engine.schedule_at(1.0, Stopper())
        engine.schedule_at(2.0, _Probe("after"))
        engine.run()
        assert log == []
        assert engine.pending == 1

    def test_step_and_peek(self):
        engine, log = recording_engine()
        assert engine.step() is None
        engine.schedule_at(3.0, _Probe("x"))
        assert engine.peek_time() == 3.0
        event = engine.step()
        assert isinstance(event, _Probe)
        assert engine.peek_time() is None

    def test_has_pending(self):
        engine, _log = recording_engine()
        assert not engine.has_pending(_Probe)
        engine.schedule_at(1.0, _Probe("x"))
        assert engine.has_pending(_Probe)
        assert not engine.has_pending(SchedulerTick)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_dispatch_order_is_sorted_for_any_schedule(times):
    engine = SimulationEngine()
    seen: list[float] = []
    engine.register(_Probe, lambda now, event: seen.append(now))
    for index, time in enumerate(times):
        engine.schedule_at(time, _Probe(str(index)))
    engine.run()
    assert seen == sorted(times)
    assert len(seen) == len(times)
