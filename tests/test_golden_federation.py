"""Golden pin of the F-FED federation experiment.

Runs the F-FED cells at reduced scale and pins the fleet goodput of the
winning and baseline arms to exact values, plus the structural claims the
experiment exists to demonstrate: every real routing policy beats the
single-site ``home`` funnel on fleet goodput, all arms complete the same
work, and the per-site goodput decomposition telescopes into the fleet
figures with no residue.

As with the other golden suites, float comparisons are exact (or 1e-9):
drift means a routing/migration decision changed, not a perf detail.
"""

from __future__ import annotations

import pytest

from repro import sweep
from repro.experiments.federation import FED_POLICIES, _federation_cells

SEED = 0
SCALE = 0.3

# Pinned when the federation subsystem landed (seed 0, scale 0.3).
GOLDEN_GOODPUT = {
    "least-queued": 0.3087507894155817,
    "home": 0.2223491412161448,
}
GOLDEN_COMPLETED = 419.0


@pytest.fixture(scope="module")
def runs():
    return sweep.run_cells(_federation_cells(seed=SEED, scale=SCALE))


def test_goodput_matches_golden_exactly(runs):
    for arm, expected in GOLDEN_GOODPUT.items():
        assert runs[arm].summary["goodput"] == expected, (
            f"{arm}: {runs[arm].summary['goodput']!r} != {expected!r}"
        )


def test_every_policy_beats_the_home_funnel(runs):
    home = runs["home"].summary["goodput"]
    for policy in FED_POLICIES:
        assert runs[policy].summary["goodput"] > home, (
            f"{policy} does not beat home ({runs[policy].summary['goodput']:.4f}"
            f" <= {home:.4f})"
        )


def test_all_arms_complete_the_same_work(runs):
    # Routing moves work around; it must not create or destroy it.
    for arm, result in runs.items():
        assert result.summary["completed"] == GOLDEN_COMPLETED, arm
        assert result.summary["productive_gpu_h"] == pytest.approx(
            runs["home"].summary["productive_gpu_h"], rel=1e-9
        ), arm


def test_home_routes_everything_to_site_a(runs):
    routed = runs["home"].extras["routed"]
    assert routed["site-b"] == 0 and routed["site-c"] == 0
    assert routed["site-a"] > 0
    assert runs["home"].extras["migrations"] == 0


def test_site_decomposition_telescopes_to_fleet(runs):
    for arm, result in runs.items():
        sites = result.extras["sites"]
        site_productive = sum(row["productive_gpu_h"] for row in sites.values())
        fleet_productive = result.summary["productive_gpu_h"]
        shell_credit = result.extras["migrated_shell_gpu_hours"]
        assert site_productive + shell_credit == pytest.approx(
            fleet_productive, abs=1e-6
        ), arm


def test_goodput_identity_per_arm(runs):
    for arm, result in runs.items():
        summary = result.summary
        assert summary["goodput"] == pytest.approx(
            summary["availability"]
            * summary["efficiency"]
            * summary["productive_share"],
            abs=1e-12,
        ), arm


def test_rerun_is_byte_identical(runs):
    import json

    again = sweep.run_cells(_federation_cells(seed=SEED, scale=SCALE))
    for arm in runs:
        assert runs[arm].summary == again[arm].summary, arm
        # Idle sites report NaN latency quantiles and NaN != NaN, so the
        # dicts are compared through their serialised form.
        assert json.dumps(runs[arm].extras, sort_keys=True) == json.dumps(
            again[arm].extras, sort_keys=True
        ), arm
