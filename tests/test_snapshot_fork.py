"""Snapshot/fork round-trips: a forked sim must reproduce the original run.

The acceptance bar for mid-run forking: fork a live simulation at an
arbitrary instant, run both the original and the fork to completion, and
every summary metric — floats included — must match exactly.  Anything
less means the fork shares mutable state or dropped RNG/event-queue
state, and what-if analysis built on it would silently lie.
"""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.controlplane import fork, snapshot
from repro.ops import what_if
from repro.sched import GreedyFifoScheduler, make_scheduler
from repro.sim import ClusterSimulator, FailureConfig, SimConfig
from repro.workload import Trace, synthesize


def build_sim(seed: int = 0, failure: bool = True) -> ClusterSimulator:
    trace = synthesize("tacc-campus", days=1.0, seed=seed, jobs_per_day=120)
    cluster = uniform_cluster(4, gpus_per_node=8)
    failure_config = FailureConfig(mtbf_hours=40.0, max_job_restarts=2) if failure else None
    return ClusterSimulator(
        cluster,
        make_scheduler("backfill-easy"),
        trace,
        failure_config=failure_config,
        config=SimConfig(sample_interval_s=1800.0, seed=seed, provisioning=True),
    )


MID_RUN_S = 6 * 3600.0


class TestForkRoundTrip:
    def test_fork_reproduces_original_exactly(self):
        original = build_sim()
        original.engine.run(until=MID_RUN_S)
        forked = fork(original)
        assert forked is not original
        assert forked.engine.now == original.engine.now
        original_summary = original.run().summary()
        forked_summary = forked.run().summary()
        assert forked_summary == original_summary

    def test_fork_plus_resume_equals_uninterrupted_run(self):
        """run(full) == run(half) + fork + run(rest), metric for metric."""
        uninterrupted = build_sim().run().summary()
        half = build_sim()
        half.engine.run(until=MID_RUN_S)
        resumed = fork(half).run().summary()
        assert resumed == uninterrupted

    def test_fork_isolation_both_directions(self):
        original = build_sim()
        original.engine.run(until=MID_RUN_S)
        before = (
            original.engine.now,
            original.engine.events_processed,
            original.cluster.free_gpus,
            sorted(original.running),
        )
        forked = fork(original)
        forked.run()  # drive the fork to quiescence
        # The original is untouched by the fork's entire future...
        assert (
            original.engine.now,
            original.engine.events_processed,
            original.cluster.free_gpus,
            sorted(original.running),
        ) == before
        # ...and shares no live mutable structures with it.
        assert forked.jobs is not original.jobs
        assert forked.cluster is not original.cluster
        assert forked.controller is not original.controller
        assert forked.rng is not original.rng

    def test_fork_preserves_internal_aliasing(self):
        forked = fork(build_sim())
        # The simulator's views must still alias the controller's state...
        assert forked.jobs is forked.controller.jobs
        assert forked.running is forked.controller.running
        assert forked.timeline is forked.controller.timeline
        # ...and the perf counters stay shared with the cluster index.
        assert forked.cluster.index.perf is forked.perf

    def test_forked_serving_fleet_reproduces(self):
        from repro.experiments.common import campus_trace, run_policy
        from repro.experiments.serving import serving_quota, serving_workload
        from repro.sched import TieredQuotaScheduler
        from repro.serving import AutoscalerConfig, ServingFleet

        def build():
            trace = campus_trace(0, 0.25, days=0.5)
            fleet = ServingFleet(
                serving_workload(1.0), days=0.5, autoscaler=AutoscalerConfig(enabled=True)
            )
            from repro.cluster import build_tacc_cluster

            return ClusterSimulator(
                build_tacc_cluster(),
                TieredQuotaScheduler(serving_quota(trace)),
                trace,
                serving=fleet,
                config=SimConfig(sample_interval_s=1800.0),
            )

        original = build()
        original.engine.run(until=4 * 3600.0)
        forked = fork(original)
        assert forked.serving is forked.controller.serving
        assert forked.serving is not original.serving
        assert forked.run().summary() == original.run().summary()


class TestSnapshotRestore:
    def test_restore_twice_identical(self):
        sim = build_sim()
        sim.engine.run(until=MID_RUN_S)
        snap = snapshot(sim, label="mid-run")
        assert snap.label == "mid-run"
        assert snap.time == sim.engine.now
        assert snap.events_processed == sim.engine.events_processed
        first = snap.restore().run().summary()
        second = snap.restore().run().summary()
        assert first == second

    def test_snapshot_frozen_against_original_progress(self):
        sim = build_sim()
        sim.engine.run(until=MID_RUN_S)
        snap = snapshot(sim)
        expected = fork(sim).run().summary()
        sim.run()  # drive the original far past the snapshot point
        assert snap.restore().run().summary() == expected

    def test_warm_start_skips_ramp_up(self):
        """Benchmark warm-start: restore resumes exactly where capture left off."""
        sim = build_sim()
        sim.engine.run(until=MID_RUN_S)
        snap = snapshot(sim)
        restored = snap.restore()
        assert restored.engine.now == MID_RUN_S
        assert restored.engine.events_processed == snap.events_processed
        assert sorted(restored.running) == sorted(sim.running)


class TestWhatIf:
    def test_what_if_baseline_matches_and_original_untouched(self):
        sim = build_sim(failure=False)
        sim.engine.run(until=MID_RUN_S)
        now, events = sim.engine.now, sim.engine.events_processed
        expected = fork(sim).run().summary()

        def kill_widest(s: ClusterSimulator) -> None:
            live = [j for j in s.jobs.values() if not j.state.terminal]
            assert live
            for job in sorted(live, key=lambda j: (-j.num_gpus, j.job_id))[:3]:
                s.kill_job(job.job_id)

        rows = what_if(sim, {"kill-widest": kill_widest})
        assert [row["option"] for row in rows] == ["as-is", "kill-widest"]
        baseline = rows[0]
        assert baseline["completed"] == expected["completed"]
        assert baseline["avg_wait_h"] == expected["avg_wait_h"]
        assert baseline["utilization"] == expected["utilization"]
        # The intervention changed the future; the original sim did not move.
        assert rows[1]["completed"] != rows[0]["completed"]
        assert (sim.engine.now, sim.engine.events_processed) == (now, events)

    def test_what_if_horizon_bounds_the_forks(self):
        sim = build_sim(failure=False)
        sim.engine.run(until=MID_RUN_S)
        rows = what_if(sim, {}, horizon_s=3600.0)
        assert len(rows) == 1  # just the as-is baseline
        assert sim.engine.now == MID_RUN_S


class TestForkedFrontend:
    def test_tcloud_frontend_sim_is_forkable(self):
        """A live tcloud session can be forked for offline what-if."""
        from repro.schema.taskspec import ResourceSpec, TaskSpec
        from repro.tcloud.frontend import TaccFrontend

        frontend = TaccFrontend()
        spec = TaskSpec(
            name="fk",
            entrypoint="python train.py",
            resources=ResourceSpec(num_gpus=2, walltime_hours=2.0),
        )
        job_id, _c, _w = frontend.submit(spec, duration_hint_s=1800.0)
        forked = fork(frontend.sim)
        forked.engine.run(until=forked.engine.now + 3 * 3600.0)
        assert forked.jobs[job_id].state.terminal
        assert not frontend.sim.jobs[job_id].state.terminal
