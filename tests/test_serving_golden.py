"""Golden pin of the S1 serving experiment for one seed.

Same contract as ``test_golden_determinism``: every float must match
*exactly*.  The S1 pipeline crosses the whole serving stack — NHPP rate
synthesis, the M/M/c attainment integrals, autoscaler decisions, replica
scheduling through tiered quota, and the final aggregation — so any drift
here means a behavioural change somewhere in that chain, not noise.

Regenerate after an intentional change with::

    PYTHONPATH=src python -c "
    from repro.experiments import run_experiment
    for row in run_experiment('S1', seed=0, scale=0.25).rows: print(row)"
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment

SEED = 0
SCALE = 0.25

#: (load_x, arm) → expected S1 row at SEED/SCALE.
GOLDEN = {
    (0.5, "autoscaled"): {
        "offered_mreq": 1.4600521776238244,
        "slo_attainment": 1.0,
        "goodput_rps": 16.898752055831302,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (0.5, "fixed"): {
        "offered_mreq": 1.4600521776238244,
        "slo_attainment": 1.0,
        "goodput_rps": 16.898752055831302,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (1.0, "autoscaled"): {
        "offered_mreq": 2.920104355247649,
        "slo_attainment": 1.0,
        "goodput_rps": 33.797504111662604,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (1.0, "fixed"): {
        "offered_mreq": 2.920104355247649,
        "slo_attainment": 1.0,
        "goodput_rps": 33.797504111662604,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (2.0, "autoscaled"): {
        "offered_mreq": 5.840208710495298,
        "slo_attainment": 1.0,
        "goodput_rps": 67.59500822332521,
        "harvested_gpu_h": 33.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (2.0, "fixed"): {
        "offered_mreq": 5.840208710495298,
        "slo_attainment": 0.9999999999999853,
        "goodput_rps": 67.59500822332421,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (3.0, "autoscaled"): {
        "offered_mreq": 8.760313065742947,
        "slo_attainment": 1.0,
        "goodput_rps": 101.39251233498781,
        "harvested_gpu_h": 59.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (3.0, "fixed"): {
        "offered_mreq": 8.760313065742947,
        "slo_attainment": 0.9816163559939018,
        "goodput_rps": 99.52854848333749,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (5.0, "autoscaled"): {
        "offered_mreq": 14.600521776238246,
        "slo_attainment": 1.0,
        "goodput_rps": 168.98752055831304,
        "harvested_gpu_h": 121.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
    (5.0, "fixed"): {
        "offered_mreq": 14.600521776238246,
        "slo_attainment": 0.4880229352596339,
        "goodput_rps": 82.46978580511565,
        "harvested_gpu_h": 0.0,
        "serving_preempt": 0,
        "guar_wait_h": 0.0,
    },
}


@pytest.fixture(scope="module")
def s1_rows():
    result = run_experiment("S1", seed=SEED, scale=SCALE)
    return {(row["load_x"], row["arm"]): row for row in result.rows}


def test_s1_covers_the_golden_grid(s1_rows):
    assert set(s1_rows) == set(GOLDEN)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_s1_row_matches_golden_exactly(s1_rows, key):
    row = s1_rows[key]
    expected = GOLDEN[key]
    for column, value in expected.items():
        assert row[column] == value, (
            f"S1 {key} drifted on {column}: measured {row[column]!r}, "
            f"golden {value!r} — serving behaviour changed"
        )


def test_s1_headline_shape(s1_rows):
    """The claim S1 exists to check, independent of exact goldens."""
    top = max(load for load, _arm in s1_rows)
    auto, fixed = s1_rows[(top, "autoscaled")], s1_rows[(top, "fixed")]
    assert auto["slo_attainment"] > fixed["slo_attainment"]
    assert auto["harvested_gpu_h"] > 0.0 and fixed["harvested_gpu_h"] == 0.0
    # Harvesting never costs the guaranteed training tier.
    assert auto["guar_wait_h"] <= fixed["guar_wait_h"] + 1e-9
