"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    FabricSpec,
    NodeGroup,
    NodeSpec,
    build_cluster,
    build_tacc_cluster,
    uniform_cluster,
)
from repro.workload import Job, ResourceRequest


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_cluster():
    """4 × 8-GPU V100 nodes in 2 racks — enough to exercise placement."""
    return uniform_cluster(4, gpus_per_node=8, nodes_per_rack=2)


@pytest.fixture
def hetero_cluster():
    """2 racks of A100 and 2 of RTX3090, small enough to reason about."""
    return build_cluster(
        ClusterSpec(
            name="hetero",
            groups=(
                NodeGroup(2, NodeSpec("a100-80", 8, 64, 512), nodes_per_rack=2),
                NodeGroup(2, NodeSpec("rtx3090", 4, 32, 256), nodes_per_rack=2),
            ),
            fabric=FabricSpec(),
        )
    )


@pytest.fixture
def tacc_cluster():
    return build_tacc_cluster()


def make_job(
    job_id="job-000000",
    num_gpus=1,
    duration=3600.0,
    submit_time=0.0,
    user="user-00-00",
    lab="lab-00",
    **kwargs,
):
    """Concise job construction for tests."""
    request_kwargs = {}
    for key in ("gpus_per_node", "gpu_type", "cpus_per_gpu", "memory_gb_per_gpu"):
        if key in kwargs:
            request_kwargs[key] = kwargs.pop(key)
    return Job(
        job_id=job_id,
        user_id=user,
        lab_id=lab,
        request=ResourceRequest(num_gpus=num_gpus, **request_kwargs),
        submit_time=submit_time,
        duration=duration,
        **kwargs,
    )


@pytest.fixture
def job_factory():
    return make_job
