"""End-to-end integration tests across the whole stack.

These tests assert the *system-level* properties the reproduction rests on:
determinism of full runs, conservation invariants under churn, the
qualitative scheduler orderings the paper's evaluation reports, and the
schema→compiler→scheduler→execution path producing consistent artifacts.
"""

from __future__ import annotations

import pytest

from repro.cluster import build_tacc_cluster
from repro.execlayer import ExecutionModel
from repro.experiments import fresh_trace_copy
from repro.sched import (
    QuotaConfig,
    TieredQuotaScheduler,
    make_placement,
    make_scheduler,
)
from repro.sim import FailureConfig, SimConfig, simulate
from repro.workload import JobState, assign_models, with_load, tacc_campus, TraceSynthesizer


def campus_run(scheduler_name="backfill-easy", seed=21, load=0.9, days=2.0, **kwargs):
    cluster = build_tacc_cluster()
    config = with_load(tacc_campus(days=days), cluster.total_gpus, load, seed=seed)
    trace = TraceSynthesizer(config, seed=seed).generate()
    assign_models(trace, seed=seed)
    scheduler = make_scheduler(scheduler_name)
    result = simulate(
        cluster,
        scheduler,
        trace,
        exec_model=ExecutionModel(),
        # debug_invariants: audit cluster invariants on a sample of
        # scheduler passes in every integration run (deterministic stride,
        # so it cannot change outcomes).
        config=SimConfig(sample_interval_s=1800.0, debug_invariants=0.1),
        **kwargs,
    )
    return result, cluster, trace


class TestSystemInvariants:
    def test_every_job_reaches_terminal_state(self):
        result, _cluster, trace = campus_run()
        states = {job.state for job in result.jobs.values()}
        assert states <= {JobState.COMPLETED, JobState.FAILED, JobState.KILLED}
        assert result.metrics.jobs_unfinished == 0

    def test_cluster_empty_after_quiescence(self):
        _result, cluster, _trace = campus_run()
        assert cluster.free_gpus == cluster.total_gpus
        cluster.verify_invariants()

    def test_full_run_determinism_with_failures_and_quota(self):
        def run():
            cluster = build_tacc_cluster()
            config = with_load(tacc_campus(days=1.5), 176, 1.0, seed=5)
            trace = TraceSynthesizer(config, seed=5).generate()
            assign_models(trace, seed=5)
            quota = QuotaConfig.equal_shares(trace.labs(), 176, fraction=0.6)
            result = simulate(
                cluster,
                TieredQuotaScheduler(quota),
                trace,
                exec_model=ExecutionModel(),
                failure_config=FailureConfig(mtbf_hours=24.0 * 10),
                config=SimConfig(seed=9, sample_interval_s=0.0),
            )
            return [
                (j.job_id, j.state.value, j.first_start_time, j.end_time, j.preemptions)
                for j in result.jobs.values()
            ]

        assert run() == run()

    def test_served_never_exceeds_capacity(self):
        result, cluster, _trace = campus_run(load=1.3, days=1.0)
        capacity_gpu_hours = cluster.total_gpus * result.end_time / 3600.0
        assert result.metrics.served_gpu_hours <= capacity_gpu_hours + 1e-6

    def test_wait_times_nonnegative_and_consistent(self):
        result, _cluster, _trace = campus_run()
        for job in result.jobs.values():
            if job.wait_time is not None:
                assert job.wait_time >= 0.0
            if job.jct is not None and job.wait_time is not None:
                assert job.jct >= job.wait_time


class TestPolicyOrderings:
    """The qualitative results the paper's evaluation reports must hold."""

    @pytest.fixture(scope="class")
    def comparison(self):
        cluster_gpus = 176
        config = with_load(tacc_campus(days=2.0), cluster_gpus, 1.0, seed=31)
        base = TraceSynthesizer(config, seed=31).generate()
        assign_models(base, seed=31)
        results = {}
        for name in ("fifo", "sjf", "backfill-easy", "fair-share"):
            trace = fresh_trace_copy(base)
            assign_models(trace, seed=31)
            results[name] = simulate(
                build_tacc_cluster(),
                make_scheduler(name),
                trace,
                exec_model=ExecutionModel(),
                config=SimConfig(sample_interval_s=0.0),
            )
        return results

    def test_sjf_beats_fifo_on_mean_wait(self, comparison):
        assert (
            comparison["sjf"].metrics.wait_mean_s
            < comparison["fifo"].metrics.wait_mean_s
        )

    def test_backfill_beats_fifo_on_mean_wait(self, comparison):
        assert (
            comparison["backfill-easy"].metrics.wait_mean_s
            < comparison["fifo"].metrics.wait_mean_s
        )

    def test_all_policies_complete_same_workload(self, comparison):
        completed = {name: r.metrics.jobs_completed for name, r in comparison.items()}
        assert len(set(completed.values())) == 1

    def test_policies_serve_equivalent_work(self, comparison):
        # Same workload, same cluster: the GPU-hours actually served must
        # agree across policies to within slowdown/placement noise.
        served = {name: r.metrics.served_gpu_hours for name, r in comparison.items()}
        assert max(served.values()) <= min(served.values()) * 1.25
        # And mean JCT must improve (or at worst tie) over strict FIFO.
        assert (
            comparison["backfill-easy"].metrics.jct_mean_s
            <= comparison["fifo"].metrics.jct_mean_s * 1.02
        )


class TestQuotaSystemLevel:
    def test_guaranteed_tier_waits_less_under_overload(self):
        cluster = build_tacc_cluster()
        config = with_load(tacc_campus(days=2.0, guaranteed_fraction=0.5), 176, 1.4, seed=17)
        trace = TraceSynthesizer(config, seed=17).generate()
        assign_models(trace, seed=17)
        quota = QuotaConfig.equal_shares(trace.labs(), 176, fraction=0.7)
        result = simulate(
            cluster,
            TieredQuotaScheduler(quota),
            trace,
            exec_model=ExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        )
        # Compare like with like: within-quota-sized jobs of each tier.
        # (Wide guaranteed jobs legally exceed their lab quota and run at
        # free-tier priority, so the raw tier means can cross.)
        import numpy as np

        per_lab_quota = min(quota.quotas.values())
        def tier_wait(tier):
            waits = [
                j.wait_time
                for j in result.jobs.values()
                if j.tier.value == tier
                and j.num_gpus <= per_lab_quota
                and j.wait_time is not None
            ]
            return float(np.mean(waits))

        assert tier_wait("guaranteed") <= tier_wait("opportunistic") + 60.0
        by_tier = result.metrics.preemptions_by_tier
        # Entitled (charged) jobs are never preempted; guaranteed-tier
        # preemptions can only come from borrowed (over-quota) runs.
        assert by_tier["opportunistic"] + by_tier["guaranteed"] == result.metrics.preemptions


class TestPlacementSystemLevel:
    def test_buddy_cells_survive_full_campus_run(self):
        cluster = build_tacc_cluster()
        config = with_load(tacc_campus(days=1.0), 176, 0.9, seed=23)
        trace = TraceSynthesizer(config, seed=23).generate()
        assign_models(trace, seed=23)
        placement = make_placement("buddy-cell")
        scheduler = make_scheduler("backfill-easy", placement=placement)
        result = simulate(
            cluster,
            scheduler,
            trace,
            exec_model=ExecutionModel(),
            config=SimConfig(sample_interval_s=0.0, verify_every=500),
        )
        placement.verify_invariants(cluster)
        assert result.metrics.jobs_unfinished == 0

    def test_topology_aware_placements_tighter_than_worst_fit(self):
        def rack_spread(placement_name):
            cluster = build_tacc_cluster()
            config = with_load(
                tacc_campus(days=1.0, gpu_demand_pmf={8: 0.5, 16: 0.5}), 176, 0.7, seed=29
            )
            trace = TraceSynthesizer(config, seed=29).generate()
            assign_models(trace, seed=29)
            scheduler = make_scheduler("backfill-easy", placement=placement_name)
            result = simulate(cluster, scheduler, trace, config=SimConfig(sample_interval_s=0.0))
            spreads = []
            for job in result.jobs.values():
                if job.first_start_time is None or len(job.current_nodes) == 0:
                    continue
            # current_nodes is cleared at finish; measure via gpu_seconds
            # instead: count multi-node 16-GPU jobs' slowdown proxy.
            return result.metrics.jct_mean_s

        # Topology-aware packing should not be worse than worst-fit.
        assert rack_spread("topology-aware") <= rack_spread("worst-fit") * 1.10


class TestWorkflowStackIntegration:
    def test_schema_to_execution_path(self):
        from repro.schema import parse_task_text
        from repro.tcloud import TaccFrontend

        frontend = TaccFrontend()
        spec = parse_task_text(
            """
name: integration-bert
entrypoint: python pretrain.py
model: bert-base
resources:
  num_gpus: 16
  gpus_per_node: 8
  walltime_hours: 4.0
qos:
  tier: guaranteed
"""
        )
        job_id, compile_result, warnings = frontend.submit(spec, duration_hint_s=3600.0)
        assert compile_result.instruction.nnodes == 2
        status = frontend.advance_until_done(job_id)
        assert status.state == "completed"
        # The job ran on two nodes; logs aggregate both.
        final_job = frontend.sim.jobs[job_id]
        assert final_job.attempts >= 1
        assert final_job.gpu_seconds_used > 0
