"""Golden determinism: scheduler metrics are bit-stable across refactors.

Runs a 7-day tacc-campus trace (seed 0, full scale) under three schedulers
and compares ``SimulationResult.summary()`` against values captured before
the incremental cluster-state index landed.  Every float must match
*exactly* — the index, candidate iterators, and availability-histogram
short-circuits are pure reorganisations of the same scan, so any drift
here means a placement or event-ordering decision changed, not just a
performance characteristic.

Future perf PRs get the same guarantee for free: if an "optimisation"
alters any of these numbers, it changed scheduling behaviour and must
either be fixed or re-justify the new goldens explicitly.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.common import campus_trace, fresh_trace_copy, run_policy
from repro.sched import QuotaConfig, TieredQuotaScheduler, make_scheduler

# summary() values captured at seed 0 on the pre-index implementation.
GOLDEN = {
    "fifo": {
        "completed": 726.0,
        "avg_jct_h": 243.48548486966183,
        "p50_jct_h": 50.72664925374768,
        "p99_jct_h": 527.9613764532614,
        "avg_wait_h": 232.28985117233697,
        "p99_wait_h": 513.4734922709387,
        "utilization": 0.2211141443030602,
        "makespan_h": 871.6697407354495,
        "preemptions": 0.0,
        "events": 5002.0,
    },
    "backfill-easy": {
        "completed": 726.0,
        "avg_jct_h": 3.920670042820442,
        "p50_jct_h": 0.309782682398532,
        "p99_jct_h": 30.804651491198257,
        "avg_wait_h": 1.798232641750184,
        "p99_wait_h": 13.653654219904126,
        "utilization": 0.27935333704646426,
        "makespan_h": 611.6440477827103,
        "preemptions": 0.0,
        "events": 4482.0,
    },
    "tiered-quota": {
        "completed": 726.0,
        "avg_jct_h": 3.672407025585526,
        "p50_jct_h": 0.21944260430880402,
        "p99_jct_h": 36.981828813866095,
        "avg_wait_h": 1.389340259955552,
        "p99_wait_h": 3.910882024500573,
        "utilization": 0.2854302428168489,
        "makespan_h": 611.6440477827103,
        "preemptions": 9.0,
        "events": 4491.0,
    },
}


@pytest.fixture(scope="module")
def golden_trace():
    trace = campus_trace(0, 1.0, days=7.0)
    assert len(trace) == 816
    return trace


def _make(name: str, trace):
    if name == "tiered-quota":
        quota = QuotaConfig.equal_shares(trace.labs(), 176, fraction=0.6)
        return TieredQuotaScheduler(quota)
    return make_scheduler(name)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_summary_matches_golden_exactly(name, golden_trace):
    scheduler = _make(name, golden_trace)
    result = run_policy(scheduler, fresh_trace_copy(golden_trace))
    summary = result.summary()
    expected = GOLDEN[name]
    assert set(summary) == set(expected)
    for key, want in expected.items():
        got = summary[key]
        if isinstance(want, float) and math.isnan(want):
            assert math.isnan(got), f"{name}.{key}: expected NaN, got {got!r}"
        else:
            # Exact — not approx — equality: bitwise determinism is the contract.
            assert got == want, f"{name}.{key}: {got!r} != golden {want!r}"
