"""Vectorized fleet trace synthesis: determinism, shape, and scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.fleet import FleetTraceSynthesizer, fleet_trace
from repro.workload.job import JobTier
from repro.workload.synth import tacc_campus


def _fingerprint(trace):
    return [
        (
            job.job_id,
            job.user_id,
            job.lab_id,
            job.submit_time,
            job.duration,
            job.tier.value,
            job.walltime_estimate,
            job.interactive,
            job.preemptible,
            job.elastic_min_gpus,
            job.dataset_gb,
            job.request.num_gpus,
            job.request.gpus_per_node,
            job.request.gpu_type,
            job.request.cpus_per_gpu,
            job.request.memory_gb_per_gpu,
            None
            if job.failure_plan is None
            else (job.failure_plan.category.value, job.failure_plan.at_fraction),
        )
        for job in trace.jobs
    ]


@pytest.fixture(scope="module")
def day_trace():
    return fleet_trace(tacc_campus(days=2, jobs_per_day=800.0), seed=42)


def test_same_seed_same_trace(day_trace):
    again = fleet_trace(tacc_campus(days=2, jobs_per_day=800.0), seed=42)
    assert _fingerprint(day_trace) == _fingerprint(again)


def test_different_seed_different_trace(day_trace):
    other = fleet_trace(tacc_campus(days=2, jobs_per_day=800.0), seed=43)
    assert _fingerprint(day_trace) != _fingerprint(other)


def test_ids_are_canonically_ordered(day_trace):
    ids = [job.job_id for job in day_trace.jobs]
    assert ids == sorted(ids)
    # Trace's canonical sort is (submit_time, job_id); ids assigned in
    # submit order mean the trace order IS submit order.
    times = [job.submit_time for job in day_trace.jobs]
    assert times == sorted(times)
    assert all(job_id.startswith("job-") and len(job_id) == 12 for job_id in ids)


def test_arrivals_within_horizon(day_trace):
    horizon = 2 * 86400.0
    assert all(0.0 <= job.submit_time < horizon for job in day_trace.jobs)


def test_field_shapes(day_trace):
    cfg = tacc_campus(days=2, jobs_per_day=800.0)
    valid_demands = set(cfg.gpu_demand_pmf) | {1, 2}
    for job in day_trace.jobs:
        assert job.request.num_gpus in valid_demands
        assert job.walltime_estimate is not None
        assert job.walltime_estimate >= job.duration
        assert job.duration > 0
        if job.interactive:
            assert job.request.num_gpus <= 2
            assert job.duration <= cfg.interactive_max_minutes * 60.0
            assert job.dataset_gb == 0.0
        if job.request.num_gpus > cfg.gpus_per_node_cap:
            assert job.request.gpus_per_node == cfg.gpus_per_node_cap


def test_requests_are_interned(day_trace):
    distinct = {id(job.request) for job in day_trace.jobs}
    # A handful of shapes (demand x type x cpus x memory), not one per job.
    assert len(distinct) < len(day_trace.jobs) / 2


def test_mix_tracks_config(day_trace):
    cfg = tacc_campus(days=2, jobs_per_day=800.0)
    jobs = day_trace.jobs
    interactive = sum(job.interactive for job in jobs) / len(jobs)
    guaranteed = sum(job.tier is JobTier.GUARANTEED for job in jobs) / len(jobs)
    failures = sum(job.failure_plan is not None for job in jobs) / len(jobs)
    assert interactive == pytest.approx(cfg.interactive_fraction, abs=0.05)
    assert guaranteed == pytest.approx(cfg.guaranteed_fraction, abs=0.05)
    assert failures == pytest.approx(cfg.failure_fraction, abs=0.04)


def test_lab_shares_skewed(day_trace):
    counts: dict[str, int] = {}
    for job in day_trace.jobs:
        counts[job.lab_id] = counts.get(job.lab_id, 0) + 1
    assert counts["lab-00"] > counts.get("lab-11", 0)


def test_volume_tracks_jobs_per_day():
    trace = fleet_trace(tacc_campus(days=4, jobs_per_day=500.0), seed=7)
    # NHPP mean is days * jobs_per_day; allow generous Poisson slack.
    assert 4 * 500 * 0.8 < len(trace) < 4 * 500 * 1.2


def test_fleet_scale_smoke():
    """~50k jobs must synthesize in well under a minute (scaled stand-in
    for the ~1M-job month, which runs at the same per-job cost)."""
    import time

    cfg = tacc_campus(days=5, jobs_per_day=10_000.0)
    start = time.perf_counter()
    trace = fleet_trace(cfg, seed=3)
    elapsed = time.perf_counter() - start
    assert len(trace) > 30_000
    assert elapsed < 30.0
    ids = np.array([job.job_id for job in trace.jobs])
    assert len(np.unique(ids)) == len(ids)
