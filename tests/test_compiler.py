"""Tests for the compiler layer: chunk cache, instructions, compilation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    ChunkStore,
    NodeLaunch,
    TaskCompiler,
    TaskInstruction,
    chunk_bytes,
    chunk_id,
)
from repro.errors import CacheError, CompileError
from repro.schema import EnvironmentSpec, FileSpec, ResourceSpec, TaskSpec


class TestChunking:
    def test_chunk_sizes(self):
        chunks = list(chunk_bytes(b"x" * 10, chunk_size=4))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_empty_data_single_empty_chunk(self):
        assert list(chunk_bytes(b"")) == [b""]

    def test_bad_chunk_size(self):
        with pytest.raises(CacheError):
            list(chunk_bytes(b"x", chunk_size=0))

    def test_chunk_id_is_sha256(self):
        import hashlib

        assert chunk_id(b"abc") == hashlib.sha256(b"abc").hexdigest()


class TestChunkStore:
    def test_first_upload_moves_everything(self):
        store = ChunkStore(chunk_size=4)
        _manifest, report = store.upload({"a.py": b"12345678"})
        assert report.uploaded_bytes == 8
        assert report.uploaded_chunks == 2
        assert report.hit_rate == 0.0

    def test_identical_resubmission_moves_nothing(self):
        store = ChunkStore(chunk_size=4)
        workspace = {"a.py": b"12345678"}
        store.upload(workspace)
        _manifest, report = store.upload(workspace)
        assert report.uploaded_bytes == 0
        assert report.hit_rate == 1.0
        assert report.dedup_factor == float("inf")

    def test_small_edit_uploads_only_dirty_chunk(self):
        store = ChunkStore(chunk_size=4)
        store.upload({"a.py": b"AAAABBBBCCCC"})
        _manifest, report = store.upload({"a.py": b"AAAABXBBCCCC"[:12]})
        assert report.uploaded_chunks == 1  # only the B-chunk changed
        assert report.uploaded_bytes == 4

    def test_cross_file_dedup(self):
        store = ChunkStore(chunk_size=4)
        store.upload({"a.bin": b"SAME" * 4})
        _manifest, report = store.upload({"b.bin": b"SAME" * 4})
        assert report.uploaded_bytes == 0  # same content, different path

    def test_materialize_roundtrip(self):
        store = ChunkStore(chunk_size=3)
        workspace = {"a.py": b"hello world", "b.bin": b"", "c": b"xy"}
        manifest, _report = store.upload(workspace)
        assert store.materialize(manifest) == workspace

    def test_materialize_missing_chunk_raises(self):
        store = ChunkStore(chunk_size=4)
        manifest, _report = store.upload({"a.py": b"12345678"})
        store._chunks.clear()
        with pytest.raises(CacheError, match="missing"):
            store.materialize(manifest)

    def test_gc_frees_dead_chunks(self):
        store = ChunkStore(chunk_size=4)
        manifest_a, _r = store.upload({"a": b"AAAA"})
        store.upload({"b": b"BBBB"})
        freed = store.gc([manifest_a])
        assert freed == 4
        assert store.materialize(manifest_a) == {"a": b"AAAA"}

    def test_stats(self):
        store = ChunkStore(chunk_size=4)
        store.upload({"a": b"AAAABBBB"})
        assert len(store) == 2
        assert store.stored_bytes == 8
        assert store.uploads == 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=6),
            st.binary(max_size=200),
            max_size=5,
        )
    )
    def test_any_workspace_roundtrips(self, workspace):
        store = ChunkStore(chunk_size=16)
        manifest, report = store.upload(workspace)
        assert store.materialize(manifest) == workspace
        assert report.total_bytes == sum(len(v) for v in workspace.values())


class TestInstruction:
    def test_rank_validation(self):
        with pytest.raises(CompileError):
            NodeLaunch(rank=2, nnodes=2, command="x")

    def test_inconsistent_launches_rejected(self):
        store = ChunkStore()
        manifest, _r = store.upload({"a": b"x"})
        with pytest.raises(CompileError, match="inconsistent"):
            TaskInstruction(
                task_name="t",
                fingerprint="f" * 64,
                env_fingerprint="e" * 64,
                runtime="bare",
                setup_commands=(),
                launches=(NodeLaunch(0, 2, "x"), NodeLaunch(0, 2, "y")),
                manifest=manifest,
            )

    def test_render_script_contains_pieces(self):
        store = ChunkStore()
        manifest, _r = store.upload({"a": b"x"})
        instruction = TaskInstruction(
            task_name="t",
            fingerprint="f" * 64,
            env_fingerprint="e" * 64,
            runtime="bare",
            setup_commands=("setup-step",),
            launches=(NodeLaunch(0, 1, "python train.py"),),
            manifest=manifest,
            env_vars={"TACC_TASK": "t"},
        )
        script = instruction.render_script()
        assert "setup-step" in script
        assert "python train.py" in script
        assert "export TACC_TASK" in script
        with pytest.raises(CompileError, match="no launch"):
            instruction.render_script(rank=5)


def build_spec(**kwargs):
    code = FileSpec.of_bytes("train.py", b"print('hi')\n" * 10)
    defaults = dict(
        name="demo",
        entrypoint="python train.py",
        code_files=(code,),
        resources=ResourceSpec(num_gpus=1),
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


def workspace_for(spec):
    from repro.tcloud.frontend import synthesize_workspace

    return synthesize_workspace(spec)


class TestCompiler:
    def test_basic_compile(self):
        compiler = TaskCompiler()
        spec = build_spec()
        result = compiler.compile(spec, workspace_for(spec))
        instruction = result.instruction
        assert instruction.runtime == "bare"
        assert instruction.nnodes == 1
        assert instruction.fingerprint == spec.fingerprint()
        assert result.upload.uploaded_bytes > 0

    def test_deterministic_output(self):
        spec = build_spec()
        a = TaskCompiler().compile(spec, workspace_for(spec)).instruction
        b = TaskCompiler().compile(spec, workspace_for(spec)).instruction
        assert a == b

    def test_runtime_choice_rules(self):
        compiler = TaskCompiler()
        assert compiler.choose_runtime(build_spec()) == "bare"
        assert (
            compiler.choose_runtime(
                build_spec(environment=EnvironmentSpec(image="pytorch:2.1"))
            )
            == "container"
        )
        many = tuple(f"pkg{i}==1.0" for i in range(20))
        assert (
            compiler.choose_runtime(build_spec(environment=EnvironmentSpec(pip_packages=many)))
            == "container"
        )
        assert compiler.choose_runtime(build_spec(runtime="ray")) == "ray"

    def test_multi_node_launches_torchrun_style(self):
        spec = build_spec(resources=ResourceSpec(num_gpus=16, gpus_per_node=8))
        result = TaskCompiler().compile(spec, workspace_for(spec))
        launches = result.instruction.launches
        assert len(launches) == 2
        assert "--node-rank 1" in launches[1].command
        assert "tacc-launch" in launches[0].command

    def test_entrypoint_placeholders_filled(self):
        spec = build_spec(
            entrypoint="python train.py --rank {rank} --world {nnodes}",
            resources=ResourceSpec(num_gpus=16, gpus_per_node=8),
        )
        result = TaskCompiler().compile(spec, workspace_for(spec))
        assert "--rank 1 --world 2" in result.instruction.launches[1].command

    def test_workspace_mismatch_detected(self):
        compiler = TaskCompiler()
        spec = build_spec()
        with pytest.raises(CompileError, match="missing declared"):
            compiler.compile(spec, {})
        workspace = workspace_for(spec)
        workspace["extra.py"] = b"x"
        with pytest.raises(CompileError, match="undeclared"):
            compiler.compile(spec, workspace)
        workspace = workspace_for(spec)
        workspace["train.py"] = b"wrong size"
        with pytest.raises(CompileError, match="bytes"):
            compiler.compile(spec, workspace)

    def test_dataset_mounts_in_setup(self):
        dataset = FileSpec(path="data/set.bin", size_bytes=100, sha256="b" * 64)
        spec = build_spec(datasets=(dataset,))
        result = TaskCompiler().compile(spec, workspace_for(spec))
        assert any("tacc-data mount" in cmd for cmd in result.instruction.setup_commands)

    def test_resubmission_dedups_through_shared_store(self):
        store = ChunkStore()
        compiler = TaskCompiler(store)
        spec = build_spec()
        first = compiler.compile(spec, workspace_for(spec))
        second = compiler.compile(spec, workspace_for(spec))
        assert first.upload.uploaded_bytes > 0
        assert second.upload.uploaded_bytes == 0
