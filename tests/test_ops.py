"""Tests for operational analytics, fairness, fragmentation, and reports."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.ops import (
    Cdf,
    FragmentationProbe,
    arrivals_per_hour_of_day,
    duration_cdf_by_class,
    fairness_summary,
    gpu_demand_distribution,
    gpu_hours_by_entity,
    jain_index,
    quota_adherence,
    render_series,
    render_table,
    series_to_rows,
    slowdown_stats,
    snapshot,
    sparkline,
    utilization_series,
    wait_cdf,
    write_csv,
)
from repro.sched import QuotaConfig
from repro.sim.metrics import Sample
from repro.workload import JobTier, synthesize
from tests.conftest import make_job


class TestCdf:
    def test_monotone_and_bounded(self):
        cdf = Cdf.of([3, 1, 2, 2, 5])
        assert list(cdf.probabilities) == sorted(cdf.probabilities)
        assert cdf.probabilities[-1] == 1.0
        assert cdf.at(0) == 0.0
        assert cdf.at(2) == pytest.approx(0.6)
        assert cdf.at(100) == 1.0

    def test_quantile(self):
        cdf = Cdf.of(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 100
        with pytest.raises(ValidationError):
            cdf.quantile(0.0)

    def test_empty(self):
        cdf = Cdf.of([])
        assert np.isnan(cdf.at(1.0))
        assert cdf.points() == []

    def test_points_downsampled(self):
        cdf = Cdf.of(range(1000))
        points = cdf.points(max_points=50)
        assert len(points) == 50
        assert points[0][0] == 0.0
        assert points[-1][1] == 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=100))
    def test_quantile_inverts_at(self, values):
        cdf = Cdf.of(values)
        q = cdf.quantile(0.5)
        assert cdf.at(q) >= 0.5 - 1e-9


class TestTraceAnalytics:
    def test_arrivals_per_hour_sums_to_daily_volume(self):
        trace = synthesize("tacc-campus", days=7.0, seed=0, jobs_per_day=200)
        rates = arrivals_per_hour_of_day(trace)
        assert sum(rates.values()) == pytest.approx(len(trace) / 7.0, rel=0.01)

    def test_gpu_demand_distribution_shares_sum_to_one(self):
        trace = synthesize("tacc-campus", days=2.0, seed=1, jobs_per_day=300)
        distribution = gpu_demand_distribution(trace)
        assert sum(s["job_share"] for s in distribution.values()) == pytest.approx(1.0)
        assert sum(s["gpu_hour_share"] for s in distribution.values()) == pytest.approx(1.0)

    def test_duration_cdf_classes(self):
        trace = synthesize("tacc-campus", days=2.0, seed=2, jobs_per_day=300)
        cdfs = duration_cdf_by_class(trace, boundaries=(1, 2, 8))
        assert set(cdfs) <= {"1", "2-7", "8+"}
        assert all(cdf.values.size > 0 for cdf in cdfs.values())

    def test_wait_cdf_filters_by_tier(self):
        jobs = {}
        for index, tier in enumerate([JobTier.GUARANTEED, JobTier.OPPORTUNISTIC]):
            job = make_job(f"j{index}", tier=tier, submit_time=0.0)
            job.start(100.0 * (index + 1), ("n",))
            jobs[job.job_id] = job
        assert wait_cdf(jobs).values.size == 2
        assert wait_cdf(jobs, tier="guaranteed").values.size == 1

    def test_utilization_series_binning(self):
        samples = [Sample(t * 600.0, 8, 16, 0, 1) for t in range(12)]
        series = utilization_series(samples, bin_s=3600.0)
        assert len(series) == 2
        assert all(y == pytest.approx(0.5) for _x, y in series)

    def test_slowdown_stats(self):
        job = make_job("a", duration=1000.0, submit_time=0.0)
        job.start(1000.0, ("n",))
        job.complete(2000.0)
        stats = slowdown_stats({"a": job})
        assert stats["mean"] == pytest.approx(2.0)


class TestFairness:
    def test_jain_bounds(self):
        assert jain_index([1, 1, 1, 1]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([0, 0]) == 1.0

    def test_jain_validation(self):
        with pytest.raises(ValidationError):
            jain_index([])
        with pytest.raises(ValidationError):
            jain_index([-1, 2])

    def test_gpu_hours_by_entity(self):
        job_a = make_job("a", num_gpus=2, duration=3600.0, lab="lab-x")
        job_a.start(0.0, ("n",))
        job_a.complete(3600.0)
        job_b = make_job("b", lab="lab-y", tier=JobTier.OPPORTUNISTIC)
        hours = gpu_hours_by_entity({"a": job_a, "b": job_b}, "lab_id")
        assert hours == {"lab-x": pytest.approx(2.0), "lab-y": 0.0}
        guaranteed_only = gpu_hours_by_entity(
            {"a": job_a, "b": job_b}, "lab_id", JobTier.GUARANTEED
        )
        assert "lab-y" not in guaranteed_only
        with pytest.raises(ValidationError):
            gpu_hours_by_entity({}, "team_id")

    def test_quota_adherence(self):
        quota = QuotaConfig(quotas={"lab-x": 10})
        job = make_job("a", num_gpus=10, duration=3600.0, lab="lab-x")
        job.start(0.0, ("n",))
        job.complete(3600.0)
        reports = quota_adherence({"a": job}, quota, horizon_s=3600.0)
        assert len(reports) == 1
        assert reports[0].adherence == pytest.approx(1.0)
        assert reports[0].free_tier_bonus == 0.0
        with pytest.raises(ValidationError):
            quota_adherence({}, quota, horizon_s=0.0)

    def test_fairness_summary_empty(self):
        summary = fairness_summary({})
        assert summary["entities"] == 0.0


class TestFragmentation:
    def test_empty_cluster_unfragmented(self, small_cluster):
        snap = snapshot(small_cluster)
        assert snap.external_fragmentation == 0.0
        assert snap.largest_block == 8
        assert snap.startable[8] == 4

    def test_shredded_cluster_fragmented(self, small_cluster):
        for index, node in enumerate(sorted(small_cluster.nodes)):
            small_cluster.allocate(f"j{index}", {node: 7})
        snap = snapshot(small_cluster)
        assert snap.free_gpus == 4
        assert snap.largest_block == 1
        assert snap.external_fragmentation == pytest.approx(0.75)
        assert snap.startable[8] == 0
        assert snap.startable[1] == 4

    def test_full_cluster(self, small_cluster):
        for index, node in enumerate(sorted(small_cluster.nodes)):
            small_cluster.allocate(f"j{index}", {node: 8})
        snap = snapshot(small_cluster)
        assert snap.free_gpus == 0
        assert snap.external_fragmentation == 0.0

    def test_probe_summary(self, small_cluster):
        probe = FragmentationProbe()
        probe.observe(small_cluster)  # empty: frag 0
        for index, node in enumerate(sorted(small_cluster.nodes)):
            small_cluster.allocate(f"j{index}", {node: 7})
        probe.observe(small_cluster)  # shredded: frag 0.75
        summary = probe.summary()
        assert summary["observations"] == 2.0
        assert summary["max_frag"] == pytest.approx(0.75)
        assert summary["mean_frag"] == pytest.approx(0.375)


class TestReports:
    def test_render_table_alignment(self):
        text = render_table(
            [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20}], title="T"
        )
        assert "== T ==" in text
        lines = text.splitlines()
        assert lines[1].startswith("name")
        assert "1.500" in text

    def test_render_table_union_of_columns(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_render_empty(self):
        assert "(empty)" in render_table([])
        assert "(no series)" in render_series({})

    def test_render_series_joins_on_x(self):
        text = render_series(
            {"s1": [(0.0, 1.0), (1.0, 2.0)], "s2": [(1.0, 5.0)]}, x_label="t"
        )
        assert "s1" in text and "s2" in text
        assert text.splitlines()[0].startswith("t")

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([2, 2]) == "▁▁"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}], path)
        content = path.read_text()
        assert content.splitlines()[0] == "a,b,c"
        with pytest.raises(ValidationError):
            write_csv([], tmp_path / "empty.csv")

    def test_series_to_rows(self):
        rows = series_to_rows({"y": [(0.0, 1.0), (2.0, 3.0)]}, x_label="x")
        assert rows == [{"x": 0.0, "y": 1.0}, {"x": 2.0, "y": 3.0}]
