"""Tests for the shared-filesystem staging model and partition routing."""

from __future__ import annotations

import pytest

from repro.cluster import build_tacc_cluster, uniform_cluster
from repro.errors import ConfigError
from repro.execlayer import SharedFilesystem, StorageConfig, UnitExecutionModel
from repro.sched import GreedyFifoScheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobState, Trace
from tests.conftest import make_job


class TestStorageModel:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            StorageConfig(node_stage_gbps=0)
        with pytest.raises(ConfigError):
            StorageConfig(node_cache_gb=-1)

    def test_cold_stage_time(self):
        fs = SharedFilesystem(StorageConfig(node_stage_gbps=10.0, aggregate_gbps=100.0))
        # 100 GB at 10 Gbit/s = 80 s.
        assert fs.stage_time_s("n1", "ds", 100.0) == pytest.approx(80.0)

    def test_warm_stage_free(self):
        fs = SharedFilesystem()
        fs.stage(("n1",), "ds", 50.0)
        assert fs.stage_time_s("n1", "ds", 50.0) == 0.0
        assert fs.stage(("n1",), "ds", 50.0) == 0.0
        assert fs.cache_hits == 1

    def test_cache_is_per_node(self):
        fs = SharedFilesystem()
        fs.stage(("n1",), "ds", 50.0)
        assert fs.stage_time_s("n2", "ds", 50.0) > 0.0

    def test_gang_waits_for_slowest_node(self):
        fs = SharedFilesystem()
        fs.stage(("n1",), "ds", 50.0)  # warm n1 only
        time = fs.stage(("n1", "n2"), "ds", 50.0)
        assert time > 0.0  # n2 is cold

    def test_contention_slows_stages(self):
        config = StorageConfig(node_stage_gbps=20.0, aggregate_gbps=40.0)
        fs = SharedFilesystem(config)
        solo = fs.stage_time_s("n1", "a", 100.0)
        fs.begin_stage()
        fs.begin_stage()
        fs.begin_stage()
        contended = fs.stage_time_s("n1", "a", 100.0)
        assert contended > solo
        fs.end_stage()
        fs.end_stage()
        fs.end_stage()

    def test_lru_eviction(self):
        fs = SharedFilesystem(StorageConfig(node_cache_gb=100.0))
        fs.stage(("n1",), "old", 60.0)
        fs.stage(("n1",), "new", 60.0)  # 120 GB > 100 GB: evict "old"
        assert not fs.is_cached("n1", "old")
        assert fs.is_cached("n1", "new")

    def test_lru_order_refreshed_on_hit(self):
        fs = SharedFilesystem(StorageConfig(node_cache_gb=100.0))
        fs.stage(("n1",), "a", 40.0)
        fs.stage(("n1",), "b", 40.0)
        fs.stage(("n1",), "a", 40.0)  # hit refreshes a
        fs.stage(("n1",), "c", 40.0)  # evicts b, not a
        assert fs.is_cached("n1", "a")
        assert not fs.is_cached("n1", "b")

    def test_hit_rate(self):
        fs = SharedFilesystem()
        assert fs.hit_rate == 1.0
        fs.stage(("n1",), "ds", 10.0)
        fs.stage(("n1",), "ds", 10.0)
        assert fs.hit_rate == 0.5


class TestStorageInSimulator:
    def run_with_storage(self, jobs, storage):
        cluster = uniform_cluster(2, gpus_per_node=8)
        simulator = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace(list(jobs)),
            exec_model=UnitExecutionModel(),
            storage=storage,
            config=SimConfig(sample_interval_s=0.0),
        )
        return simulator.run()

    def test_staging_delays_first_run_only(self):
        storage = SharedFilesystem(StorageConfig(node_stage_gbps=10.0))
        first = make_job("a", duration=100.0, dataset_gb=100.0, model_name="resnet50")
        rerun = make_job(
            "b", duration=100.0, dataset_gb=100.0, model_name="resnet50", submit_time=500.0
        )
        result = self.run_with_storage([first, rerun], storage)
        # First run pays 80 s of staging; the rerun (same user+model → same
        # dataset key, same node) hits the cache.
        assert first.end_time == pytest.approx(180.0)
        assert rerun.end_time == pytest.approx(600.0)
        assert result.metrics.stage_seconds == pytest.approx(80.0)
        assert storage.hit_rate > 0.0

    def test_no_dataset_no_delay(self):
        storage = SharedFilesystem()
        job = make_job("a", duration=100.0, dataset_gb=0.0)
        self.run_with_storage([job], storage)
        assert job.end_time == pytest.approx(100.0)

    def test_no_storage_configured_is_free(self):
        job = make_job("a", duration=100.0, dataset_gb=1000.0)
        cluster = uniform_cluster(1, gpus_per_node=8)
        ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([job]),
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        ).run()
        assert job.end_time == pytest.approx(100.0)


class TestPartitionRouting:
    def run_on_tacc(self, jobs):
        cluster = build_tacc_cluster()
        simulator = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace(list(jobs)),
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        )
        return simulator.run(), cluster

    def test_partition_restricts_nodes(self):
        job = make_job("a", num_gpus=4, duration=100.0, partition="consumer")
        self.run_on_tacc([job])
        assert job.state is JobState.COMPLETED
        assert all(
            node.startswith(("rtx3090", "rtx2080ti")) for node in job.last_nodes
        )

    def test_partition_walltime_rejection(self):
        job = make_job(
            "a",
            num_gpus=4,
            duration=100.0,
            partition="consumer",
            walltime_estimate=100 * 3600.0,  # consumer caps at 48 h
        )
        result, _ = self.run_on_tacc([job])
        assert job.state is JobState.KILLED
        assert result.metrics.rejected_jobs == 1

    def test_partition_width_rejection(self):
        job = make_job(
            "a", num_gpus=16, gpus_per_node=8, duration=100.0, partition="consumer"
        )
        result, _ = self.run_on_tacc([job])  # consumer caps at 8 GPUs/job
        assert result.metrics.rejected_jobs == 1

    def test_unknown_partition_rejected(self):
        job = make_job("a", partition="h100-island")
        result, _ = self.run_on_tacc([job])
        assert result.metrics.rejected_jobs == 1

    def test_no_partition_runs_anywhere(self):
        job = make_job("a", num_gpus=8, duration=100.0)
        self.run_on_tacc([job])
        assert job.state is JobState.COMPLETED

    def test_backfill_reservation_respects_partition(self):
        # Partition-constrained job behind a partition-filling blocker:
        # the reservation must be computed over the partition's nodes only.
        from repro.sched import EasyBackfillScheduler

        cluster = build_tacc_cluster()
        consumer_nodes = [
            n for n in cluster.nodes if n.startswith(("rtx3090", "rtx2080ti"))
        ]
        jobs = [
            make_job(
                f"fill-{i}",
                num_gpus=cluster.node(node).spec.num_gpus,
                duration=1000.0,
                walltime_estimate=1000.0,
                partition="consumer",
                submit_time=0.0,
            )
            for i, node in enumerate(consumer_nodes)
        ]
        jobs.append(
            make_job(
                "queued",
                num_gpus=8,
                duration=100.0,
                partition="consumer",
                submit_time=1.0,
            )
        )
        simulator = ClusterSimulator(
            cluster,
            EasyBackfillScheduler(),
            Trace(jobs),
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        )
        simulator.run()
        assert jobs[-1].first_start_time == pytest.approx(1000.0)
        assert all(node.startswith("rtx3090") for node in jobs[-1].last_nodes)
