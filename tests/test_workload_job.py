"""Tests for the job model and its lifecycle state machine."""

from __future__ import annotations

import pytest

from repro.errors import JobStateError, ValidationError
from repro.workload import (
    FailureCategory,
    FailurePlan,
    JobState,
    JobTier,
    ResourceRequest,
)
from tests.conftest import make_job


class TestResourceRequest:
    def test_defaults(self):
        request = ResourceRequest(num_gpus=4)
        assert request.gpus_per_node is None
        assert request.num_nodes_min == 1

    def test_multi_node_shape(self):
        request = ResourceRequest(num_gpus=16, gpus_per_node=8)
        assert request.num_nodes_min == 2

    def test_non_multiple_rejected(self):
        with pytest.raises(ValidationError, match="multiple"):
            ResourceRequest(num_gpus=12, gpus_per_node=8)

    def test_small_job_with_larger_cap_allowed(self):
        request = ResourceRequest(num_gpus=4, gpus_per_node=8)
        assert request.num_nodes_min == 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_gpus(self, bad):
        with pytest.raises(ValidationError):
            ResourceRequest(num_gpus=bad)

    def test_negative_per_gpu_asks_rejected(self):
        with pytest.raises(ValidationError):
            ResourceRequest(num_gpus=1, cpus_per_gpu=-1)


class TestFailurePlan:
    def test_valid_fraction(self):
        FailurePlan(FailureCategory.OOM, 0.5)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.1])
    def test_invalid_fraction(self, bad):
        with pytest.raises(ValidationError):
            FailurePlan(FailureCategory.OOM, bad)


class TestJobConstruction:
    def test_defaults_derived(self):
        job = make_job()
        assert job.state is JobState.QUEUED
        assert job.walltime_estimate == job.duration
        assert job.preemptible is False  # guaranteed tier
        assert job.remaining_work == job.duration

    def test_opportunistic_preemptible_by_default(self):
        job = make_job(tier=JobTier.OPPORTUNISTIC)
        assert job.preemptible is True

    def test_explicit_preemptible_wins(self):
        job = make_job(tier=JobTier.GUARANTEED, preemptible=True)
        assert job.preemptible is True

    def test_invalid_duration(self):
        with pytest.raises(ValidationError):
            make_job(duration=0.0)

    def test_negative_submit_time(self):
        with pytest.raises(ValidationError):
            make_job(submit_time=-1.0)


class TestLifecycle:
    def test_happy_path_metrics(self):
        job = make_job(duration=100.0, submit_time=10.0)
        job.start(30.0, ("n1",), slowdown=1.0)
        job.complete(130.0)
        assert job.state is JobState.COMPLETED
        assert job.wait_time == 20.0
        assert job.jct == 120.0
        assert job.remaining_work == 0.0
        assert job.gpu_seconds_used == pytest.approx(100.0)

    def test_slowdown_stretches_wall_time(self):
        job = make_job(duration=100.0, num_gpus=2)
        job.start(0.0, ("n1",), slowdown=2.0)
        # After 100 wall seconds at 2x slowdown only half the work is done.
        job.preempt(100.0, checkpoint_loss=0.0)
        assert job.remaining_work == pytest.approx(50.0)
        assert job.gpu_seconds_used == pytest.approx(200.0)

    def test_preempt_checkpoint_loss(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        job.preempt(60.0, checkpoint_loss=10.0)
        assert job.remaining_work == pytest.approx(50.0)
        assert job.preemptions == 1
        assert job.state is JobState.QUEUED

    def test_checkpoint_loss_never_exceeds_duration(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        job.preempt(1.0, checkpoint_loss=1e9)
        assert job.remaining_work == pytest.approx(100.0)

    def test_resume_after_preemption(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        job.preempt(40.0)
        job.start(50.0, ("n2",))
        job.complete(110.0)
        assert job.attempts == 2
        assert job.first_start_time == 0.0
        assert job.wait_time == 0.0  # measured to FIRST start

    def test_requeue_discards_attempt_work(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        job.requeue(30.0, work_lost=True)
        assert job.remaining_work == pytest.approx(100.0)
        assert job.gpu_seconds_used == pytest.approx(30.0)  # wasted but spent
        assert job.preemptions == 0  # requeue is not a preemption

    def test_fail_records_category(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        job.fail(20.0, FailureCategory.OOM)
        assert job.state is JobState.FAILED
        assert job.failure_category is FailureCategory.OOM
        assert job.end_time == 20.0

    def test_kill_from_queue(self):
        job = make_job()
        job.kill(5.0)
        assert job.state is JobState.KILLED
        assert job.wait_time is None

    def test_kill_while_running(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        job.kill(10.0)
        assert job.state is JobState.KILLED
        assert job.gpu_seconds_used == pytest.approx(10.0)

    def test_complete_requires_exhausted_work(self):
        job = make_job(duration=100.0)
        job.start(0.0, ("n1",))
        with pytest.raises(JobStateError, match="remaining"):
            job.complete(50.0)

    def test_illegal_transitions(self):
        job = make_job()
        with pytest.raises(JobStateError):
            job.complete(1.0)  # not running
        job.start(0.0, ("n1",))
        with pytest.raises(JobStateError):
            job.start(1.0, ("n1",))  # already running
        job.complete(job.duration)
        with pytest.raises(JobStateError):
            job.kill(1e9)  # terminal

    def test_start_before_submit_rejected(self):
        job = make_job(submit_time=100.0)
        with pytest.raises(JobStateError, match="before submission"):
            job.start(50.0, ("n1",))

    def test_nonpositive_slowdown_rejected(self):
        job = make_job()
        with pytest.raises(ValidationError):
            job.start(0.0, ("n1",), slowdown=0.0)


class TestEstimates:
    def test_estimated_remaining_queued(self):
        job = make_job(duration=100.0, walltime_estimate=400.0)
        assert job.estimated_remaining(50.0) == 400.0

    def test_estimated_remaining_running_decreases(self):
        job = make_job(duration=100.0, walltime_estimate=400.0)
        job.start(0.0, ("n1",))
        assert job.estimated_remaining(150.0) == pytest.approx(250.0)
        assert job.estimated_remaining(500.0) == 0.0  # clamped

    def test_expected_runtime_scales_with_slowdown(self):
        job = make_job(duration=100.0)
        assert job.expected_runtime(1.5) == pytest.approx(150.0)
