"""simlint analyzer tests: every rule, suppressions, baseline, CLI, clean tree.

Each rule R1–R13 is exercised by a bad/good fixture pair under
``tests/data/simlint/`` analyzed under a *virtual* path inside the rule's
scope, so the fixtures live outside the real package tree (and the runner
explicitly skips them during real scans — verified below).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    FileContext,
    LintCache,
    all_rules,
    analyze_paths,
    analyze_source,
    file_key,
    rule_by_id,
    run_lint,
)
from repro.analysis.__main__ import main as simlint_main
from repro.analysis.typestate import build_model, edge_coverage, extract_typestate
from repro.tcloud.cli import main as tcloud_main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "data" / "simlint"

#: rule id → (fixture stem, virtual path the fixture is analyzed under).
RULE_FIXTURES = {
    "R1": ("r1", "src/repro/sim/fixture.py"),
    "R2": ("r2", "src/repro/sim/fixture.py"),
    "R3": ("r3", "src/repro/sched/fixture.py"),
    "R4": ("r4", "src/repro/sim/events_fixture.py"),
    "R5": ("r5", "src/repro/experiments/fixture.py"),
    "R6": ("r6", "src/repro/sched/fixture.py"),
    "R7": ("r7", "src/repro/sim/fixture.py"),
    "R8": ("r8", "src/repro/sim/fixture.py"),
    "R9": ("r9", "src/repro/workload/fixture.py"),
    "R10": ("r10", "src/repro/workload/fixture.py"),
    "R11": ("r11", "src/repro/controlplane/fixture.py"),
    "R12": ("r12", "src/repro/schema/fixture.py"),
    "R13": ("r13", "src/repro/sim/fixture.py"),
}


def fixture_source(name: str) -> str:
    return (FIXTURES / f"{name}.py").read_text()


class TestRegistry:
    def test_at_least_eight_rules_with_metadata(self):
        rules = all_rules()
        assert len(rules) >= 8
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            assert rule.id and rule.name and rule.rationale

    def test_rule_lookup(self):
        assert rule_by_id("R1").name == "unseeded-rng"
        with pytest.raises(KeyError):
            rule_by_id("R999")

    def test_every_rule_has_fixture_coverage(self):
        assert set(RULE_FIXTURES) == {rule.id for rule in all_rules()}


class TestRules:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_bad_fixture_fires_only_its_rule(self, rule_id):
        stem, path = RULE_FIXTURES[rule_id]
        findings = analyze_source(fixture_source(f"{stem}_bad"), path)
        assert findings, f"{stem}_bad.py produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_good_fixture_is_clean(self, rule_id):
        stem, path = RULE_FIXTURES[rule_id]
        assert analyze_source(fixture_source(f"{stem}_good"), path) == []

    def test_rules_are_path_scoped(self):
        # The same RNG violation is fine outside simulation code.
        source = fixture_source("r1_bad")
        assert analyze_source(source, "scripts/make_figures.py") == []

    def test_r1_allows_seeded_constructors(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert analyze_source(source, "src/repro/sim/x.py") == []

    def test_r1_resolves_import_aliases(self):
        source = "import numpy.random as nr\nx = nr.rand()\n"
        findings = analyze_source(source, "src/repro/sim/x.py")
        assert [f.rule_id for f in findings] == ["R1"]

    def test_r2_resolves_module_alias(self):
        source = "import time as _t\nx = _t.perf_counter()\n"
        findings = analyze_source(source, "src/repro/sim/x.py")
        assert [f.rule_id for f in findings] == ["R2"]

    def test_r3_exempts_the_control_plane(self):
        source = fixture_source("r3_bad")
        assert analyze_source(source, "src/repro/controlplane/controller.py") == []
        assert analyze_source(source, "src/repro/workload/job.py") == []

    def test_r4_flags_non_integer_rank(self):
        source = (
            "class Event:\n    pass\n\n"
            "class Tick(Event):\n    pass\n\n"
            'PRIORITY = {Tick: "high"}\n'
        )
        findings = analyze_source(source, "src/repro/sim/x.py")
        # The string rank is flagged AND leaves Tick effectively unranked.
        assert {f.rule_id for f in findings} == {"R4"}
        assert any("integer" in f.message for f in findings)

    def test_r6_sorted_wrapper_escapes(self):
        source = "ids = {1, 2, 3}\nordered = sorted(ids)\n"
        assert analyze_source(source, "src/repro/sched/x.py") == []

    def test_r6_scalar_min_is_not_flagged(self):
        source = "a = {1}\nx = min(2, 3)\n"
        assert analyze_source(source, "src/repro/sched/x.py") == []

    def test_r7_exempts_snapshot_module(self):
        source = fixture_source("r7_bad")
        assert analyze_source(source, "src/repro/controlplane/snapshot.py") == []

    def test_r8_reraise_is_fine(self):
        source = (
            "def f(x):\n"
            "    try:\n"
            "        return x()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert analyze_source(source, "src/repro/sim/x.py") == []


class TestTaintDataflow:
    """R9/R10 flow details beyond the fixture pair: chain text + sinks."""

    SIM = "src/repro/workload/x.py"

    def test_message_carries_the_full_source_to_sink_chain(self):
        findings = analyze_source(
            fixture_source("r9_bad"), RULE_FIXTURES["R9"][1]
        )
        [finding] = findings
        assert finding.message == (
            "nondeterministic order reaches result sink add_row(); "
            "taint path: set comprehension (line 5) -> "
            "assigned to 'pending' (line 5) -> "
            "order materialised by a list comprehension over it (line 6) -> "
            "assigned to 'ids' (line 6) -> "
            "reaches sink add_row() (line 7); "
            "iterate a sorted(...) view before the order is observable"
        )

    def test_wait_result_in_raised_message_is_a_sink(self):
        source = (
            "from concurrent.futures import wait\n"
            "def gather(futures):\n"
            "    done, pending = wait(futures)\n"
            "    names = [f.name for f in done]\n"
            "    raise RuntimeError(', '.join(names))\n"
        )
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["R9"]
        assert "raised exception message" in findings[0].message
        assert "wait() (line 3)" in findings[0].message

    def test_os_environ_is_an_unordered_source(self):
        source = (
            "import os\n"
            "def key(h):\n"
            "    tags = [v for v in os.environ]\n"
            "    return h.sha256(str(tags))\n"
        )
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["R9"]
        assert "os.environ" in findings[0].message

    def test_sorting_id_keyed_container_is_flagged(self):
        source = (
            "def order(jobs):\n"
            "    ranks = {}\n"
            "    for j in jobs:\n"
            "        ranks[id(j)] = j\n"
            "    return sorted(ranks)\n"
        )
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["R9"]
        assert "memory address" in findings[0].message

    def test_sum_over_set_is_r10(self):
        source = (
            "def cost(cells):\n"
            "    prices = {c.price for c in cells}\n"
            "    return sum(prices)\n"
        )
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["R10"]

    def test_sorted_before_the_sink_sanitises(self):
        source = (
            "def cost(cells):\n"
            "    prices = {c.price for c in cells}\n"
            "    return sum(sorted(prices))\n"
        )
        assert analyze_source(source, self.SIM) == []


class TestTypestate:
    """R11: the real lifecycle table is fully covered; drift is caught."""

    CONTROLPLANE = (
        "src/repro/controlplane/lifecycle.py",
        "src/repro/controlplane/controller.py",
    )

    def _model(self):
        summaries = []
        for rel in self.CONTROLPLANE:
            ctx = FileContext.from_source((REPO / rel).read_text(), rel)
            summary = extract_typestate(ctx)
            if summary is not None:
                summaries.append((rel, summary))
        model = build_model(sorted(summaries))
        assert model is not None
        return model

    def test_real_table_has_exactly_twenty_edges(self):
        assert len(self._model().all_edges()) == 20

    def test_every_real_edge_is_exercised_by_a_call_site(self):
        model = self._model()
        covered, uncovered = edge_coverage(model)
        assert uncovered == frozenset(), f"dead table edges: {sorted(uncovered)}"
        assert covered == model.all_edges()

    def test_bad_fixture_reports_illegal_edge_with_evidence(self):
        findings = analyze_source(
            fixture_source("r11_bad"), RULE_FIXTURES["R11"][1]
        )
        messages = [f.message for f in findings]
        assert any(
            "illegal lifecycle edge" in m
            and "bad_restart()" in m
            and "{KILLED}" in m
            and "{PENDING}" in m
            for m in messages
        ), messages

    def test_bad_fixture_reports_the_dead_table_edge(self):
        findings = analyze_source(
            fixture_source("r11_bad"), RULE_FIXTURES["R11"][1]
        )
        messages = [f.message for f in findings]
        assert any(
            "PENDING->RUNNING" in m and "not exercisable" in m for m in messages
        ), messages


class TestLintCache:
    """The incremental runner: invalidation, determinism, speedup."""

    def _tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "tree" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "clean.py").write_text("x = 1\n")
        (pkg / "clock.py").write_text("import time\nt = time.time()\n")
        return tmp_path / "tree"

    @staticmethod
    def _rendered(report) -> str:
        return json.dumps([f.as_dict() for f in report.findings], sort_keys=True)

    def test_file_key_is_sensitive_to_path_bytes_and_engine(self):
        base = file_key("a.py", b"x = 1\n", "e1")
        assert file_key("a.py", b"x = 2\n", "e1") != base
        assert file_key("b.py", b"x = 1\n", "e1") != base
        assert file_key("a.py", b"x = 1\n", "e2") != base

    def test_warm_run_hits_and_edit_invalidates_one_file(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        cold = run_lint([tree], cache=cache)
        assert (cold.stats.cache_hits, cold.stats.cache_misses) == (0, 2)
        warm = run_lint([tree], cache=cache)
        assert (warm.stats.cache_hits, warm.stats.cache_misses) == (2, 0)
        assert self._rendered(warm) == self._rendered(cold)
        (tree / "repro" / "sim" / "clean.py").write_text(
            "import random\nr = random.random()\n"
        )
        edited = run_lint([tree], cache=cache)
        assert (edited.stats.cache_hits, edited.stats.cache_misses) == (1, 1)
        assert {f.rule_id for f in edited.findings} == {"R1", "R2"}

    def test_suppressions_filter_cached_records_at_merge_time(self, tmp_path):
        tree = self._tree(tmp_path)
        (tree / "repro" / "sim" / "clock.py").write_text(
            "import time\nt = time.time()  # simlint: disable=R2\n"
        )
        cache = LintCache(tmp_path / "cache")
        assert run_lint([tree], cache=cache).findings == []
        warm = run_lint([tree], cache=cache)
        assert warm.findings == []
        assert warm.stats.cache_hits == 2

    def test_findings_identical_across_cache_state_and_jobs(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        cold_parallel = run_lint([tree], jobs=4, cache=cache)
        warm_serial = run_lint([tree], jobs=1, cache=cache)
        uncached = run_lint([tree], jobs=1, cache=None)
        assert warm_serial.stats.cache_hits == 2
        assert (
            self._rendered(cold_parallel)
            == self._rendered(warm_serial)
            == self._rendered(uncached)
        )

    def test_warm_run_is_at_most_a_quarter_of_cold(self, tmp_path):
        pkg = tmp_path / "tree" / "repro" / "sim"
        pkg.mkdir(parents=True)
        body = "\n\n".join(
            f"def f{i}(xs):\n"
            f"    ys = [x + {i} for x in xs]\n"
            f"    return len(ys)"
            for i in range(40)
        )
        for index in range(30):
            (pkg / f"mod{index}.py").write_text(body + "\n")
        cache = LintCache(tmp_path / "cache")
        cold = run_lint([tmp_path / "tree"], cache=cache)
        warm = run_lint([tmp_path / "tree"], cache=cache)
        assert cold.findings == warm.findings == []
        assert warm.stats.cache_hits == 30
        assert warm.stats.wall_seconds <= 0.25 * cold.stats.wall_seconds, (
            f"warm {warm.stats.wall_seconds:.3f}s vs "
            f"cold {cold.stats.wall_seconds:.3f}s"
        )


class TestIncrementalCli:
    """The new front-door flags: --stats, --changed, cache counters."""

    def _write_violation(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        target = pkg / "clock.py"
        target.write_text("import time\nt = time.time()\n")
        return target

    def test_stats_report_cache_hits_on_the_warm_run(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        argv = [
            str(tmp_path),
            "--no-baseline",
            "--stats",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert simlint_main(argv) == 1
        err = capsys.readouterr().err
        assert "simlint stats:" in err
        assert "0 hit / 1 miss" in err
        assert simlint_main(argv) == 1
        err = capsys.readouterr().err
        assert "1 hit / 0 miss" in err
        assert "(100.0% hit rate)" in err

    def test_json_format_reports_cache_counters(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        assert (
            simlint_main(
                [
                    str(tmp_path),
                    "--no-baseline",
                    "--format",
                    "json",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 0, "misses": 1}

    def test_changed_analyzes_only_the_git_diff(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        git = ["git", "-c", "user.email=ci@example.invalid", "-c", "user.name=ci"]
        subprocess.run(["git", "init", "-q"], check=True)
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        subprocess.run(["git", "add", "."], check=True)
        subprocess.run(git + ["commit", "-qm", "seed"], check=True)

        argv = [".", "--changed", "--no-baseline", "--no-cache"]
        assert simlint_main(argv) == 0
        assert "no changed python files" in capsys.readouterr().out

        (pkg / "clock.py").write_text("import time\nt = time.time()\n")
        assert simlint_main(argv) == 1
        out = capsys.readouterr().out
        assert "R2" in out and "clock.py" in out
        assert "1 file(s)" in out  # the committed-clean ok.py was skipped

    def test_tcloud_lint_mirrors_the_new_flags(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        assert (
            tcloud_main(
                [
                    "lint",
                    str(tmp_path),
                    "--no-baseline",
                    "--stats",
                    "--jobs",
                    "2",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "R2" in captured.out
        assert "simlint stats:" in captured.err


class TestSuppressions:
    SIM = "src/repro/sim/x.py"

    def test_inline_disable(self):
        source = "import time\nt = time.time()  # simlint: disable=R2\n"
        assert analyze_source(source, self.SIM) == []

    def test_disable_next_line(self):
        source = "import time\n# simlint: disable-next-line=R2\nt = time.time()\n"
        assert analyze_source(source, self.SIM) == []

    def test_disable_file(self):
        source = (
            "# simlint: disable-file=R2\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert analyze_source(source, self.SIM) == []

    def test_disable_all(self):
        source = "import time\nt = time.time()  # simlint: disable=all\n"
        assert analyze_source(source, self.SIM) == []

    def test_wrong_rule_does_not_suppress(self):
        source = "import time\nt = time.time()  # simlint: disable=R1\n"
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["R2"]

    def test_multiple_rules_in_one_directive(self):
        source = (
            "import time\n"
            "import random\n"
            "t = (time.time(), random.random())  # simlint: disable=R1, R2\n"
        )
        findings = analyze_source(source, self.SIM)
        # The import of 'random' on line 2 is still a finding; the call
        # line's combined directive suppresses both call findings.
        assert [(f.rule_id, f.line) for f in findings] == [("R1", 2)]

    def test_malformed_directive_is_a_finding(self):
        source = "x = 1  # simlint: disable\n"
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["S0"]

    def test_late_disable_file_is_a_finding(self):
        filler = "\n".join(f"x{i} = {i}" for i in range(25))
        source = filler + "\n# simlint: disable-file=R2\n"
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["S0"]
        assert "first" in findings[0].message

    def test_s0_is_not_suppressible(self):
        source = "# simlint: disable-file=all\nx = 1  # simlint: disable\n"
        findings = analyze_source(source, self.SIM)
        assert [f.rule_id for f in findings] == ["S0"]

    def test_directive_inside_string_is_inert(self):
        source = 'msg = "# simlint: disable"\n'
        assert analyze_source(source, self.SIM) == []


class TestBaseline:
    BAD = "import time\nt = time.time()\n"

    def test_roundtrip_absorbs_known_findings(self, tmp_path):
        findings = analyze_source(self.BAD, "src/repro/sim/x.py")
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        new, baselined = Baseline.load(path).split(findings)
        assert new == []
        assert baselined == findings

    def test_baseline_keys_ignore_line_numbers(self):
        shifted = "\n\n\n" + self.BAD
        baseline = Baseline.from_findings(
            analyze_source(self.BAD, "src/repro/sim/x.py")
        )
        new, baselined = baseline.split(analyze_source(shifted, "src/repro/sim/x.py"))
        assert new == []
        assert len(baselined) == 1

    def test_multiplicity_is_respected(self):
        # Both call sites strip to exactly the baselined source line.
        doubled = (
            "import time\n"
            "def a():\n    t = time.time()\n    return t\n"
            "def b():\n    t = time.time()\n    return t\n"
        )
        one = analyze_source(self.BAD, "src/repro/sim/x.py")
        baseline = Baseline.from_findings(one)
        new, baselined = baseline.split(analyze_source(doubled, "src/repro/sim/x.py"))
        assert len(baselined) == 1
        assert len(new) == 1  # the second identical call is NOT grandfathered

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestCli:
    def _write_violation(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        target = pkg / "clock.py"
        target.write_text("import time\nt = time.time()\n")
        return target

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert simlint_main([str(tmp_path), "--no-baseline"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        assert simlint_main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R2" in out and "clock.py" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert simlint_main([str(tmp_path / "nope")]) == 2

    def test_write_then_enforce_baseline(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert simlint_main(
            [str(tmp_path), "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        assert simlint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        assert simlint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] and payload["new"][0]["rule"] == "R2"
        assert len(payload["rules"]) >= 8

    def test_list_rules(self, capsys):
        assert simlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_syntax_error_is_a_p0_finding(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert simlint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "P0" in capsys.readouterr().out

    def test_tcloud_lint_delegates(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        assert tcloud_main(["lint", str(tmp_path), "--no-baseline"]) == 1
        assert "R2" in capsys.readouterr().out
        assert tcloud_main(["lint", "--list-rules"]) == 0


class TestRealTree:
    def test_fixture_directory_is_never_scanned(self):
        report = analyze_paths([FIXTURES])
        assert report.files_analyzed == 0

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(REPO / "simlint-baseline.json")
        assert baseline.counts == {}

    def test_source_tree_is_clean(self):
        report = analyze_paths([REPO / "src", REPO / "benchmarks"])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"simlint findings in tree:\n{rendered}"
        assert report.files_analyzed > 100
        assert len(report.rules_run) >= 8
