"""Tests for timeline recording and Gantt reconstruction."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import ValidationError
from repro.execlayer import UnitExecutionModel
from repro.ops import job_segments, render_gantt
from repro.sched import GangScheduler, GreedyFifoScheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.sim.simulator import TimelineEvent
from repro.workload import FailureCategory, FailurePlan, Trace
from tests.conftest import make_job


def run_recorded(jobs, scheduler=None, **config_kwargs):
    cluster = uniform_cluster(1, gpus_per_node=8)
    config_kwargs.setdefault("sample_interval_s", 0.0)
    config_kwargs.setdefault("checkpoint_loss_s", 0.0)
    simulator = ClusterSimulator(
        cluster,
        scheduler or GreedyFifoScheduler(),
        Trace(list(jobs)),
        exec_model=UnitExecutionModel(),
        config=SimConfig(record_timeline=True, **config_kwargs),
    )
    return simulator.run()


class TestRecording:
    def test_off_by_default(self):
        cluster = uniform_cluster(1, gpus_per_node=8)
        result = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([make_job("a", duration=10.0)]),
            config=SimConfig(sample_interval_s=0.0),
        ).run()
        assert result.timeline == []

    def test_happy_path_events(self):
        job = make_job("a", duration=100.0, submit_time=5.0)
        result = run_recorded([job])
        kinds = [(e.kind, e.time) for e in result.timeline]
        assert kinds == [("submit", 5.0), ("start", 5.0), ("complete", 105.0)]

    def test_failure_and_rejection_events(self):
        jobs = [
            make_job("bad", duration=100.0, failure_plan=FailurePlan(FailureCategory.OOM, 0.5)),
            make_job("huge", num_gpus=9),  # infeasible on one 8-GPU node
        ]
        result = run_recorded(jobs)
        by_kind = {}
        for event in result.timeline:
            by_kind.setdefault(event.kind, []).append(event.subject)
        assert by_kind["fail"] == ["bad"]
        assert by_kind["reject"] == ["huge"]

    def test_preemption_events(self):
        jobs = [
            make_job("a", num_gpus=8, duration=3000.0, submit_time=0.0, preemptible=True),
            make_job("b", num_gpus=8, duration=3000.0, submit_time=10.0, preemptible=True),
        ]
        result = run_recorded(jobs, scheduler=GangScheduler(quantum_s=600.0))
        kinds = {event.kind for event in result.timeline}
        assert "preempt" in kinds


class TestSegments:
    def test_queued_then_running(self):
        timeline = [
            TimelineEvent(0.0, "submit", "a"),
            TimelineEvent(10.0, "start", "a"),
            TimelineEvent(50.0, "complete", "a"),
        ]
        segments = job_segments(timeline)["a"]
        assert [(s.state, s.start, s.end) for s in segments] == [
            ("queued", 0.0, 10.0),
            ("running", 10.0, 50.0),
        ]

    def test_instant_start_has_no_queued_segment(self):
        timeline = [
            TimelineEvent(5.0, "submit", "a"),
            TimelineEvent(5.0, "start", "a"),
            TimelineEvent(9.0, "complete", "a"),
        ]
        segments = job_segments(timeline)["a"]
        assert [s.state for s in segments] == ["running"]

    def test_preemption_creates_alternation(self):
        timeline = [
            TimelineEvent(0.0, "submit", "a"),
            TimelineEvent(0.0, "start", "a"),
            TimelineEvent(10.0, "preempt", "a"),
            TimelineEvent(20.0, "start", "a"),
            TimelineEvent(30.0, "complete", "a"),
        ]
        states = [s.state for s in job_segments(timeline)["a"]]
        assert states == ["running", "queued", "running"]

    def test_live_job_closed_at_horizon(self):
        timeline = [
            TimelineEvent(0.0, "submit", "a"),
            TimelineEvent(0.0, "start", "a"),
            TimelineEvent(100.0, "submit", "b"),
        ]
        segments = job_segments(timeline)
        assert segments["a"][-1].end == 100.0
        assert segments["b"] == []  # zero-length queue at horizon

    def test_empty(self):
        assert job_segments([]) == {}


class TestGantt:
    def test_renders_every_job_with_outcome(self):
        jobs = [
            make_job("job-ok", duration=100.0, submit_time=0.0),
            make_job(
                "job-oom",
                duration=100.0,
                submit_time=1.0,
                failure_plan=FailurePlan(FailureCategory.OOM, 0.5),
            ),
        ]
        result = run_recorded(jobs)
        text = render_gantt(result.timeline, width=40)
        assert "job-ok" in text and "✓" in text
        assert "job-oom" in text and "✗" in text

    def test_max_jobs_truncation(self):
        jobs = [make_job(f"j{i}", duration=10.0, submit_time=float(i)) for i in range(6)]
        result = run_recorded(jobs)
        text = render_gantt(result.timeline, width=30, max_jobs=3)
        assert "3 more jobs not shown" in text

    def test_width_validation(self):
        with pytest.raises(ValidationError):
            render_gantt([TimelineEvent(0.0, "submit", "a")], width=5)

    def test_empty_timeline(self):
        assert "(empty timeline)" in render_gantt([])

    def test_round_robin_visible(self):
        jobs = [
            make_job(f"j{i}", num_gpus=8, duration=2000.0, submit_time=i * 100.0,
                     preemptible=True)
            for i in range(3)
        ]
        result = run_recorded(jobs, scheduler=GangScheduler(quantum_s=500.0))
        text = render_gantt(result.timeline, width=60)
        # Every job alternates running/queued at least once.
        for line in text.splitlines()[1:4]:
            body = line.split("|")[1]
            assert "█" in body and "·" in body
