"""Unit tests for the sweep engine: specs, cache, runner, trace sharing."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError, SweepError
from repro.sweep import (
    CELL_FORMAT_VERSION,
    ClusterSpec,
    SchedulerSpec,
    SimCell,
    SweepCache,
    SweepRunner,
    TraceSpec,
    build_trace,
    canonical_json,
    cell_key,
    code_fingerprint,
)
from repro.workload.trace import Trace


def tiny_tspec(seed: int = 0, jobs_per_day: float = 30.0) -> TraceSpec:
    """One simulated day, ~30 jobs, no load calibration — fast to run."""
    return TraceSpec(
        days=1.0,
        synth_seed=seed,
        load=None,
        overrides={"jobs_per_day": jobs_per_day},
    )


def tiny_cell(seed: int = 0, scheduler: str = "fifo", **kwargs) -> SimCell:
    return SimCell(
        trace=tiny_tspec(seed),
        scheduler=SchedulerSpec(name=scheduler),
        cluster=ClusterSpec(kind="uniform", nodes=2),
        **kwargs,
    )


class TestCanonicalJson:
    def test_keys_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_dataclasses_encode_by_field(self):
        text = canonical_json(SchedulerSpec(name="fifo"))
        assert text == '{"name":"fifo","params":{},"placement":null,"quotas":null}'

    def test_equal_specs_encode_identically(self):
        assert canonical_json(tiny_cell()) == canonical_json(tiny_cell())

    def test_nan_rejected(self):
        with pytest.raises(ConfigError):
            canonical_json({"x": float("nan")})

    def test_inf_rejected(self):
        with pytest.raises(ConfigError):
            canonical_json({"x": float("inf")})

    def test_non_plain_data_rejected(self):
        with pytest.raises(ConfigError):
            canonical_json({"x": object()})


class TestCellKey:
    def test_deterministic(self):
        assert cell_key(tiny_cell()) == cell_key(tiny_cell())

    def test_spec_sensitive(self):
        assert cell_key(tiny_cell(seed=0)) != cell_key(tiny_cell(seed=1))
        assert cell_key(tiny_cell()) != cell_key(tiny_cell(scheduler="sjf"))

    def test_fingerprint_sensitive(self):
        cell = tiny_cell()
        assert cell_key(cell, fingerprint="aaa") != cell_key(cell, fingerprint="bbb")

    def test_default_fingerprint_is_current_code(self):
        cell = tiny_cell()
        assert cell_key(cell) == cell_key(cell, fingerprint=code_fingerprint())


class TestCache:
    def test_cold_then_warm_roundtrip(self, tmp_path):
        cell = tiny_cell()
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        cold = runner.run_one(cell)
        assert not cold.cached
        warm = SweepRunner(jobs=1, cache_dir=tmp_path).run_one(cell)
        assert warm.cached
        assert warm.summary == cold.summary
        assert warm.wall_s == cold.wall_s  # timings replay from the cache too
        assert warm.events_processed == cold.events_processed

    def test_miss_on_empty_cache(self, tmp_path):
        assert SweepCache(tmp_path).get(cell_key(tiny_cell())) is None

    def test_poisoned_fingerprint_ignored(self, tmp_path):
        cell = tiny_cell()
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        result = runner.run_one(cell)
        key = cell_key(cell)
        cache = SweepCache(tmp_path)
        poison = {
            "fingerprint": "not-the-current-code",
            "version": CELL_FORMAT_VERSION,
            "result": result,
        }
        path = tmp_path / key[:2] / f"{key}.pkl"
        path.write_bytes(pickle.dumps(poison))
        assert cache.get(key) is None
        # and the runner transparently re-runs instead of serving poison
        rerun = SweepRunner(jobs=1, cache_dir=tmp_path)
        fresh = rerun.run_one(cell)
        assert not fresh.cached
        assert fresh.summary == result.summary

    def test_version_mismatch_ignored(self, tmp_path):
        cell = tiny_cell()
        SweepRunner(jobs=1, cache_dir=tmp_path).run_one(cell)
        key = cell_key(cell)
        path = tmp_path / key[:2] / f"{key}.pkl"
        envelope = pickle.loads(path.read_bytes())
        envelope["version"] = CELL_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(envelope))
        assert SweepCache(tmp_path).get(key) is None

    def test_corrupt_bytes_are_a_miss(self, tmp_path):
        cell = tiny_cell()
        SweepRunner(jobs=1, cache_dir=tmp_path).run_one(cell)
        key = cell_key(cell)
        (tmp_path / key[:2] / f"{key}.pkl").write_bytes(b"\x00garbage")
        assert SweepCache(tmp_path).get(key) is None

    def test_prune_drops_stale_keeps_current(self, tmp_path):
        cell = tiny_cell()
        SweepRunner(jobs=1, cache_dir=tmp_path).run_one(cell)
        cache = SweepCache(tmp_path)
        stale = tmp_path / "zz" / "zz0000.pkl"
        stale.parent.mkdir(parents=True)
        stale.write_bytes(b"\x00junk")
        assert cache.prune() == 1
        assert not stale.exists()
        assert cache.get(cell_key(cell)) is not None

    def test_prune_all(self, tmp_path):
        SweepRunner(jobs=1, cache_dir=tmp_path).run_one(tiny_cell())
        cache = SweepCache(tmp_path)
        count = len(cache.entries())  # cell result + cached trace rows
        assert count >= 2
        assert cache.prune(all_entries=True) == count
        assert cache.entries() == []


class TestRunner:
    def test_trace_memo_synthesizes_once(self):
        runner = SweepRunner(jobs=1, no_cache=True)
        cells = {
            "fifo": tiny_cell(scheduler="fifo"),
            "sjf": tiny_cell(scheduler="sjf"),
        }
        runner.run_cells(cells)
        assert runner.stats.traces_synthesized == 1
        assert runner.stats.trace_memo_hits == 1

    def test_results_preserve_input_order(self):
        runner = SweepRunner(jobs=1, no_cache=True)
        cells = {
            "z-last": tiny_cell(scheduler="sjf"),
            "a-first": tiny_cell(scheduler="fifo"),
        }
        results = runner.run_cells(cells)
        assert list(results) == ["z-last", "a-first"]

    def test_cache_hits_skip_execution(self, tmp_path):
        cell = tiny_cell()
        SweepRunner(jobs=1, cache_dir=tmp_path).run_one(cell)
        warm = SweepRunner(jobs=1, cache_dir=tmp_path)
        warm.run_one(cell)
        assert warm.stats.cache_hits == 1
        assert warm.stats.cache_misses == 0
        assert warm.stats.traces_synthesized == 0

    def test_failures_batch_into_one_sweep_error(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        cells = {
            "good": tiny_cell(),
            "bad": tiny_cell(scheduler="no-such-scheduler"),
        }
        with pytest.raises(SweepError, match="no-such-scheduler"):
            runner.run_cells(cells)
        # the succeeded sibling was still cached before the raise
        warm = SweepRunner(jobs=1, cache_dir=tmp_path).run_one(cells["good"])
        assert warm.cached

    def test_parallel_matches_serial(self):
        cells = {
            "fifo": tiny_cell(scheduler="fifo"),
            "sjf": tiny_cell(scheduler="sjf"),
            "srtf": tiny_cell(scheduler="srtf"),
        }
        serial = SweepRunner(jobs=1, no_cache=True).run_cells(cells)
        pooled_runner = SweepRunner(jobs=2, no_cache=True)
        try:
            pooled = pooled_runner.run_cells(cells)
        finally:
            pooled_runner.close()
        assert list(pooled) == list(serial)
        for name in cells:
            assert pooled[name].summary == serial[name].summary
            assert pooled[name].events_processed == serial[name].events_processed
            # perf counters are deterministic except the wall-clock one
            drop = "sched_pass_wall_s"
            pooled_perf = {k: v for k, v in pooled[name].perf.items() if k != drop}
            serial_perf = {k: v for k, v in serial[name].perf.items() if k != drop}
            assert pooled_perf == serial_perf

    def test_execution_context_installs_and_restores(self):
        from repro import sweep

        default = sweep.active_runner()
        with sweep.execution(jobs=1, no_cache=True) as runner:
            assert sweep.active_runner() is runner
            result = sweep.run_one(tiny_cell())
            assert result.summary["completed"] > 0
            assert runner.stats.cells == 1
        assert sweep.active_runner() is default


class TestTraceSharing:
    def test_frozen_rows_roundtrip(self):
        trace = build_trace(tiny_tspec())
        copy = Trace.from_rows(
            trace.frozen_rows(), name=trace.name, metadata=dict(trace.metadata)
        )
        assert len(copy.jobs) == len(trace.jobs)
        for original, clone in zip(trace.jobs, copy.jobs):
            assert clone.job_id == original.job_id
            assert clone.submit_time == original.submit_time
            assert clone.duration == original.duration
            assert clone.request.num_gpus == original.request.num_gpus
            assert clone is not original

    def test_frozen_rows_snapshot_is_stable(self):
        trace = build_trace(tiny_tspec())
        assert trace.frozen_rows() is trace.frozen_rows()

    def test_fresh_trace_copy_isolates_state(self):
        from repro.experiments.common import fresh_trace_copy

        trace = build_trace(tiny_tspec())
        copy = fresh_trace_copy(trace)
        copy.jobs[0].remaining_work = 0.0
        assert trace.jobs[0].remaining_work != 0.0


class TestFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_is_hex_sha256(self):
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)
