"""Tests for the learned duration predictor and prediction-driven SJF."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.execlayer import UnitExecutionModel
from repro.sched import DurationPredictor, PredictedSjfScheduler, make_scheduler
from repro.sched.predictor import _width_class
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Trace
from tests.conftest import make_job


class TestWidthClass:
    @pytest.mark.parametrize(
        "gpus,cls", [(1, 1), (2, 2), (4, 2), (5, 3), (8, 3), (9, 4), (64, 4)]
    )
    def test_buckets(self, gpus, cls):
        assert _width_class(gpus) == cls


class TestDurationPredictor:
    def test_falls_back_to_estimate_without_history(self):
        predictor = DurationPredictor()
        job = make_job("a", duration=100.0, walltime_estimate=500.0)
        assert predictor.predict(job) == 500.0
        assert predictor.confidence(job) == "estimate"

    def test_learns_user_class_history(self):
        predictor = DurationPredictor(min_history=3, inflation=1.0, quantile=0.5)
        for index in range(5):
            job = make_job(f"j{index}", duration=100.0, user="alice")
            predictor.observe(job, 600.0)
        new_job = make_job("new", duration=100.0, user="alice", walltime_estimate=9e9)
        assert predictor.predict(new_job) == pytest.approx(600.0)
        assert predictor.confidence(new_job) == "user-class"

    def test_user_fallback_across_width_classes(self):
        predictor = DurationPredictor(min_history=3, inflation=1.0, quantile=0.5)
        for index in range(4):
            predictor.observe(make_job(f"j{index}", num_gpus=1, user="bob"), 300.0)
        wide = make_job("wide", num_gpus=8, user="bob", walltime_estimate=9e9)
        assert predictor.confidence(wide) == "user"
        assert predictor.predict(wide) == pytest.approx(300.0)

    def test_global_fallback_for_new_users(self):
        predictor = DurationPredictor(min_history=2, inflation=1.0, quantile=0.5)
        for index in range(20):
            predictor.observe(make_job(f"j{index}", user=f"u{index}"), 900.0)
        stranger = make_job("s", user="stranger", walltime_estimate=9e9)
        assert predictor.confidence(stranger) == "global"
        assert predictor.predict(stranger) == pytest.approx(900.0)

    def test_inflation_applied(self):
        predictor = DurationPredictor(min_history=1, inflation=2.0, quantile=0.5)
        predictor.observe(make_job("a", user="u"), 100.0)
        predictor.observe(make_job("b", user="u"), 100.0)
        assert predictor.predict(make_job("c", user="u")) == pytest.approx(200.0)

    def test_window_rolls_old_history_off(self):
        predictor = DurationPredictor(window=4, min_history=1, inflation=1.0, quantile=0.5)
        for _ in range(10):
            predictor.observe(make_job("x", user="u"), 1000.0)
        for _ in range(4):
            predictor.observe(make_job("x", user="u"), 10.0)
        assert predictor.predict(make_job("y", user="u")) == pytest.approx(10.0)

    def test_nonpositive_runtime_ignored(self):
        predictor = DurationPredictor()
        predictor.observe(make_job("a"), 0.0)
        assert predictor.observations == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DurationPredictor(quantile=1.0)
        with pytest.raises(ValueError):
            DurationPredictor(inflation=0.9)


class TestPredictedSjf:
    def test_learns_online_during_simulation(self):
        # alice always runs 60 s despite claiming 10 h; bob runs 5 h.
        # After warmup, alice's next job should overtake bob's queued job.
        scheduler = PredictedSjfScheduler(
            predictor=DurationPredictor(min_history=2, quantile=0.5, inflation=1.0)
        )
        jobs = []
        for index in range(3):  # warmup: alice's short jobs, serialized
            jobs.append(
                make_job(
                    f"warm{index}",
                    num_gpus=8,
                    duration=60.0,
                    submit_time=index * 100.0,
                    user="alice",
                    walltime_estimate=36_000.0,
                )
            )
        jobs.append(
            make_job(
                "blocker", num_gpus=8, duration=5000.0, submit_time=400.0, user="carol"
            )
        )
        jobs.append(
            make_job(
                "bob1",
                num_gpus=8,
                duration=18_000.0,
                submit_time=500.0,
                user="bob",
                walltime_estimate=18_000.0,
            )
        )
        jobs.append(
            make_job(
                "alice-final",
                num_gpus=8,
                duration=60.0,
                submit_time=600.0,
                user="alice",
                walltime_estimate=36_000.0,  # estimate says LONGER than bob's
            )
        )
        cluster = uniform_cluster(1, gpus_per_node=8)
        ClusterSimulator(
            cluster,
            scheduler,
            Trace(jobs),
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        ).run()
        by_id = {job.job_id: job for job in jobs}
        # With estimates alone bob1 would start first; the learned history
        # says alice's jobs are tiny.
        assert by_id["alice-final"].first_start_time < by_id["bob1"].first_start_time

    def test_registered_in_zoo(self):
        assert make_scheduler("sjf-predicted").name == "sjf-predicted"

    def test_completes_workload(self):
        jobs = [
            make_job(f"j{i}", num_gpus=2, duration=100.0, submit_time=float(i), user=f"u{i % 2}")
            for i in range(8)
        ]
        cluster = uniform_cluster(1, gpus_per_node=8)
        result = ClusterSimulator(
            cluster,
            PredictedSjfScheduler(),
            Trace(jobs),
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        ).run()
        assert result.metrics.jobs_completed == 8
