"""Tests for wall-time enforcement and preemption limits."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.execlayer import UnitExecutionModel
from repro.sched import GangScheduler, GreedyFifoScheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import FailureCategory, JobState, Trace
from tests.conftest import make_job


def run_jobs(jobs, scheduler=None, **config_kwargs):
    cluster = uniform_cluster(1, gpus_per_node=8)
    config_kwargs.setdefault("sample_interval_s", 0.0)
    config_kwargs.setdefault("checkpoint_loss_s", 0.0)
    simulator = ClusterSimulator(
        cluster,
        scheduler or GreedyFifoScheduler(),
        Trace(list(jobs)),
        exec_model=UnitExecutionModel(),
        config=SimConfig(**config_kwargs),
    )
    return simulator.run()


class TestWalltimeEnforcement:
    def test_overrunning_job_killed_at_limit(self):
        job = make_job("a", duration=5000.0, walltime_estimate=1000.0)
        result = run_jobs([job], enforce_walltime=True)
        assert job.state is JobState.KILLED
        assert job.end_time == pytest.approx(1000.0)
        assert result.metrics.walltime_kills == 1

    def test_job_within_limit_unaffected(self):
        job = make_job("a", duration=500.0, walltime_estimate=1000.0)
        result = run_jobs([job], enforce_walltime=True)
        assert job.state is JobState.COMPLETED
        assert result.metrics.walltime_kills == 0

    def test_limit_is_cumulative_across_attempts(self):
        # Gang slicing: two jobs share the node in 600 s quanta.  Job a's
        # limit is 1500 s of *running* time; after ~3 slices it dies even
        # though its queue time pushed wall-clock far beyond 1500 s.
        jobs = [
            make_job("a", num_gpus=8, duration=5000.0, walltime_estimate=1500.0,
                     preemptible=True, submit_time=0.0),
            make_job("b", num_gpus=8, duration=5000.0, walltime_estimate=1e9,
                     preemptible=True, submit_time=1.0),
        ]
        result = run_jobs(
            jobs, scheduler=GangScheduler(quantum_s=600.0), enforce_walltime=True
        )
        assert jobs[0].state is JobState.KILLED
        run_wall = jobs[0].gpu_seconds_used / 8
        assert run_wall == pytest.approx(1500.0, abs=1.0)
        assert jobs[0].end_time > 1500.0  # wall clock includes queued slices

    def test_disabled_by_default(self):
        job = make_job("a", duration=5000.0, walltime_estimate=1000.0)
        run_jobs([job])
        assert job.state is JobState.COMPLETED


class TestPreemptionLimit:
    def test_job_fails_after_limit(self):
        jobs = [
            make_job("victim", num_gpus=8, duration=50_000.0, preemptible=True,
                     submit_time=0.0),
            make_job("other", num_gpus=8, duration=50_000.0, preemptible=True,
                     submit_time=1.0),
        ]
        result = run_jobs(
            jobs,
            scheduler=GangScheduler(quantum_s=600.0),
            max_job_preemptions=2,
        )
        failed = [j for j in jobs if j.state is JobState.FAILED]
        assert failed
        assert all(j.failure_category is FailureCategory.PREEMPTION_LIMIT for j in failed)
        assert result.metrics.failure_taxonomy["preemption_limit"] == len(failed)

    def test_unlimited_by_default(self):
        jobs = [
            make_job("a", num_gpus=8, duration=20_000.0, preemptible=True, submit_time=0.0),
            make_job("b", num_gpus=8, duration=20_000.0, preemptible=True, submit_time=1.0),
        ]
        result = run_jobs(jobs, scheduler=GangScheduler(quantum_s=600.0))
        assert result.metrics.preemptions > 3
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_fail_from_queued_state_allowed(self):
        job = make_job("a")
        job.fail(5.0, FailureCategory.PREEMPTION_LIMIT)
        assert job.state is JobState.FAILED
        assert job.end_time == 5.0

    def test_fail_from_terminal_still_rejected(self):
        from repro.errors import JobStateError

        job = make_job("a")
        job.kill(1.0)
        with pytest.raises(JobStateError):
            job.fail(2.0, FailureCategory.OOM)
