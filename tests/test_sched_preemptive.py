"""Tests for the preemptive policies: gang time-slicing, Tiresias LAS,
and the tiered-quota scheduler."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import QuotaError
from repro.sched import GangScheduler, QuotaConfig, TieredQuotaScheduler, TiresiasScheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobState, JobTier, Trace
from tests.conftest import make_job


def run_trace(scheduler, jobs, num_nodes=1, until=None):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        Trace(list(jobs)),
        config=SimConfig(sample_interval_s=0.0, verify_every=25, checkpoint_loss_s=0.0),
    )
    return simulator.run(until=until), cluster


class TestGangScheduler:
    def test_time_slices_under_contention(self):
        jobs = [
            make_job("a", num_gpus=8, duration=3600.0, submit_time=0.0, preemptible=True),
            make_job("b", num_gpus=8, duration=3600.0, submit_time=10.0, preemptible=True),
        ]
        result, _ = run_trace(GangScheduler(quantum_s=600.0), jobs)
        # Both complete, and b got a slice long before a finished.
        assert all(job.state is JobState.COMPLETED for job in jobs)
        assert result.metrics.preemptions >= 2
        assert jobs[1].first_start_time < 3600.0

    def test_no_rotation_when_no_queue(self):
        jobs = [make_job("a", num_gpus=8, duration=3000.0, preemptible=True)]
        result, _ = run_trace(GangScheduler(quantum_s=600.0), jobs)
        assert result.metrics.preemptions == 0
        assert jobs[0].attempts == 1

    def test_non_preemptible_jobs_never_sliced(self):
        jobs = [
            make_job("a", num_gpus=8, duration=3600.0, submit_time=0.0, preemptible=False),
            make_job("b", num_gpus=8, duration=100.0, submit_time=10.0, preemptible=True),
        ]
        result, _ = run_trace(GangScheduler(quantum_s=600.0), jobs)
        assert jobs[0].preemptions == 0
        assert jobs[1].first_start_time == pytest.approx(3600.0)

    def test_round_robin_rotation_order(self):
        jobs = [
            make_job(name, num_gpus=8, duration=2000.0, submit_time=i * 1.0, preemptible=True)
            for i, name in enumerate(("a", "b", "c"))
        ]
        run_trace(GangScheduler(quantum_s=500.0), jobs)
        assert all(job.state is JobState.COMPLETED for job in jobs)
        # Everyone ran well before the 6000s a serial schedule would need
        # for the last job's first slice.
        assert max(job.first_start_time for job in jobs) <= 1500.0


class TestTiresias:
    def test_short_job_preempts_service_hog(self):
        scheduler = TiresiasScheduler(queue_threshold_gpu_s=3600.0, tick_s=300.0)
        jobs = [
            # Hog: demoted after 3600/8 = 450s of 8-GPU running.
            make_job("hog", num_gpus=8, duration=20_000.0, submit_time=0.0, preemptible=True),
            make_job("short", num_gpus=8, duration=600.0, submit_time=1000.0, preemptible=True),
        ]
        run_trace(scheduler, jobs)
        assert jobs[0].preemptions >= 1
        # The short job got in long before the hog finished.
        assert jobs[1].first_start_time < 2500.0
        assert all(job.state is JobState.COMPLETED for job in jobs)

    def test_high_queue_job_not_preempted_by_equal(self):
        scheduler = TiresiasScheduler(queue_threshold_gpu_s=1e9)
        jobs = [
            make_job("a", num_gpus=8, duration=1000.0, submit_time=0.0, preemptible=True),
            make_job("b", num_gpus=8, duration=1000.0, submit_time=10.0, preemptible=True),
        ]
        run_trace(scheduler, jobs)
        # Both stay in queue 0 (huge threshold): no preemption, plain FIFO.
        assert jobs[0].preemptions == 0
        assert jobs[1].first_start_time == pytest.approx(1000.0)

    def test_attained_service_accounting(self):
        scheduler = TiresiasScheduler(queue_threshold_gpu_s=100.0)
        job = make_job("a", num_gpus=2, duration=1000.0)
        assert scheduler.attained_service(job, now=0.0) == 0.0
        job.start(0.0, ("n",))
        assert scheduler.attained_service(job, now=30.0) == pytest.approx(60.0)
        assert scheduler.queue_index_running(job, now=30.0) == 0
        assert scheduler.queue_index_running(job, now=60.0) == 1

    def test_starvation_promotion(self):
        scheduler = TiresiasScheduler(
            queue_threshold_gpu_s=10.0, starvation_timeout_s=100.0
        )
        job = make_job("a", num_gpus=1, duration=1000.0)
        job.gpu_seconds_used = 50.0  # past threshold → queue 1
        scheduler.enqueue(job, now=0.0)
        assert scheduler.queue_index(job, now=50.0) == 1
        assert scheduler.queue_index(job, now=150.0) == 0  # promoted


class TestQuotaConfig:
    def test_equal_shares(self):
        config = QuotaConfig.equal_shares(["lab-a", "lab-b"], total_gpus=100, fraction=0.5)
        assert config.quotas == {"lab-a": 25, "lab-b": 25}

    def test_validation(self):
        with pytest.raises(QuotaError):
            QuotaConfig(quotas={"lab": -1})
        with pytest.raises(QuotaError):
            QuotaConfig.equal_shares([], 100)
        with pytest.raises(QuotaError):
            QuotaConfig.equal_shares(["a"], 100, fraction=0.0)


class TestTieredQuota:
    def quota(self, gpus=8):
        return QuotaConfig(quotas={"lab-paid": gpus})

    def test_entitled_job_preempts_opportunistic(self):
        scheduler = TieredQuotaScheduler(self.quota())
        jobs = [
            make_job(
                "free",
                num_gpus=8,
                duration=10_000.0,
                submit_time=0.0,
                lab="lab-free",
                tier=JobTier.OPPORTUNISTIC,
            ),
            make_job(
                "paid",
                num_gpus=8,
                duration=100.0,
                submit_time=500.0,
                lab="lab-paid",
                tier=JobTier.GUARANTEED,
            ),
        ]
        result, _ = run_trace(scheduler, jobs)
        assert jobs[1].first_start_time == pytest.approx(500.0)
        assert jobs[0].preemptions == 1
        assert all(job.state is JobState.COMPLETED for job in jobs)

    def test_guaranteed_never_preempted_within_quota(self):
        scheduler = TieredQuotaScheduler(self.quota())
        jobs = [
            make_job(
                "paid1",
                num_gpus=8,
                duration=5000.0,
                submit_time=0.0,
                lab="lab-paid",
                tier=JobTier.GUARANTEED,
            ),
            make_job(
                "paid2",
                num_gpus=8,
                duration=100.0,
                submit_time=10.0,
                lab="lab-paid",
                tier=JobTier.GUARANTEED,
            ),
        ]
        run_trace(scheduler, jobs)
        assert jobs[0].preemptions == 0
        # paid2 is over quota while paid1 runs; it borrows only if capacity
        # is idle — here there is none, so it waits.
        assert jobs[1].first_start_time == pytest.approx(5000.0)

    def test_over_quota_job_borrows_idle_capacity(self):
        scheduler = TieredQuotaScheduler(self.quota(gpus=8))
        jobs = [
            make_job(
                "paid1", num_gpus=8, duration=5000.0, submit_time=0.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
            make_job(
                "paid2", num_gpus=8, duration=100.0, submit_time=10.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
        ]
        run_trace(scheduler, jobs, num_nodes=2)  # second node idle
        assert jobs[1].first_start_time == pytest.approx(10.0)

    def test_borrower_evicted_when_owner_claims(self):
        config = QuotaConfig(quotas={"lab-paid": 8, "lab-owner": 8})
        scheduler = TieredQuotaScheduler(config)
        jobs = [
            make_job(
                "paid1", num_gpus=8, duration=50_000.0, submit_time=0.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
            # Borrower: lab-paid beyond quota, runs on lab-owner's idle node.
            make_job(
                "borrower", num_gpus=8, duration=50_000.0, submit_time=10.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
            make_job(
                "owner", num_gpus=8, duration=100.0, submit_time=500.0,
                lab="lab-owner", tier=JobTier.GUARANTEED,
            ),
        ]
        result, _ = run_trace(scheduler, jobs, num_nodes=2, until=2000.0)
        assert jobs[1].first_start_time == pytest.approx(10.0)
        assert jobs[2].first_start_time == pytest.approx(500.0)
        assert jobs[1].preemptions == 1  # borrower yielded to the owner

    def test_no_borrowing_when_disabled(self):
        config = QuotaConfig(quotas={"lab-paid": 8}, allow_borrowing=False)
        scheduler = TieredQuotaScheduler(config)
        jobs = [
            make_job(
                "paid1", num_gpus=8, duration=1000.0, submit_time=0.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
            make_job(
                "paid2", num_gpus=8, duration=100.0, submit_time=10.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
        ]
        run_trace(scheduler, jobs, num_nodes=2)
        assert jobs[1].first_start_time == pytest.approx(1000.0)

    def test_reclaim_does_not_churn_when_hopeless(self):
        # The entitled job needs 8 GPUs but only 4 are evictable (the other
        # 4 are held by an entitled job of lab-x): no preemption at all.
        config = QuotaConfig(quotas={"lab-paid": 8, "lab-x": 4})
        scheduler = TieredQuotaScheduler(config)
        jobs = [
            make_job(
                "free", num_gpus=4, duration=10_000.0, submit_time=0.0,
                lab="lab-free", tier=JobTier.OPPORTUNISTIC,
            ),
            make_job(
                "pinned", num_gpus=4, duration=10_000.0, submit_time=0.0,
                lab="lab-x", tier=JobTier.GUARANTEED, preemptible=False,
            ),
            make_job(
                "paid", num_gpus=8, duration=100.0, submit_time=10.0,
                lab="lab-paid", tier=JobTier.GUARANTEED,
            ),
        ]
        result, _ = run_trace(scheduler, jobs, until=5000.0)
        assert result.metrics.preemptions == 0
        assert jobs[2].first_start_time is None

    def test_opportunistic_fifo_among_free_tier(self):
        scheduler = TieredQuotaScheduler(self.quota())
        jobs = [
            make_job(
                f"free{i}", num_gpus=8, duration=100.0, submit_time=float(i),
                lab="lab-free", tier=JobTier.OPPORTUNISTIC,
            )
            for i in range(3)
        ]
        run_trace(scheduler, jobs)
        starts = [job.first_start_time for job in jobs]
        assert starts == sorted(starts)


class TestVictimEligibility:
    def test_tiresias_ignores_wrong_type_victims(self, hetero_cluster):
        """A q0 job pinned to A100s must not evict RTX runs it can't use."""
        from repro.sched.base import ScheduleContext

        scheduler = TiresiasScheduler(queue_threshold_gpu_s=1.0)
        victim = make_job(
            "rtx-hog", num_gpus=4, duration=10_000.0, preemptible=True, gpu_type="rtx3090"
        )
        victim.gpu_seconds_used = 1e6  # demoted to queue 1
        hetero_cluster.allocate("rtx-hog", {"rtx3090-000": 4})
        victim.start(0.0, ("rtx3090-000",))
        # Fill the A100 nodes with non-preemptible work.
        blocker_a = make_job("block-a", num_gpus=8, duration=10_000.0, gpu_type="a100-80")
        blocker_b = make_job("block-b", num_gpus=8, duration=10_000.0, gpu_type="a100-80")
        hetero_cluster.allocate("block-a", {"a100-80-000": 8})
        hetero_cluster.allocate("block-b", {"a100-80-001": 8})
        blocker_a.start(0.0, ("a100-80-000",))
        blocker_b.start(0.0, ("a100-80-001",))
        waiting = make_job("wants-a100", num_gpus=8, duration=100.0, gpu_type="a100-80")
        scheduler.enqueue(waiting, 0.0)
        preempted = []
        ctx = ScheduleContext(
            now=100.0,
            cluster=hetero_cluster,
            running={"rtx-hog": victim, "block-a": blocker_a, "block-b": blocker_b},
            start_job=lambda *a: pytest.fail("cannot start"),
            preempt_job=lambda job: preempted.append(job.job_id),
        )
        scheduler.schedule(ctx)
        assert preempted == []  # the RTX victim frees nothing usable
