"""Workflow DAGs end-to-end: schema, compiler, synthesis, placement, sim.

Covers the layers the workflow tentpole threads together:

* :class:`~repro.schema.workflow.WorkflowSpec` — construction-time
  validation (duplicates, dangling references, cycles), topological order,
  critical-path bound, fingerprints, and the ``task.yaml``-subset parser;
* property tests: every random DAG topologically sorts consistently with
  its edges, and every cycle is rejected;
* :class:`~repro.compiler.workflow.WorkflowCompiler` — per-stage
  instructions in dependency order plus artifact placement hints;
* :mod:`~repro.workload.pipelines` — the pipeline trace synthesizer;
* :mod:`~repro.execlayer.transfer` — fabric-priced artifact movement;
* :class:`~repro.sched.placement.transfer_aware.TransferAwarePlacement`;
* the simulator's dependency-aware lifecycle: hold/release, upstream
  failure cascade, transfer charging, and the makespan ≥ critical-path
  invariant under the unit execution model.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.controlplane import Cause, LifecycleState
from repro.errors import (
    CompileError,
    ConfigError,
    SchemaError,
    SimulationError,
)
from repro.execlayer import (
    UnitExecutionModel,
    artifact_fetch_seconds,
    transfer_seconds,
)
from repro.schema import (
    ArtifactSpec,
    StageSpec,
    TaskSpec,
    WorkflowSpec,
    ensure_valid_workflow,
    parse_workflow_text,
    validate_spec,
    validate_workflow,
    workflow_from_dict,
)
from repro.compiler import WorkflowCompiler, placement_hint
from repro.sched import make_scheduler
from repro.sched.placement import make_placement
from repro.sched.placement.transfer_aware import TransferAwarePlacement
from repro.sim import ClusterSimulator, SimConfig
from repro.sim.metrics import workflow_rollup
from repro.workload import (
    FailureCategory,
    FailurePlan,
    JobState,
    PipelineSynthesizer,
    PipelineTraceConfig,
    Trace,
    pipeline_trace,
)
from tests.conftest import make_job


def _task(name: str) -> TaskSpec:
    return TaskSpec(name=name, entrypoint="python run.py")


def _wf(edges: dict[str, tuple[str, ...]], name: str = "wf") -> WorkflowSpec:
    return WorkflowSpec(
        name=name,
        stages=tuple(
            StageSpec(task=_task(stage), depends_on=deps)
            for stage, deps in edges.items()
        ),
    )


# --------------------------------------------------------------------------
# Schema layer
# --------------------------------------------------------------------------


class TestWorkflowSpec:
    def test_chain_topological_order(self):
        wf = _wf({"a": (), "b": ("a",), "c": ("b",)})
        assert wf.topological_order() == ("a", "b", "c")

    def test_declaration_order_tiebreak(self):
        wf = _wf({"z": (), "a": (), "m": ("z", "a")})
        assert wf.topological_order() == ("z", "a", "m")

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate stage names"):
            WorkflowSpec(
                name="wf",
                stages=(StageSpec(task=_task("a")), StageSpec(task=_task("a"))),
            )

    def test_dangling_dependency_rejected(self):
        with pytest.raises(SchemaError, match="unknown stage"):
            _wf({"a": ("ghost",)})

    def test_self_dependency_rejected(self):
        with pytest.raises(SchemaError, match="depends on itself"):
            StageSpec(task=_task("a"), depends_on=("a",))

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError, match="cycle"):
            _wf({"a": ("b",), "b": ("a",)})

    def test_empty_workflow_rejected(self):
        with pytest.raises(SchemaError, match="no stages"):
            WorkflowSpec(name="wf", stages=())

    def test_artifact_edges_become_dependencies(self):
        wf = WorkflowSpec(
            name="wf",
            stages=(
                StageSpec(task=_task("produce")),
                StageSpec(task=_task("consume"), consumes=("data",)),
            ),
            artifacts=(ArtifactSpec(name="data", producer="produce", size_bytes=10),),
        )
        assert wf.dependencies_of("consume") == ("produce",)
        assert wf.inbound_bytes("consume") == 10
        assert wf.outbound_bytes("produce") == 10

    def test_undeclared_artifact_rejected(self):
        with pytest.raises(SchemaError, match="undeclared artifact"):
            WorkflowSpec(
                name="wf",
                stages=(StageSpec(task=_task("a"), consumes=("ghost",)),),
            )

    def test_consuming_own_artifact_rejected(self):
        with pytest.raises(SchemaError, match="its own artifact"):
            WorkflowSpec(
                name="wf",
                stages=(StageSpec(task=_task("a"), consumes=("data",)),),
                artifacts=(ArtifactSpec(name="data", producer="a", size_bytes=1),),
            )

    def test_artifact_cycle_rejected(self):
        # a --data--> b --back--> a is a cycle even with no depends_on.
        with pytest.raises(SchemaError, match="cycle"):
            WorkflowSpec(
                name="wf",
                stages=(
                    StageSpec(task=_task("a"), consumes=("back",)),
                    StageSpec(task=_task("b"), consumes=("data",)),
                ),
                artifacts=(
                    ArtifactSpec(name="data", producer="a", size_bytes=1),
                    ArtifactSpec(name="back", producer="b", size_bytes=1),
                ),
            )

    def test_critical_path_is_longest_chain(self):
        wf = _wf({"a": (), "b": (), "long": ("a",), "join": ("long", "b")})
        durations = {"a": 10.0, "b": 5.0, "long": 100.0, "join": 1.0}
        assert wf.critical_path_seconds(durations.__getitem__) == 111.0

    def test_fingerprint_stable_and_content_sensitive(self):
        wf1 = _wf({"a": (), "b": ("a",)})
        wf2 = _wf({"a": (), "b": ("a",)})
        wf3 = _wf({"a": (), "b": ()})
        assert wf1.fingerprint() == wf2.fingerprint()
        assert wf1.fingerprint() != wf3.fingerprint()


class TestWorkflowParser:
    YAML = """
workflow: nightly-rag
stages:
  - name: ingest
    entrypoint: python ingest.py
  - name: embed
    entrypoint: python embed.py
    consumes:
      - corpus
  - name: evaluate
    entrypoint: python eval.py
    depends_on:
      - embed
artifacts:
  - name: corpus
    producer: ingest
    size_bytes: 1073741824
"""

    def test_parse_yaml_subset(self):
        wf = parse_workflow_text(self.YAML)
        assert wf.name == "nightly-rag"
        assert wf.topological_order() == ("ingest", "embed", "evaluate")
        assert wf.dependencies_of("embed") == ("ingest",)
        assert wf.inbound_bytes("embed") == 1 << 30

    def test_parse_json(self):
        import json

        wf = parse_workflow_text(
            json.dumps(
                {
                    "workflow": "w",
                    "stages": [
                        {"name": "a", "entrypoint": "run"},
                        {"name": "b", "entrypoint": "run", "depends_on": ["a"]},
                    ],
                }
            )
        )
        assert wf.topological_order() == ("a", "b")

    def test_missing_name_rejected(self):
        with pytest.raises(SchemaError, match="workflow"):
            workflow_from_dict({"stages": [{"name": "a", "entrypoint": "run"}]})

    def test_empty_stages_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            workflow_from_dict({"workflow": "w", "stages": []})

    def test_unknown_stage_key_rejected(self):
        with pytest.raises(SchemaError):
            workflow_from_dict(
                {
                    "workflow": "w",
                    "stages": [{"name": "a", "entrypoint": "run", "bogus": 1}],
                }
            )


class TestWorkflowValidation:
    def test_valid_workflow_no_issues(self):
        assert validate_workflow(_wf({"a": (), "b": ("a",)})) == []

    def test_duplicate_file_paths_reported(self):
        # The TaskSpec constructor rejects duplicates; the validator must
        # catch them on specs arriving through other construction paths.
        from repro.schema import FileSpec

        spec = TaskSpec.__new__(TaskSpec)
        object.__setattr__(spec, "name", "t")
        object.__setattr__(spec, "entrypoint", "run")
        dup = FileSpec(path="train.py", size_bytes=1, sha256="0" * 64)
        object.__setattr__(spec, "code_files", (dup, dup))
        object.__setattr__(spec, "datasets", ())
        object.__setattr__(spec, "model", "")
        issues = validate_spec(spec)
        assert any(
            issue.severity == "error" and "duplicate file paths" in issue.message
            for issue in issues
        )

    def test_stage_issues_carry_stage_prefix(self):
        wf = WorkflowSpec(
            name="wf",
            stages=(
                StageSpec(
                    task=TaskSpec(name="s", entrypoint="run", model="not-a-model")
                ),
            ),
        )
        issues = validate_workflow(wf)
        assert issues and issues[0].field.startswith("stages[s].")
        with pytest.raises(SchemaError, match="failed validation"):
            ensure_valid_workflow(wf)


# --------------------------------------------------------------------------
# Property tests: toposort and cycle rejection (satellite 2)
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_dags_sort_consistently_with_their_edges(data):
    n = data.draw(st.integers(min_value=2, max_value=8))
    names = [f"s{i}" for i in range(n)]
    edges = {}
    for i, name in enumerate(names):
        upstream = data.draw(
            st.lists(st.sampled_from(names[:i]), unique=True, max_size=i)
            if i
            else st.just([])
        )
        edges[name] = tuple(upstream)
    wf = _wf(edges)
    order = wf.topological_order()
    assert sorted(order) == sorted(names)
    position = {name: index for index, name in enumerate(order)}
    for name, upstream in edges.items():
        for dep in upstream:
            assert position[dep] < position[name]


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=5),
)
def test_every_cycle_is_rejected(cycle_len, offset):
    names = [f"s{(i + offset) % cycle_len}" for i in range(cycle_len)]
    edges = {name: (names[(i + 1) % cycle_len],) for i, name in enumerate(names)}
    with pytest.raises(SchemaError, match="cycle"):
        _wf(edges)


# --------------------------------------------------------------------------
# Workflow compiler
# --------------------------------------------------------------------------


class TestWorkflowCompiler:
    def _workflow(self) -> WorkflowSpec:
        return WorkflowSpec(
            name="pipeline",
            stages=(
                StageSpec(task=_task("prep")),
                StageSpec(task=_task("train"), consumes=("dataset",)),
                StageSpec(
                    task=_task("eval"), depends_on=("train",), consumes=("dataset",)
                ),
            ),
            artifacts=(
                ArtifactSpec(name="dataset", producer="prep", size_bytes=2 << 30),
            ),
        )

    def test_stages_compile_in_topological_order(self):
        result = WorkflowCompiler().compile(self._workflow(), {})
        assert result.order == ("prep", "train", "eval")
        assert [s.stage for s in result.stages] == ["prep", "train", "eval"]
        assert result.stage_result("eval").depends_on == ("train", "prep")
        assert result.stage_result("train").fetch_bytes == 2 << 30
        assert result.fingerprint == self._workflow().fingerprint()

    def test_hints_cover_every_consumer_edge(self):
        result = WorkflowCompiler().compile(self._workflow(), {})
        assert {(h.producer, h.consumer) for h in result.hints} == {
            ("prep", "train"),
            ("prep", "eval"),
        }
        assert all(h.placement == "colocate" for h in result.hints)

    def test_placement_hint_thresholds(self):
        assert placement_hint(2 << 30) == "colocate"
        assert placement_hint(128 << 20) == "rack-local"
        assert placement_hint(1 << 20) == "any"

    def test_unknown_workspace_rejected(self):
        with pytest.raises(CompileError, match="unknown stages"):
            WorkflowCompiler().compile(self._workflow(), {"ghost": {}})

    def test_unknown_stage_lookup_raises(self):
        result = WorkflowCompiler().compile(self._workflow(), {})
        with pytest.raises(CompileError, match="no compiled stage"):
            result.stage_result("ghost")


# --------------------------------------------------------------------------
# Pipeline trace synthesis
# --------------------------------------------------------------------------


class TestPipelineSynthesizer:
    def test_deterministic_per_seed(self):
        a = pipeline_trace(days=0.5, workflows_per_day=20, seed=7)
        b = pipeline_trace(days=0.5, workflows_per_day=20, seed=7)
        assert a.frozen_rows() == b.frozen_rows()
        c = pipeline_trace(days=0.5, workflows_per_day=20, seed=8)
        assert a.frozen_rows() != c.frozen_rows()

    def test_dependencies_stay_inside_the_workflow(self):
        trace = pipeline_trace(days=1.0, workflows_per_day=30, seed=3)
        by_id = {job.job_id: job for job in trace}
        assert any(job.depends_on for job in trace)
        for job in trace:
            assert job.workflow_id is not None
            for upstream_id in job.depends_on:
                upstream = by_id[upstream_id]
                assert upstream.workflow_id == job.workflow_id
                assert upstream.submit_time == job.submit_time

    def test_artifacts_exactly_on_stages_with_dependents(self):
        trace = pipeline_trace(days=1.0, workflows_per_day=30, seed=3)
        consumed = {up for job in trace for up in job.depends_on}
        for job in trace:
            if job.job_id in consumed:
                assert job.artifact_bytes > 0, job.job_id
            else:
                assert job.artifact_bytes == 0.0, job.job_id

    def test_template_mix_validation(self):
        with pytest.raises(ConfigError, match="unknown workflow templates"):
            PipelineTraceConfig(template_mix={"mystery": 1.0})
        with pytest.raises(ConfigError, match="sum to 1"):
            PipelineTraceConfig(template_mix={"chain": 0.5})

    def test_single_template_shapes(self):
        for template, min_stages in (
            ("chain", 3),
            ("fan-out", 3),
            ("fan-in", 3),
            ("rag", 5),
        ):
            config = PipelineTraceConfig(
                days=1.0, workflows_per_day=10.0, template_mix={template: 1.0}
            )
            trace = PipelineSynthesizer(config, seed=1).generate()
            workflows: dict[str, int] = {}
            for job in trace:
                workflows[job.workflow_id] = workflows.get(job.workflow_id, 0) + 1
                assert job.name.startswith(f"{template}:")
            assert workflows
            assert all(count >= min_stages for count in workflows.values())


# --------------------------------------------------------------------------
# Transfer pricing
# --------------------------------------------------------------------------


class TestTransferPricing:
    def test_same_node_is_free_and_cross_node_priced(self):
        cluster = uniform_cluster(4, gpus_per_node=2)
        nodes = sorted(cluster.nodes)
        topo = cluster.topology
        assert transfer_seconds(10e9, (nodes[0],), (nodes[0],), topo) == 0.0
        cross = transfer_seconds(10e9, (nodes[0],), (nodes[3],), topo)
        assert cross == pytest.approx(10e9 * 8 / 1e9 / 100.0)
        # The artifact travels once over the widest pair: a same-node
        # destination anywhere in the set makes the whole fetch free.
        assert transfer_seconds(10e9, (nodes[0],), (nodes[3], nodes[0]), topo) == 0.0

    def test_zero_size_and_missing_endpoints_are_free(self):
        cluster = uniform_cluster(2, gpus_per_node=2)
        nodes = sorted(cluster.nodes)
        topo = cluster.topology
        assert transfer_seconds(0.0, (nodes[0],), (nodes[1],), topo) == 0.0
        assert transfer_seconds(10e9, (), (nodes[1],), topo) == 0.0

    def test_artifact_fetch_sums_per_upstream(self):
        cluster = uniform_cluster(4, gpus_per_node=2)
        nodes = sorted(cluster.nodes)
        up1 = make_job(job_id="u1", artifact_bytes=10e9)
        up1.last_nodes = (nodes[0],)
        up2 = make_job(job_id="u2", artifact_bytes=20e9)
        up2.last_nodes = (nodes[1],)
        control = make_job(job_id="u3")  # pure control edge, no artifact
        consumer = make_job(job_id="c", depends_on=("u1", "u2", "u3"))
        jobs = {j.job_id: j for j in (up1, up2, control, consumer)}
        total = artifact_fetch_seconds(consumer, (nodes[3],), jobs, cluster.topology)
        assert total == pytest.approx((10e9 + 20e9) * 8 / 1e9 / 100.0)


# --------------------------------------------------------------------------
# Transfer-aware placement
# --------------------------------------------------------------------------


class TestTransferAwarePlacement:
    def test_colocates_with_the_artifact(self):
        cluster = uniform_cluster(4, gpus_per_node=2)
        nodes = sorted(cluster.nodes)
        upstream = make_job(job_id="up", artifact_bytes=50e9)
        upstream.last_nodes = (nodes[2],)
        consumer = make_job(job_id="down", depends_on=("up",))
        policy = TransferAwarePlacement()
        policy.bind({j.job_id: j for j in (upstream, consumer)})
        placement = policy.place_job(cluster, consumer)
        assert placement == {nodes[2]: 1}

    def test_plain_jobs_match_best_fit(self):
        cluster = uniform_cluster(4, gpus_per_node=2)
        cluster.allocate("filler", {sorted(cluster.nodes)[1]: 1})
        job = make_job(job_id="plain")
        policy = TransferAwarePlacement()
        policy.bind({job.job_id: job})
        best_fit = make_placement("best-fit")
        assert policy.place_job(cluster, job) == best_fit.place(
            cluster, job.request
        )

    def test_defers_for_extreme_fetch_while_data_node_busy(self):
        cluster = uniform_cluster(2, gpus_per_node=2)
        nodes = sorted(cluster.nodes)
        # A titanic artifact sits on a full node: every available placement
        # pays > defer_threshold_s of transfer.
        upstream = make_job(job_id="up", artifact_bytes=50_000e9)
        upstream.last_nodes = (nodes[0],)
        cluster.allocate("occupant", {nodes[0]: 2})
        consumer = make_job(job_id="down", depends_on=("up",))
        policy = TransferAwarePlacement(defer_threshold_s=600.0, max_defers=2)
        policy.bind({j.job_id: j for j in (upstream, consumer)})
        assert policy.place_job(cluster, consumer) is None
        assert policy.place_job(cluster, consumer) is None
        # Patience exhausted: place anyway, eating the transfer.
        assert policy.place_job(cluster, consumer) == {nodes[1]: 1}

    def test_never_defers_when_data_nodes_idle(self):
        cluster = uniform_cluster(2, gpus_per_node=2)
        nodes = sorted(cluster.nodes)
        upstream = make_job(job_id="up", artifact_bytes=50_000e9)
        upstream.last_nodes = (nodes[0],)
        consumer = make_job(job_id="down", depends_on=("up",))
        policy = TransferAwarePlacement(defer_threshold_s=600.0, max_defers=2)
        policy.bind({j.job_id: j for j in (upstream, consumer)})
        # Data node idle: the fetch is huge but nothing is coming to free
        # capacity, so deferral would wait on an event that never fires.
        assert policy.place_job(cluster, consumer) == {nodes[0]: 1}


# --------------------------------------------------------------------------
# Simulator: dependency-aware lifecycle
# --------------------------------------------------------------------------


def _run(jobs, nodes=2, gpus_per_node=2, **config_kwargs):
    cluster = uniform_cluster(nodes, gpus_per_node=gpus_per_node)
    simulator = ClusterSimulator(
        cluster,
        make_scheduler("fifo"),
        Trace(jobs, name="t"),
        exec_model=UnitExecutionModel(),
        config=SimConfig(
            sample_interval_s=0.0, debug_invariants=1.0, **config_kwargs
        ),
    )
    return simulator, simulator.run()


class TestDependencyLifecycle:
    def test_downstream_waits_for_upstream(self):
        a = make_job(job_id="a", duration=100.0, workflow_id="w")
        b = make_job(
            job_id="b", duration=50.0, workflow_id="w", depends_on=("a",)
        )
        a.artifact_bytes = 1e9
        sim, result = _run([a, b])
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.COMPLETED
        assert b.deps_released_at == pytest.approx(a.end_time)
        assert b.first_start_time >= a.end_time
        timeline = sim.controller.log.for_job("b")
        assert any(t.target is LifecycleState.PENDING_DEPS for t in timeline)

    def test_ready_dependency_admits_immediately(self):
        a = make_job(job_id="a", duration=10.0, workflow_id="w")
        b = make_job(
            job_id="b",
            duration=10.0,
            submit_time=5000.0,
            workflow_id="w",
            depends_on=("a",),
        )
        sim, result = _run([a, b])
        assert b.deps_released_at is None  # never held: upstream already done
        assert b.first_start_time == pytest.approx(5000.0)

    def test_upstream_failure_cascades(self):
        a = make_job(
            job_id="a",
            duration=100.0,
            workflow_id="w",
            failure_plan=FailurePlan(FailureCategory.USER_ERROR, 0.5),
        )
        b = make_job(job_id="b", duration=50.0, workflow_id="w", depends_on=("a",))
        c = make_job(job_id="c", duration=50.0, workflow_id="w", depends_on=("b",))
        sim, result = _run([a, b, c])
        assert a.state is JobState.FAILED
        assert b.state is JobState.KILLED
        assert c.state is JobState.KILLED
        for held in ("b", "c"):
            final = sim.controller.log.for_job(held)[-1]
            assert final.cause is Cause.UPSTREAM_FAILED

    def test_unknown_dependency_rejected_at_construction(self):
        b = make_job(job_id="b", depends_on=("ghost",))
        with pytest.raises(SimulationError, match="unknown job"):
            ClusterSimulator(
                uniform_cluster(1),
                make_scheduler("fifo"),
                Trace([b], name="t"),
            )

    def test_fan_in_waits_for_all_upstreams(self):
        a = make_job(job_id="a", duration=100.0, workflow_id="w")
        b = make_job(job_id="b", duration=300.0, workflow_id="w")
        join = make_job(
            job_id="j", duration=10.0, workflow_id="w", depends_on=("a", "b")
        )
        sim, result = _run([a, b, join], nodes=2, gpus_per_node=2)
        assert join.deps_released_at == pytest.approx(
            max(a.end_time, b.end_time)
        )

    def test_workflow_metrics_and_critical_path_bound(self):
        trace = pipeline_trace(days=0.25, workflows_per_day=40, seed=5)
        cluster = uniform_cluster(6, gpus_per_node=8)
        simulator = ClusterSimulator(
            cluster,
            make_scheduler("backfill-easy"),
            trace,
            exec_model=UnitExecutionModel(),
            config=SimConfig(
                sample_interval_s=0.0, debug_invariants=1.0, verify_every=100
            ),
        )
        result = simulator.run()
        workflow = result.metrics.workflow
        assert workflow is not None
        assert workflow.completed_workflows > 0
        # Satellite 3: simulated makespan respects the analytical bound
        # (also audited in-run by debug_invariants above).  Tolerance
        # matches the in-sim check: summing the same chain of stage
        # durations in a different order drifts by ~1e-12.
        assert workflow.min_slack_s >= -1e-6
        assert workflow.makespan_mean_s >= workflow.critical_path_mean_s - 1e-6
        assert workflow.transfer_seconds > 0.0
        row = result.summary()
        assert row["wf_makespan_mean_h"] >= row["wf_critical_path_h"]

    def test_non_workflow_runs_report_no_workflow_metrics(self):
        a = make_job(job_id="a", duration=10.0)
        sim, result = _run([a])
        assert result.metrics.workflow is None
        assert "wf_makespan_mean_h" not in result.summary()

    def test_run_report_carries_workflow_section(self):
        from repro.ops.dashboard import run_report

        trace = pipeline_trace(days=0.25, workflows_per_day=30, seed=2)
        cluster = uniform_cluster(4, gpus_per_node=8)
        simulator = ClusterSimulator(
            cluster,
            make_scheduler("fifo"),
            trace,
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        )
        report = run_report(simulator.run())
        assert "workflows:" in report
        assert "critical path" in report
        assert "dependency hold" in report
        # Non-workflow runs must not grow the section.
        plain = _run([make_job(job_id="solo", duration=10.0)])[1]
        assert "workflows:" not in run_report(plain)


# --------------------------------------------------------------------------
# Sweep integration
# --------------------------------------------------------------------------


class TestSweepWorkflowCells:
    def _cell(self, **overrides):
        from repro.sweep import (
            ClusterSpec,
            SchedulerSpec,
            SimCell,
            TraceSpec,
            WorkflowTraceSpec,
        )

        kwargs = dict(
            trace=TraceSpec(days=1.0, synth_seed=0, load=0.2, load_gpus=32),
            scheduler=SchedulerSpec(name="fifo"),
            cluster=ClusterSpec(kind="uniform", nodes=4),
            exec_model={"unit": True},
            workflow=WorkflowTraceSpec(days=1.0, workflows_per_day=8.0),
            sim={"sample_interval_s": 0.0},
        )
        kwargs.update(overrides)
        return SimCell(**kwargs)

    def test_run_cell_merges_workflow_jobs(self):
        from repro.sweep import build_trace, run_cell

        cell = self._cell()
        rows = build_trace(cell.trace).frozen_rows()
        result = run_cell(cell, rows)
        assert result.summary["workflows"] > 0
        assert "wf_makespan_mean_h" in result.summary
        assert result.trace_jobs > len(rows)
        assert any(job_id.startswith("wf-") for job_id in result.jobs)

    def test_workflow_cells_reject_federation(self):
        from repro.federation.spec import FederationSpec, SiteSpec
        from repro.sweep import ClusterSpec, SchedulerSpec, build_trace, run_cell

        cell = self._cell(
            federation=FederationSpec(
                sites=(
                    SiteSpec(
                        name="s",
                        cluster=ClusterSpec(kind="uniform", nodes=2),
                        scheduler=SchedulerSpec(name="fifo"),
                    ),
                )
            )
        )
        rows = build_trace(cell.trace).frozen_rows()
        with pytest.raises(ConfigError, match="not supported in federated"):
            run_cell(cell, rows)

    def test_unit_exec_model_rejects_extra_parameters(self):
        from repro.sweep.build import build_exec_model

        assert isinstance(build_exec_model({"unit": True}), UnitExecutionModel)
        with pytest.raises(ConfigError, match="no other parameters"):
            build_exec_model({"unit": True, "seed": 3})

    def test_workflow_spec_is_plain_data(self):
        from repro.sweep import canonical_json

        cell = self._cell()
        encoded = canonical_json(cell)
        assert '"workflows_per_day":8.0' in encoded


class TestWorkflowRollup:
    def test_rollup_handles_dependency_cycles_with_nan(self):
        # A cyclic job group cannot come from the simulator (the lifecycle
        # holds it forever) but the rollup is a pure function and must not
        # loop or crash on one.
        a = make_job(job_id="a", workflow_id="w", depends_on=("b",))
        b = make_job(job_id="b", workflow_id="w", depends_on=("a",))
        metrics = workflow_rollup({"a": a, "b": b}.values(), 0.0)
        assert metrics is not None
        assert metrics.completed_workflows == 0

    def test_rollup_none_without_workflow_jobs(self):
        assert workflow_rollup([make_job(job_id="a")], 0.0) is None
