"""Refactor golden: the control-plane extraction changed no observable number.

``tests/data/lifecycle_golden.json`` was captured on the pre-controlplane
simulator (every mutation hand-rolled inside ``ClusterSimulator``).  These
tests replay the same five lifecycle-heavy scenarios — failure injection,
wall-time kills, preemption limits, gang time-slicing, elastic resizing,
tiered-quota reclaim, co-located serving — and demand byte-identical
``summary()`` output.  Together with ``test_golden_determinism`` (T2) and
``test_serving_golden`` (S1) this pins the T1–T5/F1–F11/S1–S2 metric
surface across the refactor.

Regenerate the fixture ONLY for an intentional behaviour change:
``PYTHONPATH=src python scripts/capture_lifecycle_golden.py``.
"""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
FIXTURE = REPO / "tests" / "data" / "lifecycle_golden.json"


def _load_capture_module():
    spec = importlib.util.spec_from_file_location(
        "capture_lifecycle_golden", REPO / "scripts" / "capture_lifecycle_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_capture = _load_capture_module()
GOLDEN: dict[str, dict[str, float]] = json.loads(FIXTURE.read_text())
SCENARIOS = {name: (make, kwargs, trace) for name, make, kwargs, trace in _capture.scenarios()}


def test_fixture_covers_all_scenarios():
    assert set(GOLDEN) == set(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_summary_byte_identical(name):
    from repro.experiments.common import fresh_trace_copy, run_policy

    make, kwargs, trace = SCENARIOS[name]
    result = run_policy(make(), fresh_trace_copy(trace), **kwargs)
    summary = result.summary()
    golden = GOLDEN[name]
    assert set(summary) == set(golden)
    for key, expected in golden.items():
        actual = summary[key]
        if expected == "nan":
            assert math.isnan(actual), f"{name}.{key}: expected NaN, got {actual}"
        else:
            assert actual == expected, f"{name}.{key}: {actual} != {expected}"
