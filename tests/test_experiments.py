"""Tests for the experiment registry — every table/figure regenerates.

Each experiment runs at a tiny scale here; assertions check the *shape* of
the output (the full-scale numbers live in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, fresh_trace_copy, run_experiment
from repro.experiments.common import campus_trace
from repro.workload import JobState

SCALE = 0.15
SEED = 3


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at tiny scale (shared across tests)."""
    return {
        experiment_id: spec.run(seed=SEED, scale=SCALE)
        for experiment_id, spec in EXPERIMENTS.items()
    }


class TestRegistry:
    def test_expected_ids_present(self):
        expected = {
            "T1", "T2", "T3", "T4", "T5",
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11",
            "S1", "S2",
            "A1", "A2", "A3", "A4", "A5",
            "F-FED", "W-DAG",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError, match="known"):
            run_experiment("F99")

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            EXPERIMENTS["T1"].run(scale=0.0)

    def test_kinds_well_formed(self):
        for spec in EXPERIMENTS.values():
            assert spec.kind in ("table", "figure")
            assert spec.description


class TestResultShapes:
    def test_all_render_without_error(self, results):
        for experiment_id, result in results.items():
            text = result.render()
            assert experiment_id in text

    def test_tables_have_rows(self, results):
        for experiment_id in ("T1", "T2", "T3", "T4", "T5", "A1", "A2", "A3", "A4", "A5"):
            assert results[experiment_id].rows, experiment_id

    def test_figures_have_series_or_rows(self, results):
        for experiment_id in ("F1", "F3", "F4", "F5", "F9", "F10"):
            assert results[experiment_id].series, experiment_id

    def test_csv_export(self, results, tmp_path):
        for experiment_id, result in results.items():
            result.export_csv(tmp_path / f"{experiment_id}.csv")
            assert (tmp_path / f"{experiment_id}.csv").stat().st_size > 0


class TestHeadlineShapes:
    """The qualitative claims each experiment exists to demonstrate."""

    def test_t1_composition_totals(self, results):
        total_row = results["T1"].rows[-1]
        assert total_row["total_gpus"] == 176

    def test_f2_single_gpu_dominates_jobs_not_hours(self, results):
        rows = {row["gpus"]: row for row in results["F2"].rows}
        assert rows[1]["job_share"] > 0.4
        assert rows[1]["gpu_hour_share"] < rows[1]["job_share"]

    def test_f3_wider_jobs_run_longer(self, results):
        series = results["F3"].series
        # Compare medians: value at probability >= 0.5.
        def median_of(points):
            return next(x for x, p in points if p >= 0.5)

        assert median_of(series["gpus_1"]) < median_of(series["gpus_8+"])

    def test_t2_fifo_worst_wait(self, results):
        rows = {row["scheduler"]: row for row in results["T2"].rows}
        assert rows["fifo"]["avg_wait_h"] >= rows["backfill-easy"]["avg_wait_h"]
        assert rows["fifo"]["avg_wait_h"] >= rows["sjf"]["avg_wait_h"]

    def test_f6_backfill_never_hurts_jct(self, results):
        rows = {row["policy"]: row for row in results["F6"].rows}
        assert rows["easy"]["avg_jct_h"] <= rows["no-backfill"]["avg_jct_h"] * 1.05

    def test_f7_guaranteed_tier_protected(self, results):
        rows = {row["tier"]: row for row in results["F7"].rows}
        guaranteed = rows["guaranteed"]
        opportunistic = rows["opportunistic"]
        assert guaranteed["wait_p50_h"] <= opportunistic["wait_p50_h"] + 0.5

    def test_f9_ina_flattens_cross_rack(self, results):
        rows = results["F9"].rows
        by_key = {(row["method"], row["shape"]): row["rel_throughput"] for row in rows}
        ring_penalty = (
            by_key[("ring", "2n-same-rack")] - by_key[("ring", "2n-cross-rack")]
        )
        ina_penalty = by_key[("ina", "2n-same-rack")] - by_key[("ina", "2n-cross-rack")]
        assert ina_penalty < ring_penalty
        assert ina_penalty == pytest.approx(0.0, abs=1e-9)

    def test_t4_delta_cache_saves_10x(self, results):
        rows = {row["submission"]: row for row in results["T4"].rows}
        assert rows["edit-one-file"]["dedup_factor"] > 10
        assert rows["identical-resubmit"]["uploaded_mb"] == 0.0

    def test_f10_simulator_fast_enough(self, results):
        rows = results["F10"].rows
        assert all(row["sim_days_per_wall_s"] > 0.5 for row in rows)

    def test_t5_fair_share_beats_fifo_on_jain(self, results):
        rows = {
            row["scheduler"]: row for row in results["T5"].rows if "scheduler" in row
        }
        assert rows["fair-share"]["jain_users"] >= rows["fifo"]["jain_users"] - 0.1


class TestHelpers:
    def test_fresh_trace_copy_resets_state(self):
        trace = campus_trace(seed=0, scale=0.1, days=1.0, load=0.5)
        trace.jobs[0].start(trace.jobs[0].submit_time + 1, ("n",))
        copy = fresh_trace_copy(trace)
        assert copy.jobs[0].state is JobState.QUEUED
        assert copy.jobs[0].job_id == trace.jobs[0].job_id
        assert len(copy) == len(trace)

    def test_campus_trace_scale_shrinks_horizon(self):
        short = campus_trace(seed=0, scale=0.2, days=10.0, load=0.5)
        assert short.span_seconds <= 2.2 * 86400.0
