"""Golden byte-identity of the sweep engine's execution modes.

The determinism contract of ``python -m repro.experiments`` is that the
*rendered output* does not depend on how cells were executed: serial,
fanned out over a worker pool, or replayed from the content-addressed
cache must all produce identical bytes.  The only permitted variance is
the timing footer (``[ID regenerated in …]``), which is stripped before
comparison.

The subset below keeps the test fast while still covering multi-cell
experiments, cross-experiment cache sharing (T2 reuses F5's cells), a
preemptive quota run, and an ablation with checkpoint costs.
"""

from __future__ import annotations

import os
import pickle
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sweep import CELL_FORMAT_VERSION, CellResult, SweepCache

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: F5+T2 share six scheduler cells; F6 adds backfill variants; A3 runs
#: the checkpoint-cost ablation with preemption.  All are timing-free
#: in their rendered rows (unlike F10), so cold runs compare bytewise.
GOLDEN_IDS = ["F5", "T2", "F6", "A3"]

FOOTER = re.compile(r"^\[[A-Z0-9]+ regenerated in .*\]$")


def run_experiments(*extra: str, cache_dir: Path | None = None) -> str:
    argv = [
        sys.executable,
        "-m",
        "repro.experiments",
        *GOLDEN_IDS,
        "--scale",
        "0.3",
        *extra,
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    else:
        argv += ["--no-cache"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        argv, capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=600
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def strip_footers(output: str) -> str:
    return "\n".join(
        line for line in output.splitlines() if not FOOTER.match(line)
    )


@pytest.fixture(scope="module")
def cold_serial(tmp_path_factory):
    """One cold serial run whose cache later runs replay from."""
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    return run_experiments("--jobs", "1", cache_dir=cache_dir), cache_dir


class TestGoldenByteIdentity:
    def test_parallel_matches_serial(self, cold_serial):
        serial_out, _ = cold_serial
        parallel_out = run_experiments("--jobs", "4")  # cold, no cache
        assert strip_footers(parallel_out) == strip_footers(serial_out)

    def test_warm_cache_matches_cold(self, cold_serial):
        serial_out, cache_dir = cold_serial
        warm_out = run_experiments("--jobs", "1", cache_dir=cache_dir)
        assert strip_footers(warm_out) == strip_footers(serial_out)
        # every cell must have been served from the cache
        footers = [
            line
            for line in warm_out.splitlines()
            if FOOTER.match(line) and "cells" in line
        ]
        assert footers
        assert all("/ 0 run" in line for line in footers)

    def test_poisoned_cache_is_ignored_not_served(self, cold_serial):
        serial_out, cache_dir = cold_serial
        cache = SweepCache(cache_dir)
        entries = cache.entries()
        assert entries, "cold run should have populated the cache"
        # poison one *cell* entry (the cache also holds trace rows/meta):
        # valid pickle, wrong code fingerprint
        for victim in entries:
            envelope = pickle.loads(victim.read_bytes())
            if isinstance(envelope.get("result"), CellResult):
                break
        else:
            pytest.fail("no cell entry found in the cache")
        envelope["fingerprint"] = "0" * 64
        assert envelope["version"] == CELL_FORMAT_VERSION
        victim.write_bytes(pickle.dumps(envelope))
        poisoned_out = run_experiments("--jobs", "1", cache_dir=cache_dir)
        # identical output: the poisoned entry was re-run, not trusted
        assert strip_footers(poisoned_out) == strip_footers(serial_out)
        rerun = [
            line
            for line in poisoned_out.splitlines()
            if FOOTER.match(line) and "/ 1 run" in line
        ]
        assert rerun, "exactly the poisoned cell should have re-run"
