"""Tests for the rack/leaf-spine topology model and partitions."""

from __future__ import annotations

import pytest

from repro.cluster.partition import PartitionSpec, PartitionTable
from repro.cluster.topology import FabricSpec, Locality, Topology
from repro.errors import ConfigError, UnknownNodeError


@pytest.fixture
def topo():
    return Topology.build(
        {"rack-1": ["a", "b"], "rack-2": ["c", "d"]},
        FabricSpec(node_uplink_gbps=100, leaf_uplink_gbps=400, oversubscription=2.0),
    )


class TestTopologyBuild:
    def test_membership(self, topo):
        assert set(topo.rack_ids) == {"rack-1", "rack-2"}
        assert topo.rack_of("a") == "rack-1"
        assert topo.nodes_in_rack("rack-2") == ("c", "d")

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigError, match="multiple racks"):
            Topology.build({"r1": ["a"], "r2": ["a"]})

    def test_empty_rack_rejected(self):
        with pytest.raises(ConfigError, match="no nodes"):
            Topology.build({"r1": []})

    def test_unknown_node(self, topo):
        with pytest.raises(UnknownNodeError):
            topo.rack_of("ghost")

    def test_unknown_rack(self, topo):
        with pytest.raises(ConfigError):
            topo.nodes_in_rack("rack-9")

    def test_bad_fabric_rejected(self):
        with pytest.raises(ConfigError):
            FabricSpec(node_uplink_gbps=0)


class TestLocality:
    def test_same_node(self, topo):
        assert topo.locality("a", "a") is Locality.SAME_NODE

    def test_same_rack(self, topo):
        assert topo.locality("a", "b") is Locality.SAME_RACK

    def test_cross_rack(self, topo):
        assert topo.locality("a", "c") is Locality.CROSS_RACK

    def test_locality_ordering_near_to_far(self):
        assert Locality.SAME_NODE < Locality.SAME_RACK < Locality.CROSS_RACK

    def test_same_node_unknown_id_still_validated(self, topo):
        with pytest.raises(UnknownNodeError):
            topo.locality("ghost", "ghost")


class TestBandwidthAndLatency:
    def test_same_node_bandwidth_infinite(self, topo):
        assert topo.bandwidth_gbps("a", "a") == float("inf")

    def test_same_rack_gets_full_nic(self, topo):
        assert topo.bandwidth_gbps("a", "b") == 100

    def test_cross_rack_pays_oversubscription(self, topo):
        assert topo.bandwidth_gbps("a", "c") == pytest.approx(100.0)
        tight = Topology.build(
            {"r1": ["a"], "r2": ["b"]},
            FabricSpec(node_uplink_gbps=100, leaf_uplink_gbps=100, oversubscription=4.0),
        )
        assert tight.bandwidth_gbps("a", "b") == pytest.approx(25.0)

    def test_latency_ordering(self, topo):
        assert (
            topo.latency_us("a", "a")
            < topo.latency_us("a", "b")
            < topo.latency_us("a", "c")
        )

    def test_hops(self, topo):
        assert topo.hops("a", "a") == 0
        assert topo.hops("a", "b") == 2
        assert topo.hops("a", "c") == 4


class TestSpread:
    def test_single_node(self, topo):
        assert topo.spread(["a", "a"]) is Locality.SAME_NODE

    def test_single_rack(self, topo):
        assert topo.spread(["a", "b"]) is Locality.SAME_RACK

    def test_cross_rack(self, topo):
        assert topo.spread(["a", "c"]) is Locality.CROSS_RACK

    def test_empty_placement_rejected(self, topo):
        with pytest.raises(ConfigError):
            topo.spread([])

    def test_racks_spanned(self, topo):
        assert topo.racks_spanned(["a", "b", "c"]) == 2


class TestPartitions:
    def spec(self, **kwargs):
        defaults = dict(name="p", node_ids=("a", "b"))
        defaults.update(kwargs)
        return PartitionSpec(**defaults)

    def test_admits_within_limits(self):
        partition = self.spec(max_walltime_hours=24.0, max_gpus_per_job=8)
        assert partition.admits(8, 24.0, "guaranteed")
        assert not partition.admits(9, 1.0, "guaranteed")
        assert not partition.admits(1, 25.0, "guaranteed")

    def test_tier_restriction(self):
        partition = self.spec(allowed_tiers=("guaranteed",))
        assert partition.admits(1, 1.0, "guaranteed")
        assert not partition.admits(1, 1.0, "opportunistic")

    def test_rejection_reason_messages(self):
        partition = self.spec(max_gpus_per_job=4)
        assert "caps jobs" in partition.rejection_reason(8, 1.0, "guaranteed")
        assert partition.rejection_reason(2, 1.0, "guaranteed") is None

    def test_empty_partition_rejected(self):
        with pytest.raises(ConfigError):
            PartitionSpec(name="p", node_ids=())

    def test_table_duplicate_rejected(self):
        table = PartitionTable()
        table.add(self.spec())
        with pytest.raises(ConfigError, match="duplicate"):
            table.add(self.spec())

    def test_table_single_default(self):
        table = PartitionTable()
        table.add(self.spec(name="p1", default=True))
        with pytest.raises(ConfigError, match="only one"):
            table.add(self.spec(name="p2", default=True))
        assert table.default_partition().name == "p1"
        assert table.resolve(None).name == "p1"
        assert table.resolve("p1").name == "p1"

    def test_table_unknown_partition(self):
        table = PartitionTable()
        with pytest.raises(ConfigError, match="unknown partition"):
            table.get("nope")

    def test_table_iteration(self):
        table = PartitionTable()
        table.add(self.spec(name="p1"))
        table.add(self.spec(name="p2"))
        assert len(table) == 2
        assert {p.name for p in table} == {"p1", "p2"}
