"""Integration tests for the trace-driven cluster simulator."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import SimulationError
from repro.execlayer import ExecutionModel, UnitExecutionModel
from repro.sched import FifoScheduler, GreedyFifoScheduler, make_scheduler
from repro.sim import ClusterSimulator, FailureConfig, SimConfig, simulate
from repro.workload import (
    FailureCategory,
    FailurePlan,
    JobState,
    Trace,
    assign_models,
    synthesize,
)
from tests.conftest import make_job


def run_jobs(jobs, num_nodes=2, scheduler=None, **kwargs):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    trace = Trace(list(jobs), name="unit")
    scheduler = scheduler or GreedyFifoScheduler()
    kwargs.setdefault("config", SimConfig(verify_every=1, sample_interval_s=0.0))
    simulator = ClusterSimulator(cluster, scheduler, trace, **kwargs)
    return simulator.run(), cluster


class TestBasicExecution:
    def test_single_job_exact_times(self):
        job = make_job("a", duration=100.0, submit_time=10.0)
        result, cluster = run_jobs([job])
        assert job.state is JobState.COMPLETED
        assert job.first_start_time == 10.0
        assert job.end_time == 110.0
        assert result.metrics.jobs_completed == 1
        assert cluster.free_gpus == cluster.total_gpus

    def test_jobs_queue_when_full(self):
        jobs = [
            make_job("a", num_gpus=16, gpus_per_node=8, duration=100.0, submit_time=0.0),
            make_job("b", num_gpus=16, gpus_per_node=8, duration=50.0, submit_time=0.0),
        ]
        result, _cluster = run_jobs(jobs)
        assert jobs[0].first_start_time == 0.0
        assert jobs[1].first_start_time == 100.0
        assert jobs[1].jct == 150.0

    def test_gpu_seconds_conservation(self):
        trace = synthesize("tacc-campus", days=0.5, seed=3, jobs_per_day=60)
        cluster = uniform_cluster(4, gpus_per_node=8)
        result = simulate(
            cluster,
            GreedyFifoScheduler(),
            trace,
            config=SimConfig(verify_every=10, sample_interval_s=0.0),
        )
        completed = [j for j in result.jobs.values() if j.state is JobState.COMPLETED]
        expected = sum(j.duration * j.num_gpus for j in completed)
        served_to_completed = sum(j.gpu_seconds_used for j in completed)
        assert served_to_completed == pytest.approx(expected, rel=1e-6)
        # The exact utilization integral covers at least the completed work.
        assert result.metrics.served_gpu_hours * 3600.0 >= expected - 1e-6

    def test_deterministic_reruns(self):
        def one_run():
            trace = synthesize("tacc-campus", days=0.5, seed=7, jobs_per_day=80)
            assign_models(trace, seed=7)
            cluster = uniform_cluster(3, gpus_per_node=8)
            result = simulate(
                cluster,
                make_scheduler("backfill-easy"),
                trace,
                exec_model=ExecutionModel(),
                config=SimConfig(sample_interval_s=0.0),
            )
            return [
                (j.job_id, j.state.value, j.first_start_time, j.end_time)
                for j in result.jobs.values()
            ]

        assert one_run() == one_run()

    def test_result_summary_shape(self):
        job = make_job("a", duration=10.0)
        result, _cluster = run_jobs([job])
        summary = result.summary()
        assert summary["completed"] == 1.0
        assert "events" in summary


class TestSlowdownIntegration:
    def test_slower_gpu_stretches_runtime(self):
        # rtx2080ti relative speed < 1 → resnet50 job runs slower than spec.
        cluster = uniform_cluster(1, gpus_per_node=4, gpu_type="rtx2080ti", cpus=32, memory_gb=256)
        job = make_job("a", duration=1000.0, model_name="resnet50")
        trace = Trace([job])
        simulate(cluster, GreedyFifoScheduler(), trace, exec_model=ExecutionModel())
        assert job.end_time > 1000.0

    def test_unit_model_is_exact(self):
        cluster = uniform_cluster(1, gpus_per_node=4, gpu_type="rtx2080ti", cpus=32, memory_gb=256)
        job = make_job("a", duration=1000.0, model_name="resnet50")
        simulate(cluster, GreedyFifoScheduler(), Trace([job]), exec_model=UnitExecutionModel())
        assert job.end_time == pytest.approx(1000.0)


class TestScriptedFailures:
    def test_user_error_fails_early(self):
        job = make_job(
            "a",
            duration=1000.0,
            failure_plan=FailurePlan(FailureCategory.USER_ERROR, 0.1),
        )
        result, _cluster = run_jobs([job])
        assert job.state is JobState.FAILED
        assert job.failure_category is FailureCategory.USER_ERROR
        assert job.end_time == pytest.approx(100.0)
        assert result.metrics.jobs_failed == 1

    def test_failure_frees_resources_for_queue(self):
        jobs = [
            make_job(
                "a",
                num_gpus=16,
                gpus_per_node=8,
                duration=1000.0,
                failure_plan=FailurePlan(FailureCategory.OOM, 0.5),
            ),
            make_job("b", num_gpus=16, gpus_per_node=8, duration=100.0),
        ]
        run_jobs(jobs)
        assert jobs[0].state is JobState.FAILED
        assert jobs[1].first_start_time == pytest.approx(500.0)


class TestInfeasibleJobs:
    def test_oversized_job_rejected_at_arrival(self):
        job = make_job("a", num_gpus=9)  # single chunk > node size
        result, _cluster = run_jobs([job])
        assert job.state is JobState.KILLED
        assert result.metrics.rejected_jobs == 1

    def test_wrong_gpu_type_rejected(self):
        job = make_job("a", gpu_type="a100-80")
        result, _cluster = run_jobs([job])  # cluster is V100-only
        assert result.metrics.rejected_jobs == 1

    def test_too_many_chunks_rejected(self):
        job = make_job("a", num_gpus=24, gpus_per_node=8)
        result, _cluster = run_jobs([job], num_nodes=2)
        assert result.metrics.rejected_jobs == 1

    def test_blocking_fifo_not_stalled_by_rejected_head(self):
        jobs = [
            make_job("a", num_gpus=9, submit_time=0.0),  # infeasible
            make_job("b", num_gpus=1, submit_time=1.0, duration=10.0),
        ]
        run_jobs(jobs, scheduler=FifoScheduler())
        assert jobs[1].state is JobState.COMPLETED


class TestNodeFailures:
    def test_node_failure_requeues_and_restarts_job(self):
        cluster = uniform_cluster(2, gpus_per_node=8)
        job = make_job("a", num_gpus=8, duration=5_000.0)
        trace = Trace([job])
        config = FailureConfig(mtbf_hours=2.0, repair_hours_median=0.5, max_job_restarts=50)
        simulator = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            trace,
            failure_config=config,
            config=SimConfig(verify_every=5, sample_interval_s=0.0, seed=3),
        )
        result = simulator.run()
        assert result.metrics.node_failures > 0
        assert job.state is JobState.COMPLETED
        assert job.attempts > 1
        cluster.verify_invariants()

    def test_restart_limit_fails_job_as_hardware(self):
        cluster = uniform_cluster(1, gpus_per_node=8)
        job = make_job("a", num_gpus=8, duration=10_000_000.0)
        config = FailureConfig(mtbf_hours=1.0, repair_hours_median=0.1, max_job_restarts=2)
        simulator = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([job]),
            failure_config=config,
            config=SimConfig(sample_interval_s=0.0, seed=1, max_events=200_000),
        )
        simulator.run(until=400 * 3600.0)
        assert job.state is JobState.FAILED
        assert job.failure_category is FailureCategory.HARDWARE


class TestProvisioning:
    def test_provisioning_delays_start_to_finish(self):
        cluster = uniform_cluster(1, gpus_per_node=8)
        job = make_job("a", duration=100.0, model_name="resnet50")
        simulator = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([job]),
            exec_model=UnitExecutionModel(),
            config=SimConfig(provisioning=True, sample_interval_s=0.0, seed=0),
        )
        result = simulator.run()
        assert job.end_time > 100.0  # provisioning time added
        assert result.metrics.provision_seconds > 0


class TestDynamicSubmission:
    def build(self):
        cluster = uniform_cluster(1, gpus_per_node=8)
        return ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([], name="live"),
            config=SimConfig(sample_interval_s=0.0),
        )

    def test_submit_and_run(self):
        simulator = self.build()
        job = make_job("a", duration=60.0)
        simulator.submit_job(job)
        simulator.engine.run()
        assert job.state is JobState.COMPLETED

    def test_duplicate_or_past_submission_rejected(self):
        simulator = self.build()
        job = make_job("a", duration=60.0)
        simulator.submit_job(job)
        with pytest.raises(SimulationError, match="already submitted"):
            simulator.submit_job(job)
        simulator.engine.run()
        with pytest.raises(SimulationError, match="in the past"):
            simulator.submit_job(make_job("b", submit_time=0.0))

    def test_kill_running_job_frees_resources(self):
        simulator = self.build()
        job = make_job("a", num_gpus=8, duration=10_000.0)
        simulator.submit_job(job)
        simulator.engine.run(until=100.0)
        assert job.state is JobState.RUNNING
        simulator.kill_job("a")
        assert job.state is JobState.KILLED
        assert simulator.cluster.free_gpus == 8
        simulator.cluster.verify_invariants()

    def test_kill_queued_job(self):
        simulator = self.build()
        blocker = make_job("a", num_gpus=8, duration=10_000.0)
        queued = make_job("b", num_gpus=8, duration=100.0)
        simulator.submit_job(blocker)
        simulator.submit_job(queued)
        simulator.engine.run(until=10.0)
        simulator.kill_job("b")
        assert queued.state is JobState.KILLED
        assert simulator.scheduler.queue_depth == 0

    def test_kill_unknown_and_terminal(self):
        simulator = self.build()
        with pytest.raises(SimulationError, match="unknown job"):
            simulator.kill_job("ghost")
        job = make_job("a", duration=1.0)
        simulator.submit_job(job)
        simulator.engine.run()
        simulator.kill_job("a")  # terminal: no-op, no error
        assert job.state is JobState.COMPLETED
