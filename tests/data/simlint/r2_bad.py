"""R2 bad: host wall-clock read inside simulation code."""

import time


def stamp(event):
    return (time.time(), event)
