"""R7 bad: ad hoc deepcopy of a live simulation object."""

import copy


def fork(simulator):
    return copy.deepcopy(simulator)
