"""R6 bad: set iteration order decides scheduling outcomes."""


def pick(node_ids, load):
    candidates = {n for n in node_ids if load[n] < 1.0}
    for node in candidates:
        return node
    return None


def busiest(node_ids, load):
    candidates = set(node_ids)
    return min(candidates, key=lambda n: load[n])
