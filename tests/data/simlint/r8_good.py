"""R8 good: narrow handling; broad catches re-raise."""


def apply(controller, job, now, log):
    try:
        controller.preempt(now, job)
    except KeyError:
        return False
    except Exception as exc:
        log.append(f"preempt failed: {exc}")
        raise
    return True
