"""R4 good: every event class holds a unique PRIORITY rank."""


class Event:
    pass


class JobFinish(Event):
    pass


class JobArrival(Event):
    pass


PRIORITY = {
    JobFinish: 0,
    JobArrival: 1,
}
