"""R9 good: the order is pinned by sorted() before it is observable."""


def report(jobs, table):
    pending = {job.name for job in jobs if job.pending}
    ids = [name for name in sorted(pending)]
    table.add_row(ids)
