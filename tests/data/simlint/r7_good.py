"""R7 good: snapshots go through the audited control-plane path."""


def fork(controller):
    return controller.snapshot().fork()
