"""R2 good: simulated time comes from the engine clock."""


def stamp(now, event):
    return (now, event)
