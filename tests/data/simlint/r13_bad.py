"""R13 bad: a frozen spec mutated after construction."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CellSpec:
    nodes: int


def tweak(spec, nodes):
    object.__setattr__(spec, "nodes", nodes)
    return spec
