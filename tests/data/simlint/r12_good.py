"""R12 good: every field reaches the fingerprint encoding."""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class TaskSpec:
    name: str
    gpus: int
    retries: int

    def fingerprint(self):
        digest = hashlib.sha256()
        for part in (self.name, self.gpus, self.retries):
            digest.update(str(part).encode())
        return digest.hexdigest()
