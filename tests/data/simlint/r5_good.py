"""R5 good: tolerance comparison instead of exact equality."""

import math


def classify(utilization):
    if math.isclose(utilization, 1.0):
        return "saturated"
    return "ok"
