"""R10 good: accumulate over a sorted view so the fold order is fixed."""


def total_gpu_hours(cells):
    hours = {cell.gpu_hours for cell in cells}
    total = 0.0
    for used in sorted(hours):
        total += used
    return total
