"""R13 good: __post_init__ may finalise; everyone else derives a copy."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CellSpec:
    nodes: int
    gpus_per_node: int
    gpus: int = 0

    def __post_init__(self):
        object.__setattr__(self, "gpus", self.nodes * self.gpus_per_node)


def tweak(spec, nodes):
    return replace(spec, nodes=nodes)
