"""R12 bad: a spec field the fingerprint encoding silently skips."""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class TaskSpec:
    name: str
    gpus: int
    retries: int

    def fingerprint(self):
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        digest.update(str(self.gpus).encode())
        return digest.hexdigest()
