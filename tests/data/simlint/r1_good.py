"""R1 good: a seeded generator threaded from config."""

import numpy as np


def jitter(base, seed):
    rng = np.random.default_rng(seed)
    return base + float(rng.random())
