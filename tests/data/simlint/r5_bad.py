"""R5 bad: exact float equality on an aggregated value."""


def classify(utilization):
    if utilization == 1.0:
        return "saturated"
    return "ok"
