"""R6 good: explicit order before iterating a set."""


def pick(node_ids, load):
    candidates = {n for n in node_ids if load[n] < 1.0}
    for node in sorted(candidates):
        return node
    return None
