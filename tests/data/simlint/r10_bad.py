"""R10 bad: float accumulation in set order drifts in the low bits."""


def total_gpu_hours(cells):
    hours = {cell.gpu_hours for cell in cells}
    total = 0.0
    for used in hours:
        total += used
    return total
