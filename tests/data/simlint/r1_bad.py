"""R1 bad: ambient RNG state in simulation code."""

import random

import numpy as np


def jitter(base):
    noisy = base + random.random()
    return noisy + np.random.rand()
