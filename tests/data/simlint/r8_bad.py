"""R8 bad: swallowed exceptions hide invariant violations."""


def apply(controller, job, now):
    try:
        controller.preempt(now, job)
    except:  # noqa: E722
        pass


def apply_quietly(controller, job, now):
    try:
        controller.preempt(now, job)
    except Exception:
        return None
