"""R11 good: every call site is legal and every table edge is covered."""

from repro.controlplane.lifecycle import LifecycleState

LEGAL_TRANSITIONS = {
    LifecycleState.PENDING: frozenset(
        {LifecycleState.RUNNING, LifecycleState.KILLED}
    ),
    LifecycleState.RUNNING: frozenset({LifecycleState.KILLED}),
    LifecycleState.KILLED: frozenset(),
}


class Controller:
    def place(self, job):
        if job.state.terminal:
            return
        if job.state is not LifecycleState.PENDING:
            return
        self._apply(job, LifecycleState.RUNNING)

    def kill(self, job):
        if job.state.terminal:
            return
        self._apply(job, LifecycleState.KILLED)
