"""R4 bad: an unranked event class and a duplicated rank."""


class Event:
    pass


class JobFinish(Event):
    pass


class JobArrival(Event):
    pass


class StrayEvent(Event):
    pass


PRIORITY = {
    JobFinish: 0,
    JobArrival: 0,
}
