"""R3 good: mutations routed through the controller; own state is fine."""


class PolicyState:
    def __init__(self):
        self.state = "idle"

    def reset(self):
        self.state = "idle"


def finish(controller, job, now):
    controller.finish(now, job, "complete", None)
