"""R3 bad: lifecycle fields written outside the control plane."""


def force_finish(job, now):
    job.state = "COMPLETED"
    job.end_time = now
    job.attempts += 1
