"""R9 bad: set iteration order materialised into a metrics row."""


def report(jobs, table):
    pending = {job.name for job in jobs if job.pending}
    ids = [name for name in pending]
    table.add_row(ids)
