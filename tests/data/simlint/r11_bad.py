"""R11 bad: an illegal transition edge plus an uncovered table edge.

``bad_restart`` inverts the terminal guard, so its only possible
from-state is KILLED — but RUNNING is reachable only from PENDING.  And
because no call site exercises PENDING -> RUNNING, that table edge is
dead weight.
"""

from repro.controlplane.lifecycle import LifecycleState

LEGAL_TRANSITIONS = {
    LifecycleState.PENDING: frozenset(
        {LifecycleState.RUNNING, LifecycleState.KILLED}
    ),
    LifecycleState.RUNNING: frozenset({LifecycleState.KILLED}),
    LifecycleState.KILLED: frozenset(),
}


class Controller:
    def bad_restart(self, job):
        if not job.state.terminal:
            return
        self._apply(job, LifecycleState.RUNNING)

    def kill(self, job):
        if job.state.terminal:
            return
        self._apply(job, LifecycleState.KILLED)
