"""Tests for the task schema layer: specs, YAML-subset parser, validation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.schema import (
    EnvironmentSpec,
    FileSpec,
    QosSpec,
    ResourceSpec,
    TaskSpec,
    ensure_valid,
    parse_task_text,
    parse_yaml_subset,
    spec_from_dict,
    validate_spec,
)
from repro.workload import JobTier


class TestFileSpec:
    def test_of_bytes(self):
        spec = FileSpec.of_bytes("train.py", b"print()\n")
        assert spec.size_bytes == 8
        assert len(spec.sha256) == 64

    @pytest.mark.parametrize("path", ["/abs/path.py", "", "../escape.py", "a/../b.py"])
    def test_bad_paths(self, path):
        with pytest.raises(SchemaError):
            FileSpec(path=path, size_bytes=1, sha256="0" * 64)

    def test_bad_hash(self):
        with pytest.raises(SchemaError, match="sha256"):
            FileSpec(path="x.py", size_bytes=1, sha256="nothex")


class TestEnvironmentSpec:
    def test_fingerprint_stable_and_order_independent(self):
        a = EnvironmentSpec(pip_packages=("torch==2.1", "numpy==1.26"))
        b = EnvironmentSpec(pip_packages=("numpy==1.26", "torch==2.1"))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_content(self):
        a = EnvironmentSpec(image="pytorch:2.1")
        b = EnvironmentSpec(image="pytorch:2.2")
        assert a.fingerprint() != b.fingerprint()

    def test_bad_python_version(self):
        with pytest.raises(SchemaError):
            EnvironmentSpec(python_version="three")

    def test_bad_env_var_name(self):
        with pytest.raises(SchemaError):
            EnvironmentSpec(env_vars={"BAD NAME": "x"})

    def test_bad_pip_spec(self):
        with pytest.raises(SchemaError):
            EnvironmentSpec(pip_packages=("torch ==2.1",))


class TestResourceAndQos:
    def test_to_request(self):
        spec = ResourceSpec(num_gpus=16, gpus_per_node=8, gpu_type="v100")
        request = spec.to_request()
        assert request.num_gpus == 16
        assert request.gpus_per_node == 8

    def test_resource_validation(self):
        with pytest.raises(SchemaError):
            ResourceSpec(num_gpus=0)
        with pytest.raises(SchemaError):
            ResourceSpec(num_gpus=12, gpus_per_node=8)
        with pytest.raises(SchemaError):
            ResourceSpec(walltime_hours=0)

    def test_qos_tier(self):
        assert QosSpec(tier="opportunistic").job_tier is JobTier.OPPORTUNISTIC
        with pytest.raises(SchemaError, match="valid tiers"):
            QosSpec(tier="platinum")


class TestTaskSpec:
    def minimal(self, **kwargs):
        defaults = dict(name="demo", entrypoint="python train.py")
        defaults.update(kwargs)
        return TaskSpec(**defaults)

    def test_name_rules(self):
        with pytest.raises(SchemaError):
            self.minimal(name="1starts-with-digit")
        with pytest.raises(SchemaError):
            self.minimal(name="has spaces")
        self.minimal(name="ok-name.v2_final")

    def test_empty_entrypoint(self):
        with pytest.raises(SchemaError):
            self.minimal(entrypoint="   ")

    def test_duplicate_paths_rejected(self):
        file_spec = FileSpec.of_bytes("a.py", b"x")
        with pytest.raises(SchemaError, match="duplicate"):
            self.minimal(code_files=(file_spec,), datasets=(file_spec,))

    def test_fingerprint_sensitive_to_fields(self):
        a = self.minimal()
        b = self.minimal(entrypoint="python other.py")
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == self.minimal().fingerprint()

    def test_multi_node_property(self):
        single = self.minimal(resources=ResourceSpec(num_gpus=8))
        multi = self.minimal(resources=ResourceSpec(num_gpus=16, gpus_per_node=8))
        assert not single.multi_node
        assert multi.multi_node


YAML_DOC = """
# A task file
name: bert-pretrain
entrypoint: "python train.py --epochs 3"
model: bert-large
resources:
  num_gpus: 16
  gpus_per_node: 8
  gpu_type: a100-80
  walltime_hours: 48.0
environment:
  image: pytorch/pytorch:2.1
  pip_packages:
    - transformers==4.30.0
    - datasets==2.13.0
  env_vars:
    NCCL_DEBUG: INFO
qos:
  tier: guaranteed
code_files:
  - path: train.py
    size_bytes: 4096
    sha256: {sha}
""".format(sha="a" * 64)


class TestYamlSubset:
    def test_scalars(self):
        doc = parse_yaml_subset(
            "a: 1\nb: 2.5\nc: true\nd: false\ne: null\nf: hello\ng: 'quoted # not comment'\n"
        )
        assert doc == {
            "a": 1, "b": 2.5, "c": True, "d": False, "e": None,
            "f": "hello", "g": "quoted # not comment",
        }

    def test_nested_mapping_and_lists(self):
        doc = parse_yaml_subset("outer:\n  inner:\n    x: 1\n  items:\n    - 1\n    - two\n")
        assert doc == {"outer": {"inner": {"x": 1}, "items": [1, "two"]}}

    def test_list_of_mappings(self):
        doc = parse_yaml_subset("files:\n  - path: a.py\n    size: 3\n  - path: b.py\n    size: 4\n")
        assert doc == {"files": [{"path": "a.py", "size": 3}, {"path": "b.py", "size": 4}]}

    def test_comments_and_blanks_ignored(self):
        doc = parse_yaml_subset("# header\n\na: 1  # trailing\n\n")
        assert doc == {"a": 1}

    def test_empty_document(self):
        assert parse_yaml_subset("") == {}
        assert parse_yaml_subset("# only comments\n") == {}

    def test_key_with_no_value_is_none(self):
        assert parse_yaml_subset("a:\nb: 1\n") == {"a": None, "b": 1}

    def test_tabs_rejected(self):
        with pytest.raises(SchemaError, match="tabs"):
            parse_yaml_subset("a:\n\tb: 1\n")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SchemaError, match="duplicate key"):
            parse_yaml_subset("a: 1\na: 2\n")

    def test_error_carries_line_number(self):
        with pytest.raises(SchemaError, match="line 2"):
            parse_yaml_subset("a: 1\nnot a kv pair\n")

    @settings(max_examples=50, deadline=None)
    @given(st.integers() | st.floats(allow_nan=False, allow_infinity=False) | st.booleans())
    def test_scalar_roundtrip(self, value):
        parsed = parse_yaml_subset(f"key: {value!r}\n")["key"]
        assert parsed == value


class TestSpecParsing:
    def test_full_yaml_document(self):
        spec = parse_task_text(YAML_DOC)
        assert spec.name == "bert-pretrain"
        assert spec.resources.num_gpus == 16
        assert spec.environment.pip_packages == ("transformers==4.30.0", "datasets==2.13.0")
        assert spec.environment.env_vars == {"NCCL_DEBUG": "INFO"}
        assert spec.qos.job_tier is JobTier.GUARANTEED
        assert spec.code_files[0].path == "train.py"

    def test_json_document(self):
        data = {"name": "t", "entrypoint": "python x.py", "resources": {"num_gpus": 2}}
        spec = parse_task_text(json.dumps(data))
        assert spec.resources.num_gpus == 2

    def test_missing_required_field(self):
        with pytest.raises(SchemaError, match="entrypoint"):
            spec_from_dict({"name": "t"})

    def test_unknown_top_level_key(self):
        with pytest.raises(SchemaError, match="unknown keys"):
            spec_from_dict({"name": "t", "entrypoint": "x", "gpus": 4})

    def test_unknown_nested_key(self):
        with pytest.raises(SchemaError, match="resources"):
            spec_from_dict(
                {"name": "t", "entrypoint": "x", "resources": {"gpu_count": 4}}
            )

    def test_parse_task_file(self, tmp_path):
        path = tmp_path / "task.yaml"
        path.write_text(YAML_DOC)
        from repro.schema import parse_task_file

        assert parse_task_file(path).name == "bert-pretrain"


class TestSemanticValidation:
    def test_unknown_model_is_error(self):
        spec = TaskSpec(name="t", entrypoint="x", model="skynet")
        issues = validate_spec(spec)
        assert any(i.severity == "error" and i.field == "model" for i in issues)

    def test_low_memory_is_warning(self):
        spec = TaskSpec(
            name="t",
            entrypoint="x",
            model="gpt2-xl",
            resources=ResourceSpec(memory_gb_per_gpu=8.0),
        )
        issues = validate_spec(spec)
        assert any(i.severity == "warning" for i in issues)

    def test_cluster_gpu_type_check(self, tacc_cluster):
        spec = TaskSpec(
            name="t", entrypoint="x", resources=ResourceSpec(gpu_type="t4")
        )
        issues = validate_spec(spec, tacc_cluster)
        assert any("no 't4' nodes" in str(i) for i in issues)

    def test_oversized_request_rejected(self, tacc_cluster):
        spec = TaskSpec(
            name="t",
            entrypoint="x",
            resources=ResourceSpec(num_gpus=64, gpus_per_node=8, gpu_type="a100-80"),
        )
        with pytest.raises(SchemaError, match="failed validation"):
            ensure_valid(spec, tacc_cluster)

    def test_partition_admission(self, tacc_cluster):
        spec = TaskSpec(
            name="t",
            entrypoint="x",
            resources=ResourceSpec(num_gpus=8, walltime_hours=100.0, partition="a100"),
        )
        issues = validate_spec(spec, tacc_cluster)
        assert any("caps at" in str(i) for i in issues)

    def test_valid_spec_passes(self, tacc_cluster):
        spec = TaskSpec(
            name="t",
            entrypoint="x",
            model="resnet50",
            resources=ResourceSpec(num_gpus=8, gpu_type="v100"),
        )
        warnings = ensure_valid(spec, tacc_cluster)
        assert warnings == []


class TestRdmaSemantics:
    def test_multi_node_without_rdma_warns(self, tacc_cluster):
        spec = TaskSpec(
            name="t",
            entrypoint="x",
            resources=ResourceSpec(num_gpus=16, gpus_per_node=8, gpu_type="v100"),
        )
        issues = validate_spec(spec, tacc_cluster)
        assert any(i.field == "resources.rdma" and i.severity == "warning" for i in issues)

    def test_rdma_request_silences_warning(self, tacc_cluster):
        spec = TaskSpec(
            name="t",
            entrypoint="x",
            resources=ResourceSpec(num_gpus=16, gpus_per_node=8, gpu_type="v100", rdma=True),
        )
        issues = validate_spec(spec, tacc_cluster)
        assert not any(i.field == "resources.rdma" for i in issues)

    def test_single_node_needs_no_rdma(self, tacc_cluster):
        spec = TaskSpec(
            name="t", entrypoint="x", resources=ResourceSpec(num_gpus=8, gpu_type="v100")
        )
        issues = validate_spec(spec, tacc_cluster)
        assert not any(i.field == "resources.rdma" for i in issues)

    def test_compiler_sets_transport_env(self):
        from repro.compiler import TaskCompiler
        from repro.tcloud.frontend import synthesize_workspace

        for rdma, expected in ((True, "0"), (False, "1")):
            spec = TaskSpec(
                name="t",
                entrypoint="x",
                resources=ResourceSpec(num_gpus=16, gpus_per_node=8, rdma=rdma),
            )
            result = TaskCompiler().compile(spec, synthesize_workspace(spec))
            assert result.instruction.env_vars["NCCL_IB_DISABLE"] == expected
