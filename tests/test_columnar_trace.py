"""Tests for the columnar lazy fleet trace (satellite of the federation PR).

The contract: ``fleet_trace(..., lazy=True)`` must be observationally
*bit-identical* to the eager path — every statistic, row dump, and
materialised job — while deferring Job construction until something
actually needs job objects.
"""

from __future__ import annotations

import pytest

from repro.workload.columnar import COLUMN_NAMES, ColumnarTrace
from repro.workload.fleet import fleet_trace
from repro.workload.synth import tacc_campus


@pytest.fixture(scope="module")
def config():
    return tacc_campus(days=2.0, jobs_per_day=400.0, name="columnar-test")


@pytest.fixture(scope="module")
def eager(config):
    return fleet_trace(config, seed=7)


@pytest.fixture(scope="module")
def lazy(config):
    return fleet_trace(config, seed=7, lazy=True)


class TestLaziness:
    def test_starts_unmaterialized(self, config):
        trace = fleet_trace(config, seed=7, lazy=True)
        assert isinstance(trace, ColumnarTrace)
        assert not trace.materialized

    def test_column_stats_do_not_materialize(self, config):
        trace = fleet_trace(config, seed=7, lazy=True)
        _ = len(trace)
        _ = trace.span_seconds
        _ = trace.total_gpu_seconds_requested
        _ = trace.gpu_hours_by_demand()
        _ = trace.gpu_demand_histogram()
        _ = trace.submissions_per_hour()
        _ = trace.frozen_rows()
        _ = trace.summary()
        assert not trace.materialized

    def test_iteration_materializes(self, config):
        trace = fleet_trace(config, seed=7, lazy=True)
        jobs = list(trace)
        assert trace.materialized
        assert len(jobs) == len(trace)


class TestEquivalence:
    def test_lengths_match(self, eager, lazy):
        assert len(eager) == len(lazy)

    def test_summary_matches(self, eager, lazy):
        assert eager.summary() == lazy.summary()

    def test_column_stats_match_bitwise(self, eager, lazy):
        assert eager.span_seconds == lazy.span_seconds
        assert eager.total_gpu_seconds_requested == lazy.total_gpu_seconds_requested
        assert eager.gpu_hours_by_demand() == lazy.gpu_hours_by_demand()
        assert eager.gpu_demand_histogram() == lazy.gpu_demand_histogram()
        assert eager.submissions_per_hour() == lazy.submissions_per_hour()
        assert eager.users() == lazy.users()
        assert eager.labs() == lazy.labs()

    def test_frozen_rows_match_before_materialization(self, config, eager):
        fresh = fleet_trace(config, seed=7, lazy=True)
        assert fresh.frozen_rows() == eager.frozen_rows()
        assert not fresh.materialized

    def test_frozen_rows_match_after_materialization(self, eager, lazy):
        list(lazy)
        assert lazy.frozen_rows() == eager.frozen_rows()

    def test_jobs_identical_field_by_field(self, eager, lazy):
        for expected, actual in zip(eager, lazy):
            assert expected.job_id == actual.job_id
            assert expected.submit_time == actual.submit_time
            assert expected.duration == actual.duration
            assert expected.num_gpus == actual.num_gpus
            assert expected.user_id == actual.user_id
            assert expected.lab_id == actual.lab_id
            assert expected.tier == actual.tier
            assert expected.failure_plan == actual.failure_plan
            assert expected.elastic_min_gpus == actual.elastic_min_gpus

    def test_getitem_matches(self, eager, lazy):
        assert eager[0].job_id == lazy[0].job_id
        assert eager[-1].job_id == lazy[-1].job_id


class TestColumns:
    def test_column_names_complete(self, config):
        trace = fleet_trace(config, seed=7, lazy=True)
        assert set(trace._columns) == set(COLUMN_NAMES)
        lengths = {len(column) for column in trace._columns.values()}
        assert lengths == {len(trace)}
