"""Behavioural tests for the ordered-queue schedulers and DRF."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import ConfigError, SchedulingError
from repro.sched import (
    DrfScheduler,
    FifoScheduler,
    GreedyFifoScheduler,
    LargestJobFirstScheduler,
    SjfOracleScheduler,
    SjfScheduler,
    make_scheduler,
)
from repro.sched.base import ScheduleContext
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Trace
from tests.conftest import make_job


def run_trace(scheduler, jobs, num_nodes=1):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        Trace(list(jobs)),
        config=SimConfig(sample_interval_s=0.0, verify_every=10),
    )
    return simulator.run()


class TestRegistry:
    def test_all_default_schedulers_constructible(self):
        from repro.sched import SCHEDULERS

        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigError, match="known"):
            make_scheduler("omniscient")

    def test_tiered_quota_requires_quota(self):
        with pytest.raises(ConfigError, match="quota"):
            make_scheduler("tiered-quota")

    def test_placement_by_name(self):
        scheduler = make_scheduler("fifo", placement="best-fit")
        assert scheduler.placement.name == "best-fit"


class TestQueueManagement:
    def test_enqueue_requires_queued_state(self):
        scheduler = FifoScheduler()
        job = make_job("a")
        job.kill(0.0)
        with pytest.raises(SchedulingError):
            scheduler.enqueue(job, 0.0)

    def test_double_enqueue_rejected(self):
        scheduler = FifoScheduler()
        job = make_job("a")
        scheduler.enqueue(job, 0.0)
        with pytest.raises(SchedulingError, match="already queued"):
            scheduler.enqueue(job, 0.0)

    def test_remove_returns_job_or_none(self):
        scheduler = FifoScheduler()
        job = make_job("a")
        scheduler.enqueue(job, 0.0)
        assert scheduler.remove("a") is job
        assert scheduler.remove("a") is None
        assert scheduler.queue_depth == 0


class TestFifoSemantics:
    def test_strict_fifo_blocks_behind_wide_head(self):
        # 8-GPU cluster: wide head job (8) blocks, narrow follower must wait
        # under strict FIFO even though it would fit... after the runner.
        jobs = [
            make_job("run", num_gpus=6, duration=1000.0, submit_time=0.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0),
            make_job("tail", num_gpus=1, duration=10.0, submit_time=2.0),
        ]
        run_trace(FifoScheduler(), jobs)
        # head can only start at t=1000; tail must not overtake it.
        assert jobs[1].first_start_time == pytest.approx(1000.0)
        assert jobs[2].first_start_time >= jobs[1].first_start_time

    def test_greedy_fifo_lets_tail_overtake(self):
        jobs = [
            make_job("run", num_gpus=6, duration=1000.0, submit_time=0.0),
            make_job("head", num_gpus=8, duration=100.0, submit_time=1.0),
            make_job("tail", num_gpus=1, duration=10.0, submit_time=2.0),
        ]
        run_trace(GreedyFifoScheduler(), jobs)
        assert jobs[2].first_start_time == pytest.approx(2.0)

    def test_fifo_order_among_equals(self):
        jobs = [
            make_job("a", num_gpus=8, duration=10.0, submit_time=0.0),
            make_job("b", num_gpus=8, duration=10.0, submit_time=1.0),
            make_job("c", num_gpus=8, duration=10.0, submit_time=2.0),
        ]
        run_trace(FifoScheduler(), jobs)
        starts = [job.first_start_time for job in jobs]
        assert starts == sorted(starts)


class TestSjf:
    def test_sjf_orders_by_estimate_not_truth(self):
        jobs = [
            make_job("blocker", num_gpus=8, duration=100.0, submit_time=0.0),
            # Long true duration but SHORT estimate — SJF trusts the estimate.
            make_job("lying", num_gpus=8, duration=500.0, submit_time=1.0, walltime_estimate=10.0),
            make_job("honest", num_gpus=8, duration=50.0, submit_time=2.0, walltime_estimate=400.0),
        ]
        run_trace(SjfScheduler(), jobs)
        assert jobs[1].first_start_time < jobs[2].first_start_time

    def test_oracle_orders_by_truth(self):
        jobs = [
            make_job("blocker", num_gpus=8, duration=100.0, submit_time=0.0),
            make_job("lying", num_gpus=8, duration=500.0, submit_time=1.0, walltime_estimate=10.0),
            make_job("honest", num_gpus=8, duration=50.0, submit_time=2.0, walltime_estimate=400.0),
        ]
        run_trace(SjfOracleScheduler(), jobs)
        assert jobs[2].first_start_time < jobs[1].first_start_time

    def test_ljf_prefers_wide(self):
        jobs = [
            make_job("blocker", num_gpus=8, duration=100.0, submit_time=0.0),
            make_job("narrow", num_gpus=1, duration=10.0, submit_time=1.0),
            make_job("wide", num_gpus=8, duration=10.0, submit_time=2.0),
        ]
        run_trace(LargestJobFirstScheduler(), jobs)
        assert jobs[2].first_start_time <= jobs[1].first_start_time


class TestDrf:
    def test_poorest_user_served_first(self):
        # user-a already hogs 6 GPUs; DRF should start user-b's queued job
        # before user-a's next one when only 2 GPUs remain.
        jobs = [
            make_job("a1", num_gpus=6, duration=1000.0, submit_time=0.0, user="user-a"),
            make_job("a2", num_gpus=2, duration=10.0, submit_time=1.0, user="user-a"),
            make_job("b1", num_gpus=2, duration=10.0, submit_time=1.0, user="user-b"),
        ]
        run_trace(DrfScheduler(), jobs)
        assert jobs[2].first_start_time < jobs[1].first_start_time

    def test_drf_considers_cpu_dimension(self):
        # user-a's job is CPU-dominant: 1 GPU but 64 of 96 cpus.
        jobs = [
            make_job(
                "a1", num_gpus=1, cpus_per_gpu=64, duration=1000.0, submit_time=0.0, user="user-a"
            ),
            make_job("a2", num_gpus=1, duration=10.0, submit_time=1.0, user="user-a"),
            make_job("b1", num_gpus=1, duration=10.0, submit_time=1.0, user="user-b"),
        ]
        run_trace(DrfScheduler(), jobs)
        assert jobs[2].first_start_time <= jobs[1].first_start_time

    def test_drf_drains_queue_when_idle(self):
        jobs = [make_job(f"j{i}", num_gpus=2, duration=10.0, submit_time=0.0) for i in range(4)]
        result = run_trace(DrfScheduler(), jobs)
        assert result.metrics.jobs_completed == 4
        assert all(job.first_start_time == 0.0 for job in jobs)


class TestSchedulerPassBudget:
    def test_greedy_pass_starts_everything_fitting(self):
        jobs = [make_job(f"j{i}", num_gpus=1, duration=100.0, submit_time=0.0) for i in range(8)]
        run_trace(GreedyFifoScheduler(), jobs)
        assert all(job.first_start_time == 0.0 for job in jobs)

    def test_context_callbacks_used(self, small_cluster):
        """A scheduler pass must act only through context callbacks."""
        scheduler = GreedyFifoScheduler()
        job = make_job("a")
        scheduler.enqueue(job, 0.0)
        started = []
        ctx = ScheduleContext(
            now=0.0,
            cluster=small_cluster,
            running={},
            start_job=lambda job_, placement: started.append((job_.job_id, dict(placement))),
            preempt_job=lambda job_: pytest.fail("should not preempt"),
        )
        scheduler.schedule(ctx)
        assert started == [("a", {"v100-000": 1})]
        # The cluster itself must be untouched by the pass.
        assert small_cluster.free_gpus == small_cluster.total_gpus


class TestPassBudget:
    def test_scan_stops_after_consecutive_failures(self, small_cluster):
        """A deep queue of unplaceable jobs must not be scanned past the
        pass budget — the placeable job behind them waits for the next
        pass instead of an O(queue) scan finding it."""
        scheduler = GreedyFifoScheduler()
        scheduler.max_consecutive_failures = 5
        # Fill the cluster completely.
        for index, node in enumerate(sorted(small_cluster.nodes)):
            small_cluster.allocate(f"fill-{index}", {node: 8})
        blocked = [
            make_job(f"wide-{i}", num_gpus=8, submit_time=float(i)) for i in range(10)
        ]
        for job in blocked:
            scheduler.enqueue(job, 0.0)
        attempts = []
        original = scheduler.try_place

        def counting(ctx, job):
            attempts.append(job.job_id)
            return original(ctx, job)

        scheduler.try_place = counting
        ctx = ScheduleContext(
            now=10.0,
            cluster=small_cluster,
            running={},
            start_job=lambda *a: pytest.fail("nothing can start"),
            preempt_job=lambda *a: pytest.fail("no preemption"),
        )
        scheduler.schedule(ctx)
        assert len(attempts) == 5

    def test_budget_resets_on_success(self, small_cluster):
        scheduler = GreedyFifoScheduler()
        scheduler.max_consecutive_failures = 3
        jobs = [make_job(f"j{i}", num_gpus=1, submit_time=float(i)) for i in range(6)]
        for job in jobs:
            scheduler.enqueue(job, 0.0)
        started = []
        ctx = ScheduleContext(
            now=10.0,
            cluster=small_cluster,
            running={},
            start_job=lambda job, placement: started.append(job.job_id),
            preempt_job=lambda *a: None,
        )
        scheduler.schedule(ctx)
        assert len(started) == 6  # successes never consume the budget
