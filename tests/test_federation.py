"""Tests for multi-cluster federation routing."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeGroup, NodeSpec, build_cluster
from repro.errors import ConfigError, SchemaError, SimulationError
from repro.schema import FileSpec, ResourceSpec, TaskSpec
from repro.tcloud import (
    ClusterProfile,
    FederatedClient,
    TaccFrontend,
    TcloudConfig,
    reset_sessions,
)


@pytest.fixture(autouse=True)
def isolated_sessions():
    reset_sessions()
    yield
    reset_sessions()


def small_frontend(gpu_type="v100", nodes=2):
    cluster = build_cluster(
        ClusterSpec(
            name=f"site-{gpu_type}",
            groups=(NodeGroup(nodes, NodeSpec(gpu_type, 8, 96, 768), nodes_per_rack=nodes),),
        )
    )
    return TaccFrontend(cluster=cluster)


def federation(policy="least-queued"):
    config = TcloudConfig()
    config.add(ClusterProfile(name="site-a", endpoint="sim://site-a"))
    config.add(ClusterProfile(name="site-b", endpoint="sim://site-b"))
    frontends = {
        "site-a": small_frontend("v100"),
        "site-b": small_frontend("a100-80"),
    }
    return FederatedClient(config, policy=policy, frontends=frontends)


def spec(name="fed-task", gpus=8, gpu_type=None):
    return TaskSpec(
        name=name,
        entrypoint="python t.py",
        code_files=(FileSpec.of_bytes("t.py", b"pass"),),
        resources=ResourceSpec(num_gpus=gpus, gpu_type=gpu_type, walltime_hours=2.0),
        model="resnet50",
    )


class TestRouting:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="routing policy"):
            federation(policy="clairvoyant")

    def test_feasibility_filter(self):
        fed = federation()
        decision = fed.route(spec(gpu_type="a100-80"))
        assert decision.profile == "site-b"
        assert decision.excluded == ("site-a",)

    def test_infeasible_everywhere_raises(self):
        fed = federation()
        with pytest.raises(SchemaError, match="infeasible on every"):
            fed.route(spec(gpu_type="t4"))

    def test_least_queued_prefers_idle_site(self):
        fed = federation(policy="least-queued")
        # Clog site-a's queue.
        for index in range(4):
            fed.clients["site-a"].submit(spec(f"clog-{index}"), duration_hint_s=50_000.0)
        decision = fed.route(spec())
        assert decision.profile == "site-b"
        assert "queue pressure" in decision.reason

    def test_most_free_prefers_empty_site(self):
        fed = federation(policy="most-free")
        fed.clients["site-b"].submit(spec("hog"), duration_hint_s=50_000.0)
        decision = fed.route(spec())
        assert decision.profile == "site-a"
        assert "free GPUs" in decision.reason

    def test_first_feasible_follows_profile_order(self):
        fed = federation(policy="first-feasible")
        assert fed.route(spec()).profile == "site-a"


class TestRoutingEdgeCases:
    def twin_federation(self, policy):
        """Two byte-identical sites: every score ties, order must decide."""
        config = TcloudConfig()
        config.add(ClusterProfile(name="site-a", endpoint="sim://site-a"))
        config.add(ClusterProfile(name="site-b", endpoint="sim://site-b"))
        frontends = {
            "site-a": small_frontend("v100"),
            "site-b": small_frontend("v100"),
        }
        return FederatedClient(config, policy=policy, frontends=frontends)

    @pytest.mark.parametrize("policy", ["least-queued", "most-free", "first-feasible"])
    def test_ties_break_by_profile_order_deterministically(self, policy):
        fed = self.twin_federation(policy)
        decisions = [fed.route(spec()).profile for _ in range(5)]
        assert decisions == ["site-a"] * 5

    def test_route_does_not_submit(self):
        fed = federation()
        before = {name: len(client.queue()) for name, client in fed.clients.items()}
        fed.route(spec())
        after = {name: len(client.queue()) for name, client in fed.clients.items()}
        assert before == after

    def test_repeated_route_is_stable(self):
        fed = federation()
        first = fed.route(spec())
        second = fed.route(spec())
        assert (first.profile, first.considered, first.excluded) == (
            second.profile,
            second.considered,
            second.excluded,
        )


class TestProxying:
    def test_submit_and_proxy_verbs(self):
        fed = federation()
        federated_id, decision = fed.submit(spec(), duration_hint_s=600.0)
        assert federated_id.startswith(decision.profile + "/")
        status = fed.status(federated_id)
        assert status.state in ("queued", "running")
        fed.advance_all(300.0)
        final = fed.wait(federated_id)
        assert final.state == "completed"
        logs = fed.logs(federated_id)
        assert logs

    def test_proxying_after_forwarding(self):
        # Infeasible on site-a (no A100s) → forwarded to site-b; every
        # proxy verb must resolve through the federated id afterwards.
        fed = federation()
        federated_id, decision = fed.submit(
            spec(gpu_type="a100-80"), duration_hint_s=600.0
        )
        assert decision.profile == "site-b"
        assert fed.status(federated_id).state in ("queued", "running")
        final = fed.wait(federated_id)
        assert final.state == "completed"
        assert fed.logs(federated_id)
        assert fed.history(federated_id)

    def test_kill_proxies(self):
        fed = federation()
        federated_id, _decision = fed.submit(spec(), duration_hint_s=50_000.0)
        assert fed.kill(federated_id).state == "killed"

    def test_unknown_job(self):
        fed = federation()
        with pytest.raises(SimulationError, match="unknown federated"):
            fed.status("site-a/job-999999")

    def test_cluster_info_covers_all_sites(self):
        info = federation().cluster_info()
        assert set(info) == {"site-a", "site-b"}

    def test_load_spreads_across_sites(self):
        fed = federation()
        destinations = set()
        for index in range(4):
            _id, decision = fed.submit(
                spec(f"spread-{index}"), duration_hint_s=50_000.0
            )
            destinations.add(decision.profile)
        assert destinations == {"site-a", "site-b"}
