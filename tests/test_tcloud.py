"""Tests for the tcloud stack: config, frontend, client, CLI."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SchemaError, SimulationError
from repro.schema import EnvironmentSpec, FileSpec, QosSpec, ResourceSpec, TaskSpec
from repro.tcloud import (
    ClusterProfile,
    TaccFrontend,
    TcloudClient,
    TcloudConfig,
    reset_sessions,
)
from repro.tcloud.cli import main as tcloud_main


@pytest.fixture(autouse=True)
def isolated_sessions():
    reset_sessions()
    yield
    reset_sessions()


def demo_spec(name="demo-task", gpus=1, **kwargs):
    code = FileSpec.of_bytes("train.py", b"print('x')\n" * 50)
    defaults = dict(
        name=name,
        entrypoint="python train.py",
        code_files=(code,),
        resources=ResourceSpec(num_gpus=gpus, walltime_hours=2.0),
        model="resnet50",
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestTcloudConfig:
    def test_default_config(self):
        config = TcloudConfig.default()
        assert config.active == "campus"
        assert config.get().endpoint.startswith("sim://")

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            ClusterProfile(name="", endpoint="sim://x")
        with pytest.raises(ConfigError):
            ClusterProfile(name="p", endpoint="no-scheme")

    def test_add_switch_get(self):
        config = TcloudConfig()
        config.add(ClusterProfile(name="a"))
        config.add(ClusterProfile(name="b", endpoint="sim://other"))
        assert config.active == "a"
        config.switch("b")
        assert config.get().name == "b"
        with pytest.raises(ConfigError, match="unknown profile"):
            config.switch("c")

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "config.json"
        config = TcloudConfig()
        config.add(ClusterProfile(name="x", user="alice", lab="lab-07"), activate=True)
        config.save(path)
        loaded = TcloudConfig.load(path)
        assert loaded.active == "x"
        assert loaded.get().user == "alice"

    def test_load_missing_file_gives_default(self, tmp_path):
        config = TcloudConfig.load(tmp_path / "nope.json")
        assert config.active == "campus"

    def test_load_rejects_dangling_active(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text('{"active": "ghost", "profiles": {}}')
        with pytest.raises(ConfigError, match="ghost"):
            TcloudConfig.load(path)


class TestFrontend:
    def test_submission_runs_to_completion(self):
        frontend = TaccFrontend()
        job_id, compile_result, warnings = frontend.submit(
            demo_spec(), duration_hint_s=600.0
        )
        assert compile_result.instruction.runtime == "bare"
        assert warnings == []
        status = frontend.advance_until_done(job_id)
        assert status.state == "completed"
        assert status.progress == pytest.approx(1.0)

    def test_validation_errors_block_submission(self):
        frontend = TaccFrontend()
        bad = demo_spec(resources=ResourceSpec(num_gpus=64, gpus_per_node=8, gpu_type="a100-80"))
        with pytest.raises(SchemaError):
            frontend.submit(bad)

    def test_status_queue_position(self):
        frontend = TaccFrontend()
        # Fill the whole cluster, then submit one more.
        # 20 nodes can host an 8-GPU chunk (the 2080Ti nodes have only 4).
        blocker = demo_spec("blocker", gpus=8)
        ids = []
        for index in range(20):
            ids.append(frontend.submit(blocker, duration_hint_s=50_000.0)[0])
        queued_id, _c, _w = frontend.submit(demo_spec("queued", gpus=8), duration_hint_s=60.0)
        status = frontend.status(queued_id)
        assert status.state == "queued"
        assert status.queue_position == 1

    def test_logs_aggregate_across_nodes(self):
        frontend = TaccFrontend()
        spec = demo_spec("wide", gpus=16)
        spec = TaskSpec(
            name="wide",
            entrypoint="python train.py",
            code_files=spec.code_files,
            resources=ResourceSpec(num_gpus=16, gpus_per_node=8, walltime_hours=2.0),
            model="bert-base",
        )
        job_id, _c, _w = frontend.submit(spec, duration_hint_s=3600.0)
        frontend.advance(1800.0)
        streams = frontend.logs(job_id, tail=3)
        assert len(streams) == 2  # one stream per node
        assert all("rank" in lines[0] for lines in streams.values())

    def test_kill(self):
        frontend = TaccFrontend()
        job_id, _c, _w = frontend.submit(demo_spec(), duration_hint_s=50_000.0)
        frontend.advance(60.0)
        status = frontend.kill(job_id)
        assert status.state == "killed"
        with pytest.raises(SimulationError):
            frontend.kill("job-999999")

    def test_cluster_info(self):
        frontend = TaccFrontend()
        info = frontend.cluster_info()
        assert info["total_gpus"] == 176
        assert info["scheduler"] == "backfill-easy"

    def test_compile_cache_shared_across_submissions(self):
        frontend = TaccFrontend()
        _id1, first, _w = frontend.submit(demo_spec("t1"), duration_hint_s=60.0)
        _id2, second, _w = frontend.submit(demo_spec("t2"), duration_hint_s=60.0)
        assert first.upload.uploaded_bytes > 0
        assert second.upload.uploaded_bytes == 0  # same code content


class TestClient:
    def test_submit_and_wait(self):
        client = TcloudClient()
        job_id = client.submit(demo_spec(), duration_hint_s=120.0)
        status = client.wait(job_id)
        assert status.state == "completed"

    def test_clients_share_session_per_endpoint(self):
        a = TcloudClient()
        b = TcloudClient()
        job_id = a.submit(demo_spec(), duration_hint_s=60.0)
        assert b.status(job_id).state in ("queued", "running")

    def test_submit_text(self):
        client = TcloudClient()
        job_id = client.submit_text(
            "name: from-yaml\nentrypoint: python x.py\nresources:\n  num_gpus: 1\n",
            duration_hint_s=60.0,
        )
        assert client.status(job_id).name == "from-yaml"

    def test_non_sim_endpoint_rejected(self):
        config = TcloudConfig()
        config.add(ClusterProfile(name="prod", endpoint="ssh://real-cluster"))
        with pytest.raises(ConfigError, match="sim://"):
            TcloudClient(config)

    def test_queue_listing(self):
        client = TcloudClient()
        client.submit(demo_spec("one"), duration_hint_s=60.0)
        client.submit(demo_spec("two"), duration_hint_s=60.0)
        assert len(client.queue()) == 2


class TestCli:
    def write_task(self, tmp_path):
        path = tmp_path / "task.yaml"
        path.write_text(
            "name: cli-task\nentrypoint: python run.py\n"
            "model: resnet50\nresources:\n  num_gpus: 2\n  walltime_hours: 1.0\n"
        )
        return str(path)

    def test_validate_ok(self, tmp_path, capsys):
        assert tcloud_main(["validate", self.write_task(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_task(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("name: bad\nentrypoint: x\nresources:\n  num_gpus: 4096\n")
        assert tcloud_main(["validate", str(path)]) == 1

    def test_compile_prints_script(self, tmp_path, capsys):
        assert tcloud_main(["compile", self.write_task(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "rank 0 script" in out

    def test_submit_watch(self, tmp_path, capsys):
        assert tcloud_main(["submit", self.write_task(tmp_path), "--watch"]) == 0
        out = capsys.readouterr().out
        assert "submitted job-" in out
        assert "finished:" in out

    def test_info(self, capsys):
        assert tcloud_main(["info"]) == 0
        assert "total_gpus" in capsys.readouterr().out

    def test_profiles(self, capsys):
        assert tcloud_main(["profiles"]) == 0
        assert "campus" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert tcloud_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "final states" in out
        assert "completed" in out

    def test_error_exit_code(self, tmp_path, capsys):
        missing = str(tmp_path / "ghost.yaml")
        with pytest.raises(FileNotFoundError):
            tcloud_main(["validate", missing])
