"""Incremental hot path: relax epochs, blocked-verdict cache, release ledger.

Pins the three invariants the fleet-scale optimizations rest on:

1. ``ClusterIndex.relax_epoch`` ticks exactly on capacity-*increasing*
   events (free on a healthy node, repair) — never on allocations or
   failures, which only shrink the fit set.
2. ``Scheduler.try_place`` answers repeat failures from the blocked cache
   while the epoch is unchanged, without consulting the placement policy —
   the fix for the retry storm that made a 1024-GPU run cost 6x more
   placement attempts than a 2048-GPU one (the BENCH_hotpath anomaly).
3. The backfill release ledger reproduces the scalar
   ``_release_schedule`` scan.
"""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.sched import EasyBackfillScheduler, FifoScheduler
from repro.sched.backfill import _release_schedule
from repro.sched.base import ScheduleContext
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Trace
from repro.workload.synth import tacc_campus
from repro.workload.fleet import fleet_trace
from tests.conftest import make_job


class TestRelaxEpoch:
    def test_allocate_does_not_tick(self, small_cluster):
        index = small_cluster.index
        before = index.relax_epoch("v100"), index.relax_epoch(None)
        small_cluster.allocate("j1", {"v100-000": 4})
        assert (index.relax_epoch("v100"), index.relax_epoch(None)) == before

    def test_free_ticks_type_and_global(self, small_cluster):
        index = small_cluster.index
        small_cluster.allocate("j1", {"v100-000": 4})
        typed = index.relax_epoch("v100")
        untyped = index.relax_epoch(None)
        small_cluster.free("j1")
        assert index.relax_epoch("v100") == typed + 1
        assert index.relax_epoch(None) == untyped + 1

    def test_failure_does_not_tick_repair_does(self, small_cluster):
        index = small_cluster.index
        before = index.relax_epoch("v100")
        small_cluster.fail_node("v100-000")
        assert index.relax_epoch("v100") == before
        small_cluster.repair_node("v100-000")
        assert index.relax_epoch("v100") == before + 1

    def test_unknown_type_reads_zero(self, small_cluster):
        assert small_cluster.index.relax_epoch("no-such-gpu") == 0


class TestBlockedVerdictCache:
    """Regression for the 1024-GPU retry storm: on a congested cluster a
    second pass with no capacity change must not rescan any nodes."""

    def _congested_sim(self):
        cluster = uniform_cluster(4, gpus_per_node=8)
        # 4 jobs fill the cluster; 20 more are hopelessly queued behind them.
        jobs = [
            make_job(f"fill-{i}", num_gpus=8, duration=10_000.0, submit_time=0.0)
            for i in range(4)
        ] + [
            make_job(f"wait-{i:02d}", num_gpus=8, duration=100.0, submit_time=1.0 + i)
            for i in range(20)
        ]
        simulator = ClusterSimulator(
            cluster,
            FifoScheduler(),
            Trace(jobs),
            config=SimConfig(sample_interval_s=0.0),
        )
        return simulator

    def test_repeat_pass_hits_cache_without_scanning(self):
        simulator = self._congested_sim()
        # Run until every waiting job has arrived and been scanned once.
        simulator.run(until=100.0)
        perf = simulator.perf
        scans_before = perf.candidate_scans
        hits_before = perf.blocked_cache_hits

        # A pass with zero capacity change since the last one: every queued
        # job's failure verdict is still valid, so no placement scans run.
        ctx = ScheduleContext(
            now=simulator.engine.now,
            cluster=simulator.cluster,
            running=simulator.running,
            start_job=lambda job, placement: None,
            preempt_job=lambda job: None,
        )
        simulator.scheduler.schedule(ctx)
        assert perf.candidate_scans == scans_before
        assert perf.blocked_cache_hits > hits_before

    def test_cache_invalidated_by_free(self):
        simulator = self._congested_sim()
        simulator.run(until=100.0)
        queued_before = simulator.scheduler.queue_depth
        assert queued_before > 0
        # Finishing a running job frees capacity, ticks the relax epoch,
        # and the next pass must re-examine (and start) a queued job.
        simulator.run()
        result_queue = simulator.scheduler.queue_depth
        assert result_queue == 0
        assert all(job.state.terminal for job in simulator.jobs.values())

    def test_attempts_per_pass_stay_bounded(self):
        """The anomaly signature: attempts growing with passes on a stuck
        queue.  With the cache, a stuck pass costs one cache hit per
        queued job and zero node examinations."""
        simulator = self._congested_sim()
        simulator.run(until=100.0)
        perf = simulator.perf
        examined_before = perf.nodes_examined
        ctx = ScheduleContext(
            now=simulator.engine.now,
            cluster=simulator.cluster,
            running=simulator.running,
            start_job=lambda job, placement: None,
            preempt_job=lambda job: None,
        )
        for _ in range(10):
            simulator.scheduler.schedule(ctx)
        assert perf.nodes_examined == examined_before


class _AuditingEasy(EasyBackfillScheduler):
    """EASY backfill that cross-checks the ledger against the scalar scan
    for every queued job on every pass."""

    audits = 0

    def schedule(self, ctx: ScheduleContext) -> None:
        self._sync_ledger(ctx)
        for job in self._fifo_queue():
            if job.request.allowed_nodes is not None:
                continue
            expected = _release_schedule(ctx, job)
            got = self._ledger.releases(job.request.gpu_type, ctx.now)
            assert len(got) == len(expected)
            for (got_end, got_gpus), (want_end, want_gpus) in zip(got, expected):
                assert got_gpus == want_gpus
                assert got_end == pytest.approx(want_end, abs=1e-6)
            type(self).audits += 1
        super().schedule(ctx)


class TestReleaseLedgerExactness:
    def test_ledger_matches_scalar_scan_through_a_full_run(self):
        _AuditingEasy.audits = 0
        cluster = uniform_cluster(6, gpus_per_node=8)
        trace = fleet_trace(tacc_campus(days=1.0, jobs_per_day=400.0), seed=11)
        simulator = ClusterSimulator(
            cluster,
            _AuditingEasy(),
            trace,
            config=SimConfig(sample_interval_s=0.0, verify_every=200),
        )
        result = simulator.run()
        assert _AuditingEasy.audits > 50  # the comparison actually ran
        assert result.metrics.jobs_completed > 0

    def test_ledger_survives_preemption_requeue(self, small_cluster):
        """A requeued job must leave the ledger (on_enqueue discard)."""
        scheduler = EasyBackfillScheduler()
        job = make_job("r", num_gpus=8, duration=500.0, walltime_estimate=1000.0)
        small_cluster.allocate("r", {"v100-000": 8})
        job.start(0.0, ("v100-000",))
        ctx = ScheduleContext(
            now=0.0,
            cluster=small_cluster,
            running={"r": job},
            start_job=lambda *a: None,
            preempt_job=lambda *a: None,
        )
        scheduler._sync_ledger(ctx)
        assert len(scheduler._ledger) == 1
        small_cluster.free("r")
        job.preempt(10.0)
        scheduler.enqueue(job, 10.0)
        assert len(scheduler._ledger) == 0

    def test_reservation_counters_split_by_path(self):
        cluster = uniform_cluster(2, gpus_per_node=8)
        jobs = [
            make_job("run", num_gpus=16, gpus_per_node=8, duration=1000.0,
                     submit_time=0.0, walltime_estimate=1000.0),
            make_job("head", num_gpus=16, gpus_per_node=8, duration=100.0,
                     submit_time=1.0, walltime_estimate=100.0),
        ]
        simulator = ClusterSimulator(
            cluster,
            EasyBackfillScheduler(),
            Trace(jobs),
            config=SimConfig(sample_interval_s=0.0),
        )
        simulator.run()
        perf = simulator.perf
        assert perf.reservations_incremental > 0
        assert perf.reservations_scanned == 0
