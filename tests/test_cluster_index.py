"""Unit tests for the incremental cluster-state index.

The index's contract: after any sequence of ``allocate`` / ``free`` /
``fail_node`` / ``repair_node`` through the :class:`Cluster`, every O(1)
aggregate and histogram bucket equals what a full node scan would produce
(checked by ``verify_invariants``), and candidate pools preserve the exact
id order a ``sorted(cluster.nodes.items())`` scan would yield.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import build_tacc_cluster, uniform_cluster
from repro.errors import AllocationError


@pytest.fixture
def cluster():
    return build_tacc_cluster()  # 24 nodes, 176 GPUs, 4 GPU types


def test_initial_aggregates_match_scan(cluster):
    index = cluster.index
    assert index.total_gpus == 176
    assert index.healthy_gpus == 176
    assert index.used_gpus == 0
    assert index.free_healthy_gpus == 176
    assert index.free_gpus_of_type("v100") == 80
    assert index.free_gpus_of_type("nope") == 0
    cluster.verify_invariants()


def test_pools_preserve_sorted_id_order(cluster):
    index = cluster.index
    assert [n.node_id for n in index.nodes_sorted] == sorted(cluster.nodes)
    for gpu_type in index.gpu_types:
        pool_ids = [n.node_id for n in index.nodes_of_type(gpu_type)]
        expected = sorted(
            node_id
            for node_id, node in cluster.nodes.items()
            if node.spec.gpu_type == gpu_type
        )
        assert pool_ids == expected
    assert index.candidate_pool(None) is index.nodes_sorted


def test_allocate_free_cycle_updates_counters(cluster):
    index = cluster.index
    cluster.allocate("job-1", {"v100-000": 8, "v100-001": 8})
    assert index.used_gpus == 16
    assert index.free_healthy_gpus == 160
    assert index.free_gpus_of_type("v100") == 64
    # Histogram: two 8-GPU nodes became full.
    assert index.nodes_with_free("v100", 8) == 8
    assert index.nodes_with_free("v100", 1) == 8
    cluster.verify_invariants()

    cluster.allocate("job-2", {"v100-002": 3})
    assert index.nodes_with_free("v100", 8) == 7
    assert index.nodes_with_free("v100", 5) == 8  # the 3-used node still has 5
    cluster.verify_invariants()

    cluster.free("job-1")
    cluster.free("job-2")
    assert index.used_gpus == 0
    assert index.free_healthy_gpus == 176
    assert index.nodes_with_free("v100", 8) == 10
    cluster.verify_invariants()


def test_failed_allocation_rolls_back_index(cluster):
    index = cluster.index
    cluster.allocate("hog", {"v100-000": 8})
    with pytest.raises(AllocationError):
        # Second node in the placement is already full -> atomic rollback.
        cluster.allocate("doomed", {"v100-001": 8, "v100-000": 1})
    assert index.used_gpus == 8
    assert index.free_gpus_of_type("v100") == 72
    cluster.verify_invariants()


def test_fail_repair_transitions(cluster):
    index = cluster.index
    cluster.allocate("job-1", {"a100-80-000": 4})
    cluster.fail_node("a100-80-000")
    assert index.healthy_gpus == 168
    assert index.free_gpus_of_type("a100-80") == 24
    # Books survive failure: the 4 GPUs stay "used" until the job is freed.
    assert index.used_gpus == 4
    cluster.verify_invariants()

    # Freeing on a failed node must NOT return GPUs to the schedulable pool.
    cluster.free("job-1")
    assert index.used_gpus == 0
    assert index.free_gpus_of_type("a100-80") == 24
    cluster.verify_invariants()

    cluster.repair_node("a100-80-000")
    assert index.healthy_gpus == 176
    assert index.free_gpus_of_type("a100-80") == 32
    cluster.verify_invariants()

    # Idempotent repeats must not double-count.
    cluster.repair_node("a100-80-000")
    cluster.fail_node("a100-80-000")
    cluster.fail_node("a100-80-000")
    assert index.healthy_gpus == 168
    cluster.verify_invariants()


def test_placement_possible(cluster):
    index = cluster.index
    assert index.placement_possible("v100", 8, 10)
    assert not index.placement_possible("v100", 8, 11)  # only 10 v100 nodes
    assert not index.placement_possible("rtx2080ti", 8, 1)  # 4-GPU nodes
    assert index.placement_possible(None, 8, 10)
    assert not index.placement_possible(None, 8, 11)
    assert not index.placement_possible("nope", 1, 1)

    # Saturate the v100 pool and re-ask.
    for i in range(10):
        cluster.allocate(f"hog-{i}", {f"v100-{i:03d}": 8})
    assert not index.placement_possible("v100", 1, 1)
    assert index.placement_possible(None, 8, 4)  # a100 nodes still free
    cluster.verify_invariants()


def test_verify_detects_drift(cluster):
    # Mutating a node behind the cluster's back is exactly the bug class
    # verify() exists to catch.
    cluster.nodes["v100-000"].allocate("rogue", gpus=2, cpus=0, memory_gb=0.0)
    with pytest.raises(AllocationError, match="drifted"):
        cluster.verify_invariants()


def test_iter_candidates_accounts_perf():
    cluster = uniform_cluster(4, gpus_per_node=8)
    perf = cluster.index.perf
    # Early-stopping consumer still records the nodes it was handed.
    iterator = cluster.index.iter_candidates("v100", 1)
    next(iterator)
    next(iterator)
    iterator.close()
    assert perf.candidate_scans == 1
    assert perf.nodes_examined == 2

    # Impossible chunk: the scan is rejected without touching any node.
    assert list(cluster.index.iter_candidates("v100", 9)) == []
    assert perf.candidate_scans == 2
    assert perf.nodes_examined == 2
