"""Tests for the synthetic trace generator: shapes, presets, calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload import (
    DurationModel,
    JobTier,
    SyntheticTraceConfig,
    TraceSynthesizer,
    calibrate_jobs_per_day,
    expected_gpu_seconds_per_job,
    helios_like,
    philly_like,
    synthesize,
    tacc_campus,
    with_load,
)


class TestDurationModel:
    def test_median_class_selection(self):
        model = DurationModel(median_minutes={1: 10.0, 8: 100.0}, sigma=1.0)
        assert model.median_for(1) == 10.0
        assert model.median_for(7) == 10.0
        assert model.median_for(8) == 100.0
        assert model.median_for(64) == 100.0

    def test_sample_within_bounds(self, rng):
        model = DurationModel()
        samples = [model.sample(1, rng) for _ in range(500)]
        assert all(model.min_seconds <= s <= model.max_seconds for s in samples)

    def test_sample_median_near_configured(self, rng):
        model = DurationModel(median_minutes={1: 30.0}, sigma=1.0)
        samples = [model.sample(1, rng) for _ in range(4000)]
        assert np.median(samples) == pytest.approx(30 * 60.0, rel=0.15)

    def test_must_cover_demand_one(self):
        with pytest.raises(ConfigError, match="demand 1"):
            DurationModel(median_minutes={2: 10.0})

    def test_bounds_sane(self):
        with pytest.raises(ConfigError):
            DurationModel(min_seconds=100.0, max_seconds=50.0)


class TestConfigValidation:
    def test_pmf_must_sum_to_one(self):
        with pytest.raises(ConfigError, match="sum to 1"):
            SyntheticTraceConfig(gpu_demand_pmf={1: 0.5, 2: 0.4})

    def test_diurnal_profile_length(self):
        with pytest.raises(ConfigError, match="24"):
            SyntheticTraceConfig(diurnal_profile=(1.0,) * 23)

    def test_type_preferences_sum(self):
        with pytest.raises(ConfigError):
            SyntheticTraceConfig(gpu_type_preferences={"": 0.5})

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            SyntheticTraceConfig(guaranteed_fraction=1.5)


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = synthesize("tacc-campus", days=1.0, seed=42, jobs_per_day=120)
        b = synthesize("tacc-campus", days=1.0, seed=42, jobs_per_day=120)
        assert len(a) == len(b)
        assert all(
            (x.job_id, x.submit_time, x.duration, x.num_gpus, x.user_id)
            == (y.job_id, y.submit_time, y.duration, y.num_gpus, y.user_id)
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = synthesize("tacc-campus", days=1.0, seed=1, jobs_per_day=120)
        b = synthesize("tacc-campus", days=1.0, seed=2, jobs_per_day=120)
        assert [j.submit_time for j in a] != [j.submit_time for j in b]

    def test_volume_tracks_jobs_per_day(self):
        trace = synthesize("tacc-campus", days=4.0, seed=0, jobs_per_day=300)
        assert len(trace) == pytest.approx(4 * 300, rel=0.2)

    def test_submits_within_horizon(self):
        trace = synthesize("tacc-campus", days=2.0, seed=0, jobs_per_day=100)
        assert all(0 <= job.submit_time < 2 * 86400.0 for job in trace)

    def test_demand_distribution_matches_pmf(self):
        config = tacc_campus(days=7.0, jobs_per_day=600, interactive_fraction=0.0)
        trace = TraceSynthesizer(config, seed=3).generate()
        histogram = trace.gpu_demand_histogram()
        share_1 = histogram.get(1, 0) / len(trace)
        assert share_1 == pytest.approx(config.gpu_demand_pmf[1], abs=0.05)

    def test_tier_mix(self):
        config = tacc_campus(days=3.0, jobs_per_day=400, guaranteed_fraction=0.7)
        trace = TraceSynthesizer(config, seed=4).generate()
        guaranteed = sum(1 for j in trace if j.tier is JobTier.GUARANTEED)
        assert guaranteed / len(trace) == pytest.approx(0.7, abs=0.06)

    def test_interactive_jobs_short_and_narrow(self):
        config = tacc_campus(days=2.0, jobs_per_day=400, interactive_fraction=0.4)
        trace = TraceSynthesizer(config, seed=5).generate()
        interactive = [j for j in trace if j.interactive]
        assert interactive
        assert all(j.duration <= config.interactive_max_minutes * 60.0 for j in interactive)
        assert all(j.num_gpus <= 2 for j in interactive)

    def test_walltime_estimates_overestimate(self):
        trace = synthesize("tacc-campus", days=2.0, seed=6, jobs_per_day=300)
        ratios = [j.walltime_estimate / j.duration for j in trace]
        assert min(ratios) >= 1.0
        assert np.median(ratios) > 1.5

    def test_failure_fraction(self):
        config = tacc_campus(days=3.0, jobs_per_day=500, failure_fraction=0.2)
        trace = TraceSynthesizer(config, seed=7).generate()
        failed = sum(1 for j in trace if j.failure_plan is not None)
        assert failed / len(trace) == pytest.approx(0.2, abs=0.04)

    def test_diurnal_shape(self):
        trace = synthesize("tacc-campus", days=14.0, seed=8, jobs_per_day=800)
        by_hour = {h: 0 for h in range(24)}
        for job in trace:
            by_hour[int(job.submit_time % 86400 // 3600)] += 1
        night = sum(by_hour[h] for h in (2, 3, 4, 5)) / 4
        afternoon = sum(by_hour[h] for h in (14, 15, 16, 17)) / 4
        assert afternoon > 3 * night

    def test_weekend_trough(self):
        config = tacc_campus(days=14.0, jobs_per_day=800, weekend_factor=0.3)
        trace = TraceSynthesizer(config, seed=9).generate()
        weekday = sum(1 for j in trace if (j.submit_time // 86400) % 7 < 5) / 10
        weekend = sum(1 for j in trace if (j.submit_time // 86400) % 7 >= 5) / 4
        assert weekend / weekday == pytest.approx(0.3, abs=0.1)

    def test_wide_jobs_carry_per_node_cap(self):
        trace = synthesize("tacc-campus", days=7.0, seed=10, jobs_per_day=400)
        wide = [j for j in trace if j.num_gpus > 8]
        assert wide
        assert all(j.request.gpus_per_node == 8 for j in wide)


class TestPresets:
    def test_all_presets_generate(self):
        for preset in ("tacc-campus", "philly-like", "helios-like"):
            trace = synthesize(preset, days=1.0, seed=0)
            assert len(trace) > 0
            assert trace.name == preset

    def test_unknown_preset(self):
        with pytest.raises(ConfigError, match="known presets"):
            synthesize("borg-like", days=1.0)

    def test_philly_has_more_single_gpu(self):
        campus = tacc_campus()
        philly = philly_like()
        assert philly.gpu_demand_pmf[1] > campus.gpu_demand_pmf[1]

    def test_helios_more_interactive(self):
        assert helios_like().interactive_fraction > tacc_campus().interactive_fraction

    def test_overrides_apply(self):
        config = tacc_campus(days=3.0, weekend_factor=0.9)
        assert config.weekend_factor == 0.9
        assert config.days == 3.0


class TestLoadCalibration:
    def test_expected_gpu_seconds_positive_and_stable(self):
        config = tacc_campus()
        a = expected_gpu_seconds_per_job(config, seed=1)
        b = expected_gpu_seconds_per_job(config, seed=1)
        assert a == b > 0

    def test_calibration_hits_target_load(self):
        config = tacc_campus(days=7.0)
        calibrated = with_load(config, total_gpus=176, target_load=0.8, seed=0)
        trace = TraceSynthesizer(calibrated, seed=11).generate()
        offered = trace.total_gpu_seconds_requested
        capacity = 176 * 7 * 86400.0
        assert offered / capacity == pytest.approx(0.8, rel=0.35)

    def test_calibration_scales_linearly(self):
        config = tacc_campus()
        low = calibrate_jobs_per_day(config, 176, 0.5)
        high = calibrate_jobs_per_day(config, 176, 1.0)
        assert high == pytest.approx(2 * low, rel=1e-6)

    def test_invalid_targets(self):
        with pytest.raises(ConfigError):
            calibrate_jobs_per_day(tacc_campus(), 176, 0.0)
