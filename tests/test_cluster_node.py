"""Tests for GPU catalogue and node allocation bookkeeping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.gpu import GPU_CATALOG, GPUSpec, get_gpu_spec, register_gpu_spec
from repro.cluster.node import Node, NodeSpec
from repro.errors import AllocationError, CapacityError, ConfigError, UnknownJobError


class TestGpuCatalog:
    def test_known_types_present(self):
        for name in ("v100", "a100-40", "a100-80", "rtx3090", "rtx2080ti", "t4", "p100"):
            assert get_gpu_spec(name).name == name

    def test_unknown_type_lists_known(self):
        with pytest.raises(ConfigError, match="known types"):
            get_gpu_spec("h100")

    def test_relative_speed_anchored_to_v100(self):
        assert get_gpu_spec("v100").relative_speed == pytest.approx(1.0)
        assert get_gpu_spec("a100-80").relative_speed > 1.0
        assert get_gpu_spec("p100").relative_speed < 1.0

    def test_consumer_flag(self):
        assert not get_gpu_spec("rtx3090").datacenter_grade
        assert get_gpu_spec("a100-80").datacenter_grade

    def test_register_idempotent_for_equal_spec(self):
        spec = GPU_CATALOG["v100"]
        register_gpu_spec(spec)  # no error

    def test_register_conflicting_spec_rejected(self):
        clash = GPUSpec("v100", "Fake V100", 1, 1.0, 1.0, 1.0, True)
        with pytest.raises(ConfigError, match="different spec"):
            register_gpu_spec(clash)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec("bad", "Bad", 0, 1.0, 1.0, 1.0, True)
        with pytest.raises(ConfigError, match="tensor_tflops"):
            GPUSpec("bad", "Bad", 16, 10.0, 5.0, 1.0, True)


def fresh_node(num_gpus=8, cpus=64, memory_gb=512.0):
    return Node(
        node_id="n0",
        spec=NodeSpec("v100", num_gpus, cpus, memory_gb),
        rack_id="rack-01",
    )


class TestNodeSpec:
    def test_validates_gpu_type(self):
        with pytest.raises(ConfigError):
            NodeSpec("nope", 8, 64, 512)

    @pytest.mark.parametrize("field,value", [("num_gpus", 0), ("cpus", 0), ("memory_gb", 0), ("nic_gbps", 0)])
    def test_positive_fields(self, field, value):
        kwargs = {"gpu_type": "v100", "num_gpus": 8, "cpus": 64, "memory_gb": 512.0}
        kwargs[field] = value
        with pytest.raises(ConfigError):
            NodeSpec(**kwargs)


class TestNodeAllocation:
    def test_fresh_node_fully_free(self):
        node = fresh_node()
        assert node.free_gpus == 8
        assert node.free_cpus == 64
        assert node.idle

    def test_allocate_reserves_lowest_indices(self):
        node = fresh_node()
        alloc = node.allocate("j1", gpus=3, cpus=6, memory_gb=96)
        assert alloc.gpu_indices == (0, 1, 2)
        assert node.free_gpus == 5
        assert node.free_cpus == 58
        assert node.free_memory_gb == pytest.approx(416)

    def test_free_restores_everything(self):
        node = fresh_node()
        node.allocate("j1", gpus=4, cpus=8, memory_gb=128)
        released = node.free("j1")
        assert released.num_gpus == 4
        assert node.free_gpus == 8
        assert node.free_cpus == 64
        assert node.idle

    def test_indices_reused_deterministically(self):
        node = fresh_node()
        node.allocate("j1", gpus=2)
        node.allocate("j2", gpus=2)
        node.free("j1")
        alloc = node.allocate("j3", gpus=2)
        assert alloc.gpu_indices == (0, 1)

    def test_double_allocation_same_job_rejected(self):
        node = fresh_node()
        node.allocate("j1", gpus=1)
        with pytest.raises(AllocationError, match="already holds"):
            node.allocate("j1", gpus=1)

    def test_over_capacity_raises_capacity_error(self):
        node = fresh_node()
        with pytest.raises(CapacityError):
            node.allocate("j1", gpus=9)

    def test_insufficient_free_raises_allocation_error(self):
        node = fresh_node()
        node.allocate("j1", gpus=6)
        with pytest.raises(AllocationError, match="cannot fit"):
            node.allocate("j2", gpus=4)

    def test_negative_and_empty_requests_rejected(self):
        node = fresh_node()
        with pytest.raises(AllocationError):
            node.allocate("j1", gpus=-1)
        with pytest.raises(AllocationError, match="empty request"):
            node.allocate("j1", gpus=0, cpus=0, memory_gb=0)

    def test_cpu_only_allocation_allowed(self):
        node = fresh_node()
        alloc = node.allocate("svc", gpus=0, cpus=4, memory_gb=16)
        assert alloc.num_gpus == 0
        assert node.free_cpus == 60

    def test_free_unknown_job(self):
        with pytest.raises(UnknownJobError):
            fresh_node().free("ghost")

    def test_can_fit_checks_all_dimensions(self):
        node = fresh_node()
        assert node.can_fit(8, 64, 512)
        assert not node.can_fit(8, 65, 512)
        assert not node.can_fit(8, 64, 513)

    def test_holds_job_and_jobs_view(self):
        node = fresh_node()
        node.allocate("j1", gpus=1)
        assert node.holds_job("j1")
        assert node.jobs == ("j1",)


class TestNodeFailure:
    def test_fail_returns_victims_and_blocks_new_allocations(self):
        node = fresh_node()
        node.allocate("j1", gpus=2)
        victims = node.fail()
        assert victims == ("j1",)
        assert not node.healthy
        with pytest.raises(AllocationError, match="unhealthy"):
            node.allocate("j2", gpus=1)

    def test_free_works_on_failed_node(self):
        node = fresh_node()
        node.allocate("j1", gpus=2)
        node.fail()
        node.free("j1")
        assert node.free_gpus == 8

    def test_repair_requires_empty_books(self):
        node = fresh_node()
        node.allocate("j1", gpus=1)
        node.fail()
        with pytest.raises(AllocationError, match="cannot repair"):
            node.repair()
        node.free("j1")
        node.repair()
        assert node.healthy


class TestNodeInvariants:
    def test_verify_passes_normally(self):
        node = fresh_node()
        node.allocate("j1", gpus=3, cpus=3, memory_gb=3)
        node.verify_invariants()

    def test_verify_detects_corruption(self):
        node = fresh_node()
        node.allocate("j1", gpus=3)
        node._free_gpu_indices.add(0)  # corrupt the books deliberately
        with pytest.raises(AllocationError):
            node.verify_invariants()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 4)), min_size=1, max_size=40))
    def test_random_alloc_free_sequences_preserve_books(self, operations):
        node = fresh_node()
        live: list[str] = []
        counter = 0
        for do_alloc, gpus in operations:
            if do_alloc and node.free_gpus >= gpus:
                counter += 1
                name = f"j{counter}"
                node.allocate(name, gpus=gpus, cpus=gpus, memory_gb=float(gpus))
                live.append(name)
            elif live:
                node.free(live.pop(0))
            node.verify_invariants()
        used = sum(node.allocation_for(j).num_gpus for j in live)
        assert used + node.free_gpus == node.spec.num_gpus
