"""Tests for the preemptive SRTF scheduler and workload seasonality."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster import uniform_cluster
from repro.errors import ConfigError
from repro.execlayer import UnitExecutionModel
from repro.sched import SrtfScheduler, make_scheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Trace, TraceSynthesizer, deadline_cycle, tacc_campus
from tests.conftest import make_job


def run_trace(scheduler, jobs, num_nodes=1, checkpoint_loss=0.0):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        Trace(list(jobs)),
        exec_model=UnitExecutionModel(),
        config=SimConfig(
            sample_interval_s=0.0, verify_every=20, checkpoint_loss_s=checkpoint_loss
        ),
    )
    return simulator.run()


class TestSrtf:
    def test_registered(self):
        assert make_scheduler("srtf").name == "srtf"

    def test_short_job_preempts_long(self):
        jobs = [
            make_job("long", num_gpus=8, duration=10_000.0, submit_time=0.0, preemptible=True),
            make_job("short", num_gpus=8, duration=100.0, submit_time=10.0),
        ]
        result = run_trace(SrtfScheduler(), jobs)
        assert jobs[1].first_start_time == pytest.approx(10.0)
        assert jobs[0].preemptions == 1
        assert jobs[0].end_time == pytest.approx(10_100.0)  # no work lost
        assert result.metrics.jobs_completed == 2

    def test_longer_job_does_not_preempt(self):
        jobs = [
            make_job("short", num_gpus=8, duration=100.0, submit_time=0.0, preemptible=True),
            make_job("long", num_gpus=8, duration=10_000.0, submit_time=10.0),
        ]
        run_trace(SrtfScheduler(), jobs)
        assert jobs[0].preemptions == 0
        assert jobs[1].first_start_time == pytest.approx(100.0)

    def test_live_progress_counts(self):
        # The running job has nearly finished: its true remaining work is
        # below the newcomer's, so no preemption despite a longer duration.
        jobs = [
            make_job("long", num_gpus=8, duration=1000.0, submit_time=0.0, preemptible=True),
            make_job("mid", num_gpus=8, duration=200.0, submit_time=900.0),
        ]
        run_trace(SrtfScheduler(), jobs)
        assert jobs[0].preemptions == 0
        assert jobs[1].first_start_time == pytest.approx(1000.0)

    def test_non_preemptible_shielded(self):
        jobs = [
            make_job("long", num_gpus=8, duration=10_000.0, submit_time=0.0, preemptible=False),
            make_job("short", num_gpus=8, duration=100.0, submit_time=10.0),
        ]
        run_trace(SrtfScheduler(), jobs)
        assert jobs[0].preemptions == 0

    def test_hopeless_eviction_avoided(self):
        # Evictable capacity (4) + free (0) < need (8): no churn.
        jobs = [
            make_job("a", num_gpus=4, duration=10_000.0, submit_time=0.0, preemptible=True),
            make_job("b", num_gpus=4, duration=10_000.0, submit_time=0.0, preemptible=False),
            make_job("short", num_gpus=8, duration=100.0, submit_time=10.0),
        ]
        result = run_trace(SrtfScheduler(), jobs)
        assert result.metrics.preemptions == 0

    def test_srtf_bounds_mean_jct_vs_fifo(self):
        from repro.experiments import fresh_trace_copy
        from repro.workload import synthesize

        trace = synthesize("tacc-campus", days=1.0, seed=17, jobs_per_day=260)
        for job in trace:
            job.preemptible = True
        fifo_jobs = list(fresh_trace_copy(trace))
        for job in fifo_jobs:
            job.preemptible = True
        fifo = run_trace(make_scheduler("fifo-greedy"), fifo_jobs, num_nodes=4)
        srtf_jobs = list(fresh_trace_copy(trace))
        for job in srtf_jobs:
            job.preemptible = True
        srtf = run_trace(SrtfScheduler(), srtf_jobs, num_nodes=4)
        assert srtf.metrics.jct_mean_s <= fifo.metrics.jct_mean_s * 1.01


class TestRemainingWorkAt:
    def test_queued_job_full_remaining(self):
        job = make_job("a", duration=100.0)
        assert job.remaining_work_at(50.0) == 100.0

    def test_running_extrapolates_with_slowdown(self):
        job = make_job("a", duration=100.0)
        job.start(0.0, ("n",), slowdown=2.0)
        assert job.remaining_work_at(100.0) == pytest.approx(50.0)
        assert job.remaining_work_at(1e9) == 0.0


class TestSeasonality:
    def test_deadline_cycle_mean_is_one(self):
        cycle = deadline_cycle(cycle_days=28, surge_days=5, surge_factor=2.2)
        assert len(cycle) == 28
        assert sum(cycle) / len(cycle) == pytest.approx(1.0)
        assert max(cycle) == pytest.approx(2.2)

    def test_deadline_cycle_validation(self):
        with pytest.raises(ConfigError):
            deadline_cycle(surge_days=0)
        with pytest.raises(ConfigError):
            deadline_cycle(surge_factor=1.0)
        with pytest.raises(ConfigError):
            deadline_cycle(cycle_days=6, surge_days=5, surge_factor=2.0)

    def test_surge_visible_in_trace(self):
        config = replace(
            tacc_campus(days=28.0, jobs_per_day=400),
            daily_seasonality=deadline_cycle(28, 5, 2.5),
            weekend_factor=1.0,  # isolate the seasonal signal
        )
        trace = TraceSynthesizer(config, seed=4).generate()
        per_day: dict[int, int] = {}
        for job in trace:
            day = int(job.submit_time // 86400)
            per_day[day] = per_day.get(day, 0) + 1
        surge = sum(per_day.get(day, 0) for day in range(23, 28)) / 5
        quiet = sum(per_day.get(day, 0) for day in range(0, 23)) / 23
        assert surge / quiet == pytest.approx(2.5 / ((28 - 5 * 2.5) / 23), rel=0.2)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ConfigError):
            replace(tacc_campus(), daily_seasonality=(1.0, -0.5))

    def test_flat_default_unchanged(self):
        base = TraceSynthesizer(tacc_campus(days=2.0, jobs_per_day=100), seed=9).generate()
        flat = TraceSynthesizer(
            replace(tacc_campus(days=2.0, jobs_per_day=100), daily_seasonality=(1.0,)),
            seed=9,
        ).generate()
        assert [j.submit_time for j in base] == [j.submit_time for j in flat]
