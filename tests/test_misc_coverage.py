"""Cross-cutting tests for corners the subsystem suites don't reach:
frontend warning propagation, report downsampling, drain ordering,
experiment-result rendering, and feature interplay in the simulator."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.execlayer import SharedFilesystem, StorageConfig, UnitExecutionModel
from repro.experiments.common import ExperimentResult
from repro.sched import GreedyFifoScheduler
from repro.sched.base import drain_order
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobState, Trace
from tests.conftest import make_job


class TestDrainOrder:
    def test_latest_smallest_first(self):
        jobs = [
            make_job("old-wide", num_gpus=8, submit_time=0.0),
            make_job("new-wide", num_gpus=8, submit_time=100.0),
            make_job("new-narrow", num_gpus=1, submit_time=100.0),
        ]
        ordered = [job.job_id for job in drain_order(jobs)]
        assert ordered == ["new-narrow", "new-wide", "old-wide"]

    def test_id_tiebreak(self):
        jobs = [make_job("b", submit_time=0.0), make_job("a", submit_time=0.0)]
        assert [j.job_id for j in drain_order(jobs)] == ["a", "b"]


class TestFrontendWarnings:
    def test_memory_warning_surfaced_not_blocking(self):
        from repro.schema import FileSpec, ResourceSpec, TaskSpec
        from repro.tcloud import TaccFrontend

        frontend = TaccFrontend()
        spec = TaskSpec(
            name="low-mem",
            entrypoint="python t.py",
            code_files=(FileSpec.of_bytes("t.py", b"pass"),),
            model="gpt2-xl",  # needs ~28 GB/GPU
            resources=ResourceSpec(num_gpus=1, memory_gb_per_gpu=8.0, walltime_hours=1.0),
        )
        job_id, _compile, warnings = frontend.submit(spec, duration_hint_s=60.0)
        assert warnings
        assert any("OOM" in str(w) for w in warnings)
        assert frontend.status(job_id).state in ("queued", "running")


class TestExperimentResultRendering:
    def test_rows_and_series_both_rendered(self):
        result = ExperimentResult(
            "X1",
            "Test experiment",
            rows=[{"a": 1}],
            series={"line": [(0.0, 1.0)]},
            notes="the note",
            x_label="t",
        )
        text = result.render()
        assert "X1: Test experiment" in text
        assert "X1 series" in text
        assert "the note" in text

    def test_csv_prefers_rows(self, tmp_path):
        result = ExperimentResult("X1", "t", rows=[{"a": 1}], series={"s": [(0.0, 1.0)]})
        path = tmp_path / "x.csv"
        result.export_csv(path)
        assert path.read_text().splitlines()[0] == "a"

    def test_csv_falls_back_to_series(self, tmp_path):
        result = ExperimentResult("X1", "t", series={"s": [(0.0, 1.0)]}, x_label="t")
        path = tmp_path / "x.csv"
        result.export_csv(path)
        assert path.read_text().splitlines()[0] == "t,s"


class TestRenderSeriesDownsampling:
    def test_long_series_capped(self):
        from repro.ops import render_series

        series = {"y": [(float(i), float(i)) for i in range(500)]}
        text = render_series(series, max_rows=20)
        data_lines = [l for l in text.splitlines() if l and not l.startswith(("x", "-"))]
        assert len(data_lines) <= 21


class TestFeatureInterplay:
    def test_provisioning_storage_walltime_together(self):
        """All three start-time cost sources compose and enforcement sees
        the combined wall time."""
        storage = SharedFilesystem(StorageConfig(node_stage_gbps=10.0))
        # 100 GB dataset → 80 s stage; provisioning adds more; the 200 s
        # limit leaves little room for the 10 000 s of work: killed.
        job = make_job(
            "a",
            duration=10_000.0,
            walltime_estimate=200.0,
            dataset_gb=100.0,
            model_name="resnet50",
        )
        cluster = uniform_cluster(1, gpus_per_node=8)
        result = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([job]),
            exec_model=UnitExecutionModel(),
            storage=storage,
            config=SimConfig(
                sample_interval_s=0.0,
                provisioning=True,
                enforce_walltime=True,
                seed=0,
            ),
        ).run()
        assert job.state is JobState.KILLED
        # Setup (provisioning + staging) alone exceeds the limit; the
        # enforcement point is the end of setup, so zero work ran and the
        # job died as soon as its allocation became interruptible.
        assert job.end_time == pytest.approx(
            result.metrics.provision_seconds + result.metrics.stage_seconds, abs=1.0
        )
        assert job.work_done == pytest.approx(0.0, abs=1e-6)
        assert result.metrics.walltime_kills == 1
        assert result.metrics.stage_seconds > 0
        assert result.metrics.provision_seconds > 0
        cluster.verify_invariants()

    def test_elastic_job_with_walltime_enforcement(self):
        # An elastic job granted half width runs 2x longer; enforcement is
        # on *wall* time, so the narrow grant is what hits the limit.
        from repro.execlayer import ExecutionModel
        from repro.sched import ElasticScheduler

        blocker = make_job("blocker", num_gpus=4, duration=50_000.0, submit_time=0.0)
        elastic = make_job(
            "elastic",
            num_gpus=8,
            duration=900.0,
            submit_time=1.0,
            elastic_min_gpus=4,
            preemptible=True,
            walltime_estimate=1000.0,
            model_name="resnet50",
        )
        cluster = uniform_cluster(1, gpus_per_node=8)
        ClusterSimulator(
            cluster,
            ElasticScheduler(tick_s=300.0, resize_cooldown_s=1e9),
            Trace([blocker, elastic]),
            exec_model=ExecutionModel(),
            config=SimConfig(sample_interval_s=0.0, enforce_walltime=True),
        ).run(until=5000.0)
        # Granted 4 of 8 GPUs → ~2x stretch → ~1800 s needed > 1000 s limit.
        assert elastic.current_gpus in (0, 4)
        assert elastic.state in (JobState.KILLED, JobState.RUNNING)
        if elastic.state is JobState.KILLED:
            assert elastic.end_time - elastic.first_start_time == pytest.approx(
                1000.0, abs=1.0
            )

    def test_storage_plus_node_failure_requeue(self):
        """A job killed by a node failure re-stages on its new node but
        hits the warm cache when landing on the same one."""
        from repro.sim import FailureConfig

        storage = SharedFilesystem(StorageConfig(node_stage_gbps=10.0))
        job = make_job(
            "a", num_gpus=8, duration=4000.0, dataset_gb=10.0, model_name="resnet50"
        )
        cluster = uniform_cluster(1, gpus_per_node=8)
        result = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace([job]),
            exec_model=UnitExecutionModel(),
            storage=storage,
            failure_config=FailureConfig(mtbf_hours=0.5, repair_hours_median=0.05,
                                         max_job_restarts=50),
            config=SimConfig(sample_interval_s=0.0, seed=2),
        ).run()
        assert job.state is JobState.COMPLETED
        assert job.attempts > 1
        # Restarts on the same (only) node hit the cache: exactly one cold stage.
        assert storage.cache_hits == storage.stage_count - 1
