"""Unit and integration tests of the inference-serving subsystem."""

from __future__ import annotations

import math

import pytest

from repro.cluster import build_tacc_cluster
from repro.errors import ConfigError, ValidationError
from repro.sched import QuotaConfig, TieredQuotaScheduler
from repro.serving import (
    AutoscalerConfig,
    RateCurve,
    ReplicaRole,
    ServiceJob,
    ServiceLoadConfig,
    ServiceSpec,
    ServingFleet,
    SloAutoscaler,
    erlang_c,
    latency_quantile,
    min_replicas_for_slo,
    slo_attainment,
    synthesize_rate_curve,
)
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import assign_models, synthesize
from repro.workload.job import JobTier


def make_spec(**overrides) -> ServiceSpec:
    defaults = dict(
        service_id="svc-test",
        user_id="u-1",
        lab_id="lab-1",
        model_name="bert-base",
        slo_p99_s=1.0,
        base_replicas=2,
        max_replicas=8,
    )
    defaults.update(overrides)
    return ServiceSpec(**defaults)


class TestLatencyModel:
    def test_erlang_c_bounds_and_monotonicity(self):
        assert erlang_c(1, 1.2) == 1.0  # saturated: everything queues
        previous = 1.0
        for servers in range(1, 8):
            value = erlang_c(servers, 0.8)
            assert 0.0 <= value <= previous  # more servers, less queueing
            previous = value

    def test_latency_quantile_saturation(self):
        assert latency_quantile(10.0, 2.0, 0) == math.inf
        assert latency_quantile(10.0, 2.0, 4) == math.inf  # rate > c*mu
        finite = latency_quantile(10.0, 2.0, 6)
        assert finite > 1 / 2.0  # response includes the service time

    def test_latency_quantile_improves_with_capacity(self):
        tight = latency_quantile(10.0, 3.0, 4)
        loose = latency_quantile(10.0, 3.0, 8)
        assert loose < tight

    def test_slo_attainment_range_and_limits(self):
        assert slo_attainment(10.0, 2.0, 0, slo_s=1.0) == 0.0
        assert slo_attainment(10.0, 2.0, 4, slo_s=1.0) == 0.0  # saturated
        assert slo_attainment(10.0, 2.0, 6, slo_s=0.1) == 0.0  # slo < service time
        value = slo_attainment(10.0, 2.0, 8, slo_s=2.0)
        assert 0.0 < value <= 1.0
        # Idle fleet: effectively every request makes the SLO.
        assert slo_attainment(0.1, 2.0, 8, slo_s=2.0) == pytest.approx(1.0, abs=1e-6)

    def test_min_replicas_is_minimal_and_sufficient(self):
        rate, mu, slo = 20.0, 3.0, 1.5
        needed = min_replicas_for_slo(rate, mu, slo)
        assert needed is not None
        assert latency_quantile(rate, mu, needed) <= slo
        assert latency_quantile(rate, mu, needed - 1) > slo

    def test_min_replicas_unattainable(self):
        # SLO below the service time can never be met at any fleet size.
        assert min_replicas_for_slo(5.0, 2.0, slo_s=0.1) is None


class TestDemand:
    def test_curve_is_deterministic_per_seed(self):
        config = ServiceLoadConfig(peak_rps=50.0)
        a = synthesize_rate_curve(config, days=2.0, seed=3)
        b = synthesize_rate_curve(config, days=2.0, seed=3)
        c = synthesize_rate_curve(config, days=2.0, seed=4)
        assert a.points == b.points
        assert a.points != c.points

    def test_peak_anchoring_and_totals(self):
        config = ServiceLoadConfig(peak_rps=80.0, noise_sigma=0.0)
        curve = synthesize_rate_curve(config, days=7.0, seed=0)
        assert curve.peak_rps() == pytest.approx(80.0)
        # 7 days at tens of req/s = millions of requests.
        assert curve.total_requests() > 1e6
        assert curve.rate_at(-1.0) == 0.0
        assert curve.rate_at(curve.horizon_s) == 0.0
        assert curve.rate_at(0.0) == curve.points[0][1]

    def test_weekends_are_lighter(self):
        config = ServiceLoadConfig(peak_rps=60.0, noise_sigma=0.0, start_weekday=0)
        curve = synthesize_rate_curve(config, days=7.0, seed=0)
        monday_noon = curve.rate_at(12 * 3600.0)
        saturday_noon = curve.rate_at(5 * 86400.0 + 12 * 3600.0)
        assert saturday_noon == pytest.approx(monday_noon * config.weekend_factor)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceLoadConfig(peak_rps=0.0)
        with pytest.raises(ConfigError):
            ServiceLoadConfig(peak_rps=10.0, diurnal_profile=(1.0,) * 23)
        with pytest.raises(ConfigError):
            RateCurve(points=((1.0, 5.0),), horizon_s=10.0)  # must start at 0
        with pytest.raises(ConfigError):
            RateCurve(points=((0.0, 5.0), (0.0, 6.0)), horizon_s=10.0)


class TestServiceSpec:
    def test_validation(self):
        with pytest.raises(ValidationError):
            make_spec(slo_p99_s=0.0)
        with pytest.raises(ValidationError):
            make_spec(max_replicas=1, base_replicas=2)
        with pytest.raises(Exception):
            make_spec(model_name="no-such-model")

    def test_replica_jobs_carry_roles_and_tiers(self):
        service = ServiceJob(spec=make_spec())
        baseline = service.next_replica_job(ReplicaRole.BASELINE, now=0.0, horizon_s=86400.0)
        surge = service.next_replica_job(ReplicaRole.SURGE, now=10.0, horizon_s=86400.0)
        assert baseline.tier is JobTier.GUARANTEED and not baseline.preemptible
        assert surge.tier is JobTier.OPPORTUNISTIC and surge.preemptible
        assert baseline.service_id == surge.service_id == "svc-test"
        assert baseline.job_id != surge.job_id
        # Replicas outlive the horizon; the fleet retires them explicitly.
        assert baseline.duration > 86400.0

    def test_reference_rate_uses_requested_gpu(self):
        v100 = make_spec(gpu_type="v100").reference_rate_rps()
        a100 = make_spec(gpu_type="a100-80").reference_rate_rps()
        assert a100 > v100


class TestAutoscaler:
    def test_disabled_pins_baseline(self):
        scaler = SloAutoscaler(AutoscalerConfig(enabled=False))
        service = ServiceJob(spec=make_spec())
        assert scaler.target_replicas(service, 1e9) == service.spec.base_replicas

    def test_scale_up_is_immediate(self):
        scaler = SloAutoscaler(AutoscalerConfig(scale_down_hold_epochs=2))
        service = ServiceJob(spec=make_spec())
        delta = scaler.decide(service, rate_rps=200.0)
        assert delta > 0

    def test_scale_down_waits_for_hysteresis(self):
        scaler = SloAutoscaler(AutoscalerConfig(scale_down_hold_epochs=2))
        service = ServiceJob(spec=make_spec(base_replicas=1, max_replicas=8))
        # Grow the live fleet, then drop the rate: the first below-target
        # epoch must hold, the second may shed.
        for _ in range(scaler.decide(service, rate_rps=300.0)):
            job = service.next_replica_job(ReplicaRole.SURGE, 0.0, 86400.0)
            assert job.job_id in service.replicas
        assert len(service.live_replicas()) > 1
        assert scaler.decide(service, rate_rps=1.0) == 0  # hold epoch 1
        assert scaler.decide(service, rate_rps=1.0) < 0  # hold epoch 2: shed

    def test_zero_rate_sheds_immediately(self):
        scaler = SloAutoscaler(AutoscalerConfig(scale_down_hold_epochs=5))
        service = ServiceJob(spec=make_spec(base_replicas=1))
        for _ in range(4):
            service.next_replica_job(ReplicaRole.SURGE, 0.0, 86400.0)
        assert scaler.decide(service, rate_rps=0.0) < 0

    def test_target_clamped_to_spec_bounds(self):
        scaler = SloAutoscaler(AutoscalerConfig())
        service = ServiceJob(spec=make_spec(base_replicas=2, max_replicas=4))
        assert scaler.target_replicas(service, 0.001) == 2
        assert scaler.target_replicas(service, 1e9) == 4


def run_fleet(days=1.0, autoscaled=True, peak_rps=60.0, seed=11, trace_days=1.0):
    cluster = build_tacc_cluster()
    trace = synthesize("tacc-campus", days=trace_days, seed=seed, jobs_per_day=60)
    assign_models(trace, seed=seed)
    fleet = ServingFleet(
        [
            (
                make_spec(service_id="svc-a", lab_id="lab-serve"),
                ServiceLoadConfig(peak_rps=peak_rps),
            )
        ],
        days=days,
        autoscaler=AutoscalerConfig(enabled=autoscaled),
        seed=seed,
    )
    quotas = dict(QuotaConfig.equal_shares(trace.labs(), 176, fraction=0.5).quotas)
    quotas["lab-serve"] = 2
    simulator = ClusterSimulator(
        cluster,
        TieredQuotaScheduler(QuotaConfig(quotas=quotas)),
        trace,
        config=SimConfig(sample_interval_s=0.0, debug_invariants=0.2),
        serving=fleet,
    )
    return simulator.run(), trace


class TestFleetEndToEnd:
    def test_serving_metrics_populated(self):
        result, trace = run_fleet()
        serving = result.metrics.serving
        assert serving is not None
        assert serving.services == 1
        assert serving.offered_requests > 1e5
        assert serving.served_requests <= serving.offered_requests + 1e-6
        assert 0.0 <= serving.slo_attainment <= 1.0
        assert serving.slo_attainment > 0.9
        assert serving.baseline_gpu_hours > 0.0
        assert serving.replica_launches >= 2

    def test_replicas_excluded_from_training_population(self):
        result, trace = run_fleet()
        assert result.metrics.jobs_total == len(trace)
        replicas = [j for j in result.jobs.values() if j.service_id is not None]
        assert replicas, "fleet launched no replicas"
        assert all(j.state.terminal for j in replicas)

    def test_all_replicas_retired_at_horizon(self):
        result, _ = run_fleet(days=0.5, trace_days=0.5)
        replicas = [j for j in result.jobs.values() if j.service_id is not None]
        horizon = 0.5 * 86400.0
        for job in replicas:
            assert job.state.terminal
            if job.end_time is not None:
                assert job.end_time <= horizon + 1e-6

    def test_fixed_fleet_never_harvests(self):
        result, _ = run_fleet(autoscaled=False, peak_rps=300.0)
        serving = result.metrics.serving
        assert serving.harvested_gpu_hours == 0.0
        assert serving.scale_up_events <= 1  # the baseline launch only

    def test_autoscaled_beats_fixed_under_overload(self):
        auto, _ = run_fleet(autoscaled=True, peak_rps=400.0)
        fixed, _ = run_fleet(autoscaled=False, peak_rps=400.0)
        assert (
            auto.metrics.serving.slo_attainment
            > fixed.metrics.serving.slo_attainment
        )
        assert auto.metrics.serving.harvested_gpu_hours > 0.0

    def test_runs_are_deterministic(self):
        a, _ = run_fleet(seed=5)
        b, _ = run_fleet(seed=5)
        assert a.metrics.serving == b.metrics.serving
        assert a.summary() == b.summary()

    def test_duplicate_service_ids_rejected(self):
        workload = [
            (make_spec(service_id="dup"), ServiceLoadConfig(peak_rps=10.0)),
            (make_spec(service_id="dup"), ServiceLoadConfig(peak_rps=10.0)),
        ]
        with pytest.raises(ConfigError):
            ServingFleet(workload, days=1.0)

    def test_summary_gains_serving_columns_only_with_fleet(self):
        with_serving, trace = run_fleet()
        assert "slo_attainment" in with_serving.summary()
        from repro.sched import make_scheduler
        from repro.sim import simulate

        cluster = build_tacc_cluster()
        plain = simulate(cluster, make_scheduler("fifo"), trace.__class__(
            [], name="empty"
        ))
        assert "slo_attainment" not in plain.summary()
