"""Tests for public-trace adapters, the YAML emitter, the dashboard,
and the experiments CLI."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError, TraceError
from repro.schema import (
    ResourceSpec,
    TaskSpec,
    dump_yaml_subset,
    parse_yaml_subset,
    spec_to_yaml,
    parse_task_text,
)
from repro.workload import JobState, load_public_trace

PHILLY_CSV = """jobid,user,vc,submitted_time,duration,gpus,status
app_1,alice,vc-ml,2017-10-03 10:00:00,3600,4,Pass
app_2,bob,vc-vision,2017-10-03 11:30:00,7200,16,Failed
app_3,carol,vc-ml,2017-10-03 12:00:00,120,0,Pass
app_4,alice,vc-ml,2017-10-03 12:30:00,1800,1,Killed
"""

HELIOS_CSV = """job_id,user,gpu_num,cpu_num,state,submit_time,start_time,end_time
h1,u1,8,64,COMPLETED,1000,1100,5000
h2,u2,2,16,FAILED,2000,2100,2500
h3,u3,4,32,COMPLETED,3000,,
"""


class TestPublicTraceAdapters:
    def test_philly_style(self, tmp_path):
        path = tmp_path / "philly.csv"
        path.write_text(PHILLY_CSV)
        trace = load_public_trace(path)
        # CPU-only app_3 skipped.
        assert len(trace) == 3
        assert trace.metadata["skipped_rows"] == 1
        by_id = {job.job_id: job for job in trace}
        assert by_id["app_1"].num_gpus == 4
        assert by_id["app_1"].duration == 3600.0
        assert by_id["app_1"].lab_id == "lab-vc-ml"
        # Timestamps rebased: first submission at t=0.
        assert by_id["app_1"].submit_time == 0.0
        assert by_id["app_2"].submit_time == pytest.approx(5400.0)
        # Wide job gets per-node chunking.
        assert by_id["app_2"].request.gpus_per_node == 8
        # Failed job carries an end-of-run failure plan.
        assert by_id["app_2"].failure_plan is not None
        assert by_id["app_2"].failure_plan.at_fraction == 1.0
        assert by_id["app_4"].failure_plan is None  # killed ≠ failed

    def test_helios_style_start_end_times(self, tmp_path):
        path = tmp_path / "helios.csv"
        path.write_text(HELIOS_CSV)
        trace = load_public_trace(path)
        by_id = {job.job_id: job for job in trace}
        assert by_id["h1"].duration == pytest.approx(3900.0)
        assert by_id["h1"].request.cpus_per_gpu == 8
        assert "h3" not in by_id  # no runtime derivable
        assert len(trace) == 2

    def test_replayable_end_to_end(self, tmp_path):
        from repro.cluster import uniform_cluster
        from repro.sched import GreedyFifoScheduler
        from repro.sim import SimConfig, simulate

        path = tmp_path / "philly.csv"
        path.write_text(PHILLY_CSV)
        trace = load_public_trace(path)
        result = simulate(
            uniform_cluster(4, gpus_per_node=8),
            GreedyFifoScheduler(),
            trace,
            config=SimConfig(sample_interval_s=0.0),
        )
        states = {job.job_id: job.state for job in result.jobs.values()}
        assert states["app_1"] is JobState.COMPLETED
        assert states["app_2"] is JobState.FAILED

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("jobid,who\n1,alice\n")
        with pytest.raises(TraceError, match="missing required columns"):
            load_public_trace(path)

    def test_all_rows_unusable_rejected(self, tmp_path):
        path = tmp_path / "cpu_only.csv"
        path.write_text("jobid,submitted_time,gpus,duration\nj1,0,0,100\n")
        with pytest.raises(TraceError, match="no usable jobs"):
            load_public_trace(path)

    def test_bad_timestamp_reports_line(self, tmp_path):
        path = tmp_path / "bad_ts.csv"
        path.write_text("jobid,submitted_time,gpus,duration\nj1,yesterday,2,100\n")
        with pytest.raises(TraceError, match=":2:"):
            load_public_trace(path)


class TestYamlEmitter:
    def test_dump_basic(self):
        text = dump_yaml_subset({"a": 1, "b": {"c": "x"}, "d": [1, 2]})
        assert parse_yaml_subset(text) == {"a": 1, "b": {"c": "x"}, "d": [1, 2]}

    def test_quoting_of_tricky_strings(self):
        tricky = {"s": "has: colon", "n": "123", "b": "true", "h": "a#b"}
        assert parse_yaml_subset(dump_yaml_subset(tricky)) == tricky

    def test_empty_containers_rejected(self):
        with pytest.raises(SchemaError):
            dump_yaml_subset({})
        with pytest.raises(SchemaError):
            dump_yaml_subset({"a": []})

    def test_unrepresentable_keys_rejected(self):
        with pytest.raises(SchemaError):
            dump_yaml_subset({"bad:key": 1})

    def test_spec_roundtrip(self):
        spec = TaskSpec(
            name="roundtrip",
            entrypoint="python train.py --lr 0.1",
            model="bert-base",
            resources=ResourceSpec(num_gpus=16, gpus_per_node=8, gpu_type="a100-80"),
        )
        restored = parse_task_text(spec_to_yaml(spec))
        assert restored.fingerprint() == spec.fingerprint()

    yaml_scalars = st.one_of(
        st.integers(-10**6, 10**6),
        st.booleans(),
        st.text(alphabet="abcdefghij XYZ_.-", min_size=1, max_size=12).filter(
            lambda s: s == s.strip()
        ),
    )

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.text(alphabet="abcdef_", min_size=1, max_size=8),
            st.one_of(
                yaml_scalars,
                st.lists(yaml_scalars, min_size=1, max_size=4),
                st.dictionaries(
                    st.text(alphabet="ghij_", min_size=1, max_size=6),
                    yaml_scalars,
                    min_size=1,
                    max_size=3,
                ),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_parse_inverts_dump(self, data):
        assert parse_yaml_subset(dump_yaml_subset(data)) == data


class TestDashboard:
    def test_live_dashboard_renders(self):
        from repro.ops import live_dashboard
        from repro.tcloud import TaccFrontend, reset_sessions
        from repro.schema import FileSpec

        reset_sessions()
        frontend = TaccFrontend()
        spec = TaskSpec(
            name="dash-job",
            entrypoint="python t.py",
            code_files=(FileSpec.of_bytes("t.py", b"pass"),),
            resources=ResourceSpec(num_gpus=8, walltime_hours=2.0),
            model="resnet50",
        )
        frontend.submit(spec, duration_hint_s=7200.0)
        frontend.advance(600.0)
        text = live_dashboard(
            frontend.cluster, frontend.sim.jobs, frontend.now, frontend.scheduler.queue_depth
        )
        assert "tacc-campus" in text
        assert "1 running" in text
        assert "dash" not in text or True  # table shows job ids
        assert "widest running jobs" in text

    def test_run_report_renders(self):
        from repro.cluster import uniform_cluster
        from repro.ops import run_report
        from repro.sched import GreedyFifoScheduler
        from repro.sim import SimConfig, simulate
        from repro.workload import assign_models, synthesize

        trace = synthesize("tacc-campus", days=0.5, seed=1, jobs_per_day=60)
        assign_models(trace, seed=1)
        result = simulate(
            uniform_cluster(4, gpus_per_node=8),
            GreedyFifoScheduler(),
            trace,
            config=SimConfig(sample_interval_s=1800.0),
        )
        text = run_report(result)
        assert "run report" in text
        assert "top" in text
        assert "lab fairness" in text
        assert "GPU-h served" in text


class TestExperimentsCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "A4" in out

    def test_run_one_with_csv(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        assert main(["T1", "--scale", "0.2", "--csv-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Cluster composition" in out
        assert (tmp_path / "T1.csv").exists()

    def test_unknown_id_errors(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["Z9"])

    def test_tcloud_top_cli(self, capsys):
        from repro.tcloud import reset_sessions
        from repro.tcloud.cli import main

        reset_sessions()
        assert main(["top"]) == 0
        out = capsys.readouterr().out
        assert "tacc-campus" in out
        assert "healthy" in out
