"""Fleet-scale golden: a 32k-GPU run is bit-stable across perf refactors.

The other golden suites pin campus-sized runs; this one pins the fleet
regime the calendar queue, blocked-verdict cache, release ledger, and
array-mirror scans were built for — 4096 nodes (32768 GPUs) under a
vectorized fleet trace.  A short horizon keeps it tier-1 fast while still
exercising every fleet path: ``FleetTraceSynthesizer`` arrays, the
calendar queue with tens of thousands of pending events, incremental
backfill reservations, and the numpy candidate masks at a node count
where a Python scan would dominate.

As with ``test_golden_determinism``, every float must match *exactly*:
drift here means a scheduling decision changed, not just a performance
characteristic.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster import uniform_cluster
from repro.experiments.common import run_policy
from repro.sched import make_scheduler
from repro.sim import SimConfig
from repro.workload.fleet import fleet_trace
from repro.workload.models import assign_models
from repro.workload.synth import tacc_campus

# summary() captured at seed 0 when the fleet hot path landed.
GOLDEN: dict[str, float] = {
    "completed": 10811.0,
    "avg_jct_h": 2.1809573018942987,
    "p50_jct_h": 0.31402765600905697,
    "p99_jct_h": 34.76663179950323,
    "avg_wait_h": 0.0,
    "p99_wait_h": 0.0,
    "utilization": 0.04352504060739075,
    "makespan_h": 258.91686696822507,
    "preemptions": 0.0,
    "events": 52322.0,
}


@pytest.fixture(scope="module")
def fleet_result():
    config = tacc_campus(days=1.0, jobs_per_day=15_000.0, name="tacc-fleet-golden")
    trace = fleet_trace(config, seed=0)
    assign_models(trace, seed=0)
    cluster = uniform_cluster(4096, gpus_per_node=8)
    return run_policy(
        make_scheduler("backfill-easy"),
        trace,
        cluster=cluster,
        sim_config=SimConfig(sample_interval_s=3600.0, record_transitions=False),
    )


def test_summary_matches_golden_exactly(fleet_result):
    summary = fleet_result.summary()
    assert set(summary) == set(GOLDEN)
    for key, want in GOLDEN.items():
        got = summary[key]
        if isinstance(want, float) and math.isnan(want):
            assert math.isnan(got), f"{key}: expected NaN, got {got!r}"
        else:
            # Exact — not approx — equality: bitwise determinism is the contract.
            assert got == want, f"{key}: {got!r} != golden {want!r}"


def test_fleet_run_used_the_hot_path(fleet_result):
    """The golden run must actually exercise the fleet machinery."""
    perf = fleet_result.perf
    assert fleet_result.events_processed > 5_000
    assert perf.peak_pending_events > 1_000  # calendar queue under real load
    assert perf.events_dequeued == fleet_result.events_processed
    # record_transitions=False drops records but keeps aggregates exact.
    assert fleet_result.transitions == []
