"""Tests for elastic jobs and the Pollux-style adaptive scheduler."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import JobStateError, ValidationError
from repro.execlayer import ExecutionModel, UnitExecutionModel
from repro.sched import ElasticScheduler, grant_candidates
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobState, Trace
from tests.conftest import make_job


def elastic_job(job_id="e0", num_gpus=8, min_gpus=2, duration=3600.0, **kwargs):
    kwargs.setdefault("preemptible", True)
    return make_job(
        job_id,
        num_gpus=num_gpus,
        duration=duration,
        elastic_min_gpus=min_gpus,
        model_name="resnet50",
        **kwargs,
    )


def run_trace(scheduler, jobs, num_nodes=1, exec_model=None, until=None):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        Trace(list(jobs)),
        exec_model=exec_model or ExecutionModel(),
        config=SimConfig(sample_interval_s=0.0, verify_every=25, checkpoint_loss_s=0.0),
    )
    return simulator.run(until=until), cluster


class TestElasticJobModel:
    def test_validation(self):
        with pytest.raises(ValidationError, match="elastic_min_gpus"):
            make_job("a", num_gpus=4, elastic_min_gpus=5)
        with pytest.raises(ValidationError):
            make_job("a", num_gpus=4, elastic_min_gpus=0)

    def test_elastic_flag(self):
        assert elastic_job().elastic
        assert not make_job("r").elastic

    def test_start_grant_bounds(self):
        job = elastic_job(num_gpus=8, min_gpus=2)
        with pytest.raises(JobStateError, match="granted"):
            job.start(0.0, ("n",), granted_gpus=1)
        job.start(0.0, ("n",), granted_gpus=4)
        assert job.current_gpus == 4

    def test_rigid_start_requires_full_grant(self):
        job = make_job("r", num_gpus=8)
        with pytest.raises(JobStateError):
            job.start(0.0, ("n",), granted_gpus=4)

    def test_gpu_seconds_use_granted_width(self):
        job = elastic_job(num_gpus=8, min_gpus=2, duration=100.0)
        job.start(0.0, ("n",), slowdown=2.0, granted_gpus=4)
        job.preempt(100.0)
        assert job.gpu_seconds_used == pytest.approx(400.0)  # 4 GPUs × 100 s

    def test_csv_roundtrip_preserves_elasticity(self, tmp_path):
        trace = Trace([elastic_job(), make_job("rigid", dataset_gb=40.0)])
        path = tmp_path / "t.csv"
        trace.to_csv(path)
        restored = Trace.from_csv(path)
        assert restored.jobs[0].elastic_min_gpus == 2
        assert restored.jobs[1].elastic_min_gpus is None
        assert restored.jobs[1].dataset_gb == 40.0


class TestGrantCandidates:
    def test_rigid_single_candidate(self):
        assert grant_candidates(make_job("r", num_gpus=8)) == [8]

    def test_halving_down_to_min(self):
        assert grant_candidates(elastic_job(num_gpus=8, min_gpus=2)) == [8, 4, 2]

    def test_min_always_included(self):
        assert grant_candidates(elastic_job(num_gpus=8, min_gpus=3)) == [8, 4, 3]

    def test_multi_node_chunk_alignment(self):
        job = elastic_job(num_gpus=16, min_gpus=4, gpus_per_node=8)
        assert grant_candidates(job) == [16, 8, 4]


class TestExecutionModelElastic:
    def test_narrow_grant_stretches_work(self):
        cluster = uniform_cluster(2, gpus_per_node=8)
        model = ExecutionModel()
        job = elastic_job(num_gpus=8, min_gpus=2)
        node = sorted(cluster.nodes)[0]
        full = model.slowdown(job, {node: 8}, cluster)
        half = model.slowdown(job, {node: 4}, cluster)
        assert half > full
        # At least the batch-rate stretch of 2x (comm gets cheaper, so the
        # net can be slightly under the naive ratio times two).
        assert half / full > 1.5

    def test_rigid_jobs_unchanged(self):
        cluster = uniform_cluster(2, gpus_per_node=8)
        model = ExecutionModel()
        job = make_job("r", num_gpus=8, model_name="resnet50")
        node = sorted(cluster.nodes)[0]
        assert model.slowdown(job, {node: 8}, cluster) == pytest.approx(1.0)


class TestElasticScheduler:
    def test_contention_runs_both_narrower(self):
        # One 8-GPU node, two elastic 8-GPU jobs: the second should be
        # admitted by shrinking rather than waiting the first one out.
        jobs = [
            elastic_job("e1", num_gpus=8, min_gpus=2, duration=7200.0, submit_time=0.0),
            elastic_job("e2", num_gpus=8, min_gpus=2, duration=7200.0, submit_time=60.0),
        ]
        scheduler = ElasticScheduler(tick_s=300.0, resize_cooldown_s=600.0)
        result, _ = run_trace(scheduler, jobs, exec_model=UnitExecutionModel())
        # e2 started long before e1's full runtime elapsed.
        assert jobs[1].first_start_time < 3600.0
        assert result.metrics.preemptions >= 1
        assert all(job.state is JobState.COMPLETED for job in jobs)

    def test_queued_job_takes_widest_fitting_grant(self):
        jobs = [
            make_job("rigid", num_gpus=4, duration=5000.0, submit_time=0.0),
            elastic_job("e1", num_gpus=8, min_gpus=2, duration=1000.0, submit_time=1.0),
        ]
        run_trace(ElasticScheduler(), jobs, exec_model=UnitExecutionModel(), until=2.0)
        assert jobs[1].state is JobState.RUNNING
        assert jobs[1].current_gpus == 4  # widest grant that fit

    def test_grow_into_idleness(self):
        jobs = [
            elastic_job("e1", num_gpus=8, min_gpus=2, duration=40_000.0, submit_time=0.0),
            elastic_job("e2", num_gpus=8, min_gpus=2, duration=600.0, submit_time=10.0),
        ]
        scheduler = ElasticScheduler(tick_s=300.0, resize_cooldown_s=300.0)
        _result, _ = run_trace(scheduler, jobs, exec_model=UnitExecutionModel(), until=20_000.0)
        # e2 finished long ago; e1 should have been regrown to full width.
        assert jobs[1].state is JobState.COMPLETED
        assert jobs[0].state is JobState.RUNNING
        assert jobs[0].current_gpus == 8

    def test_rigid_jobs_never_resized(self):
        jobs = [
            make_job("rigid", num_gpus=8, duration=5000.0, submit_time=0.0),
            elastic_job("e1", num_gpus=8, min_gpus=2, duration=1000.0, submit_time=10.0),
        ]
        run_trace(ElasticScheduler(tick_s=200.0, resize_cooldown_s=200.0), jobs)
        assert jobs[0].preemptions == 0

    def test_cooldown_limits_resizes(self):
        jobs = [
            elastic_job("e1", num_gpus=8, min_gpus=1, duration=20_000.0, submit_time=0.0),
            elastic_job("e2", num_gpus=8, min_gpus=1, duration=20_000.0, submit_time=1.0),
        ]
        scheduler = ElasticScheduler(tick_s=100.0, resize_cooldown_s=1e9)
        result, _ = run_trace(
            scheduler, jobs, exec_model=UnitExecutionModel(), until=10_000.0
        )
        # With an infinite cooldown each job can be resized at most once.
        assert result.metrics.preemptions <= 2

    def test_elastic_improves_jct_over_fifo_under_contention(self):
        def build_jobs():
            return [
                elastic_job(f"e{i}", num_gpus=8, min_gpus=2,
                            duration=3600.0, submit_time=float(i))
                for i in range(4)
            ]

        from repro.sched import GreedyFifoScheduler

        elastic_result, _ = run_trace(
            ElasticScheduler(tick_s=300.0, resize_cooldown_s=600.0),
            build_jobs(),
            exec_model=ExecutionModel(),
        )
        rigid_result, _ = run_trace(
            GreedyFifoScheduler(), build_jobs(), exec_model=ExecutionModel()
        )
        assert (
            elastic_result.metrics.wait_mean_s < rigid_result.metrics.wait_mean_s
        )
