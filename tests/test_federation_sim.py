"""Tests for the federated simulator: lockstep loop, routing, migration,
and the fleet-level goodput merge.

The accounting assertions here are *exact* (``==`` on floats or 1e-9
bounds), not approximate: the merge is designed so per-site GPU-second
integrals telescope into the fleet figures with no residue, and any
drift means the bookkeeping — not the arithmetic — changed.
"""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import ConfigError, SimulationError
from repro.federation import (
    FederationSimulator,
    FederationSpec,
    ROUTING_POLICIES,
    SiteSpec,
    build_federation,
    build_site,
)
from repro.federation.routing import route_first_feasible, route_home
from repro.sched import make_scheduler
from repro.sim.simulator import ClusterSimulator, SimConfig
from repro.sweep.spec import ClusterSpec, SchedulerSpec
from repro.workload import Job, ResourceRequest
from repro.workload.trace import Trace

from .conftest import make_job


def small_sim(seed=0, nodes=2, scheduler="fifo", gpus_per_node=8):
    return ClusterSimulator(
        cluster=uniform_cluster(nodes, gpus_per_node=gpus_per_node),
        scheduler=make_scheduler(scheduler),
        trace=Trace([], name=f"site-{seed}"),
        config=SimConfig(seed=seed),
    )


def overload_trace(num_jobs=16, gpus=8, duration=14400.0, spacing=30.0):
    """Wide jobs arriving faster than one 16-GPU site can drain them."""
    return Trace(
        [
            make_job(f"job-{index:06d}", num_gpus=gpus, duration=duration,
                     submit_time=index * spacing)
            for index in range(num_jobs)
        ],
        name="overload",
    )


def two_site(policy="first-feasible", **kwargs):
    defaults = dict(
        tick_s=600.0,
        migrate_after_wait_s=1200.0,
        elastic_cooldown_s=0.0,
        max_migrations_per_job=2,
    )
    defaults.update(kwargs)
    return FederationSimulator(
        overload_trace(),
        [("alpha", small_sim(1)), ("beta", small_sim(2))],
        policy=policy,
        **defaults,
    )


class TestConstruction:
    def test_needs_sites(self):
        with pytest.raises(ConfigError, match="at least one site"):
            FederationSimulator(Trace([], name="t"), [], policy="home")

    def test_unique_names(self):
        with pytest.raises(ConfigError, match="unique"):
            FederationSimulator(
                Trace([], name="t"),
                [("a", small_sim(1)), ("a", small_sim(2))],
            )

    def test_distinct_simulators(self):
        sim = small_sim(1)
        with pytest.raises(ConfigError, match="own simulator"):
            FederationSimulator(Trace([], name="t"), [("a", sim), ("b", sim)])

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="routing policy"):
            FederationSimulator(
                Trace([], name="t"), [("a", small_sim(1))], policy="psychic"
            )

    def test_runs_once(self):
        fed = two_site()
        fed.run()
        with pytest.raises(SimulationError, match="only run once"):
            fed.run()


class TestSpec:
    def test_spec_validation(self):
        site = SiteSpec("a", ClusterSpec(kind="uniform", nodes=2))
        with pytest.raises(ConfigError, match="at least one site"):
            FederationSpec(sites=())
        with pytest.raises(ConfigError, match="unique"):
            FederationSpec(sites=(site, site))
        with pytest.raises(ConfigError, match="routing policy"):
            FederationSpec(sites=(site,), policy="psychic")
        with pytest.raises(ConfigError, match="wan_gbps"):
            FederationSpec(sites=(site,), wan_gbps=0.0)
        with pytest.raises(ConfigError, match="non-empty name"):
            SiteSpec("", ClusterSpec(kind="uniform", nodes=2))

    def test_build_site_inherits_default_scheduler(self):
        site = build_site(
            SiteSpec("a", ClusterSpec(kind="uniform", nodes=2)),
            default_scheduler=SchedulerSpec("sjf"),
        )
        assert site.scheduler.name == "sjf"
        own = build_site(
            SiteSpec("a", ClusterSpec(kind="uniform", nodes=2),
                     scheduler=SchedulerSpec("fifo")),
            default_scheduler=SchedulerSpec("sjf"),
        )
        assert own.scheduler.name == "fifo"

    def test_build_federation_het_sites(self):
        spec = FederationSpec(
            sites=(
                SiteSpec("a", ClusterSpec(kind="het", nodes=4)),
                SiteSpec("b", ClusterSpec(kind="uniform", nodes=2)),
            ),
        )
        fed = build_federation(spec, overload_trace(num_jobs=2))
        assert [site.name for site in fed.sites] == ["a", "b"]
        assert fed.sites[0].sim.cluster.total_gpus == 32
        # het mixes GPU generations; uniform does not.
        kinds = {
            node.spec.gpu_spec.name
            for node in fed.sites[0].sim.cluster.nodes.values()
        }
        assert len(kinds) > 1


class TestRoutingPolicies:
    def test_home_ignores_feasibility(self):
        sites = [
            FederationSimulator(
                Trace([], name="t"), [("a", small_sim(1)), ("b", small_sim(2))]
            ).sites
        ][0]
        wide = make_job("wide", num_gpus=512)
        assert route_home(sites, wide) == 0
        assert route_first_feasible(sites, wide) is None

    def test_all_policies_registered(self):
        assert set(ROUTING_POLICIES) == {
            "home", "first-feasible", "least-queued", "most-free", "goodput-aware",
        }

    def test_infeasible_everywhere_rejected_at_first_site(self):
        # 512 GPUs fits nowhere: the job must be *rejected with
        # bookkeeping* at site 0, not silently dropped.
        trace = Trace([make_job("wide", num_gpus=512)], name="t")
        fed = FederationSimulator(
            trace, [("a", small_sim(1)), ("b", small_sim(2))],
            policy="least-queued",
        )
        result = fed.run()
        assert result.routed == {"a": 1, "b": 0}
        assert result.sites[0].metrics.rejected_jobs == 1
        assert result.metrics.rejected_jobs == 1

    def test_spreading_policy_uses_both_sites(self):
        fed = two_site(policy="least-queued")
        result = fed.run()
        assert all(count > 0 for count in result.routed.values())


class TestDeterminism:
    def test_run_twice_is_byte_identical(self):
        first = two_site().run()
        second = two_site().run()
        assert first.summary() == second.summary()
        assert [site.result.summary() for site in first.sites] == [
            site.result.summary() for site in second.sites
        ]
        assert first.migrations == second.migrations
        assert sorted(first.jobs) == sorted(second.jobs)


class TestMigration:
    def test_overload_triggers_rescue_migrations(self):
        result = two_site().run()
        # first-feasible funnels everything to alpha; the migration pass
        # must move queue-stuck jobs to the idle beta.
        assert result.routed["alpha"] == 16
        assert len(result.migrations) > 0
        assert all(event.source in ("alpha", "beta") for event in result.migrations)
        assert all(event.transfer_s > 0 for event in result.migrations)

    def test_every_base_job_completes_once(self):
        result = two_site().run()
        finals = {}
        for job_id, job in result.jobs.items():
            base = job_id.split("~m", 1)[0]
            assert base not in finals, "two live incarnations of one job"
            finals[base] = job
        assert len(finals) == 16
        assert all(job.state.name == "COMPLETED" for job in finals.values())

    def test_migration_budget_respected(self):
        result = two_site(max_migrations_per_job=1).run()
        moves = {}
        for event in result.migrations:
            base = event.job_id.split("~m", 1)[0]
            moves[base] = moves.get(base, 0) + 1
        assert moves and all(count <= 1 for count in moves.values())

    def test_zero_budget_disables_migration(self):
        result = two_site(max_migrations_per_job=0).run()
        assert result.migrations == []

    def test_tick_zero_disables_migration(self):
        result = two_site(tick_s=0.0).run()
        assert result.migrations == []

    def test_completed_migrated_job_nets_full_work(self):
        # One job, forced to migrate while queued would carry no progress;
        # instead migrate a *running* job via the elastic path is complex —
        # here we assert the weaker but exact property: for every completed
        # final incarnation, productive work equals retained progress, and
        # shells plus finals add up to duration × width per base job.
        result = two_site().run()
        shells_by_base = {}
        for event in result.migrations:
            base = event.job_id.split("~m", 1)[0]
            shells_by_base.setdefault(base, 0.0)
        for job_id, job in result.jobs.items():
            base = job_id.split("~m", 1)[0]
            expected = job.duration * job.num_gpus
            # The final incarnation's productive integral may be short the
            # progress its shells carried (counted fleet-side), never more.
            assert job.productive_gpu_seconds <= expected + 1e-6


class TestGoodputMerge:
    def test_site_decomposition_sums_to_fleet_exactly(self):
        result = two_site(policy="least-queued").run()
        fleet = result.goodput
        site_goodputs = [site.metrics.goodput for site in result.sites]
        assert all(g is not None for g in site_goodputs)
        assert sum(g.total_gpu_hours for g in site_goodputs) == pytest.approx(
            fleet.total_gpu_hours, abs=1e-9
        )
        assert sum(g.healthy_gpu_hours for g in site_goodputs) == pytest.approx(
            fleet.healthy_gpu_hours, abs=1e-9
        )
        assert sum(g.served_gpu_hours for g in site_goodputs) == pytest.approx(
            fleet.served_gpu_hours, abs=1e-9
        )
        assert sum(g.productive_gpu_hours for g in site_goodputs) + (
            result.migrated_shell_gpu_hours
        ) == pytest.approx(fleet.productive_gpu_hours, abs=1e-9)

    def test_goodput_identity_holds(self):
        fleet = two_site().run().goodput
        assert fleet.goodput == pytest.approx(
            fleet.availability * fleet.efficiency * fleet.productive_share, abs=1e-12
        )
        assert fleet.goodput == pytest.approx(
            fleet.productive_gpu_hours / fleet.total_gpu_hours, abs=1e-12
        )

    def test_common_horizon(self):
        result = two_site().run()
        # Every site is finalised at the same horizon, so totals are
        # comparable: total_gpu_hours == total_gpus × end_time for each.
        fed_sites = {"alpha": 16, "beta": 16}  # total GPUs per site
        for site in result.sites:
            expected = site.result.end_time / 3600.0
            goodput = site.metrics.goodput
            assert goodput.total_gpu_hours == pytest.approx(
                fed_sites[site.name] * expected, abs=1e-9
            )
            assert site.result.end_time == result.end_time

    def test_shells_excluded_from_fleet_jobs(self):
        result = two_site().run()
        shell_ids = {event.job_id for event in result.migrations}
        clone_ids = {event.clone_id for event in result.migrations}
        assert not (shell_ids & set(result.jobs))
        # Final incarnations (clones never re-migrated) are present.
        final_clones = clone_ids - shell_ids
        assert final_clones <= set(result.jobs)


class TestFederationReport:
    def test_report_renders(self):
        from repro.ops import federation_report

        result = two_site().run()
        report = federation_report(result)
        assert "fleet goodput" in report
        assert "per-site decomposition" in report
        assert "alpha" in report and "beta" in report
