"""Tests for metrics collection, aggregation, and failure sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.failures import FailureConfig, FailureInjector
from repro.sim.metrics import MetricsCollector, percentiles, summarize
from repro.workload import FailureCategory, JobTier
from tests.conftest import make_job


class TestPercentiles:
    def test_empty_gives_nan(self):
        result = percentiles([])
        assert all(np.isnan(v) for v in result.values())

    def test_named_points(self):
        result = percentiles(range(1, 101), points=(50, 99))
        assert set(result) == {"p50", "p99"}
        assert result["p50"] == pytest.approx(50.5)


class TestUtilizationIntegral:
    def test_exact_integration(self):
        collector = MetricsCollector(total_gpus=10)
        collector.on_used_changed(0.0, 10)  # 10 GPUs from t=0
        collector.on_used_changed(5.0, 0)  # free at t=5
        assert collector.served_gpu_seconds(10.0) == pytest.approx(50.0)
        assert collector.average_utilization(10.0) == pytest.approx(0.5)

    def test_live_level_extends_to_now(self):
        collector = MetricsCollector(total_gpus=4)
        collector.on_used_changed(0.0, 4)
        assert collector.served_gpu_seconds(3.0) == pytest.approx(12.0)

    def test_time_going_backwards_rejected(self):
        collector = MetricsCollector(total_gpus=4)
        collector.on_used_changed(5.0, 1)
        with pytest.raises(SimulationError):
            collector.on_used_changed(4.0, 0)

    def test_zero_time_utilization(self):
        collector = MetricsCollector(total_gpus=4)
        assert collector.average_utilization(0.0) == 0.0

    def test_samples_recorded(self):
        collector = MetricsCollector(total_gpus=8)
        collector.sample(10.0, used_gpus=4, queue_depth=2, running=1)
        sample = collector.samples[0]
        assert sample.utilization == pytest.approx(0.5)
        assert sample.queue_depth == 2


class TestSummarize:
    def build_population(self):
        done = make_job("a", duration=100.0, submit_time=0.0)
        done.start(50.0, ("n",))
        done.complete(150.0)
        failed = make_job("b", duration=100.0, submit_time=0.0, lab="lab-01")
        failed.start(0.0, ("n",))
        failed.fail(40.0, FailureCategory.OOM)
        waiting = make_job("c", duration=10.0, submit_time=5.0, tier=JobTier.OPPORTUNISTIC)
        return {"a": done, "b": failed, "c": waiting}

    def test_counts_and_stats(self):
        jobs = self.build_population()
        collector = MetricsCollector(total_gpus=8)
        collector.on_used_changed(0.0, 8)
        metrics = summarize(jobs, collector, now=150.0)
        assert metrics.jobs_total == 3
        assert metrics.jobs_completed == 1
        assert metrics.jobs_failed == 1
        assert metrics.jobs_unfinished == 1
        assert metrics.jct_mean_s == pytest.approx(150.0)
        assert metrics.wait_mean_s == pytest.approx(25.0)  # (50 + 0) / 2
        assert metrics.failure_taxonomy["oom"] == 1
        assert metrics.makespan_s == pytest.approx(150.0)
        assert metrics.avg_utilization == pytest.approx(1.0)

    def test_per_tier_and_per_lab_breakdowns(self):
        jobs = self.build_population()
        metrics = summarize(jobs, MetricsCollector(total_gpus=8), now=150.0)
        assert metrics.wait_mean_by_tier["guaranteed"] == pytest.approx(25.0)
        assert np.isnan(metrics.wait_mean_by_tier["opportunistic"])
        assert metrics.gpu_hours_by_lab["lab-00"] == pytest.approx(100.0 / 3600.0)
        assert metrics.gpu_hours_by_lab["lab-01"] == pytest.approx(40.0 / 3600.0)

    def test_as_row_shape(self):
        jobs = self.build_population()
        row = summarize(jobs, MetricsCollector(total_gpus=8), now=150.0).as_row()
        assert {"completed", "avg_jct_h", "p99_jct_h", "utilization", "makespan_h"} <= set(row)


class TestFailureInjector:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FailureConfig(mtbf_hours=0)
        with pytest.raises(ConfigError):
            FailureConfig(consumer_mtbf_factor=0.5)
        with pytest.raises(ConfigError):
            FailureConfig(max_job_restarts=-1)

    def test_consumer_nodes_fail_more(self, rng, hetero_cluster):
        injector = FailureInjector(FailureConfig(consumer_mtbf_factor=4.0), rng)
        datacenter = hetero_cluster.nodes_of_type("a100-80")[0]
        consumer = hetero_cluster.nodes_of_type("rtx3090")[0]
        assert injector.node_mtbf_s(consumer) == pytest.approx(
            injector.node_mtbf_s(datacenter) / 4.0
        )

    def test_samples_reasonable(self, rng, small_cluster):
        config = FailureConfig(mtbf_hours=100.0, repair_hours_median=2.0, repair_sigma=0.5)
        injector = FailureInjector(config, rng)
        node = next(iter(small_cluster.nodes.values()))
        ttfs = [injector.time_to_failure_s(node) for _ in range(2000)]
        assert np.mean(ttfs) == pytest.approx(100 * 3600.0, rel=0.15)
        repairs = [injector.repair_time_s() for _ in range(2000)]
        assert np.median(repairs) == pytest.approx(2 * 3600.0, rel=0.15)

    def test_initial_failures_cover_all_nodes_sorted(self, rng, small_cluster):
        injector = FailureInjector(FailureConfig(), rng)
        events = injector.initial_failures(small_cluster)
        assert len(events) == len(small_cluster.nodes)
        times = [time for time, _node in events]
        assert times == sorted(times)
        assert {node for _t, node in events} == set(small_cluster.nodes)
