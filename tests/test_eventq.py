"""Property tests: the calendar queue is order-equivalent to the heap.

The engine's contract is exact ``(time, priority, sequence)`` pop order
over whatever is pending.  These tests drive the
:class:`~repro.sim.eventq.CalendarEventQueue` and the reference
:class:`~repro.sim.eventq.HeapEventQueue` through randomized interleaved
push/pop workloads — including same-timestamp ties, same-priority ties,
monotone-clock pushes into the active bucket, and mid-run ``stop()`` —
asserting identical sequences throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.eventq import CalendarEventQueue, HeapEventQueue
from repro.sim.events import Event, JobArrival, MetricsSample, SchedulerTick


class _Marker(Event):
    PRIORITY = 35

    def __init__(self, tag: int) -> None:
        self.tag = tag


def _random_entries(rng, count, *, time_scale=1000.0, tie_fraction=0.3):
    """Entries with deliberately heavy (time, priority) collisions."""
    times = np.round(rng.uniform(0.0, time_scale, size=count), 1)
    tie_mask = rng.uniform(size=count) < tie_fraction
    times[tie_mask] = np.round(times[tie_mask])  # pile onto integer instants
    priorities = rng.integers(0, 4, size=count)
    entries = []
    for sequence, (time, priority) in enumerate(zip(times, priorities)):
        entries.append((float(time), int(priority), sequence, None))
    return entries


@pytest.mark.parametrize("seed", range(8))
def test_bulk_push_then_drain_matches_heap(seed):
    rng = np.random.default_rng(seed)
    entries = _random_entries(rng, 500)
    heap, calendar = HeapEventQueue(), CalendarEventQueue()
    for entry in entries:
        heap.push(entry)
        calendar.push(entry)
    popped = []
    while len(calendar):
        assert calendar.peek() == heap.peek()
        popped.append(calendar.pop())
        assert heap.pop() == popped[-1]
    assert popped == sorted(entries, key=lambda e: e[:3])
    assert len(heap) == 0


@pytest.mark.parametrize("seed", range(8))
def test_interleaved_push_pop_matches_heap(seed):
    """Monotone-clock interleaving: pushes never precede the last pop.

    This is the engine's actual usage pattern — handlers push at or after
    the current clock — and exercises the calendar's bisect insertion into
    the active bucket (same-instant SchedulerTick-style pushes included).
    """
    rng = np.random.default_rng(1000 + seed)
    heap, calendar = HeapEventQueue(), CalendarEventQueue()
    sequence = 0
    clock = 0.0
    for _round in range(400):
        action = rng.uniform()
        if action < 0.55 or not len(heap):
            burst = int(rng.integers(1, 6))
            for _ in range(burst):
                # Half the pushes land exactly at the clock (ties with the
                # entry just popped), the rest in the near future.
                if rng.uniform() < 0.5:
                    time = clock
                else:
                    time = clock + float(np.round(rng.exponential(30.0), 1))
                entry = (time, int(rng.integers(0, 4)), sequence, None)
                sequence += 1
                heap.push(entry)
                calendar.push(entry)
        else:
            want = heap.pop()
            got = calendar.pop()
            assert got == want
            clock = want[0]
    remaining_heap, remaining_cal = [], []
    while len(heap):
        remaining_heap.append(heap.pop())
        remaining_cal.append(calendar.pop())
    assert remaining_cal == remaining_heap
    assert len(calendar) == 0


def test_recalibration_preserves_order():
    """Growth past the resize trigger rebuckets without reordering."""
    calendar = CalendarEventQueue(width=1e6)  # degenerate start: one bucket
    heap = HeapEventQueue()
    entries = _random_entries(np.random.default_rng(7), 3000, time_scale=10.0)
    for entry in entries:
        calendar.push(entry)
        heap.push(entry)
    assert calendar.bucket_width != 1e6  # growth forced a recalibration
    while len(heap):
        assert calendar.pop() == heap.pop()


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        CalendarEventQueue().pop()
    assert CalendarEventQueue().peek() is None


def test_engine_on_calendar_vs_heap_identical_dispatch_order():
    """Full engines on both queues dispatch identically, stop() included."""

    def build(queue):
        engine = SimulationEngine(queue=queue)
        order = []
        rng = np.random.default_rng(42)

        def on_marker(now, event):
            order.append((now, event.tag))
            # Handlers reschedule at the current instant and in the future,
            # mimicking SchedulerTick/JobFinish churn.
            if event.tag < 300:
                engine.schedule_at(now, _Marker(event.tag + 1000))
                engine.schedule_in(float(rng.exponential(5.0)), _Marker(event.tag + 1))
            if event.tag == 150:
                engine.stop()

        engine.register(_Marker, on_marker)
        for tag in range(40):
            engine.schedule_at(float(rng.uniform(0, 100)), _Marker(tag))
        return engine, order

    heap_engine, heap_order = build(HeapEventQueue())
    cal_engine, cal_order = build(CalendarEventQueue())
    heap_engine.run()
    cal_engine.run()
    assert heap_order == cal_order  # both halted by the same stop()
    assert heap_engine.now == cal_engine.now
    assert heap_engine.pending == cal_engine.pending
    # Resume after the mid-run stop: the surviving queue state is intact.
    # Every chain that passes through tag 150 re-triggers stop(), so keep
    # resuming until both queues drain, asserting lockstep throughout.
    for _resume in range(100):
        if not heap_engine.pending and not cal_engine.pending:
            break
        heap_engine.run()
        cal_engine.run()
        assert heap_order == cal_order
        assert heap_engine.pending == cal_engine.pending
    assert heap_engine.pending == cal_engine.pending == 0
    assert heap_engine.now == cal_engine.now


def test_engine_queue_telemetry():
    engine = SimulationEngine()
    engine.register(JobArrival, lambda now, event: None)
    engine.register(SchedulerTick, lambda now, event: None)
    for index in range(10):
        engine.schedule_at(float(index), JobArrival(f"job-{index:06d}"))
    assert engine.peak_pending == 10
    engine.run(until=4.0)
    engine.schedule_at(5.0, SchedulerTick())
    engine.run()
    assert engine.events_enqueued == 11
    assert engine.events_processed == 11
    assert engine.peak_pending == 10
    assert not engine.has_pending(MetricsSample)
