"""Property-based stress tests: whole-system invariants under random load.

Hypothesis generates small random workloads and drives them through every
scheduler; the assertions are the invariants no policy may break:

* the cluster's allocation books always balance (audited every event);
* every job ends in a terminal state once the event queue drains;
* no job starts before submission, finishes before it starts, or is
  granted GPUs outside its request;
* GPU-seconds served are conserved for completed rigid jobs;
* identical seeds replay identically for every policy.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.execlayer import UnitExecutionModel
from repro.sched import SCHEDULERS, QuotaConfig, TieredQuotaScheduler, make_scheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobState, JobTier, Trace
from tests.conftest import make_job

job_strategy = st.builds(
    dict,
    num_gpus=st.sampled_from([1, 1, 2, 4, 8]),
    duration=st.floats(30.0, 20_000.0),
    submit_offset=st.floats(0.0, 40_000.0),
    tier=st.sampled_from(list(JobTier)),
    estimate_factor=st.floats(1.0, 5.0),
)


def build_trace(job_dicts):
    jobs = []
    for index, spec in enumerate(job_dicts):
        jobs.append(
            make_job(
                f"job-{index:04d}",
                num_gpus=spec["num_gpus"],
                duration=spec["duration"],
                submit_time=spec["submit_offset"],
                tier=spec["tier"],
                walltime_estimate=spec["duration"] * spec["estimate_factor"],
                user=f"user-{index % 5}",
                lab=f"lab-{index % 3}",
            )
        )
    return Trace(jobs)


POLICIES = sorted(SCHEDULERS) + ["tiered-quota"]


def build_scheduler(name):
    if name == "tiered-quota":
        return TieredQuotaScheduler(
            QuotaConfig(quotas={"lab-0": 8, "lab-1": 8, "lab-2": 8})
        )
    return make_scheduler(name)


@settings(max_examples=25, deadline=None)
@given(job_dicts=st.lists(job_strategy, min_size=1, max_size=12), policy=st.sampled_from(POLICIES))
def test_invariants_hold_for_any_workload_and_policy(job_dicts, policy):
    cluster = uniform_cluster(3, gpus_per_node=8)
    trace = build_trace(job_dicts)
    simulator = ClusterSimulator(
        cluster,
        build_scheduler(policy),
        trace,
        exec_model=UnitExecutionModel(),
        config=SimConfig(sample_interval_s=0.0, verify_every=1, max_events=500_000),
    )
    result = simulator.run(until=30 * 86400.0)
    cluster.verify_invariants()
    for job in result.jobs.values():
        # Terminal (the horizon is far beyond any job's needs) unless a
        # time-slicing policy is still rotating at the horizon.
        if job.state is JobState.RUNNING:
            assert build_scheduler(policy).tick_interval() is not None or False
        if job.first_start_time is not None:
            assert job.first_start_time >= job.submit_time
        if job.end_time is not None and job.first_start_time is not None:
            assert job.end_time >= job.first_start_time
        if job.state is JobState.COMPLETED:
            assert job.remaining_work == pytest.approx(0.0, abs=1e-6)
            # Rigid jobs at unit slowdown: gpu-seconds = duration × width
            # plus any checkpoint-redone work.
            assert job.gpu_seconds_used >= job.duration * job.num_gpus - 1e-6


@settings(max_examples=10, deadline=None)
@given(job_dicts=st.lists(job_strategy, min_size=2, max_size=10))
def test_every_policy_completes_the_feasible_workload(job_dicts):
    for policy in ("fifo", "sjf", "backfill-easy", "fair-share"):
        cluster = uniform_cluster(3, gpus_per_node=8)
        trace = build_trace(job_dicts)
        result = ClusterSimulator(
            cluster,
            build_scheduler(policy),
            trace,
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0, max_events=500_000),
        ).run()
        assert result.metrics.jobs_unfinished == 0, policy
        assert result.metrics.jobs_completed == len(trace)


@settings(max_examples=8, deadline=None)
@given(
    job_dicts=st.lists(job_strategy, min_size=1, max_size=8),
    policy=st.sampled_from(["backfill-easy", "tiresias", "gang", "tiered-quota", "elastic"]),
)
def test_same_seed_replays_identically(job_dicts, policy):
    def run_once():
        cluster = uniform_cluster(2, gpus_per_node=8)
        trace = build_trace(job_dicts)
        result = ClusterSimulator(
            cluster,
            build_scheduler(policy),
            trace,
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0, seed=7, max_events=500_000),
        ).run(until=20 * 86400.0)
        return [
            (j.job_id, j.state.value, j.first_start_time, j.end_time, j.attempts)
            for j in result.jobs.values()
        ]

    assert run_once() == run_once()


@settings(max_examples=15, deadline=None)
@given(job_dicts=st.lists(job_strategy, min_size=1, max_size=10))
def test_quota_never_overcharged(job_dicts):
    """At every scheduling instant, charged guaranteed GPUs per lab stay
    within that lab's quota."""
    quota = QuotaConfig(quotas={"lab-0": 8, "lab-1": 8, "lab-2": 8})
    scheduler = TieredQuotaScheduler(quota)
    cluster = uniform_cluster(3, gpus_per_node=8)
    trace = build_trace(job_dicts)
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        trace,
        exec_model=UnitExecutionModel(),
        config=SimConfig(sample_interval_s=0.0, max_events=500_000),
    )

    violations = []
    original_start = simulator._start_job

    def checked_start(now, job, placement):
        original_start(now, job, placement)
        charged: dict[str, int] = {}
        for job_id, lab in scheduler._charged.items():
            if job_id in simulator.running:
                charged[lab] = charged.get(lab, 0) + simulator.running[job_id].num_gpus
        for lab, used in charged.items():
            if used > quota.quotas.get(lab, 0):
                violations.append((now, lab, used))

    simulator._start_job = checked_start
    simulator.run()
    assert not violations


@settings(max_examples=10, deadline=None)
@given(job_dicts=st.lists(job_strategy, min_size=2, max_size=10))
def test_invariants_with_every_feature_enabled(job_dicts):
    """Storage staging + provisioning + walltime enforcement + preemption
    limits + failure injection + timeline recording, all at once."""
    from repro.execlayer import SharedFilesystem, StorageConfig
    from repro.sim import FailureConfig

    cluster = uniform_cluster(3, gpus_per_node=8)
    jobs = []
    for index, spec in enumerate(job_dicts):
        jobs.append(
            make_job(
                f"job-{index:04d}",
                num_gpus=spec["num_gpus"],
                duration=spec["duration"],
                submit_time=spec["submit_offset"],
                tier=spec["tier"],
                walltime_estimate=spec["duration"] * spec["estimate_factor"],
                dataset_gb=5.0,
                model_name="resnet50",
                user=f"user-{index % 4}",
                lab=f"lab-{index % 2}",
            )
        )
    simulator = ClusterSimulator(
        cluster,
        build_scheduler("tiered-quota"),
        Trace(jobs),
        exec_model=UnitExecutionModel(),
        storage=SharedFilesystem(StorageConfig()),
        failure_config=FailureConfig(mtbf_hours=48.0, repair_hours_median=0.2),
        config=SimConfig(
            sample_interval_s=0.0,
            verify_every=1,
            provisioning=True,
            enforce_walltime=True,
            max_job_preemptions=3,
            record_timeline=True,
            seed=11,
            max_events=500_000,
        ),
    )
    result = simulator.run(until=60 * 86400.0)
    cluster.verify_invariants()
    # Timeline is consistent with final states.
    from repro.ops import job_segments

    segments = job_segments(result.timeline)
    for job in result.jobs.values():
        if job.first_start_time is not None and job.state is not JobState.RUNNING:
            assert any(s.state == "running" for s in segments.get(job.job_id, []))


def test_headline_ordering_robust_across_seeds():
    """The T2 claim (FIFO worst on mean wait) must not be a seed artifact."""
    from repro.cluster import build_tacc_cluster
    from repro.execlayer import ExecutionModel
    from repro.sim import simulate
    from repro.workload import TraceSynthesizer, assign_models, tacc_campus, with_load

    for seed in (101, 202):
        config = with_load(tacc_campus(days=1.5), 176, 1.0, seed=seed)
        waits = {}
        for policy in ("fifo", "sjf", "backfill-easy"):
            trace = TraceSynthesizer(config, seed=seed).generate()
            assign_models(trace, seed=seed)
            result = simulate(
                build_tacc_cluster(),
                build_scheduler(policy),
                trace,
                exec_model=ExecutionModel(),
                config=SimConfig(sample_interval_s=0.0),
            )
            waits[policy] = result.metrics.wait_mean_s
        assert waits["sjf"] <= waits["fifo"], seed
        assert waits["backfill-easy"] <= waits["fifo"], seed
