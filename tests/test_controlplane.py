"""Control-plane tests: lifecycle state machine, controller, transition log."""

from __future__ import annotations

import itertools

import pytest

from repro.cluster import uniform_cluster
from repro.controlplane import (
    LEGAL_TRANSITIONS,
    Actor,
    Cause,
    JobLifecycle,
    LifecycleState,
    Transition,
    TransitionLog,
)
from repro.errors import IllegalTransitionError, JobStateError, SchedulingError
from repro.sched import GreedyFifoScheduler, QuotaConfig, TieredQuotaScheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobState, Trace
from tests.conftest import make_job

#: Minimal (cause, actor) choice per target state, for matrix probing.
_EDGE_LABEL = {
    LifecycleState.ADMITTED: (Cause.ADMIT, Actor.ADMISSION),
    LifecycleState.RUNNING: (Cause.PLACE, Actor.SCHEDULER),
    LifecycleState.PREEMPTED: (Cause.PREEMPT, Actor.SCHEDULER),
    LifecycleState.RESTARTING: (Cause.NODE_FAILURE, Actor.FAILURE_INJECTOR),
    LifecycleState.FINISHED: (Cause.COMPLETE, Actor.SIMULATOR),
    LifecycleState.KILLED: (Cause.USER_KILL, Actor.USER),
    LifecycleState.FAILED: (Cause.INTRINSIC_FAILURE, Actor.SIMULATOR),
    LifecycleState.PENDING: (Cause.ADMIT, Actor.ADMISSION),  # never legal
    LifecycleState.PENDING_DEPS: (Cause.DEPS_HOLD, Actor.ADMISSION),
}


class TestLifecycleMatrix:
    """Exhaustive legal/illegal transition matrix over all 81 state pairs."""

    @pytest.mark.parametrize(
        "source,target",
        list(itertools.product(LifecycleState, LifecycleState)),
        ids=lambda s: s.value,
    )
    def test_every_pair(self, source, target):
        lifecycle = JobLifecycle("job-x", source)
        cause, actor = _EDGE_LABEL[target]
        legal = target in LEGAL_TRANSITIONS[source]
        assert lifecycle.can(target) is legal
        if legal:
            transition = lifecycle.advance(
                target, time=1.0, cause=cause, actor=actor, attempt=0
            )
            assert lifecycle.state is target
            assert transition.source is source
            assert transition.target is target
        else:
            with pytest.raises(IllegalTransitionError):
                lifecycle.advance(target, time=1.0, cause=cause, actor=actor, attempt=0)
            assert lifecycle.state is source  # unchanged on rejection

    def test_matrix_shape(self):
        # Every state has an entry; terminal states have no outgoing edges.
        assert set(LEGAL_TRANSITIONS) == set(LifecycleState)
        for state in LifecycleState:
            assert bool(LEGAL_TRANSITIONS[state]) != state.terminal
        legal_count = sum(len(targets) for targets in LEGAL_TRANSITIONS.values())
        assert legal_count == 20

    def test_illegal_transition_is_a_job_state_error(self):
        lifecycle = JobLifecycle("job-x", LifecycleState.FINISHED)
        with pytest.raises(JobStateError):
            lifecycle.advance(
                LifecycleState.RUNNING,
                time=0.0,
                cause=Cause.PLACE,
                actor=Actor.SCHEDULER,
                attempt=1,
            )

    def test_job_state_projection(self):
        assert LifecycleState.ADMITTED.job_state is JobState.QUEUED
        assert LifecycleState.PENDING_DEPS.job_state is JobState.QUEUED
        assert LifecycleState.PREEMPTED.job_state is JobState.QUEUED
        assert LifecycleState.RESTARTING.job_state is JobState.QUEUED
        assert LifecycleState.RUNNING.job_state is JobState.RUNNING
        assert LifecycleState.FINISHED.job_state is JobState.COMPLETED


class TestTransitionRecords:
    def transition(self, **kwargs) -> Transition:
        defaults = dict(
            job_id="job-1",
            time=7200.0,
            source=LifecycleState.ADMITTED,
            target=LifecycleState.RUNNING,
            cause=Cause.PLACE,
            actor=Actor.SCHEDULER,
            attempt=1,
            detail="gpus=4 nodes=1",
        )
        defaults.update(kwargs)
        return Transition(**defaults)

    def test_timeline_kind_mapping(self):
        assert self.transition().timeline_kind == "start"
        reject = self.transition(
            source=LifecycleState.PENDING,
            target=LifecycleState.KILLED,
            cause=Cause.REJECT,
            actor=Actor.ADMISSION,
        )
        assert reject.timeline_kind == "reject"
        kill = self.transition(
            source=LifecycleState.RUNNING,
            target=LifecycleState.KILLED,
            cause=Cause.USER_KILL,
            actor=Actor.USER,
        )
        assert kill.timeline_kind == "kill"

    def test_oneline_rendering(self):
        line = self.transition().oneline()
        assert "admitted" in line and "running" in line
        assert "cause=place" in line and "actor=scheduler" in line
        assert "[gpus=4 nodes=1]" in line

    def test_log_counts_and_queries(self):
        log = TransitionLog()
        log.append(self.transition())
        log.append(
            self.transition(
                job_id="job-2",
                source=LifecycleState.RUNNING,
                target=LifecycleState.FINISHED,
                cause=Cause.COMPLETE,
                actor=Actor.SIMULATOR,
            )
        )
        assert len(log) == 2
        assert log.count(target=LifecycleState.RUNNING) == 1
        assert log.count(cause=Cause.COMPLETE) == 1
        assert log.count(target=LifecycleState.FINISHED, cause=Cause.COMPLETE) == 1
        assert log.count() == 2
        assert [t.job_id for t in log.for_job("job-2")] == ["job-2"]
        assert log.by_cause() == {"place": 1, "complete": 1}


def quota_sim(jobs, **config_kwargs):
    """Two-lab quota sim where lab-b's job borrows lab-a's idle share."""
    cluster = uniform_cluster(2, gpus_per_node=8)
    quota = QuotaConfig.equal_shares(["lab-a", "lab-b"], cluster.total_gpus, fraction=0.5)
    scheduler = TieredQuotaScheduler(quota)
    config = SimConfig(sample_interval_s=0.0, verify_every=1, **config_kwargs)
    sim = ClusterSimulator(cluster, scheduler, Trace(list(jobs), name="unit"), config=config)
    return sim, scheduler, cluster


class TestControllerPaths:
    def test_full_lifecycle_in_transition_log(self):
        job = make_job("a", duration=100.0, submit_time=5.0, lab="lab-a")
        sim, _sched, _cluster = quota_sim([job])
        sim.run()
        states = [t.target for t in sim.controller.log.for_job("a")]
        assert states == [
            LifecycleState.ADMITTED,
            LifecycleState.RUNNING,
            LifecycleState.FINISHED,
        ]
        assert all(t.job_id == "a" for t in sim.controller.log)

    def test_kill_and_preempt_release_identically(self):
        """kill_job and preempt must leave cluster/index/quota state identical."""
        def borrower():
            # lab-b exceeds its 8-GPU share -> the surplus job is borrowed
            # capacity, evictable via the scheduler's is_preemptible policy.
            return [
                make_job("base", num_gpus=8, duration=9000.0, lab="lab-b"),
                make_job("victim", num_gpus=8, duration=9000.0, lab="lab-b"),
            ]

        observed = {}
        for mode in ("kill", "preempt"):
            sim, scheduler, cluster = quota_sim(borrower())
            sim.engine.run(until=10.0)
            victim = sim.jobs["victim"]
            assert victim.state is JobState.RUNNING
            assert scheduler.is_preemptible(victim)  # borrowed => reclaimable
            assert not victim.preemptible  # ...without mutating the job itself
            if mode == "kill":
                sim.kill_job("victim")
            else:
                sim.controller.preempt(sim.engine.now, victim)
            cluster.verify_invariants()
            observed[mode] = {
                "free_gpus": cluster.free_gpus,
                "running": sorted(sim.running),
                "charged": dict(scheduler._charged),
                "borrowed": set(scheduler._borrowed),
                "victim_allocated": cluster.holds_job("victim"),
            }
        # Identical release effects; only the job's final state differs.
        assert observed["kill"] == observed["preempt"]
        assert observed["kill"]["victim_allocated"] is False
        assert observed["kill"]["free_gpus"] == 8
        # Both paths scrub the victim's quota state (the old asymmetry).
        assert "victim" not in observed["kill"]["charged"]
        assert "victim" not in observed["kill"]["borrowed"]

    def test_preemption_limit_records_fail_timeline_event(self):
        """Regression: the preemption-limit death used to leave no timeline
        record, so Gantt charts showed the job queued forever."""
        jobs = [
            make_job("victim", num_gpus=8, duration=9000.0, lab="lab-b", submit_time=0.0),
        ]
        sim, _sched, _cluster = quota_sim(jobs, max_job_preemptions=1, record_timeline=True)
        sim.engine.run(until=5.0)
        victim = sim.jobs["victim"]
        assert victim.state is JobState.RUNNING
        now = sim.engine.now
        sim.controller.preempt(now, victim)  # 1st preemption: requeued
        assert victim.state is JobState.QUEUED
        sim._run_scheduler_pass(now)  # restarts it as a borrower
        assert victim.state is JobState.RUNNING
        sim.controller.preempt(now, victim)  # 2nd: over the limit
        assert victim.state is JobState.FAILED
        kinds = [e.kind for e in sim.timeline if e.subject == "victim"]
        assert kinds[-2:] == ["preempt", "fail"]
        last = sim.controller.log.for_job("victim")[-1]
        assert last.cause is Cause.PREEMPTION_LIMIT
        assert last.target is LifecycleState.FAILED

    def test_illegal_start_raises_scheduling_error(self):
        job = make_job("a", duration=100.0)
        sim, _sched, cluster = quota_sim([job])
        sim.run()
        assert job.state is JobState.COMPLETED
        with pytest.raises(SchedulingError):
            sim.controller.start(
                sim.engine.now, job, {next(iter(cluster.nodes)): 1}, slowdown=1.0
            )

    def test_double_admit_raises_illegal_transition(self):
        job = make_job("a", duration=100.0, submit_time=0.0)
        sim, _sched, _cluster = quota_sim([job])
        sim.engine.run(until=1.0)
        with pytest.raises(IllegalTransitionError):
            sim.controller.admit(sim.engine.now, sim.jobs["a"])

    def test_kill_pending_job_then_arrival_is_noop(self):
        job = make_job("late", duration=100.0, submit_time=50.0)
        sim, _sched, _cluster = quota_sim([job])
        sim.kill_job("late")  # cancelled before its arrival event fires
        assert job.state is JobState.KILLED
        result = sim.run()
        assert job.state is JobState.KILLED
        assert result.metrics.rejected_jobs == 0
        transitions = sim.controller.log.for_job("late")
        assert [t.target for t in transitions] == [LifecycleState.KILLED]
        assert transitions[0].cause is Cause.USER_KILL

    def test_rejection_attributed_to_admission(self):
        job = make_job("huge", num_gpus=4096, duration=100.0)
        sim, _sched, _cluster = quota_sim([job])
        result = sim.run()
        assert result.metrics.rejected_jobs == 1
        transition = sim.controller.log.for_job("huge")[0]
        assert transition.source is LifecycleState.PENDING
        assert transition.target is LifecycleState.KILLED
        assert transition.cause is Cause.REJECT
        assert transition.actor is Actor.ADMISSION
        assert transition.timeline_kind == "reject"

    def test_node_failure_transitions_attributed_to_injector(self):
        from repro.sim import FailureConfig

        cluster = uniform_cluster(2, gpus_per_node=8)
        jobs = [make_job(f"j{i}", num_gpus=8, duration=200_000.0) for i in range(2)]
        sim = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace(jobs, name="unit"),
            failure_config=FailureConfig(mtbf_hours=2.0, max_job_restarts=100),
            config=SimConfig(sample_interval_s=0.0, seed=3),
        )
        sim.engine.run(until=100 * 3600.0)
        restarts = [
            t
            for t in sim.controller.log
            if t.target is LifecycleState.RESTARTING
        ]
        assert restarts, "no node failure hit a running job in 100h at 2h MTBF"
        assert all(t.actor is Actor.FAILURE_INJECTOR for t in restarts)
        assert all(t.cause is Cause.NODE_FAILURE for t in restarts)
        assert sim.metrics.job_restarts == len(restarts)

    def test_counters_derive_from_transition_log(self):
        """Churn counters must equal what the transition log implies."""
        from repro.sim import FailureConfig

        cluster = uniform_cluster(2, gpus_per_node=8)
        jobs = [
            make_job(f"j{i}", num_gpus=4, duration=40_000.0, submit_time=i * 10.0)
            for i in range(8)
        ]
        sim = ClusterSimulator(
            cluster,
            GreedyFifoScheduler(),
            Trace(jobs, name="unit"),
            failure_config=FailureConfig(mtbf_hours=4.0, max_job_restarts=100),
            config=SimConfig(sample_interval_s=0.0, seed=1),
        )
        result = sim.run()
        log = sim.controller.log
        assert result.metrics.job_restarts == log.count(target=LifecycleState.RESTARTING)
        assert result.metrics.preemptions == log.count(target=LifecycleState.PREEMPTED)
        assert result.metrics.rejected_jobs == log.count(cause=Cause.REJECT)
        terminal = sum(log.count(target=s) for s in LifecycleState if s.terminal)
        assert terminal == len(jobs)
        assert sim.controller.live_jobs == 0


class TestServingAttribution:
    def test_replica_retirement_attributed_to_autoscaler(self):
        from repro.experiments.common import campus_trace, run_policy
        from repro.experiments.serving import serving_quota, serving_workload
        from repro.serving import AutoscalerConfig, ServingFleet

        trace = campus_trace(0, 0.25, days=0.25)
        fleet = ServingFleet(
            serving_workload(1.0), days=0.25, autoscaler=AutoscalerConfig(enabled=True)
        )
        result = run_policy(
            TieredQuotaScheduler(serving_quota(trace)),
            trace,
            serving=fleet,
            sim_config=SimConfig(sample_interval_s=0.0),
        )
        retire = [t for t in result.transitions if t.cause is Cause.SERVICE_RETIRE]
        assert retire, "fleet never retired a replica"
        assert all(t.actor is Actor.AUTOSCALER for t in retire)
        assert all(t.detail in ("horizon", "scale_down") for t in retire)


class TestTcloudHistory:
    def test_history_shows_full_lifecycle(self):
        from repro.schema.taskspec import ResourceSpec, TaskSpec
        from repro.tcloud.frontend import TaccFrontend

        frontend = TaccFrontend()
        spec = TaskSpec(
            name="hist",
            entrypoint="python train.py",
            resources=ResourceSpec(num_gpus=1, walltime_hours=1.0),
        )
        job_id, _compile, _warnings = frontend.submit(spec, duration_hint_s=600.0)
        frontend.advance_until_done(job_id)
        targets = [t.target for t in frontend.history(job_id)]
        assert targets == [
            LifecycleState.ADMITTED,
            LifecycleState.RUNNING,
            LifecycleState.FINISHED,
        ]
        assert all(line for line in (t.oneline() for t in frontend.history(job_id)))

    def test_history_unknown_job_raises(self):
        from repro.errors import SimulationError
        from repro.tcloud.frontend import TaccFrontend

        with pytest.raises(SimulationError):
            TaccFrontend().history("job-nope")
