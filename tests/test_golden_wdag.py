"""Golden pin of the W-DAG workflow-placement experiment.

Runs the W-DAG cells at reduced scale and pins the per-arm workflow
makespan and artifact-fetch time to exact values, plus the structural
claims the experiment exists to demonstrate: transfer-aware placement
beats every transfer-oblivious baseline on mean workflow makespan at
equal utilization, every arm completes the same work, and — because the
cells run the unit execution model — every arm's makespan respects the
analytical critical-path lower bound.

As with the other golden suites, float comparisons are exact (or 1e-9):
drift means a scheduling/placement/transfer decision changed, not a perf
detail.
"""

from __future__ import annotations

import pytest

from repro import sweep
from repro.experiments.workflows import WDAG_PLACEMENTS, _wdag_cells

SEED = 0
SCALE = 0.25

# Pinned when the workflow-DAG subsystem landed (seed 0, scale 0.25).
GOLDEN_MAKESPAN_H = {
    "transfer-aware": 1.2401075729774353,
    "best-fit": 1.2524005075694813,
    "first-fit": 1.2489590631428678,
}
GOLDEN_TRANSFER_S = {
    "transfer-aware": 1952.5961702536306,
    "best-fit": 4527.886440877575,
    "first-fit": 3831.469237063354,
}
GOLDEN_CRITICAL_PATH_H = 1.2332754292929
GOLDEN_WORKFLOWS = 48.0
GOLDEN_COMPLETED = 486.0


@pytest.fixture(scope="module")
def runs():
    return sweep.run_cells(_wdag_cells(seed=SEED, scale=SCALE))


def test_makespan_matches_golden_exactly(runs):
    for arm, expected in GOLDEN_MAKESPAN_H.items():
        assert runs[arm].summary["wf_makespan_mean_h"] == expected, (
            f"{arm}: {runs[arm].summary['wf_makespan_mean_h']!r} != {expected!r}"
        )


def test_transfer_seconds_match_golden_exactly(runs):
    for arm, expected in GOLDEN_TRANSFER_S.items():
        assert runs[arm].summary["wf_transfer_s"] == expected, (
            f"{arm}: {runs[arm].summary['wf_transfer_s']!r} != {expected!r}"
        )


def test_transfer_aware_beats_every_oblivious_baseline(runs):
    aware = runs["transfer-aware"].summary
    for arm in WDAG_PLACEMENTS:
        if arm == "transfer-aware":
            continue
        oblivious = runs[arm].summary
        assert aware["wf_makespan_mean_h"] < oblivious["wf_makespan_mean_h"], (
            f"transfer-aware does not beat {arm} on makespan "
            f"({aware['wf_makespan_mean_h']:.4f} >= "
            f"{oblivious['wf_makespan_mean_h']:.4f})"
        )
        assert aware["wf_transfer_s"] < oblivious["wf_transfer_s"], arm
        # "At equal utilization": the arms place the same work on the same
        # cluster, so the lever is *where*, never *how much*.
        assert aware["utilization"] == pytest.approx(
            oblivious["utilization"], rel=2e-3
        ), arm


def test_all_arms_complete_the_same_work(runs):
    for arm, result in runs.items():
        assert result.summary["workflows"] == GOLDEN_WORKFLOWS, arm
        assert result.summary["wf_completed"] == GOLDEN_WORKFLOWS, arm
        assert result.summary["completed"] == GOLDEN_COMPLETED, arm


def test_makespan_respects_critical_path_bound(runs):
    # Unit execution model: the critical path is an exact lower bound.
    for arm, result in runs.items():
        assert result.summary["wf_critical_path_h"] == GOLDEN_CRITICAL_PATH_H, arm
        assert (
            result.summary["wf_makespan_mean_h"]
            >= result.summary["wf_critical_path_h"]
        ), arm


def test_rerun_is_byte_identical(runs):
    again = sweep.run_cells(_wdag_cells(seed=SEED, scale=SCALE))
    for arm in runs:
        assert runs[arm].summary == again[arm].summary, arm
