"""Tests for the execution layer: comm models, slowdown, runtimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_tacc_cluster, uniform_cluster
from repro.cluster.topology import Locality
from repro.errors import ConfigError, RuntimeSwitchError, ValidationError
from repro.execlayer import (
    CommMethod,
    ExecModelConfig,
    ExecutionModel,
    PlacementShape,
    RuntimeRegistry,
    RuntimeSystem,
    UnitExecutionModel,
    in_network_aggregation_s,
    parameter_server_s,
    ring_allreduce_s,
    shape_from_placement,
    sync_time_s,
    tree_allreduce_s,
)
from tests.conftest import make_job


def shape(gpus_per_node, locality=Locality.SAME_RACK, intra=300.0, nic=100.0, oversub=2.0):
    return PlacementShape(tuple(gpus_per_node), locality, intra, nic, oversub)


class TestPlacementShape:
    def test_validation(self):
        with pytest.raises(ValidationError):
            shape([])
        with pytest.raises(ValidationError):
            shape([0])
        with pytest.raises(ValidationError):
            PlacementShape((1,), Locality.SAME_NODE, 0.0, 1.0)
        with pytest.raises(ValidationError):
            PlacementShape((1,), Locality.SAME_NODE, 1.0, 1.0, 0.5)

    def test_effective_nic_penalised_cross_rack(self):
        same = shape([8, 8], Locality.SAME_RACK)
        cross = shape([8, 8], Locality.CROSS_RACK)
        assert same.effective_nic_gbps == 100.0
        assert cross.effective_nic_gbps == 50.0

    def test_totals(self):
        s = shape([4, 4, 2])
        assert s.total_gpus == 10
        assert s.num_nodes == 3


class TestCommModels:
    def test_single_gpu_no_sync(self):
        s = PlacementShape((1,), Locality.SAME_NODE, 300.0, 100.0)
        assert ring_allreduce_s(100.0, s) == 0.0
        assert parameter_server_s(100.0, s) == 0.0

    def test_locality_ordering_ring(self):
        times = [
            ring_allreduce_s(1000.0, shape([8, 8], locality))
            for locality in (Locality.SAME_RACK, Locality.CROSS_RACK)
        ]
        single = ring_allreduce_s(1000.0, PlacementShape((16,), Locality.SAME_NODE, 300.0, 100.0))
        assert single < times[0] < times[1]

    def test_ina_immune_to_spine(self):
        same = in_network_aggregation_s(1000.0, shape([8, 8], Locality.SAME_RACK))
        cross = in_network_aggregation_s(1000.0, shape([8, 8], Locality.CROSS_RACK))
        assert same == pytest.approx(cross)

    def test_ina_beats_ring_cross_rack(self):
        s = shape([8, 8, 8, 8], Locality.CROSS_RACK)
        assert in_network_aggregation_s(1000.0, s) < ring_allreduce_s(1000.0, s)

    def test_ps_scales_with_node_count(self):
        two = parameter_server_s(1000.0, shape([1, 1]))
        four = parameter_server_s(1000.0, shape([1, 1, 1, 1]))
        assert four == pytest.approx(2 * two)

    def test_ring_volume_grows_sublinearly(self):
        # Ring all-reduce moves 2(k-1)/k of the model per node: nearly flat.
        two = ring_allreduce_s(1000.0, shape([1, 1]))
        eight = ring_allreduce_s(1000.0, shape([1] * 8))
        assert eight < 2 * two

    def test_tree_pays_log_hops(self):
        two = tree_allreduce_s(1000.0, shape([1, 1]))
        eight = tree_allreduce_s(1000.0, shape([1] * 8))
        assert eight == pytest.approx(3 * two, rel=0.01)

    def test_sync_time_dispatch(self):
        s = shape([8, 8])
        for method in CommMethod:
            assert sync_time_s(500.0, s, method) > 0.0

    def test_invalid_model_size(self):
        with pytest.raises(ValidationError):
            ring_allreduce_s(0.0, shape([2, 2]))

    def test_shape_from_placement(self):
        cluster = uniform_cluster(4, gpus_per_node=8, nodes_per_rack=2)
        nodes = sorted(cluster.nodes)
        s = shape_from_placement({nodes[0]: 8, nodes[2]: 8}, cluster)
        assert s.locality is Locality.CROSS_RACK
        assert s.gpus_per_node == (8, 8)
        with pytest.raises(ValidationError):
            shape_from_placement({}, cluster)


class TestExecutionModel:
    def test_matching_reference_is_unity(self):
        cluster = uniform_cluster(2, gpus_per_node=8)
        model = ExecutionModel()
        job = make_job(num_gpus=8, model_name="resnet50")
        node = sorted(cluster.nodes)[0]
        assert model.slowdown(job, {node: 8}, cluster) == pytest.approx(1.0)

    def test_faster_gpu_speeds_up(self):
        cluster = build_tacc_cluster()
        model = ExecutionModel()
        job = make_job(num_gpus=1, model_name="resnet50")  # reference v100
        a100 = sorted(n for n in cluster.nodes if n.startswith("a100"))[0]
        assert model.slowdown(job, {a100: 1}, cluster) < 1.0

    def test_slower_gpu_slows_down(self):
        cluster = build_tacc_cluster()
        model = ExecutionModel()
        job = make_job(num_gpus=1, model_name="resnet50")
        slow = sorted(n for n in cluster.nodes if n.startswith("rtx2080"))[0]
        assert model.slowdown(job, {slow: 1}, cluster) > 1.0

    def test_spread_placement_slows_comm_heavy_job(self):
        cluster = uniform_cluster(16, gpus_per_node=8, nodes_per_rack=2)
        model = ExecutionModel()
        job = make_job(num_gpus=16, gpus_per_node=8, model_name="gpt2-xl")
        nodes = sorted(cluster.nodes)
        packed = model.slowdown(job, {nodes[0]: 8, nodes[1]: 8}, cluster)
        spread = model.slowdown(job, {nodes[0]: 8, nodes[4]: 8}, cluster)  # cross-rack
        assert spread > packed

    def test_comm_light_job_insensitive(self):
        cluster = uniform_cluster(16, gpus_per_node=8, nodes_per_rack=2)
        model = ExecutionModel()
        job = make_job(num_gpus=16, gpus_per_node=8, model_name="pointnet")
        nodes = sorted(cluster.nodes)
        packed = model.slowdown(job, {nodes[0]: 8, nodes[1]: 8}, cluster)
        spread = model.slowdown(job, {nodes[0]: 8, nodes[4]: 8}, cluster)
        assert spread / packed < 1.25

    def test_placement_must_cover_request(self):
        cluster = uniform_cluster(2, gpus_per_node=8)
        model = ExecutionModel()
        job = make_job(num_gpus=8)
        with pytest.raises(ValidationError, match="accepts"):
            model.slowdown(job, {sorted(cluster.nodes)[0]: 4}, cluster)

    def test_ablation_flags(self):
        cluster = build_tacc_cluster()
        job = make_job(num_gpus=1, model_name="resnet50")
        slow_node = sorted(n for n in cluster.nodes if n.startswith("rtx2080"))[0]
        blind = ExecutionModel(ExecModelConfig(hardware_aware=False))
        assert blind.slowdown(job, {slow_node: 1}, cluster) == pytest.approx(1.0)

    def test_unit_model_always_one(self):
        cluster = build_tacc_cluster()
        job = make_job(num_gpus=1, model_name="gpt2-xl")
        node = sorted(cluster.nodes)[0]
        assert UnitExecutionModel().slowdown(job, {node: 1}, cluster) == 1.0


class TestRuntimeRegistry:
    def test_default_chain(self):
        registry = RuntimeRegistry()
        chain = registry.chain_for()
        assert [r.name for r in chain] == ["container", "bare", "ray"]

    def test_preferred_first(self):
        registry = RuntimeRegistry()
        chain = registry.chain_for(preferred="bare")
        assert chain[0].name == "bare"
        assert len(chain) == 3

    def test_unknown_runtime(self):
        with pytest.raises(ConfigError, match="unknown runtime"):
            RuntimeRegistry().get("k8s")

    def test_warm_cache_speeds_second_provision(self, rng):
        registry = RuntimeRegistry()
        first = registry.provision("env-a", rng)
        second = registry.provision("env-a", rng)
        assert second.warm
        assert second.provision_s <= first.provision_s

    def test_distinct_envs_cold(self, rng):
        registry = RuntimeRegistry()
        registry.provision("env-a", rng)
        other = registry.provision("env-b", rng)
        assert not other.warm

    def test_failsafe_switching(self):
        flaky = RuntimeSystem("flaky", 10.0, 1.0, provision_failure_prob=1.0)
        solid = RuntimeSystem("solid", 20.0, 2.0, provision_failure_prob=0.0)
        registry = RuntimeRegistry(runtimes=(flaky, solid))
        result = registry.provision("env", np.random.default_rng(0))
        assert result.runtime == "solid"
        assert result.switched
        assert result.attempts == 2
        assert result.provision_s == pytest.approx(30.0)  # both attempts paid

    def test_whole_chain_failing_raises(self):
        doomed = RuntimeSystem("doomed", 1.0, 1.0, provision_failure_prob=1.0)
        registry = RuntimeRegistry(runtimes=(doomed,))
        with pytest.raises(RuntimeSwitchError):
            registry.provision("env", np.random.default_rng(0))

    def test_multi_node_filter(self):
        single = RuntimeSystem("single", 1.0, 1.0, supports_multi_node=False)
        multi = RuntimeSystem("multi", 1.0, 1.0)
        registry = RuntimeRegistry(runtimes=(single, multi))
        chain = registry.chain_for(multi_node=True)
        assert [r.name for r in chain] == ["multi"]
        with pytest.raises(RuntimeSwitchError):
            registry.chain_for(preferred="single", multi_node=True)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            RuntimeSystem("bad", 1.0, 2.0)  # warm > cold
        with pytest.raises(ConfigError):
            RuntimeSystem("bad", 1.0, 1.0, overhead_factor=0.9)
        with pytest.raises(ConfigError):
            RuntimeRegistry(runtimes=())
