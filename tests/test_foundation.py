"""Tests for ids, config utilities, and the error hierarchy."""

from __future__ import annotations

import dataclasses
import enum

import pytest

from repro import errors
from repro.config import (
    config_from_dict,
    config_to_dict,
    load_config,
    require_fraction,
    require_non_negative,
    require_positive,
    save_config,
)
from repro.errors import ConfigError, ReproError
from repro.ids import IdFactory, id_index, job_id, node_id


class TestIdFactory:
    def test_sequential_ids(self):
        factory = IdFactory("job")
        assert factory.next() == "job-000000"
        assert factory.next() == "job-000001"

    def test_custom_width_and_start(self):
        factory = IdFactory("n", width=3, start=7)
        assert factory.next() == "n-007"

    def test_take(self):
        assert IdFactory("x").take(3) == ["x-000000", "x-000001", "x-000002"]

    def test_iter_yields_distinct(self):
        factory = IdFactory("y")
        iterator = iter(factory)
        assert next(iterator) != next(iterator)

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdFactory("")


class TestIdHelpers:
    def test_job_id_format(self):
        assert job_id(42) == "job-000042"

    def test_node_id_format(self):
        assert node_id(3, 14) == "node-r03-s14"

    def test_id_index_roundtrip(self):
        assert id_index(job_id(123)) == 123

    def test_id_index_rejects_garbage(self):
        with pytest.raises(ValueError):
            id_index("job-abc")


class _Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass(frozen=True)
class _Inner:
    value: int = 1


@dataclasses.dataclass(frozen=True)
class _Outer:
    name: str = "x"
    color: _Color = _Color.RED
    inner: _Inner = _Inner()
    items: tuple[int, ...] = (1, 2)
    mapping: dict[str, float] = dataclasses.field(default_factory=dict)


class TestConfigRoundtrip:
    def test_to_dict_flattens_enums_and_nesting(self):
        data = config_to_dict(_Outer(mapping={"a": 1.5}))
        assert data == {
            "name": "x",
            "color": "red",
            "inner": {"value": 1},
            "items": [1, 2],
            "mapping": {"a": 1.5},
        }

    def test_roundtrip_restores_types(self):
        original = _Outer(name="y", color=_Color.BLUE, inner=_Inner(9), items=(3,))
        restored = config_from_dict(_Outer, config_to_dict(original))
        assert restored == original
        assert isinstance(restored.color, _Color)
        assert isinstance(restored.inner, _Inner)
        assert restored.items == (3,)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            config_from_dict(_Outer, {"nonsense": 1})

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigError):
            config_to_dict({"not": "a dataclass"})

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "config.json"
        original = _Outer(name="saved", mapping={"k": 2.0})
        save_config(original, path)
        assert load_config(_Outer, path) == original

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_config(_Outer, path)


class TestValidators:
    def test_require_positive(self):
        require_positive("x", 0.1)
        with pytest.raises(ConfigError):
            require_positive("x", 0.0)

    def test_require_non_negative(self):
        require_non_negative("x", 0.0)
        with pytest.raises(ConfigError):
            require_non_negative("x", -1)

    def test_require_fraction(self):
        require_fraction("x", 0.0)
        require_fraction("x", 1.0)
        with pytest.raises(ConfigError):
            require_fraction("x", 1.01)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, ReproError), name

    def test_specific_parentage(self):
        assert issubclass(errors.CapacityError, errors.AllocationError)
        assert issubclass(errors.SchemaError, errors.ValidationError)
        assert issubclass(errors.CacheError, errors.CompileError)
        assert issubclass(errors.RuntimeSwitchError, errors.ExecutionError)
        assert issubclass(errors.EventOrderError, errors.SimulationError)
