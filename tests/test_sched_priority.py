"""Tests for the multifactor priority machinery and fair-share scheduling."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import ConfigError
from repro.sched import FairShareScheduler
from repro.sched.priority import MultifactorPriority, PriorityWeights, UsageTracker
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import JobTier, Trace
from tests.conftest import make_job


class TestUsageTracker:
    def test_accumulates(self):
        tracker = UsageTracker()
        tracker.add("u", 100.0, now=0.0)
        tracker.add("u", 50.0, now=0.0)
        assert tracker.usage("u", now=0.0) == pytest.approx(150.0)

    def test_half_life_decay(self):
        tracker = UsageTracker(half_life_s=100.0)
        tracker.add("u", 100.0, now=0.0)
        assert tracker.usage("u", now=100.0) == pytest.approx(50.0)
        assert tracker.usage("u", now=200.0) == pytest.approx(25.0)

    def test_unknown_entity_zero(self):
        assert UsageTracker().usage("ghost", now=0.0) == 0.0

    def test_total_and_entities(self):
        tracker = UsageTracker()
        tracker.add("a", 10.0, now=0.0)
        tracker.add("b", 20.0, now=0.0)
        assert tracker.total(now=0.0) == pytest.approx(30.0)
        assert tracker.entities() == ("a", "b")

    def test_negative_usage_rejected(self):
        with pytest.raises(ConfigError):
            UsageTracker().add("u", -1.0, now=0.0)

    def test_invalid_half_life(self):
        with pytest.raises(ConfigError):
            UsageTracker(half_life_s=0.0)


class TestMultifactorPriority:
    def test_age_factor_saturates(self):
        priority = MultifactorPriority(PriorityWeights(age_saturation_s=100.0))
        job = make_job(submit_time=0.0)
        assert priority.age_factor(job, now=50.0) == pytest.approx(0.5)
        assert priority.age_factor(job, now=1000.0) == 1.0

    def test_fair_share_favours_idle_users(self):
        usage = UsageTracker()
        usage.add("hog", 1e6, now=0.0)
        usage.add("idle", 0.0, now=0.0)
        priority = MultifactorPriority(usage=usage)
        hog_job = make_job("a", user="hog")
        idle_job = make_job("b", user="idle")
        assert priority.fair_share_factor(idle_job, 0.0) > priority.fair_share_factor(
            hog_job, 0.0
        )

    def test_size_factor_monotone_decreasing(self):
        priority = MultifactorPriority()
        factors = [priority.size_factor(make_job(num_gpus=g)) for g in (1, 4, 16, 64)]
        assert factors == sorted(factors, reverse=True)
        assert factors[0] == 1.0

    def test_qos_factor(self):
        priority = MultifactorPriority()
        assert priority.qos_factor(make_job(tier=JobTier.GUARANTEED)) == 1.0
        assert priority.qos_factor(make_job(tier=JobTier.OPPORTUNISTIC)) == 0.0

    def test_priority_combines_weights(self):
        weights = PriorityWeights(age=0.0, fair_share=0.0, job_size=0.0, qos=100.0)
        priority = MultifactorPriority(weights)
        assert priority.priority(make_job(tier=JobTier.GUARANTEED), 0.0) == pytest.approx(100.0)
        assert priority.priority(make_job(tier=JobTier.OPPORTUNISTIC), 0.0) == pytest.approx(0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            PriorityWeights(age=-1.0)


class TestFairShareScheduler:
    def run_jobs(self, jobs, **sched_kwargs):
        cluster = uniform_cluster(1, gpus_per_node=8)
        scheduler = FairShareScheduler(**sched_kwargs)
        simulator = ClusterSimulator(
            cluster,
            scheduler,
            Trace(list(jobs)),
            config=SimConfig(sample_interval_s=0.0),
        )
        return simulator.run(), scheduler

    def test_heavy_user_queued_behind_light_user(self):
        jobs = [
            # hog builds up usage first.
            make_job("h1", num_gpus=8, duration=50_000.0, submit_time=0.0, user="hog"),
            make_job("h2", num_gpus=8, duration=100.0, submit_time=10.0, user="hog"),
            make_job("l1", num_gpus=8, duration=100.0, submit_time=20.0, user="light"),
        ]
        self.run_jobs(jobs)
        assert jobs[2].first_start_time < jobs[1].first_start_time

    def test_usage_charged_incrementally_while_running(self):
        jobs = [make_job("a", num_gpus=8, duration=10_000.0, user="u")]
        _result, scheduler = self.run_jobs(jobs)
        assert scheduler.usage.usage("u", now=10_000.0) > 0.0

    def test_age_eventually_wins(self):
        # Even a hog's job must not starve forever: age accumulates.
        weights = PriorityWeights(age=10_000.0, fair_share=100.0, age_saturation_s=3600.0)
        jobs = [
            make_job("h1", num_gpus=8, duration=7200.0, submit_time=0.0, user="hog"),
            make_job("h2", num_gpus=8, duration=100.0, submit_time=1.0, user="hog"),
            make_job("l1", num_gpus=8, duration=100.0, submit_time=7000.0, user="light"),
        ]
        self.run_jobs(jobs, weights=weights)
        # h2 aged for two hours; despite the hog's usage it beats the
        # fresh light job.
        assert jobs[1].first_start_time < jobs[2].first_start_time

    def test_all_jobs_complete(self):
        jobs = [
            make_job(f"j{i}", num_gpus=2, duration=100.0, submit_time=float(i), user=f"u{i % 3}")
            for i in range(9)
        ]
        result, _ = self.run_jobs(jobs)
        assert result.metrics.jobs_completed == 9
