"""Tests for energy accounting and capacity planning."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterSpec,
    NodeGroup,
    NodeSpec,
    tacc_cluster_spec,
    uniform_cluster,
)
from repro.errors import ConfigError, ValidationError
from repro.execlayer import UnitExecutionModel
from repro.ops import EnergyConfig, ExpansionOption, energy_report, plan_capacity
from repro.sched import GreedyFifoScheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Trace, tacc_campus, with_load
from tests.conftest import make_job


def run_simple(jobs, num_nodes=1):
    cluster = uniform_cluster(num_nodes, gpus_per_node=8)
    result = ClusterSimulator(
        cluster,
        GreedyFifoScheduler(),
        Trace(list(jobs)),
        exec_model=UnitExecutionModel(),
        config=SimConfig(sample_interval_s=0.0),
    ).run()
    return result, cluster


class TestEnergyConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            EnergyConfig(pue=0.9)
        with pytest.raises(ValidationError):
            EnergyConfig(load_factor=0.0)


class TestEnergyReport:
    def test_single_job_arithmetic(self):
        # 4 GPUs × 3600 s on V100s: busy 4 GPU-h, idle 4 GPU-h (8-GPU node,
        # 1 h horizon).
        job = make_job("a", num_gpus=4, duration=3600.0)
        result, cluster = run_simple([job])
        config = EnergyConfig(pue=1.0, load_factor=1.0, price_per_kwh=0.10)
        report = energy_report(result, cluster, config)
        assert report.horizon_hours == pytest.approx(1.0)
        assert report.busy_gpu_hours_by_type == {"v100": pytest.approx(4.0)}
        assert report.idle_gpu_hours_by_type["v100"] == pytest.approx(4.0)
        # busy: 4 h × 300 W = 1.2 kWh; idle: 4 h × 55 W = 0.22 kWh.
        assert report.busy_kwh == pytest.approx(1.2)
        assert report.idle_kwh == pytest.approx(0.22)
        assert report.total_kwh == pytest.approx(1.42)
        assert report.cost == pytest.approx(0.142)
        assert report.useful_fraction == pytest.approx(1.0)

    def test_pue_scales_total(self):
        job = make_job("a", num_gpus=8, duration=3600.0)
        result, cluster = run_simple([job])
        base = energy_report(result, cluster, EnergyConfig(pue=1.0))
        scaled = energy_report(result, cluster, EnergyConfig(pue=2.0))
        assert scaled.total_kwh == pytest.approx(2 * base.total_kwh)

    def test_failed_work_is_not_useful(self):
        from repro.workload import FailureCategory, FailurePlan

        job = make_job(
            "a",
            num_gpus=8,
            duration=3600.0,
            failure_plan=FailurePlan(FailureCategory.OOM, 0.5),
        )
        result, cluster = run_simple([job])
        report = energy_report(result, cluster, EnergyConfig(pue=1.0))
        assert report.useful_fraction == 0.0
        assert report.busy_gpu_hours_by_type["v100"] == pytest.approx(4.0)

    def test_rows_cover_idle_only_types(self, hetero_cluster):
        job = make_job("a", num_gpus=8, duration=3600.0, gpu_type="a100-80")
        result = ClusterSimulator(
            hetero_cluster,
            GreedyFifoScheduler(),
            Trace([job]),
            exec_model=UnitExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        ).run()
        report = energy_report(result, hetero_cluster)
        types = {row["gpu_type"] for row in report.as_rows()}
        assert {"a100-80", "rtx3090", "TOTAL"} <= types


class TestCapacityPlanning:
    def small_spec(self):
        return ClusterSpec(
            name="small",
            groups=(NodeGroup(2, NodeSpec("v100", 8, 96, 768), nodes_per_rack=2),),
        )

    def test_status_quo_always_first(self):
        workload = with_load(tacc_campus(days=0.5), 16, 0.8, seed=0)
        rows = plan_capacity(self.small_spec(), workload, [], seed=0)
        assert len(rows) == 1
        assert rows[0]["option"] == "status-quo"
        assert rows[0]["gpus"] == 16

    def test_expansion_reduces_wait_under_overload(self):
        workload = with_load(tacc_campus(days=1.0), 16, 1.6, seed=2)
        option = ExpansionOption(
            "double-v100", (NodeGroup(2, NodeSpec("v100", 8, 96, 768), nodes_per_rack=2),)
        )
        rows = plan_capacity(self.small_spec(), workload, [option], seed=2)
        by_name = {row["option"]: row for row in rows}
        assert by_name["double-v100"]["gpus"] == 32
        assert by_name["double-v100"]["added_gpus"] == 16
        assert by_name["double-v100"]["avg_wait_h"] <= by_name["status-quo"]["avg_wait_h"]

    def test_rows_comparable_same_workload(self):
        workload = with_load(tacc_campus(days=0.5), 16, 1.0, seed=3)
        option = ExpansionOption(
            "add-a100", (NodeGroup(1, NodeSpec("a100-80", 8, 128, 1024), nodes_per_rack=1),)
        )
        rows = plan_capacity(self.small_spec(), workload, [option], seed=3)
        # Hardware-only change: same jobs in every row.
        assert all("avg_jct_h" in row and "energy_mwh" in row for row in rows)

    def test_option_validation(self):
        with pytest.raises(ConfigError):
            ExpansionOption("", ())

    def test_tacc_spec_accepts_expansion(self):
        workload = with_load(tacc_campus(days=0.3), 176, 0.5, seed=1)
        option = ExpansionOption(
            "pilot", (NodeGroup(1, NodeSpec("a100-80", 8, 128, 1024), nodes_per_rack=1),)
        )
        rows = plan_capacity(tacc_cluster_spec(), workload, [option], seed=1)
        assert rows[1]["gpus"] == 184
