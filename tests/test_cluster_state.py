"""Tests for cluster-level allocation, atomicity, and factories."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterSpec,
    NodeGroup,
    NodeSpec,
    build_cluster,
    build_tacc_cluster,
    tacc_cluster_spec,
    uniform_cluster,
)
from repro.cluster.partition import PartitionSpec
from repro.errors import AllocationError, ConfigError, UnknownJobError, UnknownNodeError


class TestBuildCluster:
    def test_uniform_factory(self):
        cluster = uniform_cluster(4, gpus_per_node=8, nodes_per_rack=2)
        assert cluster.total_gpus == 32
        assert len(cluster.topology.rack_ids) == 2

    def test_racks_not_shared_between_groups(self):
        spec = ClusterSpec(
            groups=(
                NodeGroup(2, NodeSpec("v100", 8, 64, 512), nodes_per_rack=8),
                NodeGroup(2, NodeSpec("rtx3090", 4, 32, 256), nodes_per_rack=8),
            )
        )
        cluster = build_cluster(spec)
        racks_by_type = {
            gpu_type: {node.rack_id for node in cluster.nodes_of_type(gpu_type)}
            for gpu_type in ("v100", "rtx3090")
        }
        assert not (racks_by_type["v100"] & racks_by_type["rtx3090"])

    def test_duplicate_prefix_rejected(self):
        spec = ClusterSpec(
            groups=(
                NodeGroup(1, NodeSpec("v100", 8, 64, 512), name_prefix="n"),
                NodeGroup(1, NodeSpec("rtx3090", 4, 32, 256), name_prefix="n"),
            )
        )
        with pytest.raises(ConfigError, match="duplicate node id"):
            build_cluster(spec)

    def test_partition_unknown_nodes_rejected(self):
        spec = ClusterSpec(groups=(NodeGroup(1, NodeSpec("v100", 8, 64, 512)),))
        with pytest.raises(ConfigError, match="unknown nodes"):
            build_cluster(spec, [PartitionSpec("p", ("ghost",))])

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(groups=())


class TestTaccCluster:
    def test_composition_matches_t1(self):
        cluster = build_tacc_cluster()
        assert cluster.total_gpus == 176
        assert len(cluster.nodes) == 24
        assert cluster.gpu_census() == {
            "a100-80": 32,
            "v100": 80,
            "rtx3090": 48,
            "rtx2080ti": 16,
        }

    def test_partitions_configured(self):
        cluster = build_tacc_cluster()
        assert {p.name for p in cluster.partitions} == {"a100", "v100", "consumer"}
        assert cluster.partitions.default_partition().name == "v100"

    def test_spec_totals(self):
        spec = tacc_cluster_spec()
        assert spec.total_gpus == 176
        assert spec.total_nodes == 24


class TestAllocation:
    def test_multi_node_allocation(self, small_cluster):
        nodes = sorted(small_cluster.nodes)[:2]
        alloc = small_cluster.allocate("j1", {nodes[0]: 8, nodes[1]: 8}, cpus_per_gpu=2)
        assert alloc.num_gpus == 16
        assert small_cluster.free_gpus == 16
        assert set(alloc.node_ids) == set(nodes)
        assert alloc.placement == {nodes[0]: 8, nodes[1]: 8}

    def test_atomic_rollback_on_partial_failure(self, small_cluster):
        nodes = sorted(small_cluster.nodes)
        small_cluster.allocate("filler", {nodes[1]: 8})
        with pytest.raises(AllocationError):
            small_cluster.allocate("j1", {nodes[0]: 8, nodes[1]: 1})
        # The first node's partial commit must have been rolled back.
        assert small_cluster.node(nodes[0]).free_gpus == 8
        assert not small_cluster.holds_job("j1")
        small_cluster.verify_invariants()

    def test_double_allocation_rejected(self, small_cluster):
        node = sorted(small_cluster.nodes)[0]
        small_cluster.allocate("j1", {node: 1})
        with pytest.raises(AllocationError, match="already holds"):
            small_cluster.allocate("j1", {node: 1})

    def test_empty_and_nonpositive_placements_rejected(self, small_cluster):
        with pytest.raises(AllocationError, match="empty placement"):
            small_cluster.allocate("j1", {})
        node = sorted(small_cluster.nodes)[0]
        with pytest.raises(AllocationError, match="non-positive"):
            small_cluster.allocate("j1", {node: 0})

    def test_free_returns_record_and_unknown_raises(self, small_cluster):
        node = sorted(small_cluster.nodes)[0]
        small_cluster.allocate("j1", {node: 4})
        released = small_cluster.free("j1")
        assert released.num_gpus == 4
        with pytest.raises(UnknownJobError):
            small_cluster.free("j1")

    def test_unknown_node_in_placement(self, small_cluster):
        with pytest.raises(UnknownNodeError):
            small_cluster.allocate("j1", {"ghost": 1})

    def test_utilization(self, small_cluster):
        assert small_cluster.utilization() == 0.0
        node = sorted(small_cluster.nodes)[0]
        small_cluster.allocate("j1", {node: 8})
        assert small_cluster.utilization() == pytest.approx(0.25)


class TestFailureInterplay:
    def test_fail_node_reports_jobs(self, small_cluster):
        nodes = sorted(small_cluster.nodes)
        small_cluster.allocate("j1", {nodes[0]: 4, nodes[1]: 4})
        victims = small_cluster.fail_node(nodes[0])
        assert victims == ("j1",)
        assert small_cluster.healthy_gpus == 24
        # Job still holds its whole allocation until the caller frees it.
        small_cluster.free("j1")
        small_cluster.repair_node(nodes[0])
        assert small_cluster.healthy_gpus == 32

    def test_free_gpus_excludes_unhealthy(self, small_cluster):
        node = sorted(small_cluster.nodes)[0]
        small_cluster.fail_node(node)
        assert small_cluster.free_gpus == 24


class TestFeasibility:
    def test_fits_anywhere_basic(self, small_cluster):
        assert small_cluster.fits_anywhere(8)
        assert small_cluster.fits_anywhere(32, gpus_per_node=8)
        assert not small_cluster.fits_anywhere(33, gpus_per_node=8)

    def test_fits_anywhere_respects_type(self, hetero_cluster):
        assert hetero_cluster.fits_anywhere(8, gpu_type="a100-80")
        assert not hetero_cluster.fits_anywhere(8, gpu_type="v100")

    def test_fits_anywhere_respects_cpu_budget(self, small_cluster):
        # 8 gpus * 13 cpus = 104 > 96 available per node.
        assert not small_cluster.fits_anywhere(8, cpus_per_gpu=13)
        assert small_cluster.fits_anywhere(8, cpus_per_gpu=12)

    def test_free_gpus_by_node_filter(self, hetero_cluster):
        by_node = hetero_cluster.free_gpus_by_node(gpu_type="rtx3090")
        assert len(by_node) == 2
        assert all(v == 4 for v in by_node.values())


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 8)), min_size=1, max_size=30))
def test_cluster_books_balance_under_random_ops(operations):
    cluster = uniform_cluster(3, gpus_per_node=8)
    live: list[str] = []
    counter = 0
    for do_alloc, gpus in operations:
        if do_alloc:
            target = next(
                (nid for nid, free in sorted(cluster.free_gpus_by_node().items()) if free >= gpus),
                None,
            )
            if target is not None:
                counter += 1
                name = f"j{counter}"
                cluster.allocate(name, {target: gpus}, cpus_per_gpu=1, memory_gb_per_gpu=1.0)
                live.append(name)
        elif live:
            cluster.free(live.pop())
        cluster.verify_invariants()
        assert cluster.used_gpus + cluster.free_gpus == cluster.total_gpus
