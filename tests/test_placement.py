"""Tests for placement policies: chunking, fit rules, policy rankings."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.errors import ConfigError
from repro.sched.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    TopologyAwarePlacement,
    WorstFitPlacement,
    make_placement,
    request_chunks,
)
from repro.sched.placement.base import candidate_nodes, node_fits_chunk
from repro.workload import ResourceRequest


class TestChunking:
    def test_single_node_request_one_chunk(self):
        assert request_chunks(ResourceRequest(num_gpus=4)) == [4]

    def test_multi_node_equal_chunks(self):
        assert request_chunks(ResourceRequest(num_gpus=16, gpus_per_node=8)) == [8, 8]

    def test_small_request_with_cap(self):
        assert request_chunks(ResourceRequest(num_gpus=4, gpus_per_node=8)) == [4]


class TestFitRules:
    def test_type_filter(self, hetero_cluster):
        request = ResourceRequest(num_gpus=2, gpu_type="a100-80")
        a100 = hetero_cluster.nodes_of_type("a100-80")[0]
        rtx = hetero_cluster.nodes_of_type("rtx3090")[0]
        assert node_fits_chunk(a100, request, 2)
        assert not node_fits_chunk(rtx, request, 2)

    def test_cpu_memory_budget(self, small_cluster):
        node = next(iter(small_cluster.nodes.values()))
        heavy = ResourceRequest(num_gpus=8, cpus_per_gpu=13)  # 104 > 96
        assert not node_fits_chunk(node, heavy, 8)

    def test_candidates_deterministic_order(self, small_cluster):
        request = ResourceRequest(num_gpus=1)
        names = [n.node_id for n in candidate_nodes(small_cluster, request, 1)]
        assert names == sorted(names)


class TestFirstFit:
    def test_takes_lowest_id_node(self, small_cluster):
        placement = FirstFitPlacement().place(small_cluster, ResourceRequest(num_gpus=4))
        assert placement == {"v100-000": 4}

    def test_multi_node_distinct_nodes(self, small_cluster):
        placement = FirstFitPlacement().place(
            small_cluster, ResourceRequest(num_gpus=16, gpus_per_node=8)
        )
        assert placement == {"v100-000": 8, "v100-001": 8}

    def test_declines_when_no_fit(self, small_cluster):
        for index, node_id in enumerate(sorted(small_cluster.nodes)):
            small_cluster.allocate(f"fill-{index}", {node_id: 6})
        assert FirstFitPlacement().place(small_cluster, ResourceRequest(num_gpus=4)) is None

    def test_single_type_rule_on_hetero(self, hetero_cluster):
        # 2 chunks of 4: both A100 nodes qualify, RTX nodes qualify too,
        # but the placement must not mix types.
        placement = FirstFitPlacement().place(
            hetero_cluster, ResourceRequest(num_gpus=8, gpus_per_node=4)
        )
        types = {hetero_cluster.node(n).spec.gpu_type for n in placement}
        assert len(types) == 1


class TestBestWorstFit:
    def test_best_fit_prefers_tightest(self, small_cluster):
        small_cluster.allocate("f", {"v100-001": 6})  # 2 free — tightest for 2
        placement = BestFitPlacement().place(small_cluster, ResourceRequest(num_gpus=2))
        assert placement == {"v100-001": 2}

    def test_worst_fit_prefers_emptiest(self, small_cluster):
        small_cluster.allocate("f", {"v100-000": 6})
        placement = WorstFitPlacement().place(small_cluster, ResourceRequest(num_gpus=2))
        assert placement == {"v100-001": 2}

    def test_best_fit_keeps_nodes_whole(self, small_cluster):
        small_cluster.allocate("f", {"v100-000": 4})
        # Best-fit should land the 4-GPU job on the half-full node,
        # leaving three empty nodes for wide jobs.
        placement = BestFitPlacement().place(small_cluster, ResourceRequest(num_gpus=4))
        assert placement == {"v100-000": 4}


class TestTopologyAware:
    def test_prefers_single_rack(self):
        cluster = uniform_cluster(4, gpus_per_node=8, nodes_per_rack=2)
        placement = TopologyAwarePlacement().place(
            cluster, ResourceRequest(num_gpus=16, gpus_per_node=8)
        )
        racks = {cluster.node(n).rack_id for n in placement}
        assert len(racks) == 1

    def test_prefers_tightest_rack(self):
        cluster = uniform_cluster(4, gpus_per_node=8, nodes_per_rack=2)
        # Make rack 1 partially used: it still fits 2x4, and is tighter.
        cluster.allocate("f", {"v100-000": 4, "v100-001": 4})
        placement = TopologyAwarePlacement().place(
            cluster, ResourceRequest(num_gpus=8, gpus_per_node=4)
        )
        assert set(placement) == {"v100-000", "v100-001"}

    def test_spills_across_racks_when_needed(self):
        cluster = uniform_cluster(4, gpus_per_node=8, nodes_per_rack=2)
        cluster.allocate("f", {"v100-000": 8})
        placement = TopologyAwarePlacement().place(
            cluster, ResourceRequest(num_gpus=24, gpus_per_node=8)
        )
        assert placement is not None
        racks = {cluster.node(n).rack_id for n in placement}
        assert len(racks) == 2  # minimum possible

    def test_declines_when_capacity_lacking(self, small_cluster):
        assert (
            TopologyAwarePlacement().place(
                small_cluster, ResourceRequest(num_gpus=40, gpus_per_node=8)
            )
            is None
        )


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in ("first-fit", "best-fit", "worst-fit", "topology-aware", "buddy-cell"):
            assert make_placement(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="known"):
            make_placement("quantum-fit")

    def test_placements_never_overcommit(self, small_cluster):
        """Whatever a policy returns must be allocatable right now."""
        small_cluster.allocate("f1", {"v100-000": 7})
        small_cluster.allocate("f2", {"v100-001": 5})
        request = ResourceRequest(num_gpus=6, gpus_per_node=3)
        for name in ("first-fit", "best-fit", "worst-fit", "topology-aware", "buddy-cell"):
            policy = make_placement(name)
            placement = policy.place(small_cluster, request)
            if placement is None:
                continue
            assert sum(placement.values()) == 6
            for node_id, count in placement.items():
                assert small_cluster.node(node_id).free_gpus >= count
