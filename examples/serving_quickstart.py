"""Serving quickstart: co-locate SLO-driven inference on the training cluster.

Two services (a chat model and an embedding model) ride the campus cluster
alongside a synthesized training workload.  Baseline replicas are paid for
with guaranteed quota; the autoscaler harvests idle GPUs for preemptible
surge replicas whenever the diurnal request peak outgrows the baseline.

Run:  python examples/serving_quickstart.py
"""

from repro import build_tacc_cluster, synthesize
from repro.ops import render_table, run_report
from repro.sched import QuotaConfig, TieredQuotaScheduler
from repro.serving import (
    AutoscalerConfig,
    ServiceLoadConfig,
    ServiceSpec,
    ServingFleet,
)
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import assign_models

DAYS = 2.0


def main() -> None:
    # 1. Training workload + cluster, as in quickstart.py.
    cluster = build_tacc_cluster()
    trace = synthesize("tacc-campus", days=DAYS, seed=0, jobs_per_day=120)
    assign_models(trace, seed=0)

    # 2. Two inference services with diurnal request curves.  The chat
    #    service peaks at 120 req/s — far beyond its 2 baseline replicas —
    #    so surge capacity must be harvested from idle GPUs to hold p99.
    services = [
        (
            ServiceSpec(
                service_id="svc-chat",
                user_id="u-serve-1",
                lab_id="lab-serve",
                model_name="gpt2-medium",
                slo_p99_s=2.0,
                base_replicas=2,
                max_replicas=12,
            ),
            ServiceLoadConfig(peak_rps=120.0),
        ),
        (
            ServiceSpec(
                service_id="svc-embed",
                user_id="u-serve-2",
                lab_id="lab-serve",
                model_name="bert-base",
                slo_p99_s=0.5,
                base_replicas=1,
                max_replicas=8,
            ),
            ServiceLoadConfig(peak_rps=45.0),
        ),
    ]
    fleet = ServingFleet(services, days=DAYS, autoscaler=AutoscalerConfig(), seed=7)

    # 3. Tiered quota: training labs share 60% of the cluster; the serving
    #    lab's quota covers exactly its baseline replicas (3 GPUs), so
    #    every surge replica must run opportunistically.
    quotas = dict(
        QuotaConfig.equal_shares(trace.labs(), cluster.total_gpus, fraction=0.6).quotas
    )
    quotas["lab-serve"] = 3
    scheduler = TieredQuotaScheduler(QuotaConfig(quotas=quotas))

    # 4. Simulate training and serving together.
    result = ClusterSimulator(
        cluster,
        scheduler,
        trace,
        config=SimConfig(sample_interval_s=1800.0),
        serving=fleet,
    ).run()

    # 5. Read the serving story out of the run.
    serving = result.metrics.serving
    assert serving is not None
    print(render_table(
        [
            {
                "service": service_id,
                "offered_mreq": row["offered_requests"] / 1e6,
                "peak_rps": row["peak_rps"],
                "slo_attainment": row["slo_attainment"],
                "replicas": int(row["replica_launches"]),
                "preempted": int(row["replica_preemptions"]),
                "baseline_gpu_h": row["baseline_gpu_hours"],
                "harvested_gpu_h": row["harvested_gpu_hours"],
            }
            for service_id, row in serving.per_service.items()
        ],
        title=f"{DAYS:.0f}-day co-located serving (autoscaled harvesting)",
    ))
    print(run_report(result))


if __name__ == "__main__":
    main()
