"""Visualising schedules: ASCII Gantt charts of recorded runs.

Records the lifecycle timeline of a small contended workload under three
policies and renders each as a Gantt chart — the quickest way to *see*
head-of-line blocking, backfill holes, and time-slicing.

Run:  python examples/gantt_view.py
"""

from repro.cluster import uniform_cluster
from repro.execlayer import UnitExecutionModel
from repro.ops import render_gantt
from repro.sched import GangScheduler, make_scheduler
from repro.sim import ClusterSimulator, SimConfig
from repro.workload import Job, ResourceRequest, Trace


def job(job_id, gpus, minutes, submit_min, estimate_min=None):
    return Job(
        job_id=job_id,
        user_id="user-demo",
        lab_id="lab-demo",
        request=ResourceRequest(num_gpus=gpus),
        submit_time=submit_min * 60.0,
        duration=minutes * 60.0,
        walltime_estimate=(estimate_min or minutes) * 60.0,
        preemptible=True,
    )


def workload():
    """A classic blocking scenario on one 8-GPU node."""
    return [
        job("long-6g", 6, minutes=120, submit_min=0),
        job("wide-8g", 8, minutes=30, submit_min=5),     # blocked behind long-6g
        job("tiny-2g-a", 2, minutes=20, submit_min=10),  # fits beside long-6g
        job("tiny-2g-b", 2, minutes=25, submit_min=12),
        job("mid-4g", 4, minutes=45, submit_min=20),
    ]


def run(policy_name, scheduler):
    simulator = ClusterSimulator(
        uniform_cluster(1, gpus_per_node=8),
        scheduler,
        Trace(workload()),
        exec_model=UnitExecutionModel(),
        config=SimConfig(
            sample_interval_s=0.0, checkpoint_loss_s=0.0, record_timeline=True
        ),
    )
    result = simulator.run()
    print(f"--- {policy_name} (mean wait "
          f"{result.metrics.wait_mean_s / 60.0:.0f} min) ---")
    print(render_gantt(result.timeline, width=64))


def main() -> None:
    run("strict FIFO (head-of-line blocking)", make_scheduler("fifo"))
    run("EASY backfill (tiny jobs fill the hole)", make_scheduler("backfill-easy"))
    run("gang time-slicing, 15 min quantum", GangScheduler(quantum_s=900.0))


if __name__ == "__main__":
    main()
