"""Operating the two-tier quota model: the cluster operator's view.

Simulates an overloaded fortnight under the campus cluster's tiered-quota
policy and produces the operator-facing reports: per-tier latency, per-lab
quota adherence, preemption churn, fairness, and the utilization series —
the heart of the paper's "operation" story.

Run:  python examples/quota_operations.py
"""

from repro import QuotaConfig, TieredQuotaScheduler, build_tacc_cluster, simulate
from repro.execlayer import ExecutionModel
from repro.ops import (
    fairness_summary,
    quota_adherence,
    render_table,
    sparkline,
    utilization_series,
    wait_cdf,
)
from repro.sim import FailureConfig, SimConfig
from repro.workload import TraceSynthesizer, assign_models, tacc_campus, with_load


def main() -> None:
    cluster = build_tacc_cluster()
    config = with_load(
        tacc_campus(days=14.0, guaranteed_fraction=0.5),
        cluster.total_gpus,
        target_load=1.2,  # oversubscribed: quota protection matters
        seed=42,
    )
    trace = TraceSynthesizer(config, seed=42).generate()
    assign_models(trace, seed=42)

    quota = QuotaConfig.equal_shares(trace.labs(), cluster.total_gpus, fraction=0.6)
    scheduler = TieredQuotaScheduler(quota)
    result = simulate(
        cluster,
        scheduler,
        trace,
        exec_model=ExecutionModel(),
        failure_config=FailureConfig(mtbf_hours=24.0 * 30),
        config=SimConfig(sample_interval_s=1800.0, seed=42),
    )
    metrics = result.metrics

    print(render_table(
        [
            {
                "tier": tier,
                "median_wait_h": wait_cdf(result.jobs, tier=tier).quantile(0.5) / 3600.0,
                "p95_wait_h": wait_cdf(result.jobs, tier=tier).quantile(0.95) / 3600.0,
                "preemptions": metrics.preemptions_by_tier[tier],
            }
            for tier in ("guaranteed", "opportunistic")
        ],
        title="Tier latency under 1.2x offered load",
    ))

    reports = quota_adherence(result.jobs, quota, horizon_s=result.end_time)
    print(render_table(
        [
            {
                "lab": report.lab,
                "quota_gpus": report.quota_gpus,
                "guaranteed_gpu_h": report.guaranteed_gpu_hours,
                "free_tier_gpu_h": report.opportunistic_gpu_hours,
                "adherence": report.adherence,
            }
            for report in reports
        ],
        title="Per-lab quota adherence (free_tier = bonus idle capacity harvested)",
    ))

    fairness = fairness_summary(result.jobs, key="lab_id")
    series = utilization_series(result.samples, bin_s=6 * 3600.0)
    print(f"lab-level Jain index: {fairness['jain']:.3f}  "
          f"(max lab share {fairness['max_share']:.0%})")
    print(f"avg utilization {metrics.avg_utilization:.0%}, "
          f"{metrics.node_failures} node failures, "
          f"{metrics.preemptions} preemptions")
    print(f"utilization, 6h bins: {sparkline([y for _x, y in series])}")


if __name__ == "__main__":
    main()
