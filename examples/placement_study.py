"""Placement study: how placement policy and comm substrate shape training.

Two connected questions from the paper's execution-layer design:

1. *Placement*: under a multi-GPU-heavy workload, how do first-fit /
   best-fit / topology-aware / HiveD buddy-cell placement differ in
   fragmentation and wide-job latency?
2. *Communication*: for a fixed spread-out placement, how much does the
   synchronisation substrate (ring vs parameter server vs in-network
   aggregation) recover?

Run:  python examples/placement_study.py
"""

from repro import build_tacc_cluster, make_placement, make_scheduler, simulate
from repro.cluster.topology import Locality
from repro.execlayer import CommMethod, ExecutionModel, PlacementShape, sync_time_s
from repro.experiments import fresh_trace_copy
from repro.ops import FragmentationProbe, render_table
from repro.sched.placement.hived import BuddyCellPlacement
from repro.sim import SimConfig
from repro.workload import MODEL_CATALOG, TraceSynthesizer, assign_models, tacc_campus, with_load


def placement_ablation() -> None:
    config = with_load(
        tacc_campus(
            days=3.0,
            gpu_demand_pmf={1: 0.3, 2: 0.2, 4: 0.2, 8: 0.18, 16: 0.09, 32: 0.03},
        ),
        176,
        0.95,
        seed=7,
    )
    base = TraceSynthesizer(config, seed=7).generate()
    assign_models(base, seed=7)

    rows = []
    for name in ("first-fit", "best-fit", "worst-fit", "topology-aware", "buddy-cell"):
        placement = make_placement(name)
        probe = FragmentationProbe()
        original = placement.on_free

        def hooked(cluster, job_id, placement_map, _orig=original):
            _orig(cluster, job_id, placement_map)
            probe.observe(cluster)

        placement.on_free = hooked  # observe fragmentation at every release
        trace = fresh_trace_copy(base)
        assign_models(trace, seed=7)
        result = simulate(
            build_tacc_cluster(),
            make_scheduler("backfill-easy", placement=placement),
            trace,
            exec_model=ExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        )
        wide_waits = sorted(
            job.wait_time
            for job in result.jobs.values()
            if job.num_gpus >= 8 and job.wait_time is not None
        )
        row = {
            "placement": name,
            "wide_wait_p50_h": wide_waits[len(wide_waits) // 2] / 3600.0 if wide_waits else 0.0,
            "mean_frag": probe.summary()["mean_frag"],
            "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
            "util": result.metrics.avg_utilization,
        }
        if isinstance(placement, BuddyCellPlacement):
            row["align_waste"] = placement.waste_gpus
        rows.append(row)
    print(render_table(rows, title="Placement ablation (multi-GPU-heavy week)"))


def comm_substrate_sweep() -> None:
    model = MODEL_CATALOG["gpt2-xl"]  # the most communication-bound profile
    shapes = {
        "16g-1-node": PlacementShape((16,), Locality.SAME_NODE, 600.0, 100.0, 2.0),
        "16g-2n-rack": PlacementShape((8, 8), Locality.SAME_RACK, 600.0, 100.0, 2.0),
        "16g-2n-spine": PlacementShape((8, 8), Locality.CROSS_RACK, 600.0, 100.0, 2.0),
    }
    rows = []
    for label, shape in shapes.items():
        row = {"shape": label}
        for method in CommMethod:
            if shape.num_nodes == 1 and method is CommMethod.PARAMETER_SERVER:
                pass  # PS colocated: still defined, keep it
            sync_ms = sync_time_s(model.gradient_mb, shape, method) * 1000.0
            iteration_ms = model.compute_ms + sync_ms
            row[f"{method.value}_iter_ms"] = iteration_ms
        rows.append(row)
    print(render_table(
        rows,
        title=f"{model.name}: per-iteration time by placement and substrate",
    ))
    print("In-network aggregation erases the spine penalty; the parameter "
          "server pays it twice.")


if __name__ == "__main__":
    placement_ablation()
    comm_substrate_sweep()
