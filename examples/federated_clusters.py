"""Federated submission across two campus cluster instances.

The platform runs more than one cluster instance; users pick by changing
one config line, and :class:`repro.tcloud.FederatedClient` automates the
choice.  This example stands up two simulated sites with different
hardware (a V100 site and an A100 site), pushes a mixed batch of tasks
through the least-queued router, and shows where — and why — each landed.

Run:  python examples/federated_clusters.py
"""

from repro.cluster import ClusterSpec, NodeGroup, NodeSpec, build_cluster
from repro.ops import render_table
from repro.schema import FileSpec, ResourceSpec, TaskSpec
from repro.tcloud import ClusterProfile, FederatedClient, TaccFrontend, TcloudConfig, reset_sessions


def site(name: str, gpu_type: str, nodes: int) -> TaccFrontend:
    cluster = build_cluster(
        ClusterSpec(
            name=name,
            groups=(NodeGroup(nodes, NodeSpec(gpu_type, 8, 96, 768), nodes_per_rack=4),),
        )
    )
    return TaccFrontend(cluster=cluster)


def task(name: str, gpus: int, gpu_type: str | None = None, hours: float = 2.0) -> TaskSpec:
    return TaskSpec(
        name=name,
        entrypoint="python train.py",
        code_files=(FileSpec.of_bytes("train.py", b"print('hi')\n" * 40),),
        resources=ResourceSpec(
            num_gpus=gpus,
            gpus_per_node=8 if gpus > 8 else None,
            gpu_type=gpu_type,
            walltime_hours=hours,
        ),
        model="resnet50",
    )


def main() -> None:
    reset_sessions()
    config = TcloudConfig()
    config.add(ClusterProfile(name="campus-main", endpoint="sim://campus-main"))
    config.add(ClusterProfile(name="ai-institute", endpoint="sim://ai-institute"))
    fed = FederatedClient(
        config,
        policy="least-queued",
        frontends={
            "campus-main": site("campus-main", "v100", nodes=6),
            "ai-institute": site("ai-institute", "a100-80", nodes=2),
        },
    )
    for name, info in fed.cluster_info().items():
        print(f"site {name}: {info['total_gpus']} GPUs ({info['gpu_census']})")

    batch = [
        task("pretrain-a", 8),
        task("pretrain-b", 8),
        task("needs-a100", 8, gpu_type="a100-80"),
        task("pretrain-c", 16),
        task("notebook", 1, hours=1.0),
        task("pretrain-d", 8),
    ]
    rows = []
    for spec in batch:
        federated_id, decision = fed.submit(spec, duration_hint_s=3 * 3600.0)
        rows.append(
            {
                "task": spec.name,
                "routed_to": decision.profile,
                "why": decision.reason,
                "excluded": ",".join(decision.excluded) or "-",
                "job": federated_id,
            }
        )
    print(render_table(rows, title="routing decisions (least-queued policy)"))

    fed.advance_all(4 * 3600.0)
    print("states after 4 simulated hours:")
    for row in rows:
        print(f"  {row['job']}: {fed.status(row['job']).state}")


if __name__ == "__main__":
    main()
