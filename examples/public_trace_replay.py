"""Replaying a public (Philly-style) trace through the simulator.

The adapters in :mod:`repro.workload.adapters` read the common CSV
renditions of published GPU-cluster traces.  This example writes a small
Philly-style trace excerpt to disk (in lieu of downloading the real
multi-GB dump), loads it through the adapter, replays it under two
schedulers, and prints the operator report for each.

To replay a real trace, point ``load_public_trace`` at the actual CSV.

Run:  python examples/public_trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import build_tacc_cluster, make_scheduler, simulate
from repro.execlayer import ExecutionModel
from repro.experiments import fresh_trace_copy
from repro.ops import run_report
from repro.sim import SimConfig
from repro.workload import assign_models, load_public_trace

#: An excerpt shaped like the Microsoft Philly trace CSV export: mixed
#: virtual clusters, wide failed jobs, interactive stubs, a CPU-only row.
PHILLY_EXCERPT = """jobid,user,vc,submitted_time,duration,gpus,status
app_000,u01,vc-nlp,2017-10-02 09:05:00,14400,8,Pass
app_001,u02,vc-vision,2017-10-02 09:20:00,600,1,Pass
app_002,u01,vc-nlp,2017-10-02 09:45:00,86400,16,Failed
app_003,u03,vc-speech,2017-10-02 10:10:00,1800,1,Killed
app_004,u04,vc-vision,2017-10-02 10:30:00,7200,4,Pass
app_005,u02,vc-vision,2017-10-02 11:00:00,300,0,Pass
app_006,u05,vc-nlp,2017-10-02 11:40:00,43200,8,Pass
app_007,u03,vc-speech,2017-10-02 12:00:00,3600,2,Failed
app_008,u01,vc-nlp,2017-10-02 13:30:00,21600,32,Pass
app_009,u06,vc-vision,2017-10-02 14:00:00,900,1,Pass
app_010,u04,vc-vision,2017-10-02 15:45:00,10800,4,Pass
app_011,u05,vc-nlp,2017-10-02 16:20:00,5400,8,Pass
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "philly_excerpt.csv"
        trace_path.write_text(PHILLY_EXCERPT)
        trace = load_public_trace(trace_path, name="philly-excerpt")

    print(f"loaded {len(trace)} GPU jobs "
          f"({trace.metadata['skipped_rows']} CPU-only rows skipped), "
          f"{trace.total_gpu_seconds_requested / 3600.0:,.0f} GPU-hours requested")
    print(f"labs (from virtual clusters): {', '.join(trace.labs())}\n")

    for policy in ("fifo", "backfill-easy"):
        replay = fresh_trace_copy(trace)
        assign_models(replay, seed=0)
        result = simulate(
            build_tacc_cluster(),
            make_scheduler(policy),
            replay,
            exec_model=ExecutionModel(),
            config=SimConfig(sample_interval_s=1800.0),
        )
        print(run_report(result))


if __name__ == "__main__":
    main()
