"""Scheduler shootout: replay one saturated week under every policy.

Demonstrates the policy zoo on an identical, load-calibrated workload —
the programmatic version of the paper's scheduler-comparison table (T2) —
including the cluster's own tiered-quota policy with per-lab quotas.

Run:  python examples/scheduler_shootout.py [--days 3] [--load 1.0]
"""

import argparse

from repro import QuotaConfig, TieredQuotaScheduler, build_tacc_cluster, make_scheduler, simulate
from repro.execlayer import ExecutionModel
from repro.experiments import fresh_trace_copy
from repro.ops import render_table, sparkline, wait_cdf
from repro.sim import SimConfig
from repro.workload import TraceSynthesizer, assign_models, tacc_campus, with_load

POLICIES = ("fifo", "fifo-greedy", "sjf", "fair-share", "drf",
            "backfill-conservative", "backfill-easy", "tiresias")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--days", type=float, default=3.0)
    parser.add_argument("--load", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = with_load(tacc_campus(days=args.days), 176, args.load, seed=args.seed)
    base_trace = TraceSynthesizer(config, seed=args.seed).generate()
    assign_models(base_trace, seed=args.seed)
    print(f"workload: {len(base_trace)} jobs over {args.days:g} days "
          f"at offered load {args.load:g}\n")

    rows = []
    for name in POLICIES:
        scheduler = make_scheduler(name)
        rows.append(run_one(name, scheduler, base_trace))

    # The cluster's own policy needs the lab census for quotas.
    quota = QuotaConfig.equal_shares(base_trace.labs(), 176, fraction=0.6)
    rows.append(run_one("tiered-quota", TieredQuotaScheduler(quota), base_trace))

    rows.sort(key=lambda row: row["avg_jct_h"])
    print(render_table(rows, title="One week, nine schedulers (sorted by mean JCT)"))


def run_one(name, scheduler, base_trace):
    trace = fresh_trace_copy(base_trace)
    assign_models(trace, seed=0)
    result = simulate(
        build_tacc_cluster(),
        scheduler,
        trace,
        exec_model=ExecutionModel(),
        config=SimConfig(sample_interval_s=0.0),
    )
    metrics = result.metrics
    cdf = wait_cdf(result.jobs)
    return {
        "scheduler": name,
        "avg_jct_h": metrics.jct_mean_s / 3600.0,
        "avg_wait_h": metrics.wait_mean_s / 3600.0,
        "p99_wait_h": metrics.wait_percentiles["p99"] / 3600.0,
        "util": metrics.avg_utilization,
        "preempt": metrics.preemptions,
        "wait_cdf": sparkline([p for _v, p in cdf.points(24)]),
    }


if __name__ == "__main__":
    main()
