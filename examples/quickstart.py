"""Quickstart: synthesize a campus trace, simulate a scheduler, read results.

Run:  python examples/quickstart.py
"""

from repro import build_tacc_cluster, make_scheduler, simulate, synthesize
from repro.execlayer import ExecutionModel
from repro.ops import render_table
from repro.sim import SimConfig
from repro.workload import assign_models


def main() -> None:
    # 1. The cluster: the 24-node / 176-GPU heterogeneous campus fleet.
    cluster = build_tacc_cluster()
    print(f"cluster: {cluster.name}, {len(cluster.nodes)} nodes, "
          f"{cluster.total_gpus} GPUs: {cluster.gpu_census()}")

    # 2. The workload: three synthesized days of campus submissions.
    trace = synthesize("tacc-campus", days=3.0, seed=0, jobs_per_day=120)
    assign_models(trace, seed=0)  # give each job a DNN profile
    print(f"trace: {len(trace)} jobs from {len(trace.users())} users "
          f"in {len(trace.labs())} labs")

    # 3. Simulate under EASY backfill with the placement-aware
    #    execution model (spread placements run slower).
    result = simulate(
        cluster,
        make_scheduler("backfill-easy"),
        trace,
        exec_model=ExecutionModel(),
        config=SimConfig(sample_interval_s=1800.0),
    )

    # 4. Read the results.
    metrics = result.metrics
    print(render_table(
        [
            {
                "completed": metrics.jobs_completed,
                "failed": metrics.jobs_failed,
                "avg_wait_min": metrics.wait_mean_s / 60.0,
                "p99_wait_h": metrics.wait_percentiles["p99"] / 3600.0,
                "avg_jct_h": metrics.jct_mean_s / 3600.0,
                "utilization": metrics.avg_utilization,
            }
        ],
        title="3-day campus replay under EASY backfill",
    ))


if __name__ == "__main__":
    main()
