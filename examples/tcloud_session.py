"""A researcher's day with tcloud: the serverless submission experience.

Walks the full 4-layer workflow stack interactively: write a task file
(Task Schema layer), validate + compile it (Compiler layer, with delta
uploads on resubmission), submit it to the simulated campus frontend
(Scheduling layer), and watch it run on modelled hardware (Execution
layer) with distributed log aggregation.

Run:  python examples/tcloud_session.py
"""

from repro.schema import parse_task_text
from repro.tcloud import TcloudClient, reset_sessions

TASK_YAML = """
# bert-finetune/task.yaml — a 16-GPU fine-tuning job
name: bert-finetune
entrypoint: python finetune.py --dataset squad
model: bert-large
resources:
  num_gpus: 16
  gpus_per_node: 8
  gpu_type: a100-80
  walltime_hours: 6.0
environment:
  pip_packages:
    - transformers==4.30.0
    - datasets==2.13.0
qos:
  tier: guaranteed
code_files:
  - path: finetune.py
    size_bytes: 18000
    sha256: {sha}
""".format(sha="c" * 64)


def main() -> None:
    reset_sessions()
    client = TcloudClient()  # default profile: the simulated campus cluster
    print("## cluster")
    for key, value in client.cluster_info().items():
        print(f"  {key}: {value}")

    # -- schema layer: parse and validate the task file ------------------
    spec = parse_task_text(TASK_YAML)
    print(f"\n## task {spec.name!r}: {spec.resources.num_gpus} GPUs, "
          f"fingerprint {spec.fingerprint()[:12]}")

    # -- compiler layer: what would a submission upload? -----------------
    from repro.tcloud.frontend import synthesize_workspace

    compile_result = client.frontend.compiler.compile(spec, synthesize_workspace(spec))
    upload = compile_result.upload
    print(f"compiled for runtime {compile_result.instruction.runtime!r}; "
          f"first upload moves {upload.uploaded_bytes / 1e3:.1f} kB")

    # -- scheduling + execution: submit and watch -------------------------
    job_id = client.submit(spec, duration_hint_s=2.5 * 3600.0)
    print(f"\nsubmitted as {job_id}")
    for step_hours in (0.25, 1.0, 2.0):
        client.advance(step_hours * 3600.0)
        print(f"  t+{client.frontend.now / 3600.0:4.1f}h  {client.status(job_id).oneline()}")

    print("\n## aggregated logs (all ranks, one call)")
    for node, lines in client.logs(job_id, tail=2).items():
        for line in lines:
            print(f"  {line}")

    # -- resubmission: the content cache makes it nearly free ------------
    second = client.frontend.compiler.compile(spec, synthesize_workspace(spec))
    print(f"\nresubmission would upload {second.upload.uploaded_bytes} bytes "
          f"(chunk hit rate {second.upload.hit_rate:.0%})")

    status = client.wait(job_id)
    print(f"\nfinal: {status.oneline()}  "
          f"(waited {status.wait_s / 60.0:.1f} min in queue)")


if __name__ == "__main__":
    main()
