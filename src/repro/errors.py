"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are organised by
subsystem (cluster, scheduling, schema, compiler, execution, simulation) and
carry enough context in their message to be actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class ValidationError(ReproError):
    """An input object failed validation (bad field value, missing field)."""


# --------------------------------------------------------------------------
# Cluster / resource errors
# --------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster-state errors."""


class AllocationError(ClusterError):
    """An allocation request could not be satisfied or was inconsistent."""


class CapacityError(AllocationError):
    """The request exceeds the total capacity of the node or cluster."""


class UnknownNodeError(ClusterError):
    """A node id was referenced that does not exist in the cluster."""


class UnknownJobError(ClusterError):
    """A job id was referenced that holds no allocation / is not tracked."""


# --------------------------------------------------------------------------
# Scheduling errors
# --------------------------------------------------------------------------


class SchedulingError(ReproError):
    """Base class for scheduler-policy errors."""


class QuotaError(SchedulingError):
    """A quota configuration or accounting operation was invalid."""


class PlacementError(SchedulingError):
    """A placement decision was malformed (e.g. over-allocates a node)."""


class PreemptionError(SchedulingError):
    """A preemption was requested for a job that cannot be preempted."""


# --------------------------------------------------------------------------
# Workflow-stack errors (schema / compiler / execution layers)
# --------------------------------------------------------------------------


class SchemaError(ValidationError):
    """A task description violates the task schema."""


class CompileError(ReproError):
    """The compiler layer could not produce a task instruction."""


class CacheError(CompileError):
    """The content-addressed instruction cache is inconsistent."""


class ExecutionError(ReproError):
    """The execution layer failed to provision or run a task."""


class RuntimeSwitchError(ExecutionError):
    """All candidate runtime systems failed; fail-safe switching exhausted."""


# --------------------------------------------------------------------------
# Workload / trace errors
# --------------------------------------------------------------------------


class TraceError(ReproError):
    """A trace file or trace object is malformed."""


class JobStateError(ReproError):
    """An illegal job lifecycle transition was attempted."""


class IllegalTransitionError(JobStateError):
    """The control plane rejected a lifecycle transition not in the legal set."""


# --------------------------------------------------------------------------
# Simulation errors
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SweepError(ReproError):
    """One or more cells of a sweep batch failed (raised after the batch
    completes, so succeeded cells are still cached)."""


class EventOrderError(SimulationError):
    """An event was scheduled in the past relative to the simulation clock."""
