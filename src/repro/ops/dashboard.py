"""The operator dashboard: one rendered view of cluster health.

Composes the ops analytics into the text report a cluster operator reads
each morning — utilization trend, queue pressure, tier latency, top
consumers, fragmentation, and incident counts.  Two entry points:

* :func:`live_dashboard` renders the *current* state of a live (simulated)
  cluster — used by ``tcloud top``;
* :func:`run_report` renders the retrospective of a finished
  :class:`~repro.sim.simulator.SimulationResult` — used by the operations
  example and notebooks.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING

from ..cluster.cluster import Cluster
from ..sim.simulator import SimulationResult
from ..workload.job import Job, JobState
from .analytics import utilization_series, wait_cdf
from .fairness import fairness_summary, gpu_hours_by_entity
from .fragmentation import snapshot
from .reports import render_table, sparkline

if TYPE_CHECKING:
    from ..federation.federation import FederationResult


def _format_hours(seconds: float) -> str:
    if seconds != seconds:  # NaN
        return "-"
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def live_dashboard(cluster: Cluster, jobs: dict[str, Job], now: float, queue_depth: int) -> str:
    """Render the instantaneous view of a live cluster."""
    out = io.StringIO()
    frag = snapshot(cluster)
    running = [job for job in jobs.values() if job.state is JobState.RUNNING]
    out.write(f"=== {cluster.name} @ t+{now / 3600.0:.1f}h ===\n")
    out.write(
        f"gpus: {cluster.used_gpus}/{cluster.healthy_gpus} busy"
        f" ({cluster.utilization():.0%}), {frag.free_gpus} free"
        f" (largest block {frag.largest_block}, frag {frag.external_fragmentation:.0%})\n"
    )
    unhealthy = [n for n, node in cluster.nodes.items() if not node.healthy]
    out.write(
        f"nodes: {len(cluster.nodes) - len(unhealthy)}/{len(cluster.nodes)} healthy"
        + (f"  DOWN: {', '.join(sorted(unhealthy))}" if unhealthy else "")
        + "\n"
    )
    out.write(f"jobs: {len(running)} running, {queue_depth} queued\n")
    if running:
        rows = [
            {
                "job": job.job_id,
                "user": job.user_id,
                "gpus": job.current_gpus or job.num_gpus,
                "elapsed": _format_hours(now - (job.last_start_time or now)),
                "progress": f"{job.work_done / job.duration:.0%}",
                "nodes": ",".join(job.current_nodes[:3])
                + ("…" if len(job.current_nodes) > 3 else ""),
            }
            for job in sorted(running, key=lambda j: -(j.current_gpus or j.num_gpus))[:10]
        ]
        out.write(render_table(rows, title="widest running jobs"))
    return out.getvalue()


def run_report(result: SimulationResult, top_n: int = 5) -> str:
    """Render the retrospective report of a finished simulation run."""
    out = io.StringIO()
    metrics = result.metrics
    out.write(
        f"=== run report: {result.trace_name} under {result.scheduler}"
        f"/{result.placement} ===\n"
    )
    out.write(
        f"jobs: {metrics.jobs_total} total — {metrics.jobs_completed} completed, "
        f"{metrics.jobs_failed} failed, {metrics.jobs_killed} killed, "
        f"{metrics.rejected_jobs} rejected at submit\n"
    )
    out.write(
        f"latency: wait p50 {_format_hours(wait_cdf(result.jobs).quantile(0.5))}"
        f" / p99 {_format_hours(metrics.wait_percentiles['p99'])},"
        f" JCT mean {_format_hours(metrics.jct_mean_s)}\n"
    )
    by_tier = " | ".join(
        f"{tier}: {_format_hours(value)}" for tier, value in metrics.wait_mean_by_tier.items()
    )
    out.write(f"mean wait by tier: {by_tier}\n")
    out.write(
        f"capacity: {metrics.served_gpu_hours:,.0f} GPU-h served, "
        f"avg utilization {metrics.avg_utilization:.0%} over "
        f"{result.end_time / 86400.0:.1f} simulated days\n"
    )
    goodput = metrics.goodput
    if goodput is not None:
        out.write(
            f"goodput: {goodput.goodput:.1%} = availability {goodput.availability:.1%}"
            f" × efficiency {goodput.efficiency:.1%}"
            f" × productive {goodput.productive_share:.1%}"
            f" ({goodput.productive_gpu_hours:,.0f} productive GPU-h)\n"
        )
    series = utilization_series(result.samples, bin_s=6 * 3600.0)
    if series:
        out.write(f"utilization (6h bins): {sparkline([y for _x, y in series])}\n")
    out.write(
        f"churn: {metrics.preemptions} preemptions, {metrics.node_failures} node "
        f"failures, {metrics.job_restarts} restarts\n"
    )
    perf = result.perf
    if perf.events_dequeued or perf.placement_attempts:
        out.write(
            f"hot path: {perf.events_dequeued:,} events"
            f" (peak {perf.peak_pending_events:,} pending),"
            f" {perf.scheduler_passes:,} passes,"
            f" {perf.placement_attempts:,} placement attempts"
            f" ({perf.nodes_per_attempt:.1f} nodes/attempt,"
            f" blocked-cache hit rate {perf.blocked_cache_hit_rate:.0%})\n"
        )
    if result.transitions:
        by_cause: dict[str, int] = {}
        for transition in result.transitions:
            by_cause[transition.cause.value] = by_cause.get(transition.cause.value, 0) + 1
        rendered = ", ".join(f"{cause}={count}" for cause, count in sorted(by_cause.items()))
        out.write(
            f"control plane: {len(result.transitions)} lifecycle transitions"
            f" ({rendered})\n"
        )
    failures = {k: v for k, v in metrics.failure_taxonomy.items() if v}
    if failures:
        out.write(f"failure taxonomy: {failures}\n")

    workflow = metrics.workflow
    if workflow is not None:
        out.write(
            f"workflows: {workflow.completed_workflows}/{workflow.workflows} "
            f"completed ({workflow.stages} stages), makespan mean "
            f"{_format_hours(workflow.makespan_mean_s)} vs critical path "
            f"{_format_hours(workflow.critical_path_mean_s)}\n"
        )
        out.write(
            f"workflow waits: dependency hold {_format_hours(workflow.dep_hold_wait_mean_s)}"
            f" + post-release queueing {_format_hours(workflow.post_release_wait_mean_s)}"
            f" per stage; {workflow.transfer_seconds:,.0f}s moving artifacts\n"
        )

    serving = metrics.serving
    if serving is not None:
        out.write(
            f"serving: {serving.services} services, "
            f"{serving.offered_requests / 1e6:.1f}M requests offered, "
            f"SLO attainment {serving.slo_attainment:.1%}, "
            f"goodput {serving.goodput_rps:,.0f} req/s\n"
        )
        out.write(
            f"serving capacity: {serving.baseline_gpu_hours:,.0f} baseline GPU-h + "
            f"{serving.harvested_gpu_hours:,.0f} harvested GPU-h "
            f"({serving.replica_launches} replica launches, "
            f"{serving.replica_preemptions} preempted, "
            f"{serving.scale_up_events}↑/{serving.scale_down_events}↓ scalings)\n"
        )

    hours = gpu_hours_by_entity(result.jobs, "user_id")
    top = sorted(hours.items(), key=lambda item: -item[1])[:top_n]
    if top:
        rows = [
            {"user": user, "gpu_hours": round(value, 1),
             "share": f"{value / max(1e-9, sum(hours.values())):.0%}"}
            for user, value in top
        ]
        out.write(render_table(rows, title=f"top {len(top)} users by GPU-hours"))
    fairness = fairness_summary(result.jobs, key="lab_id")
    out.write(f"lab fairness: Jain {fairness['jain']:.3f} across {fairness['entities']:.0f} labs\n")
    return out.getvalue()


def federation_report(result: "FederationResult") -> str:
    """Render the retrospective of a federated run: fleet + per-site view.

    The per-site table carries each site's own goodput decomposition; the
    fleet line above it is the exact merge (shared horizon, shell progress
    re-credited), so the productive GPU-hours column sums to the fleet
    figure plus the migrated-checkpoint credit.
    """
    out = io.StringIO()
    fleet = result.metrics
    out.write(
        f"=== federation report: {len(result.sites)} sites, "
        f"{result.end_time / 86400.0:.1f} simulated days ===\n"
    )
    out.write(
        f"fleet jobs: {fleet.jobs_total} total — {fleet.jobs_completed} completed, "
        f"{fleet.jobs_failed} failed, {fleet.jobs_killed} killed, "
        f"{fleet.rejected_jobs} rejected at submit\n"
    )
    goodput = result.goodput
    out.write(
        f"fleet goodput: {goodput.goodput:.1%} = availability {goodput.availability:.1%}"
        f" × efficiency {goodput.efficiency:.1%}"
        f" × productive {goodput.productive_share:.1%}"
        f" ({goodput.productive_gpu_hours:,.0f} productive GPU-h of"
        f" {goodput.total_gpu_hours:,.0f} total)\n"
    )
    moved = sum(1 for event in result.migrations if not event.was_running)
    grown = len(result.migrations) - moved
    out.write(
        f"migrations: {len(result.migrations)} ({moved} queue rescues, "
        f"{grown} elastic growths), "
        f"{result.migrated_shell_gpu_hours:,.1f} GPU-h carried in checkpoints\n"
    )
    rows = []
    for site in result.sites:
        metrics = site.metrics
        site_goodput = metrics.goodput
        rows.append(
            {
                "site": site.name,
                "routed": site.routed_jobs,
                "completed": metrics.jobs_completed,
                "goodput": f"{site_goodput.goodput:.1%}" if site_goodput else "-",
                "avail": f"{site_goodput.availability:.1%}" if site_goodput else "-",
                "eff": f"{site_goodput.efficiency:.1%}" if site_goodput else "-",
                "productive_gpu_h": (
                    round(site_goodput.productive_gpu_hours, 1) if site_goodput else "-"
                ),
                "preempt": metrics.preemptions,
                "failures": metrics.node_failures,
            }
        )
    out.write(render_table(rows, title="per-site decomposition"))
    return out.getvalue()
