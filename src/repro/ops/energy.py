"""Energy and cost accounting for cluster operation.

A campus cluster's electricity bill is a first-order operational concern:
consumer cards bought for FLOPS/$ are also watts-hungry, and idle GPUs
still burn power.  This module estimates a run's energy from the
simulation's exact per-type busy/idle GPU-time split:

    energy = busy_gpu_hours × TDP × load_factor + idle_gpu_hours × idle_W

all scaled by the machine-room PUE.  The *useful* energy fraction
(energy spent on jobs that completed vs. failed/preempted-and-redone work)
is the paper-style headline: what share of the bill produced results.

Busy GPU-hours per type come from each job's node history; idle hours are
the complement of the per-type capacity over the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..cluster.gpu import get_gpu_spec
from ..config import require_positive
from ..errors import ValidationError
from ..sim.simulator import SimulationResult
from ..workload.job import JobState


@dataclass(frozen=True)
class EnergyConfig:
    """Machine-room parameters.

    Attributes:
        pue: Power usage effectiveness (total facility power / IT power).
        load_factor: Average fraction of TDP a busy training GPU draws.
        price_per_kwh: Electricity price, for the cost column.
    """

    pue: float = 1.5
    load_factor: float = 0.85
    price_per_kwh: float = 0.12

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValidationError(f"PUE must be >= 1, got {self.pue}")
        if not 0.0 < self.load_factor <= 1.0:
            raise ValidationError("load_factor must be in (0, 1]")
        require_positive("price_per_kwh", self.price_per_kwh)


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one simulation run."""

    horizon_hours: float
    busy_gpu_hours_by_type: dict[str, float]
    idle_gpu_hours_by_type: dict[str, float]
    busy_kwh: float
    idle_kwh: float
    total_kwh: float  # includes PUE overhead
    useful_fraction: float  # busy energy share spent on completed work
    cost: float

    def as_rows(self) -> list[dict[str, float]]:
        rows = []
        gpu_types = sorted(set(self.busy_gpu_hours_by_type) | set(self.idle_gpu_hours_by_type))
        for gpu_type in gpu_types:
            rows.append(
                {
                    "gpu_type": gpu_type,
                    "busy_gpu_h": self.busy_gpu_hours_by_type.get(gpu_type, 0.0),
                    "idle_gpu_h": self.idle_gpu_hours_by_type.get(gpu_type, 0.0),
                }
            )
        rows.append(
            {
                "gpu_type": "TOTAL",
                "busy_gpu_h": sum(self.busy_gpu_hours_by_type.values()),
                "idle_gpu_h": sum(self.idle_gpu_hours_by_type.values()),
                "total_kwh": self.total_kwh,
                "useful_fraction": self.useful_fraction,
                "cost": self.cost,
            }
        )
        return rows


def _busy_hours_by_type(result: SimulationResult, cluster: Cluster) -> dict[str, dict[str, float]]:
    """Per-type busy GPU-hours, split into useful vs. non-useful.

    A job's GPU-seconds are attributed to the GPU type it ran on (jobs
    never mix types).  "Useful" = GPU-seconds of jobs that completed;
    failed, killed and redone work is the waste column.
    """
    busy: dict[str, float] = {}
    useful: dict[str, float] = {}
    for job in result.jobs.values():
        if not job.last_nodes or job.gpu_seconds_used <= 0:
            continue
        gpu_type = cluster.node(job.last_nodes[0]).spec.gpu_type
        hours = job.gpu_seconds_used / 3600.0
        busy[gpu_type] = busy.get(gpu_type, 0.0) + hours
        if job.state is JobState.COMPLETED:
            # Productive part excludes redone work after preemptions.
            productive = job.duration * job.num_gpus / 3600.0
            useful[gpu_type] = useful.get(gpu_type, 0.0) + min(productive, hours)
    return {"busy": busy, "useful": useful}


def energy_report(
    result: SimulationResult,
    cluster: Cluster,
    config: EnergyConfig | None = None,
) -> EnergyReport:
    """Estimate the energy and cost of a finished run."""
    config = config or EnergyConfig()
    horizon_hours = max(result.end_time, 1e-9) / 3600.0
    split = _busy_hours_by_type(result, cluster)
    busy = split["busy"]
    useful = split["useful"]

    capacity_hours: dict[str, float] = {}
    for node in cluster.nodes.values():
        gpu_type = node.spec.gpu_type
        capacity_hours[gpu_type] = (
            capacity_hours.get(gpu_type, 0.0) + node.spec.num_gpus * horizon_hours
        )
    idle = {
        gpu_type: max(0.0, capacity_hours[gpu_type] - busy.get(gpu_type, 0.0))
        for gpu_type in capacity_hours
    }

    busy_kwh = 0.0
    useful_kwh = 0.0
    idle_kwh = 0.0
    for gpu_type, hours in capacity_hours.items():
        spec = get_gpu_spec(gpu_type)
        busy_hours = busy.get(gpu_type, 0.0)
        busy_power_kw = spec.tdp_watts * config.load_factor / 1000.0
        busy_kwh += busy_hours * busy_power_kw
        useful_kwh += useful.get(gpu_type, 0.0) * busy_power_kw
        idle_kwh += idle[gpu_type] * spec.idle_watts / 1000.0

    total_kwh = (busy_kwh + idle_kwh) * config.pue
    return EnergyReport(
        horizon_hours=horizon_hours,
        busy_gpu_hours_by_type=dict(sorted(busy.items())),
        idle_gpu_hours_by_type=dict(sorted(idle.items())),
        busy_kwh=busy_kwh,
        idle_kwh=idle_kwh,
        total_kwh=total_kwh,
        useful_fraction=useful_kwh / busy_kwh if busy_kwh else 0.0,
        cost=total_kwh * config.price_per_kwh,
    )
