"""Operational analytics: distributions, fairness, fragmentation, reports."""

from .dashboard import federation_report, live_dashboard, run_report
from .energy import EnergyConfig, EnergyReport, energy_report
from .planning import ExpansionOption, plan_capacity, what_if
from .timeline import JobSegment, job_segments, render_gantt
from .analytics import (
    Cdf,
    arrivals_per_hour_of_day,
    duration_cdf_by_class,
    gpu_demand_distribution,
    queue_depth_series,
    slowdown_stats,
    utilization_series,
    wait_cdf,
)
from .fairness import (
    LabQuotaReport,
    fairness_summary,
    gpu_hours_by_entity,
    jain_index,
    quota_adherence,
)
from .fragmentation import FragmentationProbe, FragmentationSnapshot, snapshot
from .reports import render_series, render_table, series_to_rows, sparkline, write_csv

__all__ = [
    "Cdf",
    "EnergyConfig",
    "EnergyReport",
    "ExpansionOption",
    "FragmentationProbe",
    "FragmentationSnapshot",
    "LabQuotaReport",
    "arrivals_per_hour_of_day",
    "duration_cdf_by_class",
    "energy_report",
    "fairness_summary",
    "gpu_demand_distribution",
    "gpu_hours_by_entity",
    "JobSegment",
    "federation_report",
    "jain_index",
    "live_dashboard",
    "queue_depth_series",
    "job_segments",
    "plan_capacity",
    "quota_adherence",
    "render_gantt",
    "render_series",
    "run_report",
    "render_table",
    "series_to_rows",
    "slowdown_stats",
    "snapshot",
    "sparkline",
    "wait_cdf",
    "what_if",
    "write_csv",
]
