"""Capacity planning: what-if analysis for cluster growth.

The operational question every semester: *"queues are long — what should
we buy?"*.  The planner answers it the only honest way available to a
simulator: replay the same (load-scaled) workload against each candidate
expansion and compare waits, utilization and energy.

:func:`plan_capacity` takes the current cluster spec, a workload config,
and a list of named expansion options (extra node groups), and returns one
row per option — the table an operator takes to the budget meeting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..cluster.cluster import Cluster, ClusterSpec, NodeGroup, build_cluster
from ..controlplane.snapshot import fork
from ..errors import ConfigError
from ..execlayer.speedup import ExecutionModel
from ..sched import make_scheduler
from ..sim.simulator import ClusterSimulator, SimConfig
from ..workload.models import assign_models
from ..workload.synth import SyntheticTraceConfig, TraceSynthesizer
from .energy import EnergyConfig, energy_report


@dataclass(frozen=True)
class ExpansionOption:
    """One candidate purchase: extra node groups appended to the cluster."""

    name: str
    groups: tuple[NodeGroup, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("expansion option needs a name")

    @property
    def added_gpus(self) -> int:
        return sum(group.count * group.spec.num_gpus for group in self.groups)


def _expanded_spec(base: ClusterSpec, option: ExpansionOption) -> ClusterSpec:
    renamed = tuple(
        replace(
            group,
            name_prefix=f"{option.name}-{group.name_prefix or group.spec.gpu_type}",
        )
        for group in option.groups
    )
    return replace(base, groups=base.groups + renamed, name=f"{base.name}+{option.name}")


def what_if(
    sim: ClusterSimulator,
    interventions: dict[str, Callable[[ClusterSimulator], None]],
    horizon_s: float | None = None,
) -> list[dict[str, float]]:
    """Fork a *live* simulation and compare interventions from this instant.

    Capacity planning's sharper sibling: instead of replaying a synthetic
    workload from scratch, fork the actual cluster state mid-run — queue,
    allocations, RNG streams, pending events and all — apply each named
    intervention to its own fork (kill a hog job, mark the queue
    preemptible, retune a quota…), run every fork forward by *horizon_s*
    (or to quiescence), and put the outcomes side by side.

    The original simulation is never touched; the first returned row,
    ``as-is``, is an unmodified fork — the counterfactual baseline every
    intervention is judged against.  Rows share the controller's metric
    definitions, so columns are directly comparable.
    """
    named: list[tuple[str, Callable[[ClusterSimulator], None] | None]] = [("as-is", None)]
    named.extend(interventions.items())
    until = None if horizon_s is None else sim.engine.now + horizon_s
    rows: list[dict[str, float]] = []
    for name, intervene in named:
        forked = fork(sim)
        if intervene is not None:
            intervene(forked)
        result = forked.run(until=until)
        metrics = result.metrics
        rows.append(
            {
                "option": name,
                "completed": metrics.jobs_completed,
                "avg_wait_h": metrics.wait_mean_s / 3600.0,
                "p99_wait_h": metrics.wait_percentiles["p99"] / 3600.0,
                "avg_jct_h": metrics.jct_mean_s / 3600.0,
                "utilization": metrics.avg_utilization,
                "preemptions": metrics.preemptions,
                "rejected": metrics.rejected_jobs,
            }
        )
    return rows


def plan_capacity(
    base_spec: ClusterSpec,
    workload: SyntheticTraceConfig,
    options: list[ExpansionOption],
    scheduler_name: str = "backfill-easy",
    seed: int = 0,
    energy_config: EnergyConfig | None = None,
) -> list[dict[str, float]]:
    """Evaluate each expansion (plus the status quo) on the same workload.

    The workload is *not* rescaled per option — the point is how the same
    demand behaves on more hardware — so rows are directly comparable,
    with one caveat the ``rejected`` column makes visible: an expansion can
    make previously *infeasible* requests schedulable (e.g. a 64-GPU A100
    job on a cluster that only had 32 A100s), and those newly admitted
    giants consume their pool for days.  A row with fewer rejections is
    serving strictly more demand, so compare its waits accordingly.
    Returns one dict row per option, status quo first.
    """
    candidates: list[tuple[str, ClusterSpec, int]] = [("status-quo", base_spec, 0)]
    for option in options:
        candidates.append((option.name, _expanded_spec(base_spec, option), option.added_gpus))

    trace_template = TraceSynthesizer(workload, seed=seed).generate()
    rows = []
    for name, spec, added in candidates:
        cluster: Cluster = build_cluster(spec)
        # Fresh jobs per candidate: round-trip through the row format.
        from ..workload.trace import _job_from_row, _job_to_row
        from ..workload.trace import Trace

        jobs = [_job_from_row(_job_to_row(job)) for job in trace_template]
        trace = Trace(jobs, name=workload.name)
        assign_models(trace, seed=seed)
        result = ClusterSimulator(
            cluster,
            make_scheduler(scheduler_name),
            trace,
            exec_model=ExecutionModel(),
            config=SimConfig(sample_interval_s=0.0),
        ).run()
        metrics = result.metrics
        energy = energy_report(result, cluster, energy_config)
        rows.append(
            {
                "option": name,
                "gpus": cluster.total_gpus,
                "added_gpus": added,
                "avg_wait_h": metrics.wait_mean_s / 3600.0,
                "p99_wait_h": metrics.wait_percentiles["p99"] / 3600.0,
                "avg_jct_h": metrics.jct_mean_s / 3600.0,
                "rejected": metrics.rejected_jobs,
                "utilization": metrics.avg_utilization,
                "energy_mwh": energy.total_kwh / 1000.0,
                "kwh_per_useful_gpu_h": (
                    energy.total_kwh / max(1e-9, sum(energy.busy_gpu_hours_by_type.values()))
                ),
            }
        )
    return rows
