"""Fairness metrics across users and labs (experiment T5).

Two views of fairness matter operationally:

* **Jain's index** over per-entity allocations — 1.0 when everyone got the
  same, → 1/n when one entity got everything;
* **quota adherence** — how close each lab's *guaranteed-tier* service came
  to its entitlement, and how much free-tier service it harvested on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..sched.quota import QuotaConfig
from ..workload.job import JobTier


def jain_index(allocations) -> float:
    """Jain's fairness index of a non-negative allocation vector."""
    array = np.asarray(list(allocations), dtype=float)
    if array.size == 0:
        raise ValidationError("jain_index of an empty vector is undefined")
    if np.any(array < 0):
        raise ValidationError("allocations must be non-negative")
    total = array.sum()
    if total == 0:
        return 1.0  # nobody got anything: vacuously fair
    return float(total**2 / (array.size * (array**2).sum()))


def gpu_hours_by_entity(jobs, key: str = "lab_id", tier: JobTier | None = None) -> dict[str, float]:
    """Served GPU-hours grouped by ``user_id`` or ``lab_id``."""
    if key not in ("user_id", "lab_id"):
        raise ValidationError(f"key must be 'user_id' or 'lab_id', got {key!r}")
    population = jobs.values() if isinstance(jobs, dict) else jobs
    hours: dict[str, float] = {}
    for job in population:
        if tier is not None and job.tier is not tier:
            continue
        entity = getattr(job, key)
        hours[entity] = hours.get(entity, 0.0) + job.gpu_seconds_used / 3600.0
    return dict(sorted(hours.items()))


@dataclass(frozen=True)
class LabQuotaReport:
    """One lab's row in the T5 fairness table."""

    lab: str
    quota_gpus: int
    guaranteed_gpu_hours: float
    opportunistic_gpu_hours: float
    entitlement_gpu_hours: float

    @property
    def adherence(self) -> float:
        """Guaranteed service relative to entitlement (can exceed 1 when a
        lab's demand was bursty and the scheduler let it catch up)."""
        if self.entitlement_gpu_hours == 0:
            return float("nan")
        return self.guaranteed_gpu_hours / self.entitlement_gpu_hours

    @property
    def free_tier_bonus(self) -> float:
        """Opportunistic GPU-hours as a fraction of entitlement."""
        if self.entitlement_gpu_hours == 0:
            return float("nan")
        return self.opportunistic_gpu_hours / self.entitlement_gpu_hours


def quota_adherence(
    jobs,
    quota: QuotaConfig,
    horizon_s: float,
) -> list[LabQuotaReport]:
    """Per-lab quota adherence over a run of length *horizon_s* seconds.

    Entitlement is ``quota × horizon`` — what the lab could have consumed
    by keeping its guaranteed GPUs busy the whole time.
    """
    if horizon_s <= 0:
        raise ValidationError(f"horizon must be positive, got {horizon_s}")
    guaranteed = gpu_hours_by_entity(jobs, "lab_id", JobTier.GUARANTEED)
    opportunistic = gpu_hours_by_entity(jobs, "lab_id", JobTier.OPPORTUNISTIC)
    labs = sorted(set(guaranteed) | set(opportunistic) | set(quota.quotas))
    reports = []
    for lab in labs:
        quota_gpus = quota.quotas.get(lab, 0)
        reports.append(
            LabQuotaReport(
                lab=lab,
                quota_gpus=quota_gpus,
                guaranteed_gpu_hours=guaranteed.get(lab, 0.0),
                opportunistic_gpu_hours=opportunistic.get(lab, 0.0),
                entitlement_gpu_hours=quota_gpus * horizon_s / 3600.0,
            )
        )
    return reports


def fairness_summary(jobs, key: str = "lab_id") -> dict[str, float]:
    """Headline fairness numbers for a finished run."""
    hours = gpu_hours_by_entity(jobs, key)
    if not hours:
        return {"jain": float("nan"), "entities": 0.0, "max_share": float("nan")}
    values = np.asarray(list(hours.values()))
    total = values.sum()
    return {
        "jain": jain_index(values),
        "entities": float(values.size),
        "max_share": float(values.max() / total) if total else float("nan"),
    }
