"""Timeline analysis and ASCII Gantt rendering.

When a run is recorded (``SimConfig(record_timeline=True)``), its
:class:`~repro.sim.simulator.TimelineEvent` stream reconstructs every
job's life as segments — queued, running, terminal — which
:func:`render_gantt` draws as an ASCII chart.  Invaluable for eyeballing
*why* a schedule looks the way it does (who blocked whom, where
preemptions landed) and for teaching examples; not meant for
thousand-job runs.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from ..errors import ValidationError

#: Glyphs per segment state.
_GLYPHS = {"queued": "·", "running": "█", "setup": "░"}
_TERMINAL_MARKS = {"complete": "✓", "fail": "✗", "kill": "†", "reject": "R"}

_JOB_KINDS = {
    "submit",
    "reject",
    "start",
    "preempt",
    "requeue",
    "complete",
    "fail",
    "kill",
}


@dataclass(frozen=True)
class JobSegment:
    """One contiguous phase of a job's life."""

    job_id: str
    state: str  # "queued" | "running"
    start: float
    end: float


#: Same-timestamp ordering: a job submits before it starts, is evicted
#: before it re-starts, and terminates last.
_KIND_ORDER = {
    "submit": 0,
    "reject": 0,
    "preempt": 1,
    "requeue": 1,
    "start": 2,
    "complete": 3,
    "fail": 3,
    "kill": 3,
}


def job_segments(timeline) -> dict[str, list[JobSegment]]:
    """Reconstruct per-job queued/running segments from a timeline.

    Jobs still live at the end of the recording get an open segment
    closed at the last event's time.
    """
    events = sorted(
        (e for e in timeline if e.kind in _JOB_KINDS),
        key=lambda e: (e.time, _KIND_ORDER.get(e.kind, 9)),
    )
    if not events:
        return {}
    horizon = max(e.time for e in events)
    open_state: dict[str, tuple[str, float]] = {}
    segments: dict[str, list[JobSegment]] = {}

    def close(job_id: str, until: float) -> None:
        state = open_state.pop(job_id, None)
        if state is not None and until > state[1]:
            segments.setdefault(job_id, []).append(
                JobSegment(job_id, state[0], state[1], until)
            )
        else:
            segments.setdefault(job_id, [])

    for event in events:
        if event.kind == "submit":
            open_state[event.subject] = ("queued", event.time)
            segments.setdefault(event.subject, [])
        elif event.kind == "reject":
            segments.setdefault(event.subject, [])
        elif event.kind == "start":
            close(event.subject, event.time)
            open_state[event.subject] = ("running", event.time)
        elif event.kind in ("preempt", "requeue"):
            close(event.subject, event.time)
            open_state[event.subject] = ("queued", event.time)
        elif event.kind in ("complete", "fail", "kill"):
            close(event.subject, event.time)
    for job_id in list(open_state):
        close(job_id, horizon)
    return segments


def render_gantt(
    timeline,
    width: int = 72,
    max_jobs: int = 24,
    label_width: int = 12,
) -> str:
    """Render a recorded timeline as an ASCII Gantt chart.

    One row per job (submission order), ``·`` while queued, ``█`` while
    running, with the terminal outcome appended (✓ completed, ✗ failed,
    † killed, R rejected at submission).
    """
    if width < 10:
        raise ValidationError("gantt width must be at least 10")
    segments = job_segments(timeline)
    if not segments:
        return "(empty timeline)\n"
    terminal: dict[str, str] = {}
    submit_order: list[str] = []
    for event in sorted(timeline, key=lambda e: e.time):
        if event.kind in ("submit", "reject") and event.subject not in submit_order:
            submit_order.append(event.subject)
        if event.kind in _TERMINAL_MARKS:
            terminal[event.subject] = _TERMINAL_MARKS[event.kind]

    start = min(e.time for e in timeline)
    end = max(e.time for e in timeline)
    span = max(end - start, 1e-9)

    def column(time: float) -> int:
        return min(width - 1, int((time - start) / span * width))

    out = io.StringIO()
    hours = span / 3600.0
    out.write(
        f"gantt: {len(submit_order)} jobs over {hours:.1f}h "
        f"(each column ≈ {span / width / 60.0:.0f} min)\n"
    )
    shown = submit_order[:max_jobs]
    for job_id in shown:
        row = [" "] * width
        for segment in segments.get(job_id, []):
            glyph = _GLYPHS.get(segment.state, "?")
            lo, hi = column(segment.start), column(segment.end)
            for index in range(lo, max(hi, lo + 1)):
                row[index] = glyph
        mark = terminal.get(job_id, "…")
        label = job_id[-label_width:].rjust(label_width)
        out.write(f"{label} |{''.join(row)}| {mark}\n")
    if len(submit_order) > max_jobs:
        out.write(f"… and {len(submit_order) - max_jobs} more jobs not shown\n")
    return out.getvalue()
