"""GPU fragmentation metrics (experiment F8).

A cluster can be far from full yet unable to start an 8-GPU job because its
free GPUs are scattered one per node.  These metrics quantify that state:

* **largest allocatable block** — the biggest single-node GPU chunk
  startable right now;
* **external fragmentation** — ``1 − largest_block / min(total_free,
  max_node_capacity)``: 0 when the widest possible single-node request is
  startable (or nothing is free at all), → 1 when free GPUs are dust
  scattered one per node;
* **startable width profile** — for each power-of-two width, how many such
  jobs could start simultaneously, the operational view a cluster operator
  actually watches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster


@dataclass(frozen=True)
class FragmentationSnapshot:
    """Fragmentation state of a cluster at one instant."""

    free_gpus: int
    largest_block: int
    external_fragmentation: float
    startable: dict[int, int]  # width -> how many such single-node jobs fit

    def as_row(self) -> dict[str, float]:
        row: dict[str, float] = {
            "free_gpus": float(self.free_gpus),
            "largest_block": float(self.largest_block),
            "frag": self.external_fragmentation,
        }
        for width, count in self.startable.items():
            row[f"fit_{width}g"] = float(count)
        return row


def snapshot(cluster: Cluster, widths: tuple[int, ...] = (1, 2, 4, 8)) -> FragmentationSnapshot:
    """Measure fragmentation of the cluster's current free capacity."""
    free_per_node = [
        node.free_gpus for node in cluster.nodes.values() if node.healthy and node.free_gpus > 0
    ]
    free_total = sum(free_per_node)
    largest = max(free_per_node, default=0)
    max_capacity = max(
        (node.spec.num_gpus for node in cluster.nodes.values() if node.healthy), default=0
    )
    startable = {
        width: sum(free // width for free in free_per_node) for width in sorted(widths)
    }
    usable_bound = min(free_total, max_capacity)
    fragmentation = 0.0 if usable_bound == 0 else 1.0 - largest / usable_bound
    return FragmentationSnapshot(
        free_gpus=free_total,
        largest_block=largest,
        external_fragmentation=fragmentation,
        startable=startable,
    )


@dataclass
class FragmentationProbe:
    """Collects fragmentation snapshots over a simulation.

    Wire it as (or into) a placement policy's hooks, or call
    :meth:`observe` from a sampling loop; :meth:`summary` averages the run.
    """

    snapshots: list[FragmentationSnapshot] | None = None

    def __post_init__(self) -> None:
        if self.snapshots is None:
            self.snapshots = []

    def observe(self, cluster: Cluster) -> FragmentationSnapshot:
        snap = snapshot(cluster)
        self.snapshots.append(snap)
        return snap

    def summary(self) -> dict[str, float]:
        if not self.snapshots:
            return {"mean_frag": float("nan"), "max_frag": float("nan"), "observations": 0.0}
        frags = [snap.external_fragmentation for snap in self.snapshots]
        return {
            "mean_frag": sum(frags) / len(frags),
            "max_frag": max(frags),
            "observations": float(len(frags)),
        }
