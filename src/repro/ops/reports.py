"""Report rendering: the tables and figure-series the benchmarks print.

Every benchmark regenerates one paper table or figure; these helpers give
them a uniform look — fixed-width ASCII tables for tables, aligned
``x  y1 y2 …`` blocks (plus optional sparklines) for figure series — and a
CSV export so results can be re-plotted outside the repo.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import ValidationError

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render dict rows as an aligned ASCII table (columns from row keys)."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_format_cell(row.get(col, ""), precision) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    if title:
        out.write(f"== {title} ==\n")
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for line in cells:
        out.write("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) + "\n")
    return out.getvalue()


def render_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "x",
    precision: int = 3,
    max_rows: int = 40,
) -> str:
    """Render named (x, y) series as one aligned block sharing the x axis.

    Series are aligned on the union of x values; missing points print
    blank.  Long series are downsampled evenly to *max_rows*.
    """
    if not series:
        return f"{title}\n(no series)\n" if title else "(no series)\n"
    xs: list[float] = sorted({x for points in series.values() for x, _y in points})
    lookup = {name: dict(points) for name, points in series.items()}
    if len(xs) > max_rows:
        step = (len(xs) - 1) / (max_rows - 1)
        xs = [xs[round(i * step)] for i in range(max_rows)]
    names = list(series)
    rows = []
    for x in xs:
        row: dict[str, object] = {x_label: x}
        for name in names:
            y = lookup[name].get(x)
            row[name] = "" if y is None else y
        rows.append(row)
    return render_table(rows, title=title, precision=precision)


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a numeric sequence (empty input → '')."""
    data = [v for v in values if v == v]  # drop NaN
    if not data:
        return ""
    low, high = min(data), max(data)
    span = high - low
    if span == 0:
        return _SPARK_CHARS[0] * len(data)
    return "".join(
        _SPARK_CHARS[min(len(_SPARK_CHARS) - 1, int((v - low) / span * len(_SPARK_CHARS)))]
        for v in data
    )


def write_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> None:
    """Write dict rows to CSV (columns = union of keys, insertion order)."""
    if not rows:
        raise ValidationError("cannot write an empty CSV")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with Path(path).open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))


def series_to_rows(
    series: Mapping[str, Sequence[tuple[float, float]]], x_label: str = "x"
) -> list[dict[str, float]]:
    """Flatten named series into join-on-x rows (for CSV export)."""
    xs: list[float] = sorted({x for points in series.values() for x, _y in points})
    lookup = {name: dict(points) for name, points in series.items()}
    rows = []
    for x in xs:
        row: dict[str, float] = {x_label: x}
        for name in series:
            if x in lookup[name]:
                row[name] = lookup[name][x]
        rows.append(row)
    return rows
