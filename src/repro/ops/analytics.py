"""Operational analytics: distributions and time series over runs.

These are the measurement tools of the operational study: empirical CDFs
(durations, demands, waits), time-binned series (arrivals per hour,
utilization over time), and queueing statistics — all pure functions over
traces and simulation results so the experiment harness can compose them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..sim.metrics import Sample
from ..workload.job import Job, JobState
from ..workload.trace import Trace


@dataclass(frozen=True)
class Cdf:
    """Empirical CDF: sorted values with cumulative probabilities."""

    values: np.ndarray
    probabilities: np.ndarray

    @classmethod
    def of(cls, data) -> "Cdf":
        array = np.sort(np.asarray(list(data), dtype=float))
        if array.size == 0:
            return cls(np.array([]), np.array([]))
        probs = np.arange(1, array.size + 1) / array.size
        return cls(array, probs)

    def at(self, value: float) -> float:
        """P(X <= value)."""
        if self.values.size == 0:
            return float("nan")
        return float(np.searchsorted(self.values, value, side="right") / self.values.size)

    def quantile(self, q: float) -> float:
        """Inverse CDF (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"quantile must be in (0, 1], got {q}")
        if self.values.size == 0:
            return float("nan")
        index = min(self.values.size - 1, int(np.ceil(q * self.values.size)) - 1)
        return float(self.values[max(0, index)])

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """Downsampled (value, probability) pairs for plotting/printing."""
        if self.values.size == 0:
            return []
        if self.values.size <= max_points:
            return list(zip(self.values.tolist(), self.probabilities.tolist()))
        indices = np.linspace(0, self.values.size - 1, max_points).astype(int)
        return [
            (float(self.values[i]), float(self.probabilities[i])) for i in indices
        ]


# --------------------------------------------------------------------------
# Trace characterization (F1–F3)
# --------------------------------------------------------------------------


def arrivals_per_hour_of_day(trace: Trace) -> dict[int, float]:
    """Mean submissions per hour-of-day across the trace span (F1)."""
    if len(trace) == 0:
        return {hour: 0.0 for hour in range(24)}
    days = max(1.0, np.ceil((trace.jobs[-1].submit_time + 1) / 86400.0))
    counts = {hour: 0 for hour in range(24)}
    for job in trace:
        counts[int(job.submit_time % 86400.0 // 3600)] += 1
    return {hour: counts[hour] / days for hour in range(24)}


def gpu_demand_distribution(trace: Trace) -> dict[int, dict[str, float]]:
    """Per-demand job share and GPU-hour share (F2)."""
    histogram = trace.gpu_demand_histogram()
    hours = trace.gpu_hours_by_demand()
    total_jobs = max(1, len(trace))
    total_hours = max(1e-9, sum(hours.values()))
    return {
        demand: {
            "jobs": histogram[demand],
            "job_share": histogram[demand] / total_jobs,
            "gpu_hour_share": hours.get(demand, 0.0) / total_hours,
        }
        for demand in sorted(histogram)
    }


def duration_cdf_by_class(
    trace: Trace, boundaries: tuple[int, ...] = (1, 2, 8)
) -> dict[str, Cdf]:
    """Duration CDFs per GPU-demand class (F3).

    ``boundaries`` split demands into labelled classes, e.g. (1, 2, 8) →
    "1", "2-7", "8+".
    """
    classes: dict[str, list[float]] = {}
    for job in trace:
        label = _class_label(job.num_gpus, boundaries)
        classes.setdefault(label, []).append(job.duration)
    return {label: Cdf.of(values) for label, values in sorted(classes.items())}


def _class_label(demand: int, boundaries: tuple[int, ...]) -> str:
    sorted_bounds = sorted(boundaries)
    for lower, upper in zip(sorted_bounds, sorted_bounds[1:]):
        if lower <= demand < upper:
            return str(lower) if upper == lower + 1 else f"{lower}-{upper - 1}"
    return f"{sorted_bounds[-1]}+"


# --------------------------------------------------------------------------
# Run analysis (F4–F5)
# --------------------------------------------------------------------------


def utilization_series(samples: list[Sample], bin_s: float = 3600.0) -> list[tuple[float, float]]:
    """(bin start hour, mean utilization) series from samples (F4)."""
    if not samples:
        return []
    bins: dict[int, list[float]] = {}
    for sample in samples:
        bins.setdefault(int(sample.time // bin_s), []).append(sample.utilization)
    return [
        (index * bin_s / 3600.0, float(np.mean(values)))
        for index, values in sorted(bins.items())
    ]


def queue_depth_series(samples: list[Sample], bin_s: float = 3600.0) -> list[tuple[float, float]]:
    """(bin start hour, mean queue depth) series from samples."""
    if not samples:
        return []
    bins: dict[int, list[float]] = {}
    for sample in samples:
        bins.setdefault(int(sample.time // bin_s), []).append(float(sample.queue_depth))
    return [
        (index * bin_s / 3600.0, float(np.mean(values)))
        for index, values in sorted(bins.items())
    ]


def wait_cdf(jobs: dict[str, Job] | list[Job], tier: str | None = None) -> Cdf:
    """Queueing-delay CDF over started jobs, optionally one tier (F5/F7)."""
    population = jobs.values() if isinstance(jobs, dict) else jobs
    waits = [
        job.wait_time
        for job in population
        if job.wait_time is not None and (tier is None or job.tier.value == tier)
    ]
    return Cdf.of(waits)


def slowdown_stats(jobs: dict[str, Job] | list[Job]) -> dict[str, float]:
    """Bounded-slowdown statistics over completed jobs (JCT / max(runtime, 10min))."""
    population = jobs.values() if isinstance(jobs, dict) else jobs
    slowdowns = []
    for job in population:
        if job.state is not JobState.COMPLETED or job.jct is None:
            continue
        slowdowns.append(job.jct / max(job.duration, 600.0))
    if not slowdowns:
        return {"mean": float("nan"), "p50": float("nan"), "p99": float("nan")}
    array = np.asarray(slowdowns)
    return {
        "mean": float(array.mean()),
        "p50": float(np.percentile(array, 50)),
        "p99": float(np.percentile(array, 99)),
    }
