"""Cache maintenance CLI: ``python -m repro.sweep {stats,prune}``.

The result cache is content-addressed, so it never serves stale data —
but stale entries (written by older code) accumulate on disk.  ``prune``
evicts them; ``stats`` reports what is there.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .cache import SweepCache
from .fingerprint import code_fingerprint


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Inspect or prune the sweep result cache.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $TCLOUD_SWEEP_CACHE or ~/.cache/tcloud-sweep)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "stats",
        parents=[common],
        help="show entry count, total bytes, code fingerprint",
    )
    prune = sub.add_parser(
        "prune", parents=[common], help="evict stale (or all/old) entries"
    )
    prune.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="also evict entries older than this many days",
    )
    prune.add_argument(
        "--all", action="store_true", help="wipe every entry regardless of state"
    )
    args = parser.parse_args(argv)

    cache = SweepCache(args.cache_dir)
    if args.command == "stats":
        stats = cache.stats()
        print(f"cache_dir: {cache.root}")
        print(f"entries: {int(stats['entries'])}")
        print(f"bytes: {int(stats['bytes'])}")
        print(f"code_fingerprint: {code_fingerprint()}")
        return 0
    removed = cache.prune(max_age_days=args.max_age_days, all_entries=args.all)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} from {cache.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
