"""Code fingerprint: a digest of the ``repro`` package source.

Cache entries are only valid for the exact code that produced them.  The
fingerprint hashes every ``.py`` file under the installed ``repro``
package (path-relative name + contents, in sorted order), so any edit to
simulation, scheduling, workload, or sweep code invalidates the whole
cache.  That is deliberately coarse: correctness over cleverness — a
false invalidation costs one re-run; a false hit serves wrong results.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over all ``repro/**/*.py`` sources (hex digest)."""
    root = _package_root()
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()
