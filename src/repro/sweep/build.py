"""Materialise a :class:`SimCell` into live objects and run it.

This is the worker-side half of the sweep engine: given a cell spec and
the serialised trace rows (shipped by the parent's trace memo), rebuild
the trace/scheduler/cluster/subsystems, run the simulation, and distil
the outcome into a :class:`~repro.sweep.result.CellResult`.

Everything here must be a pure function of ``(cell, trace rows)`` — the
one sanctioned impurity is the in-worker wall-clock measurement around
the run, which is observational (cached with the result, never fed back
into the simulation).
"""

from __future__ import annotations

import time
from typing import Any

from ..cluster.cluster import (
    Cluster,
    build_tacc_cluster,
    heterogeneous_cluster,
    uniform_cluster,
)
from ..errors import ConfigError
from ..execlayer.speedup import ExecutionModel, UnitExecutionModel
from ..execlayer.storage import SharedFilesystem, StorageConfig
from ..ops.fragmentation import FragmentationProbe
from ..sched import make_scheduler
from ..sched.base import Scheduler
from ..sched.placement import PlacementPolicy, make_placement
from ..sched.placement.hived import BuddyCellPlacement
from ..sched.quota import QuotaConfig
from ..sim.failures import FailureConfig
from ..sim.simulator import ClusterSimulator, SimConfig
from ..workload.models import assign_models
from ..workload.pipelines import PipelineSynthesizer, PipelineTraceConfig
from ..workload.synth import TraceSynthesizer, tacc_campus, with_load
from ..workload.trace import Trace
from .result import CellResult
from .spec import (
    ClusterSpec,
    SchedulerSpec,
    ServingSpec,
    SimCell,
    TraceSpec,
    WorkflowTraceSpec,
)

#: Probe names accepted in ``SimCell.probes``.
KNOWN_PROBES = ("fragmentation",)

TraceRows = tuple[dict[str, object], ...]


def build_trace(spec: TraceSpec) -> Trace:
    """Synthesize the trace a :class:`TraceSpec` describes (parent-side).

    The construction order mirrors ``experiments.common.campus_trace``
    exactly — preset, load calibration, synthesis, model assignment — so
    cell-based experiments reproduce the pre-sweep numbers bit-for-bit.
    """
    if spec.preset != "tacc-campus":
        raise ConfigError(f"unknown trace preset {spec.preset!r}")
    config = tacc_campus(days=spec.days, **spec.overrides)
    if spec.load is not None:
        config = with_load(
            config, spec.load_gpus, spec.load, seed=spec.synth_seed + spec.load_seed
        )
    trace = TraceSynthesizer(config, seed=spec.synth_seed).generate()
    if spec.model_seed is not None:
        assign_models(trace, seed=spec.model_seed)
    return trace


def merge_workflow_jobs(spec: WorkflowTraceSpec, base: Trace) -> Trace:
    """Append synthesized pipeline stages to a rehydrated base trace.

    Happens worker-side on the fresh per-cell copy, so the parent's trace
    memo (shared across cells) is never mutated.  Workflow job ids use the
    ``wf-`` prefix, disjoint from the synthesizers' ``job-`` namespace.
    """
    from dataclasses import replace as _replace

    config = _replace(
        PipelineTraceConfig(
            days=spec.days, workflows_per_day=spec.workflows_per_day
        ),
        **spec.overrides,  # type: ignore[arg-type]
    )
    workflow_trace = PipelineSynthesizer(config, seed=spec.synth_seed).generate()
    return Trace(
        list(base) + list(workflow_trace),
        name=base.name,
        metadata={**base.metadata, "workflows": len(workflow_trace)},
    )


def build_cluster(spec: ClusterSpec) -> Cluster:
    if spec.kind == "uniform":
        return uniform_cluster(spec.nodes, gpus_per_node=spec.gpus_per_node)
    if spec.kind == "het":
        return heterogeneous_cluster(spec.nodes, gpus_per_node=spec.gpus_per_node)
    return build_tacc_cluster()


def build_scheduler(spec: SchedulerSpec) -> tuple[Scheduler, PlacementPolicy | None]:
    """Instantiate the scheduler (and its placement object, for probing)."""
    placement = make_placement(spec.placement) if spec.placement else None
    kwargs: dict[str, Any] = dict(spec.params)
    if spec.name == "tiered-quota":
        if spec.quotas is None:
            raise ConfigError("tiered-quota cells need resolved quotas")
        kwargs["quota"] = QuotaConfig(quotas=dict(spec.quotas))
    scheduler = make_scheduler(spec.name, placement=placement, **kwargs)
    return scheduler, placement


def build_exec_model(kwargs: dict[str, Any]) -> ExecutionModel:
    """Instantiate a cell's execution model from plain-data kwargs.

    ``{"unit": True}`` selects :class:`UnitExecutionModel` (pure-queueing
    experiments: slowdown is exactly 1.0, making analytical bounds like
    the workflow critical path exact); anything else passes through to
    :class:`ExecutionModel`.
    """
    params = dict(kwargs)
    if params.pop("unit", False):
        if params:
            raise ConfigError(
                f"unit exec model takes no other parameters; got {sorted(params)}"
            )
        return UnitExecutionModel()
    return ExecutionModel(**params)


def _build_serving(spec: ServingSpec) -> Any:
    from ..serving import AutoscalerConfig, ServiceLoadConfig, ServiceSpec, ServingFleet

    workload = [
        (ServiceSpec(**service), ServiceLoadConfig(**load))
        for service, load in spec.services
    ]
    return ServingFleet(
        workload,
        days=spec.days,
        autoscaler=AutoscalerConfig(enabled=spec.autoscaled),
        seed=spec.seed,
    )


def _attach_fragmentation_probe(placement: PlacementPolicy) -> FragmentationProbe:
    """Wrap the placement's free hook to snapshot fragmentation (F8)."""
    probe = FragmentationProbe()
    original_on_free = placement.on_free

    def probed_on_free(
        cluster: Cluster, job_id: str, placement_map: Any, _orig: Any = original_on_free
    ) -> None:
        _orig(cluster, job_id, placement_map)
        probe.observe(cluster)

    placement.on_free = probed_on_free  # type: ignore[method-assign]
    return probe


def run_cell(
    cell: SimCell,
    trace_rows: TraceRows,
    trace_name: str = "trace",
    trace_metadata: dict[str, object] | None = None,
) -> CellResult:
    """Run one cell against pre-serialised trace rows.

    Called in workers (rows shipped over the pipe) and in-process for
    ``--jobs 1``; both paths are identical by construction.
    """
    for probe_name in cell.probes:
        if probe_name not in KNOWN_PROBES:
            raise ConfigError(f"unknown probe {probe_name!r}; known: {KNOWN_PROBES}")

    trace = Trace.from_rows(trace_rows, name=trace_name, metadata=trace_metadata or {})
    if cell.preemptible_override:
        for job in trace:
            # Workload synthesis consent flag on a pristine rehydrated copy,
            # set before the simulator exists (F11 gang time-slicing).
            job.preemptible = True  # simlint: disable=R3  (pre-sim trace setup)

    if cell.workflow is not None:
        if cell.federation is not None:
            raise ConfigError("workflow jobs are not supported in federated cells yet")
        trace = merge_workflow_jobs(cell.workflow, trace)

    if cell.federation is not None:
        return _run_federated_cell(cell, trace)

    scheduler, placement = build_scheduler(cell.scheduler)
    cluster = build_cluster(cell.cluster)
    exec_model = build_exec_model(cell.exec_model)
    sim_config = SimConfig(**cell.sim)

    sim_kwargs: dict[str, Any] = {}
    if cell.failures is not None:
        sim_kwargs["failure_config"] = FailureConfig(**cell.failures)
    storage: SharedFilesystem | None = None
    if cell.storage is not None:
        storage = SharedFilesystem(StorageConfig(**cell.storage))
        sim_kwargs["storage"] = storage
    if cell.serving is not None:
        sim_kwargs["serving"] = _build_serving(cell.serving)

    frag_probe: FragmentationProbe | None = None
    if "fragmentation" in cell.probes:
        if placement is None:
            raise ConfigError("fragmentation probe needs an explicit placement")
        frag_probe = _attach_fragmentation_probe(placement)

    simulator = ClusterSimulator(
        cluster,
        scheduler,
        trace,
        exec_model=exec_model,
        config=sim_config,
        **sim_kwargs,
    )
    # Observational wall-clock only: measured where the run happens,
    # shipped/cached with the result, never visible to the simulation.
    started = time.perf_counter()  # simlint: disable=R2  (perf measurement)
    result = simulator.run()
    wall_s = time.perf_counter() - started  # simlint: disable=R2  (perf measurement)

    extras: dict[str, Any] = {}
    if frag_probe is not None:
        extras["mean_frag"] = frag_probe.summary()["mean_frag"]
    if isinstance(placement, BuddyCellPlacement):
        extras["alignment_waste_gpus"] = placement.waste_gpus
    if storage is not None:
        extras["storage_hit_rate"] = storage.hit_rate
        extras["storage_bytes_staged_gb"] = storage.bytes_staged_gb
    predictor = getattr(scheduler, "predictor", None)
    if predictor is not None:
        extras["predictor_observations"] = predictor.observations

    return CellResult(
        jobs=dict(result.jobs),
        metrics=result.metrics,
        samples=list(result.samples),
        summary=result.summary(),
        end_time=result.end_time,
        events_processed=result.events_processed,
        perf=result.perf.as_dict(),
        trace_jobs=len(trace),
        wall_s=wall_s,
        extras=extras,
    )


def _run_federated_cell(cell: SimCell, trace: Trace) -> CellResult:
    """Run a federated cell: route the trace across the spec's sites.

    The federation layer is imported lazily so single-cluster sweeps never
    pay for (or cyclically import) the multi-site machinery.
    """
    from ..federation.build import build_federation

    assert cell.federation is not None
    if cell.probes:
        raise ConfigError("probes are not supported in federated cells yet")
    federation = build_federation(
        cell.federation, trace, default_scheduler=cell.scheduler, sim=cell.sim
    )
    started = time.perf_counter()  # simlint: disable=R2  (perf measurement)
    result = federation.run()
    wall_s = time.perf_counter() - started  # simlint: disable=R2  (perf measurement)

    site_rows: dict[str, dict[str, float]] = {}
    for site in result.sites:
        row = site.result.summary()
        goodput = site.metrics.goodput
        if goodput is not None:
            row.update(goodput.as_row())
        site_rows[site.name] = row

    # Fleet perf: per-site counters summed.  Counts add exactly; derived
    # ratios (hit rates, per-attempt averages) become crude fleet-level
    # sums — observational only, never fed back into the simulation.
    fleet_perf: dict[str, float] = {}
    for site in result.sites:
        for key, value in site.result.perf.as_dict().items():
            fleet_perf[key] = fleet_perf.get(key, 0.0) + value

    extras: dict[str, Any] = {
        "migrations": len(result.migrations),
        "migrated_shell_gpu_hours": result.migrated_shell_gpu_hours,
        "routed": dict(result.routed),
        "sites": site_rows,
    }
    return CellResult(
        jobs=dict(result.jobs),
        metrics=result.metrics,
        samples=[],
        summary=result.summary(),
        end_time=result.end_time,
        events_processed=sum(s.result.events_processed for s in result.sites),
        perf=fleet_perf,
        trace_jobs=len(trace),
        wall_s=wall_s,
        extras=extras,
    )
