"""Cell specifications: pure, picklable descriptions of one simulation.

A :class:`SimCell` is the unit of the sweep engine: everything needed to
run one simulation — trace recipe, scheduler, cluster, execution model,
simulator config, optional failure/storage/serving subsystems — captured
as plain data.  Because simulation code is a pure function of its seeds
(enforced by simlint R1/R2), a cell's result is a pure function of the
cell spec, which is what makes both process-pool fan-out and
content-addressed caching sound.

Specs are canonically serialisable: :func:`canonical_json` produces a
stable byte string (sorted keys, no whitespace, no NaN) that keys both
the parent-side trace memo and the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..errors import ConfigError

if TYPE_CHECKING:
    from ..federation.spec import FederationSpec

#: Bumped whenever the cell-result wire/cache format changes shape, so
#: stale cache entries from older layouts can never be deserialised into
#: the new one.  v2: cells gained the ``federation`` field (multi-site
#: runs) and clusters the ``het`` kind.  v3: cells gained the ``workflow``
#: field (pipeline-DAG jobs merged into the trace) and summaries the
#: ``wf_*`` columns on workflow runs.
CELL_FORMAT_VERSION = 3


def _jsonable(value: Any) -> Any:
    """Recursively convert specs/dataclasses/tuples into JSON-ready data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigError("cell specs must not contain NaN/inf values")
        return value
    raise ConfigError(f"cell specs must be plain data; got {type(value).__name__}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding of a spec (cache/memo key material)."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for one synthetic trace, load calibration included.

    ``days`` is the *final* horizon (any scale factor already applied by
    the caller).  ``load`` calibrates ``jobs_per_day`` against
    ``load_gpus`` GPUs of capacity (``None`` skips calibration);
    ``model_seed`` assigns model names after synthesis (``None`` skips).
    ``overrides`` are extra :class:`SyntheticTraceConfig` fields.
    """

    days: float
    synth_seed: int
    load: float | None = 0.9
    load_gpus: int = 176
    load_seed: int = 777
    model_seed: int | None = None
    preset: str = "tacc-campus"
    overrides: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkflowTraceSpec:
    """Recipe for pipeline-shaped workflow jobs merged into a cell's trace.

    Synthesized by :class:`~repro.workload.pipelines.PipelineSynthesizer`
    in the worker and appended to the rehydrated base trace before object
    construction — the base trace memo is untouched, and cells without
    this field take the legacy path bit-for-bit.  ``overrides`` are extra
    :class:`~repro.workload.pipelines.PipelineTraceConfig` fields.
    """

    days: float
    workflows_per_day: float
    synth_seed: int = 0
    overrides: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SchedulerSpec:
    """A scheduler by registry name plus constructor parameters.

    ``quotas`` (when set) becomes the ``quota=QuotaConfig(...)`` argument
    of ``tiered-quota``; ``params`` passes through to the constructor
    (e.g. ``quantum_s`` for gang, ``tick_s`` for elastic).
    """

    name: str
    placement: str | None = None
    quotas: dict[str, int] | None = None
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ClusterSpec:
    """Which cluster to build: the campus preset, a uniform grid, or the
    heterogeneous fleet mix (``het`` — mixed A100/V100/RTX3090 racks, the
    standard hardware profile for federation sites)."""

    kind: str = "tacc"  # "tacc" | "uniform" | "het"
    nodes: int = 0
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("tacc", "uniform", "het"):
            raise ConfigError(f"unknown cluster kind {self.kind!r}")
        if self.kind in ("uniform", "het") and self.nodes <= 0:
            raise ConfigError(f"{self.kind} cluster needs a positive node count")

    @property
    def total_gpus(self) -> int:
        if self.kind in ("uniform", "het"):
            return self.nodes * self.gpus_per_node
        return 176  # the campus cluster's fixed inventory


@dataclass(frozen=True)
class ServingSpec:
    """Declarative serving fleet: service + load-config kwargs per service."""

    services: tuple[tuple[dict[str, Any], dict[str, Any]], ...]
    days: float
    autoscaled: bool = True
    seed: int = 0


@dataclass(frozen=True)
class SimCell:
    """One simulation run as pure data.

    Attributes:
        trace: Trace recipe (synthesised once per distinct spec, then
            shipped to workers as serialised rows).
        scheduler: Scheduler recipe.
        cluster: Cluster recipe.
        sim: :class:`SimConfig` keyword overrides.
        exec_model: :class:`ExecutionModel` keyword overrides.
        failures: :class:`FailureConfig` kwargs (``None`` = no injection).
        storage: :class:`StorageConfig` kwargs (``None`` = no staging model).
        serving: Co-located serving fleet (``None`` = training only).
        workflow: Pipeline-DAG jobs to merge into the trace (``None`` =
            no workflows; the cell then takes the legacy path
            bit-for-bit).
        federation: Multi-site federation recipe (``None`` = single
            cluster).  When set, the worker routes the trace across the
            federation's sites instead of the cell's own cluster; the
            cell's ``scheduler`` becomes the default for sites that do
            not declare their own.
        preemptible_override: Mark every trace job preemptible before the
            run (gang time-slicing consent; applied to the rehydrated
            copy, never the memoised trace).
        probes: Observational instruments to attach, by name
            (``"fragmentation"`` wraps the placement free hook).
    """

    trace: TraceSpec
    scheduler: SchedulerSpec
    cluster: ClusterSpec = ClusterSpec()
    sim: dict[str, Any] = field(default_factory=lambda: {"sample_interval_s": 1800.0})
    exec_model: dict[str, Any] = field(default_factory=dict)
    failures: dict[str, Any] | None = None
    storage: dict[str, Any] | None = None
    serving: ServingSpec | None = None
    workflow: WorkflowTraceSpec | None = None
    federation: "FederationSpec | None" = None
    preemptible_override: bool = False
    probes: tuple[str, ...] = ()

    def spec_json(self) -> str:
        """Canonical JSON of this cell (the cache key's cell component)."""
        return canonical_json(self)
