"""Cell results: what a simulation run ships back to the parent.

A :class:`CellResult` carries everything the experiment layer reads from
a :class:`~repro.sim.simulator.SimulationResult` — the final job
population, metrics, samples, perf counters, the precomputed summary row
— plus the in-worker wall time and any probe extras.  It is the value
stored in the on-disk cache, so its contents must be a pure function of
the cell spec (wall time is the one exception, documented below).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..sim.metrics import Sample, SimMetrics
    from ..workload.job import Job


@dataclass(frozen=True)
class TraceMeta:
    """Parent-side facts derived from a synthesized trace.

    Experiments need a few trace-derived inputs *before* any cell runs —
    the lab census that sizes quotas, the submission span that clips
    series.  Synthesizing a trace just for these would defeat the result
    cache on warm runs, so the runner derives them once and caches them
    alongside cell results (same fingerprint discipline).
    """

    labs: tuple[str, ...]
    span_seconds: float
    n_jobs: int


@dataclass
class CellResult:
    """Outcome of running one :class:`~repro.sweep.spec.SimCell`.

    Attributes:
        jobs: Final job population keyed by job id (same shape as
            ``SimulationResult.jobs``; service replicas included).
        metrics: The run's :class:`SimMetrics`.
        samples: Periodic cluster snapshots (F4-style series).
        summary: Precomputed ``SimulationResult.summary()`` row.
        end_time: Simulated end time (seconds).
        events_processed: DES event count.
        perf: ``PerfCounters.as_dict()`` of the run.
        trace_jobs: Job count of the input trace (before the run).
        wall_s: In-worker wall-clock seconds for the simulation proper.
            This is the *only* non-deterministic field: it is measured
            where the run happens and cached with the result, so a cached
            replay reports the wall time of the run that produced it —
            which is what keeps rendered output byte-stable across warm
            re-runs.
        extras: Probe/instrument outputs captured worker-side (e.g.
            ``mean_frag``, ``alignment_waste_gpus``, ``storage_hit_rate``,
            ``predictor_observations``).
        cached: True when this result was served from the on-disk cache
            rather than simulated (set by the runner, never stored).
    """

    jobs: dict[str, "Job"]
    metrics: "SimMetrics"
    samples: list["Sample"]
    summary: dict[str, Any]
    end_time: float
    events_processed: int
    perf: dict[str, float]
    trace_jobs: int
    wall_s: float
    extras: dict[str, Any] = field(default_factory=dict)
    cached: bool = False
