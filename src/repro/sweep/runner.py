"""Deterministic fan-out runner: trace memo, process pool, ordered merge.

The runner owns the parent-side machinery of a sweep:

* **trace memo** — each distinct :class:`TraceSpec` is synthesized once
  per process; workers receive the serialised rows, never re-synthesize;
* **cache front-end** — before a cell runs anywhere, its content address
  is checked against the on-disk :class:`SweepCache`;
* **process pool** — misses fan out over a spawn-context
  ``ProcessPoolExecutor``; submissions are keyed, and results are merged
  back **in input order**, so rendered tables/series are byte-identical
  to a serial run regardless of worker count or completion order;
* **error batching** — a failing cell does not abort in-flight siblings;
  completed results are cached, then a single :class:`SweepError`
  reports every failure.

Experiments never touch the runner directly: they call the module-level
:func:`run_cells` / :func:`trace_for`, which route to the runner
installed by the :func:`execution` context (or a serial, cache-less
default — library callers and unit tests see pure behaviour unless a
CLI opts in).
"""

from __future__ import annotations

import sys
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Iterator, Mapping

from ..errors import SweepError
from ..workload.trace import Trace
from .build import TraceRows, build_trace, run_cell
from .cache import SweepCache, cell_key, trace_meta_key, trace_rows_key
from .result import CellResult, TraceMeta
from .spec import SimCell, TraceSpec, canonical_json


@dataclass
class SweepStats:
    """Counters for one runner's lifetime (reported in CLI footers)."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    traces_synthesized: int = 0
    trace_memo_hits: int = 0
    perf_totals: dict[str, float] = field(default_factory=dict)

    def absorb_perf(self, perf: Mapping[str, float]) -> None:
        for counter, value in perf.items():
            self.perf_totals[counter] = self.perf_totals.get(counter, 0.0) + value

    def snapshot(self) -> dict[str, int]:
        return {
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "traces_synthesized": self.traces_synthesized,
            "trace_memo_hits": self.trace_memo_hits,
        }


def _worker_init(parent_path: list[str]) -> None:
    """Spawn-context workers inherit the parent's import path."""
    for entry in reversed(parent_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _worker_run_cell(
    cell: SimCell,
    rows: TraceRows,
    trace_name: str,
    trace_metadata: dict[str, object],
) -> CellResult:
    return run_cell(cell, rows, trace_name, trace_metadata)


class SweepRunner:
    """Executes batches of cells with memoisation, caching, and fan-out."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Path | str | None = None,
        no_cache: bool = False,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache: SweepCache | None = None if no_cache else SweepCache(cache_dir)
        self.stats = SweepStats()
        self._memo: dict[str, Trace] = {}
        self._meta: dict[str, TraceMeta] = {}
        self._pool: ProcessPoolExecutor | None = None

    # -- trace memo -----------------------------------------------------------

    def trace_for(self, spec: TraceSpec) -> Trace:
        """The memoised trace for a spec (treat as read-only).

        Parents use this for derived inputs (lab census for quotas,
        ``span_seconds``); replays always go through fresh rehydrated
        copies, so sharing the object is safe as long as callers never
        mutate it — which is why cells carry e.g. ``preemptible_override``
        declaratively instead of flipping flags on this instance.
        """
        key = canonical_json(spec)
        trace = self._memo.get(key)
        if trace is not None:
            self.stats.trace_memo_hits += 1
            return trace
        if self.cache is not None:
            payload = self.cache.get_trace(trace_rows_key(spec))
            if payload is not None:
                trace = Trace.from_rows(
                    payload["rows"],
                    name=payload["name"],
                    metadata=dict(payload["metadata"]),
                )
                trace.frozen_rows()
                self._memo[key] = trace
                return trace
        trace = build_trace(spec)
        trace.frozen_rows()  # serialise once, while the memo is warm
        self._memo[key] = trace
        self.stats.traces_synthesized += 1
        if self.cache is not None:
            self.cache.put(
                trace_rows_key(spec),
                {
                    "rows": trace.frozen_rows(),
                    "name": trace.name,
                    "metadata": dict(trace.metadata),
                },
            )
        return trace

    def trace_meta(self, spec: TraceSpec) -> TraceMeta:
        """Parent-side trace facts (lab census, span) without a live trace.

        Prefer this over :meth:`trace_for` when only derived inputs are
        needed: the metadata is cached on disk with the same fingerprint
        discipline as cell results, so a fully-warm run never pays for
        trace synthesis at all.
        """
        key = canonical_json(spec)
        meta = self._meta.get(key)
        if meta is None and self.cache is not None and key not in self._memo:
            meta = self.cache.get_meta(trace_meta_key(spec))
        if meta is None:
            trace = self.trace_for(spec)
            meta = TraceMeta(
                labs=trace.labs(),
                span_seconds=trace.span_seconds,
                n_jobs=len(trace.jobs),
            )
            if self.cache is not None:
                self.cache.put(trace_meta_key(spec), meta)
        self._meta[key] = meta
        return meta

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=get_context("spawn"),
                initializer=_worker_init,
                initargs=(list(sys.path),),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- execution ------------------------------------------------------------

    def run_cells(self, cells: Mapping[str, SimCell]) -> dict[str, CellResult]:
        """Run a keyed batch; the result dict preserves the input order.

        Cache hits are served immediately; misses run in-process
        (``jobs == 1``) or on the pool.  All submissions are keyed and
        the merge walks the *input* ordering, so downstream rendering is
        independent of completion order.
        """
        order = list(cells)
        self.stats.cells += len(order)
        results: dict[str, CellResult] = {}
        pending: dict[str, SimCell] = {}
        keys: dict[str, str] = {}

        for name in order:
            cell = cells[name]
            if self.cache is not None:
                keys[name] = cell_key(cell)
                hit = self.cache.get(keys[name])
                if hit is not None:
                    hit.cached = True
                    self.stats.cache_hits += 1
                    self.stats.absorb_perf(hit.perf)
                    results[name] = hit
                    continue
            self.stats.cache_misses += 1
            pending[name] = cell

        failures: dict[str, BaseException] = {}
        if pending:
            payloads = {
                name: (cell, self.trace_for(cell.trace))
                for name, cell in pending.items()
            }
            if self.jobs == 1:
                for name, (cell, trace) in payloads.items():
                    try:
                        results[name] = run_cell(
                            cell, trace.frozen_rows(), trace.name, dict(trace.metadata)
                        )
                    except Exception as exc:  # simlint: disable=R8  (re-raised as SweepError)
                        failures[name] = exc
            else:
                pool = self._ensure_pool()
                futures: dict[Future[CellResult], str] = {}
                for name, (cell, trace) in payloads.items():
                    future = pool.submit(
                        _worker_run_cell,
                        cell,
                        trace.frozen_rows(),
                        trace.name,
                        dict(trace.metadata),
                    )
                    futures[future] = name
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        name = futures[future]
                        try:
                            results[name] = future.result()
                        except Exception as exc:  # simlint: disable=R8  (re-raised as SweepError)
                            failures[name] = exc
            for name in pending:
                if name in results:
                    self.stats.absorb_perf(results[name].perf)
                    if self.cache is not None:
                        self.cache.put(keys[name], results[name])

        if failures:
            detail = "; ".join(
                f"{name}: {type(exc).__name__}: {exc}"
                for name, exc in sorted(failures.items())
            )
            raise SweepError(f"{len(failures)} cell(s) failed: {detail}")
        return {name: results[name] for name in order}

    def run_one(self, cell: SimCell) -> CellResult:
        return self.run_cells({"cell": cell})["cell"]


# -- module-level execution context ------------------------------------------

_DEFAULT = SweepRunner(jobs=1, no_cache=True)
_ACTIVE: SweepRunner = _DEFAULT


def active_runner() -> SweepRunner:
    return _ACTIVE


@contextmanager
def execution(
    jobs: int = 1,
    cache_dir: Path | str | None = None,
    no_cache: bool = False,
) -> Iterator[SweepRunner]:
    """Install a runner for the duration of the block (CLI entry points)."""
    global _ACTIVE
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, no_cache=no_cache)
    previous = _ACTIVE
    _ACTIVE = runner
    try:
        yield runner
    finally:
        _ACTIVE = previous
        runner.close()


def run_cells(cells: Mapping[str, SimCell]) -> dict[str, CellResult]:
    """Run a keyed cell batch on the active runner (ordered results)."""
    return _ACTIVE.run_cells(cells)


def run_one(cell: SimCell) -> CellResult:
    """Run a single cell on the active runner."""
    return _ACTIVE.run_one(cell)


def trace_for(spec: TraceSpec) -> Trace:
    """Memoised parent-side trace for a spec (read-only; see SweepRunner)."""
    return _ACTIVE.trace_for(spec)


def trace_meta(spec: TraceSpec) -> TraceMeta:
    """Cached parent-side trace facts (labs, span) for a spec."""
    return _ACTIVE.trace_meta(spec)


def runner_stats() -> SweepStats:
    """Live stats of the active runner."""
    return _ACTIVE.stats


def reset_default_runner() -> None:
    """Drop the default runner's memo (tests use this to isolate state)."""
    global _DEFAULT, _ACTIVE
    if _ACTIVE is _DEFAULT:
        _DEFAULT = SweepRunner(jobs=1, no_cache=True)
        _ACTIVE = _DEFAULT


__all__ = [
    "SweepRunner",
    "SweepStats",
    "active_runner",
    "execution",
    "reset_default_runner",
    "run_cells",
    "run_one",
    "runner_stats",
    "trace_for",
    "trace_meta",
]
