"""Deterministic parallel sweep engine with content-addressed caching.

The sweep engine turns "run these N independent simulations" into a
declarative batch: experiments describe each run as a :class:`SimCell`
(pure data), and the runner decides where it executes (in-process or a
spawn-context worker pool), whether it executes at all (content-addressed
on-disk cache keyed by spec + code fingerprint), and how inputs are
shared (each distinct trace spec is synthesized once and shipped to
workers as serialised rows).  Results merge back in submission order, so
everything downstream renders byte-identically to a serial run.
"""

from .build import (
    build_cluster,
    build_scheduler,
    build_trace,
    merge_workflow_jobs,
    run_cell,
)
from .cache import (
    CACHE_ENV_VAR,
    SweepCache,
    cell_key,
    default_cache_dir,
    trace_meta_key,
    trace_rows_key,
)
from .fingerprint import code_fingerprint
from .result import CellResult, TraceMeta
from .runner import (
    SweepRunner,
    SweepStats,
    active_runner,
    execution,
    run_cells,
    run_one,
    runner_stats,
    trace_for,
    trace_meta,
)
from .spec import (
    CELL_FORMAT_VERSION,
    ClusterSpec,
    SchedulerSpec,
    ServingSpec,
    SimCell,
    TraceSpec,
    WorkflowTraceSpec,
    canonical_json,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CELL_FORMAT_VERSION",
    "CellResult",
    "ClusterSpec",
    "SchedulerSpec",
    "ServingSpec",
    "SimCell",
    "SweepCache",
    "SweepRunner",
    "SweepStats",
    "TraceMeta",
    "TraceSpec",
    "WorkflowTraceSpec",
    "active_runner",
    "build_cluster",
    "build_scheduler",
    "build_trace",
    "canonical_json",
    "cell_key",
    "code_fingerprint",
    "default_cache_dir",
    "execution",
    "merge_workflow_jobs",
    "run_cell",
    "run_cells",
    "run_one",
    "runner_stats",
    "trace_for",
    "trace_meta",
    "trace_meta_key",
    "trace_rows_key",
]
