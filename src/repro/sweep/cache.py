"""Content-addressed on-disk cache for cell results.

Key anatomy (see docs/architecture.md):

    sha256( canonical-JSON(cell spec)
            + "\\n" + code fingerprint of the repro package
            + "\\n" + cell format version )

The value is a pickled envelope carrying the fingerprint and version
again; a hit is only served when both re-verify, so a cache poisoned
with results from different code (or an older wire format) is ignored,
never served.  Writes are atomic (tmp + rename) so a crashed run can
never leave a half-written entry that a later run would trust.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from pathlib import Path
from typing import Any

from .fingerprint import code_fingerprint
from .result import CellResult, TraceMeta
from .spec import CELL_FORMAT_VERSION, SimCell, TraceSpec, canonical_json

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "TCLOUD_SWEEP_CACHE"

_ENVELOPE_KEYS = ("fingerprint", "version", "result")


def default_cache_dir() -> Path:
    """Resolve the cache root: $TCLOUD_SWEEP_CACHE or ~/.cache/tcloud-sweep."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "tcloud-sweep"


def cell_key(cell: SimCell, fingerprint: str | None = None) -> str:
    """The cell's content address (hex SHA-256)."""
    fingerprint = fingerprint or code_fingerprint()
    material = f"{cell.spec_json()}\n{fingerprint}\n{CELL_FORMAT_VERSION}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def trace_meta_key(spec: TraceSpec, fingerprint: str | None = None) -> str:
    """Content address of a trace's parent-side metadata (labs, span)."""
    fingerprint = fingerprint or code_fingerprint()
    material = f"trace-meta\n{canonical_json(spec)}\n{fingerprint}\n{CELL_FORMAT_VERSION}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def trace_rows_key(spec: TraceSpec, fingerprint: str | None = None) -> str:
    """Content address of a trace's serialised row form."""
    fingerprint = fingerprint or code_fingerprint()
    material = f"trace-rows\n{canonical_json(spec)}\n{fingerprint}\n{CELL_FORMAT_VERSION}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class SweepCache:
    """One cache directory; entries are ``<key[:2]>/<key>.pkl``."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _load(self, key: str) -> Any | None:
        """Load and verify an envelope, or None on miss/corruption/stale code."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            envelope = pickle.loads(payload)
        except Exception:  # simlint: disable=R8  (corrupt cache entry = miss)
            return None
        if not isinstance(envelope, dict):
            return None
        if any(field not in envelope for field in _ENVELOPE_KEYS):
            return None
        if envelope["fingerprint"] != code_fingerprint():
            return None  # poisoned/stale: produced by different code
        if envelope["version"] != CELL_FORMAT_VERSION:
            return None
        return envelope["result"]

    def get(self, key: str) -> CellResult | None:
        """Load a cached cell result, or None on miss/corruption/stale code."""
        result = self._load(key)
        if not isinstance(result, CellResult):
            return None
        return result

    def get_meta(self, key: str) -> TraceMeta | None:
        """Load cached trace metadata, or None (same discipline as get)."""
        meta = self._load(key)
        if not isinstance(meta, TraceMeta):
            return None
        return meta

    def get_trace(self, key: str) -> dict[str, Any] | None:
        """Load a cached trace payload ({rows, name, metadata}), or None."""
        payload = self._load(key)
        if not isinstance(payload, dict):
            return None
        if any(part not in payload for part in ("rows", "name", "metadata")):
            return None
        return payload

    def put(self, key: str, result: CellResult | TraceMeta | dict[str, Any]) -> None:
        """Atomically store a result under its content address."""
        envelope: dict[str, Any] = {
            "fingerprint": code_fingerprint(),
            "version": CELL_FORMAT_VERSION,
            "result": result,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def stats(self) -> dict[str, float]:
        paths = self.entries()
        return {
            "entries": float(len(paths)),
            "bytes": float(sum(p.stat().st_size for p in paths)),
        }

    def prune(self, max_age_days: float | None = None, all_entries: bool = False) -> int:
        """Delete entries; returns the number removed.

        ``all_entries`` wipes everything; otherwise entries are removed
        when stale (written by a different code fingerprint / format
        version) or — when ``max_age_days`` is given — older than that.
        """
        # Eviction policy needs real time; the cache is operational
        # tooling, not simulation state.
        now = time.time()  # simlint: disable=R2  (cache eviction age)
        removed = 0
        fingerprint = code_fingerprint()
        for path in self.entries():
            drop = all_entries
            if not drop and max_age_days is not None:
                age_days = (now - path.stat().st_mtime) / 86400.0
                drop = age_days > max_age_days
            if not drop:
                try:
                    envelope = pickle.loads(path.read_bytes())
                    drop = (
                        not isinstance(envelope, dict)
                        or envelope.get("fingerprint") != fingerprint
                        or envelope.get("version") != CELL_FORMAT_VERSION
                    )
                except Exception:  # simlint: disable=R8  (unreadable entry = stale)
                    drop = True
            if drop:
                path.unlink(missing_ok=True)
                removed += 1
        return removed
