"""repro: a trace-driven reproduction of a shared campus ML cluster (TACC).

The package implements the full stack of the ASPLOS'25 operational study
*Design and Operation of Shared Machine Learning Clusters on Campus*:

* :mod:`repro.cluster` — heterogeneous GPU nodes, racks, leaf-spine fabric;
* :mod:`repro.workload` — job model, traces, calibrated synthesis;
* :mod:`repro.sim` — deterministic discrete-event simulation;
* :mod:`repro.controlplane` — the typed job-lifecycle state machine, the
  controller every mutation flows through, and snapshot/fork of live sims;
* :mod:`repro.sched` — FIFO/SJF/fair-share/DRF/backfill/gang/Tiresias and
  the cluster's tiered-quota policy, plus placement strategies up to
  HiveD-style buddy cells;
* :mod:`repro.schema` / :mod:`repro.compiler` / :mod:`repro.execlayer` —
  the 4-layer workflow abstraction (task schema -> compiled instruction ->
  scheduled -> executed);
* :mod:`repro.tcloud` — the user-side client/CLI and simulated frontend;
* :mod:`repro.ops` — operational analytics and report rendering;
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import build_tacc_cluster, make_scheduler, simulate, synthesize

    trace = synthesize("tacc-campus", days=3, seed=0)
    result = simulate(build_tacc_cluster(), make_scheduler("backfill-easy"), trace)
    print(result.summary())
"""

from .cluster import Cluster, build_tacc_cluster, uniform_cluster
from .errors import ReproError
from .experiments import EXPERIMENTS, run_experiment
from .sched import QuotaConfig, TieredQuotaScheduler, make_placement, make_scheduler
from .sim import ClusterSimulator, SimConfig, simulate
from .tcloud import TcloudClient
from .workload import Trace, synthesize

__version__ = "1.0.0"

__all__ = [
    "EXPERIMENTS",
    "Cluster",
    "ClusterSimulator",
    "QuotaConfig",
    "ReproError",
    "SimConfig",
    "TcloudClient",
    "TieredQuotaScheduler",
    "Trace",
    "__version__",
    "build_tacc_cluster",
    "make_placement",
    "make_scheduler",
    "run_experiment",
    "simulate",
    "synthesize",
    "uniform_cluster",
]
