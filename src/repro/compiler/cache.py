"""Content-addressed instruction cache with delta uploads.

Task instructions bundle user code plus datasets and third-party
dependencies, so naive re-upload on every submission moves gigabytes that
did not change.  The compiler layer instead chunks every file, addresses
chunks by SHA-256, and uploads **only the chunks the cluster-side store has
never seen** — resubmitting after a one-line code edit moves a few KB
instead of the whole workspace (experiment T4 measures the savings).

The store here is the cluster-side component; :class:`UploadReport`
captures what one submission actually transferred.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..errors import CacheError

DEFAULT_CHUNK_BYTES = 1 << 22  # 4 MiB


def chunk_bytes(data: bytes, chunk_size: int = DEFAULT_CHUNK_BYTES) -> Iterator[bytes]:
    """Split *data* into fixed-size chunks (last one may be short).

    Empty input yields a single empty chunk so empty files still have a
    manifest entry and identity.
    """
    if chunk_size <= 0:
        raise CacheError(f"chunk_size must be positive, got {chunk_size}")
    if not data:
        yield b""
        return
    for offset in range(0, len(data), chunk_size):
        yield data[offset : offset + chunk_size]


def chunk_id(chunk: bytes) -> str:
    return hashlib.sha256(chunk).hexdigest()


@dataclass(frozen=True)
class FileManifest:
    """Chunk-level identity of one file."""

    path: str
    size_bytes: int
    chunk_ids: tuple[str, ...]


@dataclass(frozen=True)
class WorkspaceManifest:
    """Chunk-level identity of a whole task workspace."""

    files: tuple[FileManifest, ...]

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files)

    def all_chunk_ids(self) -> set[str]:
        ids: set[str] = set()
        for file in self.files:
            ids.update(file.chunk_ids)
        return ids


@dataclass(frozen=True)
class UploadReport:
    """What one submission transferred vs. what it described."""

    total_bytes: int
    uploaded_bytes: int
    total_chunks: int
    uploaded_chunks: int

    @property
    def saved_bytes(self) -> int:
        return self.total_bytes - self.uploaded_bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of chunks already present on the cluster side."""
        if self.total_chunks == 0:
            return 1.0
        return 1.0 - self.uploaded_chunks / self.total_chunks

    @property
    def dedup_factor(self) -> float:
        """How many times less data moved than a naive full upload."""
        if self.uploaded_bytes == 0:
            return float("inf") if self.total_bytes else 1.0
        return self.total_bytes / self.uploaded_bytes


@dataclass
class ChunkStore:
    """The cluster-side content-addressed store."""

    chunk_size: int = DEFAULT_CHUNK_BYTES
    _chunks: dict[str, bytes] = field(default_factory=dict)
    uploads: int = 0
    uploaded_bytes_total: int = 0

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise CacheError(f"chunk_size must be positive, got {self.chunk_size}")

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def stored_bytes(self) -> int:
        return sum(len(chunk) for chunk in self._chunks.values())

    def manifest_for(self, workspace: Mapping[str, bytes]) -> WorkspaceManifest:
        """Chunk a workspace (``{path: content}``) into a manifest."""
        files = []
        for path in sorted(workspace):
            data = workspace[path]
            ids = tuple(chunk_id(chunk) for chunk in chunk_bytes(data, self.chunk_size))
            files.append(FileManifest(path=path, size_bytes=len(data), chunk_ids=ids))
        return WorkspaceManifest(files=tuple(files))

    def upload(self, workspace: Mapping[str, bytes]) -> tuple[WorkspaceManifest, UploadReport]:
        """Ingest a workspace, transferring only unseen chunks."""
        manifest = self.manifest_for(workspace)
        total_chunks = 0
        uploaded_chunks = 0
        uploaded_bytes = 0
        for path in sorted(workspace):
            data = workspace[path]
            for chunk in chunk_bytes(data, self.chunk_size):
                total_chunks += 1
                identifier = chunk_id(chunk)
                if identifier not in self._chunks:
                    self._chunks[identifier] = chunk
                    uploaded_chunks += 1
                    uploaded_bytes += len(chunk)
        report = UploadReport(
            total_bytes=manifest.total_bytes,
            uploaded_bytes=uploaded_bytes,
            total_chunks=total_chunks,
            uploaded_chunks=uploaded_chunks,
        )
        self.uploads += 1
        self.uploaded_bytes_total += uploaded_bytes
        return manifest, report

    def materialize(self, manifest: WorkspaceManifest) -> dict[str, bytes]:
        """Reassemble a workspace from a manifest (execution-side).

        Raises :class:`CacheError` if any chunk is missing — an instruction
        must never be executable with incomplete content.
        """
        workspace: dict[str, bytes] = {}
        for file in manifest.files:
            parts = []
            for identifier in file.chunk_ids:
                chunk = self._chunks.get(identifier)
                if chunk is None:
                    raise CacheError(
                        f"chunk {identifier[:12]}… of {file.path} missing from store"
                    )
                parts.append(chunk)
            data = b"".join(parts)
            if len(data) != file.size_bytes:
                raise CacheError(
                    f"reassembled {file.path} is {len(data)} bytes, "
                    f"manifest says {file.size_bytes}"
                )
            workspace[file.path] = data
        return workspace

    def gc(self, live_manifests: list[WorkspaceManifest]) -> int:
        """Drop chunks unreferenced by *live_manifests*; returns bytes freed."""
        live: set[str] = set()
        for manifest in live_manifests:
            live |= manifest.all_chunk_ids()
        dead = [identifier for identifier in self._chunks if identifier not in live]
        freed = 0
        for identifier in dead:
            freed += len(self._chunks.pop(identifier))
        return freed
