"""Execution-ready task instructions — the Compiler Layer's output.

A :class:`TaskInstruction` is self-contained: together with the chunk store
it references, it carries everything the Execution Layer needs to run the
task independently — per-node launch commands, environment setup, the file
manifest, and the resource envelope.  Depending on the task it can be "a
few lines of shell" (bare runtime) or a full container recipe; both shapes
are rendered by :meth:`TaskInstruction.render_script` for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompileError
from .cache import WorkspaceManifest


@dataclass(frozen=True)
class NodeLaunch:
    """The command one node runs, with its distributed rank context."""

    rank: int
    nnodes: int
    command: str

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.nnodes:
            raise CompileError(f"rank {self.rank} out of range for nnodes {self.nnodes}")


@dataclass(frozen=True)
class TaskInstruction:
    """Everything needed to execute one compiled task.

    Attributes:
        task_name: From the spec.
        fingerprint: The spec fingerprint (identity / cache key).
        env_fingerprint: Environment hash — the warm-provision cache key.
        runtime: Execution-layer runtime chosen by the compiler.
        setup_commands: Environment preparation, run once per node.
        launches: Per-node launch commands (one entry per node).
        manifest: Chunk-level identity of the shipped workspace.
        env_vars: Environment exported to the task.
    """

    task_name: str
    fingerprint: str
    env_fingerprint: str
    runtime: str
    setup_commands: tuple[str, ...]
    launches: tuple[NodeLaunch, ...]
    manifest: WorkspaceManifest
    env_vars: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.launches:
            raise CompileError(f"instruction for {self.task_name} has no launches")
        nnodes = self.launches[0].nnodes
        ranks = sorted(launch.rank for launch in self.launches)
        if ranks != list(range(nnodes)) or any(l.nnodes != nnodes for l in self.launches):
            raise CompileError(
                f"instruction for {self.task_name} has inconsistent ranks: {ranks}"
            )

    @property
    def nnodes(self) -> int:
        return self.launches[0].nnodes

    def render_script(self, rank: int = 0) -> str:
        """Render the shell script a given node would execute."""
        launch = next((l for l in self.launches if l.rank == rank), None)
        if launch is None:
            raise CompileError(f"no launch for rank {rank} in {self.task_name}")
        lines = [
            "#!/bin/sh",
            f"# task: {self.task_name}  fingerprint: {self.fingerprint[:12]}",
            f"# runtime: {self.runtime}  rank: {launch.rank}/{self.nnodes}",
        ]
        lines.extend(f"export {key}={value!r}" for key, value in sorted(self.env_vars.items()))
        lines.extend(self.setup_commands)
        lines.append(launch.command)
        return "\n".join(lines) + "\n"
