"""Compiling whole workflows: per-stage instructions plus placement hints.

A workflow compiles to one :class:`~repro.compiler.compiler.CompileResult`
per stage (in topological order, so upstream instructions exist before
anything that consumes them) plus :class:`ArtifactHint` records telling the
scheduler how strongly each inter-stage artifact wants its consumer placed
near its producer.  The hint is a pure function of the artifact size against
the leaf–spine fabric's bandwidth tiers: artifacts that would take longer to
move than a typical stage setup want co-location; small ones can go
anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import CompileError
from ..schema.workflow import WorkflowSpec
from .cache import ChunkStore
from .compiler import CompileResult, TaskCompiler

#: Artifact sizes above this want the consumer on the producer's node
#: (moving them even rack-locally dominates stage setup).
COLOCATE_BYTES = 1 << 30
#: Artifact sizes above this want the consumer in the producer's rack
#: (cross-rack oversubscription would hurt; rack-local links absorb it).
RACK_LOCAL_BYTES = 64 << 20


def placement_hint(size_bytes: int) -> str:
    """Map an artifact size to a placement hint: colocate/rack-local/any."""
    if size_bytes >= COLOCATE_BYTES:
        return "colocate"
    if size_bytes >= RACK_LOCAL_BYTES:
        return "rack-local"
    return "any"


@dataclass(frozen=True)
class ArtifactHint:
    """One consumer edge of one artifact, with its placement preference."""

    artifact: str
    producer: str
    consumer: str
    size_bytes: int
    placement: str

    def __str__(self) -> str:
        return (
            f"{self.artifact}: {self.producer} -> {self.consumer} "
            f"({self.size_bytes} B, {self.placement})"
        )


@dataclass(frozen=True)
class StageCompileResult:
    """One stage's compiled instruction plus its dependency context."""

    stage: str
    depends_on: tuple[str, ...]
    fetch_bytes: int
    result: CompileResult


@dataclass(frozen=True)
class WorkflowCompileResult:
    """Everything the control plane needs to run the workflow."""

    workflow: str
    fingerprint: str
    order: tuple[str, ...]
    stages: tuple[StageCompileResult, ...]
    hints: tuple[ArtifactHint, ...]

    def stage_result(self, name: str) -> StageCompileResult:
        for stage in self.stages:
            if stage.stage == name:
                return stage
        raise CompileError(f"workflow {self.workflow!r} has no compiled stage {name!r}")


class WorkflowCompiler:
    """Compiles workflow specs stage-by-stage against one chunk store.

    Sharing the store across stages means common files (the lab's training
    harness, shared utility modules) upload once for the whole pipeline.
    """

    def __init__(self, store: ChunkStore | None = None) -> None:
        self.tasks = TaskCompiler(store)

    @property
    def store(self) -> ChunkStore:
        return self.tasks.store

    def compile(
        self,
        workflow: WorkflowSpec,
        workspaces: Mapping[str, Mapping[str, bytes]],
    ) -> WorkflowCompileResult:
        """Compile every stage of *workflow*.

        ``workspaces`` maps stage name → workspace (``{path: content}``);
        stages with no declared code files may omit theirs.
        """
        unknown = set(workspaces) - {stage.name for stage in workflow.stages}
        if unknown:
            raise CompileError(
                f"workflow {workflow.name!r}: workspaces for unknown stages "
                f"{sorted(unknown)}"
            )
        order = workflow.topological_order()
        compiled = []
        for name in order:
            stage = workflow.stage(name)
            workspace = workspaces.get(name, {})
            compiled.append(
                StageCompileResult(
                    stage=name,
                    depends_on=workflow.dependencies_of(name),
                    fetch_bytes=workflow.inbound_bytes(name),
                    result=self.tasks.compile(stage.task, workspace),
                )
            )
        hints = tuple(
            ArtifactHint(
                artifact=artifact.name,
                producer=artifact.producer,
                consumer=stage.name,
                size_bytes=artifact.size_bytes,
                placement=placement_hint(artifact.size_bytes),
            )
            for stage in workflow.stages
            for consumed in stage.consumes
            for artifact in workflow.artifacts
            if artifact.name == consumed
        )
        return WorkflowCompileResult(
            workflow=workflow.name,
            fingerprint=workflow.fingerprint(),
            order=order,
            stages=tuple(compiled),
            hints=hints,
        )
