"""Compiler Layer: task spec → execution-ready instruction, with delta cache."""

from .cache import (
    DEFAULT_CHUNK_BYTES,
    ChunkStore,
    FileManifest,
    UploadReport,
    WorkspaceManifest,
    chunk_bytes,
    chunk_id,
)
from .compiler import CompileResult, TaskCompiler
from .instruction import NodeLaunch, TaskInstruction
from .workflow import (
    ArtifactHint,
    StageCompileResult,
    WorkflowCompiler,
    WorkflowCompileResult,
    placement_hint,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ArtifactHint",
    "ChunkStore",
    "CompileResult",
    "FileManifest",
    "NodeLaunch",
    "StageCompileResult",
    "TaskCompiler",
    "TaskInstruction",
    "UploadReport",
    "WorkflowCompileResult",
    "WorkflowCompiler",
    "WorkspaceManifest",
    "chunk_bytes",
    "chunk_id",
    "placement_hint",
]
