"""Compiler Layer: task spec → execution-ready instruction, with delta cache."""

from .cache import (
    DEFAULT_CHUNK_BYTES,
    ChunkStore,
    FileManifest,
    UploadReport,
    WorkspaceManifest,
    chunk_bytes,
    chunk_id,
)
from .compiler import CompileResult, TaskCompiler
from .instruction import NodeLaunch, TaskInstruction

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ChunkStore",
    "CompileResult",
    "FileManifest",
    "NodeLaunch",
    "TaskCompiler",
    "TaskInstruction",
    "UploadReport",
    "WorkspaceManifest",
    "chunk_bytes",
    "chunk_id",
]
