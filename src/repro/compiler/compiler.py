"""The Compiler Layer: task spec → execution-ready instruction.

Compilation does three things:

1. **ships the workspace** through the content-addressed cache
   (:mod:`repro.compiler.cache`), uploading only deltas;
2. **chooses a runtime** from the task's *static characteristics* (Table 1
   of the workflow-abstraction design): container when the task pins an
   image or heavy dependencies, bare shell for small pip-only tasks, the
   user's explicit hint when given;
3. **generates launch commands** — plain for single-node tasks,
   ``torchrun``-style rendezvous for multi-node gangs — plus environment
   setup.

The output :class:`~repro.compiler.instruction.TaskInstruction` is
self-contained and deterministic: recompiling the same spec and workspace
yields a byte-identical instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import CompileError
from ..schema.taskspec import TaskSpec
from .cache import ChunkStore, UploadReport
from .instruction import NodeLaunch, TaskInstruction

#: Pip dependency count above which provisioning is containerised.
HEAVY_DEPENDENCY_THRESHOLD = 12
#: Workspace size above which provisioning is containerised (image layers
#: dedup better than ad-hoc file sync at this scale).
HEAVY_WORKSPACE_BYTES = 2 << 30


@dataclass(frozen=True)
class CompileResult:
    """Instruction plus what shipping it cost."""

    instruction: TaskInstruction
    upload: UploadReport


class TaskCompiler:
    """Compiles task specs against a cluster-side chunk store."""

    def __init__(self, store: ChunkStore | None = None) -> None:
        self.store = store or ChunkStore()

    # -- runtime choice ---------------------------------------------------------

    def choose_runtime(self, spec: TaskSpec) -> str:
        """Pick a runtime from static characteristics (user hint wins)."""
        if spec.runtime is not None:
            return spec.runtime
        if spec.environment.image:
            return "container"
        if len(spec.environment.pip_packages) > HEAVY_DEPENDENCY_THRESHOLD:
            return "container"
        if spec.total_input_bytes > HEAVY_WORKSPACE_BYTES:
            return "container"
        return "bare"

    # -- command generation ---------------------------------------------------------

    def _setup_commands(self, spec: TaskSpec, runtime: str) -> tuple[str, ...]:
        commands = ["set -eu", "cd \"$TACC_WORKDIR\""]
        if runtime == "container":
            image = spec.environment.image or f"tacc/base:py{spec.environment.python_version}"
            commands.append(f"tacc-runtime pull {image}")
        else:
            commands.append(f"tacc-runtime venv python{spec.environment.python_version}")
        if spec.environment.pip_packages:
            packages = " ".join(sorted(spec.environment.pip_packages))
            commands.append(f"pip install --no-index --find-links \"$TACC_WHEELS\" {packages}")
        for dataset in spec.datasets:
            commands.append(f"tacc-data mount {dataset.sha256[:16]} {dataset.path}")
        return tuple(commands)

    def _launches(self, spec: TaskSpec) -> tuple[NodeLaunch, ...]:
        per_node = spec.resources.gpus_per_node or spec.resources.num_gpus
        nnodes = max(1, spec.resources.num_gpus // per_node)
        if nnodes == 1:
            return (NodeLaunch(rank=0, nnodes=1, command=spec.entrypoint),)
        launches = []
        for rank in range(nnodes):
            command = spec.entrypoint.format(
                rank=rank, nnodes=nnodes, master="$TACC_MASTER_ADDR"
            )
            if command == spec.entrypoint:
                # Entrypoint has no placeholders: wrap in a torchrun-style
                # launcher so each node joins the rendezvous.
                command = (
                    f"tacc-launch --nnodes {nnodes} --node-rank {rank} "
                    f"--nproc-per-node {per_node} "
                    f"--rdzv-endpoint \"$TACC_MASTER_ADDR:29500\" -- {spec.entrypoint}"
                )
            launches.append(NodeLaunch(rank=rank, nnodes=nnodes, command=command))
        return tuple(launches)

    # -- entry point -------------------------------------------------------------------

    def compile(self, spec: TaskSpec, workspace: Mapping[str, bytes]) -> CompileResult:
        """Compile *spec* with its *workspace* (``{path: content}``).

        The workspace must contain exactly the code files the spec
        declares, with matching sizes — the schema layer promised
        reproducibility, so the compiler verifies it.
        """
        declared = {f.path: f for f in spec.code_files}
        missing = set(declared) - set(workspace)
        if missing:
            raise CompileError(f"workspace missing declared files: {sorted(missing)}")
        extra = set(workspace) - set(declared)
        if extra:
            raise CompileError(f"workspace has undeclared files: {sorted(extra)}")
        for path, file_spec in declared.items():
            if len(workspace[path]) != file_spec.size_bytes:
                raise CompileError(
                    f"file {path}: workspace has {len(workspace[path])} bytes, "
                    f"spec declares {file_spec.size_bytes}"
                )

        manifest, report = self.store.upload(workspace)
        runtime = self.choose_runtime(spec)
        env_vars = dict(spec.environment.env_vars)
        env_vars.setdefault("TACC_TASK", spec.name)
        if spec.multi_node:
            # Select the transport the execution layer will provision: IB
            # verbs when the user asked for the RDMA fabric, TCP otherwise.
            env_vars.setdefault("NCCL_IB_DISABLE", "0" if spec.resources.rdma else "1")
        instruction = TaskInstruction(
            task_name=spec.name,
            fingerprint=spec.fingerprint(),
            env_fingerprint=spec.environment.fingerprint(),
            runtime=runtime,
            setup_commands=self._setup_commands(spec, runtime),
            launches=self._launches(spec),
            manifest=manifest,
            env_vars=env_vars,
        )
        return CompileResult(instruction=instruction, upload=report)
