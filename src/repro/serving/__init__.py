"""Inference-serving subsystem: SLO-driven services on the shared cluster.

Training jobs finish; inference services *run*.  This package models the
other half of a campus cluster's load: long-running replicated services
with diurnal request curves, an M/M/c request-latency model grounded in
the execution layer's iteration times, and an SLO-driven autoscaler whose
surge replicas harvest idle GPUs as preemptible opportunistic jobs —
capacity that training's guaranteed tier can always reclaim.

Layering:

* :mod:`~repro.serving.latency` — pure M/M/c queueing math (Erlang C,
  latency quantiles, SLO attainment, minimum fleet sizing);
* :mod:`~repro.serving.demand` — diurnal NHPP request-rate curves, the
  serving twin of :mod:`repro.workload.synth`;
* :mod:`~repro.serving.service` — service specs, replica roles, live state;
* :mod:`~repro.serving.autoscaler` — target sizing + scale-down hysteresis;
* :mod:`~repro.serving.fleet` — the coordinator wired into
  :class:`~repro.sim.simulator.ClusterSimulator`.
"""

from .autoscaler import AutoscalerConfig, SloAutoscaler
from .demand import (
    SERVING_DIURNAL,
    RateCurve,
    ServiceLoadConfig,
    synthesize_rate_curve,
)
from .fleet import ServingFleet, ServingWorkload
from .latency import (
    erlang_c,
    latency_quantile,
    min_replicas_for_slo,
    slo_attainment,
)
from .service import Replica, ReplicaRole, ServiceJob, ServiceSpec

__all__ = [
    "SERVING_DIURNAL",
    "AutoscalerConfig",
    "RateCurve",
    "Replica",
    "ReplicaRole",
    "ServiceJob",
    "ServiceLoadConfig",
    "ServiceSpec",
    "ServingFleet",
    "ServingWorkload",
    "SloAutoscaler",
    "erlang_c",
    "latency_quantile",
    "min_replicas_for_slo",
    "slo_attainment",
    "synthesize_rate_curve",
]
