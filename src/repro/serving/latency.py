"""Request-level latency model: M/M/c queueing on top of the execution layer.

A replica's service rate comes from the same per-iteration model that
drives training slowdowns (:meth:`repro.execlayer.speedup.ExecutionModel.
iteration_time_s`): one inference iteration serves ``batch_requests``
requests, so a replica on a slower GPU generation or a spread-out placement
serves fewer requests per second, exactly as a training job on the same
placement makes less progress per second.

On top of that per-replica rate the fleet is modelled as an M/M/c queue —
Poisson arrivals at the epoch's offered rate, ``c`` running replicas, a
shared queue.  We use the standard Erlang-C machinery with the classic
waiting-tail approximation ``P(W_q > t) = C(c, a) · e^{-(cμ-λ)t}`` and
treat response time as queueing wait plus one mean service time.  That is
deliberately a *model*, not a packet-level simulation: at millions of
requests/day per service, request-level events would dwarf the cluster
trace by orders of magnitude, while the M/M/c integrals give the same
epoch-level goodput/SLO numbers in O(1) per capacity change.

All functions are pure and deterministic; the fleet integrates them over
piecewise-constant (rate, capacity) epochs.
"""

from __future__ import annotations

import math

from ..errors import ValidationError


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must queue.

    ``offered_load`` is a = λ/μ in erlangs.  Computed via the numerically
    stable Erlang-B recurrence (no factorials), valid for a < servers.
    """
    if servers <= 0:
        raise ValidationError(f"erlang_c needs at least one server, got {servers}")
    if offered_load < 0:
        raise ValidationError(f"offered load must be non-negative, got {offered_load}")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0  # unstable: every arrival queues
    blocking = 1.0  # Erlang-B with 0 servers
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho * (1.0 - blocking))


def latency_quantile(
    rate_rps: float, mu_rps: float, replicas: int, quantile: float = 0.99
) -> float:
    """The *quantile* response latency (seconds) of an M/M/c fleet.

    Response = queueing wait + mean service time; the wait tail is
    ``P(W_q > t) = C · e^{-(cμ-λ)t}``.  Returns ``inf`` when the fleet has
    no capacity or is saturated (λ ≥ cμ) — the queue then grows without
    bound and no finite latency target is attainable.
    """
    if not 0.0 < quantile < 1.0:
        raise ValidationError(f"quantile must be in (0, 1), got {quantile}")
    if mu_rps <= 0:
        raise ValidationError(f"per-replica service rate must be positive, got {mu_rps}")
    if rate_rps < 0:
        raise ValidationError(f"request rate must be non-negative, got {rate_rps}")
    if replicas <= 0:
        return math.inf
    service_s = 1.0 / mu_rps
    if rate_rps == 0:
        return service_s
    capacity = replicas * mu_rps
    if rate_rps >= capacity:
        return math.inf
    queue_prob = erlang_c(replicas, rate_rps / mu_rps)
    tail = 1.0 - quantile
    if queue_prob <= tail:
        return service_s  # the quantile request never queues
    wait = math.log(queue_prob / tail) / (capacity - rate_rps)
    return service_s + wait


def slo_attainment(
    rate_rps: float, mu_rps: float, replicas: int, slo_s: float
) -> float:
    """Fraction of offered requests answered within ``slo_s`` seconds.

    Saturated fleets (λ ≥ cμ) attain 0: the backlog grows without bound,
    so steady-state latency exceeds any finite SLO.  A fleet whose bare
    service time already exceeds the SLO likewise attains 0.
    """
    if slo_s <= 0:
        raise ValidationError(f"SLO must be positive, got {slo_s}")
    if mu_rps <= 0:
        raise ValidationError(f"per-replica service rate must be positive, got {mu_rps}")
    if replicas <= 0:
        return 0.0
    service_s = 1.0 / mu_rps
    if slo_s < service_s:
        return 0.0
    if rate_rps == 0:
        return 1.0
    capacity = replicas * mu_rps
    if rate_rps >= capacity:
        return 0.0
    queue_prob = erlang_c(replicas, rate_rps / mu_rps)
    missed = queue_prob * math.exp(-(capacity - rate_rps) * (slo_s - service_s))
    return max(0.0, min(1.0, 1.0 - missed))


def min_replicas_for_slo(
    rate_rps: float,
    mu_rps: float,
    slo_s: float,
    quantile: float = 0.99,
    max_replicas: int = 1024,
) -> int | None:
    """Smallest replica count whose *quantile* latency meets the SLO.

    Returns ``None`` when even ``max_replicas`` cannot meet it (e.g. the
    bare service time exceeds the SLO).  Latency quantiles are monotone
    non-increasing in the replica count, so the first hit is the minimum.
    """
    if mu_rps <= 0:
        raise ValidationError(f"per-replica service rate must be positive, got {mu_rps}")
    if 1.0 / mu_rps > slo_s:
        return None
    # Stability floor: need λ < cμ strictly before quantiles are finite.
    floor = max(1, int(math.floor(rate_rps / mu_rps)) + 1) if rate_rps > 0 else 1
    for replicas in range(floor, max_replicas + 1):
        if latency_quantile(rate_rps, mu_rps, replicas, quantile) <= slo_s:
            return replicas
    return None
