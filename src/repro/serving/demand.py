"""Request-rate synthesis: diurnal NHPP intensity curves for services.

This is the serving twin of the arrival machinery in
:mod:`repro.workload.synth`: the same non-homogeneous-Poisson construction
(24 hourly weights × weekend factor × optional seasonality, one
:class:`numpy.random.Generator` for all noise) — but where the trace
synthesizer *samples individual submissions* from the intensity, serving
keeps the intensity itself.  At millions of requests per day a request is
not an event worth simulating; the fleet integrates the piecewise-constant
intensity λ(t) through the M/M/c model instead, and emits one
``RequestRateChange`` simulation event per epoch boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigError

#: Hour-of-day request weights of a user-facing inference service: traffic
#: follows people being awake, with an evening peak — a different shape
#: from the submission diurnal (no late-night student bump, higher floor
#: because served products never fully sleep).
SERVING_DIURNAL = (
    0.30, 0.22, 0.17, 0.14, 0.13, 0.15,  # 00-05
    0.24, 0.42, 0.62, 0.78, 0.88, 0.95,  # 06-11
    1.00, 0.97, 0.93, 0.92, 0.96, 1.05,  # 12-17
    1.20, 1.35, 1.45, 1.38, 1.05, 0.62,  # 18-23
)

#: One rate breakpoint: (time_s, rate_rps); the rate holds until the next.
RatePoint = tuple[float, float]


@dataclass(frozen=True)
class ServiceLoadConfig:
    """Parameterisation of one service's offered-load curve.

    ``peak_rps`` anchors the curve: the largest diurnal weight maps to this
    rate (before noise).  ``noise_sigma`` is log-normal per-epoch jitter,
    modelling day-to-day traffic variation.
    """

    peak_rps: float
    diurnal_profile: tuple[float, ...] = SERVING_DIURNAL
    weekend_factor: float = 0.80
    start_weekday: int = 0  # 0 = Monday
    noise_sigma: float = 0.05
    epoch_s: float = 3600.0
    daily_seasonality: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        require_positive("peak_rps", self.peak_rps)
        if len(self.diurnal_profile) != 24:
            raise ConfigError("diurnal_profile must have 24 hourly weights")
        if any(w < 0 for w in self.diurnal_profile) or not any(self.diurnal_profile):
            raise ConfigError("diurnal_profile weights must be non-negative, not all zero")
        require_fraction("weekend_factor", self.weekend_factor)
        if not 0 <= self.start_weekday <= 6:
            raise ConfigError("start_weekday must be in [0, 6]")
        if self.noise_sigma < 0:
            raise ConfigError("noise_sigma must be non-negative")
        require_positive("epoch_s", self.epoch_s)
        if any(m < 0 for m in self.daily_seasonality):
            raise ConfigError("daily_seasonality multipliers must be non-negative")


@dataclass(frozen=True)
class RateCurve:
    """A piecewise-constant offered-rate curve over a finite horizon.

    Breakpoints are strictly increasing in time and cover [0, horizon);
    the curve is 0 at and after ``horizon_s`` (the study window closed).
    """

    points: tuple[RatePoint, ...]
    horizon_s: float
    name: str = "rate-curve"
    _times: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigError("rate curve needs at least one breakpoint")
        times = [t for t, _ in self.points]
        if times[0] != 0.0:
            raise ConfigError("rate curve must start at t=0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigError("rate-curve breakpoints must be strictly increasing")
        if any(rate < 0 for _, rate in self.points):
            raise ConfigError("rates must be non-negative")
        require_positive("horizon_s", self.horizon_s)
        object.__setattr__(self, "_times", np.asarray(times))

    def rate_at(self, time_s: float) -> float:
        """Offered rate at an instant (0 outside the horizon)."""
        if time_s < 0 or time_s >= self.horizon_s:
            return 0.0
        index = int(np.searchsorted(self._times, time_s, side="right")) - 1
        return self.points[index][1]

    def total_requests(self) -> float:
        """∫λ dt over the horizon — offered requests, exactly."""
        total = 0.0
        for (time, rate), (next_time, _) in zip(self.points, self.points[1:]):
            total += rate * (next_time - time)
        last_time, last_rate = self.points[-1]
        total += last_rate * max(0.0, self.horizon_s - last_time)
        return total

    def peak_rps(self) -> float:
        return max(rate for _, rate in self.points)


def synthesize_rate_curve(
    config: ServiceLoadConfig,
    days: float,
    seed: int | np.random.Generator = 0,
    name: str = "rate-curve",
) -> RateCurve:
    """Generate one service's diurnal rate curve over ``days`` days.

    Same epoch construction as
    :meth:`repro.workload.synth.TraceSynthesizer._hourly_rates` — per-epoch
    intensity = peak × (diurnal weight / max weight) × weekend factor ×
    seasonality × log-normal jitter — returned as the intensity itself
    rather than sampled arrivals.
    """
    require_positive("days", days)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    horizon_s = days * 86400.0
    epochs = int(np.ceil(horizon_s / config.epoch_s))
    profile = np.asarray(config.diurnal_profile, dtype=float)
    profile = profile / profile.max()  # peak weight → peak_rps
    points: list[RatePoint] = []
    for epoch in range(epochs):
        start_s = epoch * config.epoch_s
        hour_of_day = int(start_s / 3600.0) % 24
        day = int(start_s // 86400.0)
        weekday = (config.start_weekday + day) % 7
        day_factor = config.weekend_factor if weekday >= 5 else 1.0
        if config.daily_seasonality:
            day_factor *= config.daily_seasonality[day % len(config.daily_seasonality)]
        rate = config.peak_rps * profile[hour_of_day] * day_factor
        if config.noise_sigma > 0:
            rate *= float(rng.lognormal(mean=0.0, sigma=config.noise_sigma))
        points.append((start_s, float(rate)))
    return RateCurve(points=tuple(points), horizon_s=horizon_s, name=name)
