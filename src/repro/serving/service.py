"""Inference-service model: specs, replica roles, and live service state.

A :class:`ServiceJob` is the serving counterpart of a training
:class:`~repro.workload.job.Job`: a *long-running, replicated* inference
service whose unit of scheduling is the replica.  Each replica is submitted
to the ordinary scheduler as a regular job (so placement, quota and
preemption all apply unchanged); the service tracks which replicas exist,
which are live, and at what per-replica request rate the execution layer
says each one serves.

Replicas come in two roles mirroring the campus quota tiers:

* **BASELINE** replicas run in the guaranteed tier — the capacity the
  service owner pays quota for, never preempted by training;
* **SURGE** replicas run opportunistic and preemptible — autoscaled
  harvest of idle GPUs that absorbs diurnal peaks and is reclaimed the
  moment a guaranteed training job needs the capacity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ValidationError
from ..ids import JobId, LabId, ServiceId, UserId
from ..workload.job import Job, JobState, JobTier, ResourceRequest
from ..workload.models import get_model_profile


class ReplicaRole(enum.Enum):
    BASELINE = "baseline"  # guaranteed tier, quota-backed
    SURGE = "surge"  # opportunistic tier, harvested idle capacity


#: Replica job durations exceed the remaining horizon by this factor so a
#: faster-than-reference placement (execution slowdown < 1) can never
#: complete a replica early; the fleet retires every replica explicitly
#: when the serving horizon closes.
REPLICA_LIFETIME_SLACK = 8.0


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one inference service.

    Attributes:
        service_id: Unique id; replica job ids derive from it.
        user_id / lab_id: Owner, for quota and fairness accounting.
        model_name: Catalogue key (:data:`~repro.workload.models.MODEL_CATALOG`)
            of the served model; its per-iteration profile sets the
            reference service rate.
        slo_p99_s: Target p99 request latency the autoscaler holds.
        batch_requests: Requests served per model iteration (serving batch).
        gpus_per_replica: GPUs each replica occupies.
        gpu_type: Required GPU type, or ``None`` for any.
        base_replicas: Guaranteed-tier baseline replica count.
        max_replicas: Hard ceiling on total replicas (baseline + surge).
        cpus_per_gpu / memory_gb_per_gpu: Host resources per replica GPU.
    """

    service_id: ServiceId
    user_id: UserId
    lab_id: LabId
    model_name: str
    slo_p99_s: float
    batch_requests: int = 8
    gpus_per_replica: int = 1
    gpu_type: str | None = None
    base_replicas: int = 2
    max_replicas: int = 16
    cpus_per_gpu: int = 4
    memory_gb_per_gpu: float = 32.0

    def __post_init__(self) -> None:
        if not self.service_id:
            raise ValidationError("service_id must be non-empty")
        get_model_profile(self.model_name)  # fail fast on unknown models
        if self.slo_p99_s <= 0:
            raise ValidationError(f"{self.service_id}: slo_p99_s must be positive")
        if self.batch_requests <= 0:
            raise ValidationError(f"{self.service_id}: batch_requests must be positive")
        if self.gpus_per_replica <= 0:
            raise ValidationError(f"{self.service_id}: gpus_per_replica must be positive")
        if self.base_replicas < 0:
            raise ValidationError(f"{self.service_id}: base_replicas must be >= 0")
        if self.max_replicas < max(1, self.base_replicas):
            raise ValidationError(
                f"{self.service_id}: max_replicas must be >= max(1, base_replicas)"
            )

    def reference_rate_rps(self, reference_gpu: str = "v100") -> float:
        """Requests/s of one replica on the requested (or reference) GPU.

        The autoscaler plans with this nominal rate; the *achieved* rate of
        a live replica is recomputed from its actual placement when it
        starts.
        """
        from ..cluster.gpu import get_gpu_spec

        profile = get_model_profile(self.model_name)
        gpu = get_gpu_spec(self.gpu_type or reference_gpu)
        iteration_s = profile.compute_ms / 1000.0 / gpu.relative_speed
        return self.batch_requests / iteration_s


@dataclass
class Replica:
    """One replica's live record inside a :class:`ServiceJob`."""

    job: Job
    role: ReplicaRole
    #: Achieved request rate of the live attempt (None while queued).
    rate_rps: float | None = None

    @property
    def running(self) -> bool:
        return self.job.state is JobState.RUNNING and self.rate_rps is not None

    @property
    def live(self) -> bool:
        """Still scheduled or schedulable (counts toward the desired fleet)."""
        return not self.job.state.terminal


@dataclass
class ServiceJob:
    """Live state of one replicated inference service.

    Created by the fleet from a :class:`ServiceSpec`; mutated only by the
    fleet's event handlers.  ``replicas`` maps replica job ids to their
    records in launch order (dict preserves insertion order, which the
    scale-down path relies on: surge replicas retire youngest-first).
    """

    spec: ServiceSpec
    rate_rps: float = 0.0
    replicas: dict[JobId, Replica] = field(default_factory=dict)
    launched: int = 0  # monotonically increasing replica counter
    #: Accounting state (integrated by the fleet).
    last_account_time: float = 0.0
    offered_requests: float = 0.0
    served_requests: float = 0.0
    slo_attained_requests: float = 0.0
    baseline_gpu_seconds: float = 0.0
    harvested_gpu_seconds: float = 0.0
    scale_up_events: int = 0
    scale_down_events: int = 0
    #: Autoscaler hysteresis: consecutive epochs the target sat below the
    #: live fleet size.
    epochs_below_target: int = 0

    @property
    def service_id(self) -> ServiceId:
        return self.spec.service_id

    def live_replicas(self, role: ReplicaRole | None = None) -> list[Replica]:
        return [
            replica
            for replica in self.replicas.values()
            if replica.live and (role is None or replica.role is role)
        ]

    def running_replicas(self) -> list[Replica]:
        return [replica for replica in self.replicas.values() if replica.running]

    def running_capacity_rps(self) -> float:
        return sum(replica.rate_rps or 0.0 for replica in self.running_replicas())

    def next_replica_job(self, spec_role: ReplicaRole, now: float, horizon_s: float) -> Job:
        """Mint the next replica job (QUEUED, ready for submission).

        The replica's ``duration`` is the remaining serving horizon padded
        by :data:`REPLICA_LIFETIME_SLACK`: services don't finish, they are
        retired — by a scale-down, or by the fleet when the study window
        closes.
        """
        spec = self.spec
        self.launched += 1
        tier = JobTier.GUARANTEED if spec_role is ReplicaRole.BASELINE else JobTier.OPPORTUNISTIC
        job = Job(
            job_id=f"{spec.service_id}-r{self.launched:04d}",
            user_id=spec.user_id,
            lab_id=spec.lab_id,
            request=ResourceRequest(
                num_gpus=spec.gpus_per_replica,
                gpu_type=spec.gpu_type,
                cpus_per_gpu=spec.cpus_per_gpu,
                memory_gb_per_gpu=spec.memory_gb_per_gpu,
            ),
            submit_time=now,
            duration=max(1.0, horizon_s - now) * REPLICA_LIFETIME_SLACK,
            tier=tier,
            preemptible=spec_role is ReplicaRole.SURGE,
            name=f"serve-{spec.model_name}",
            model_name=spec.model_name,
            service_id=spec.service_id,
        )
        self.replicas[job.job_id] = Replica(job=job, role=spec_role)
        return job
