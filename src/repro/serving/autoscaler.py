"""SLO-driven replica autoscaler.

At every rate epoch the autoscaler sizes each service's fleet to the
smallest replica count whose modelled p-quantile latency (M/M/c, nominal
per-replica rate) meets the SLO at ``headroom ×`` the new offered rate.
Scaling *up* is immediate — an under-provisioned epoch burns SLO budget
right now — while scaling *down* waits for ``scale_down_hold_epochs``
consecutive epochs below target, so a single noisy trough doesn't shed
capacity the evening peak needs back.

The autoscaler only ever decides a **target**; the fleet maps the delta
onto replica roles (baseline deficit first, surge for the rest) and the
ordinary scheduler decides whether the cluster can actually host the surge
— surge replicas queue opportunistically like any free-tier job.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .latency import min_replicas_for_slo
from .service import ServiceJob


@dataclass(frozen=True)
class AutoscalerConfig:
    """Autoscaling knobs shared by all services of a fleet.

    Attributes:
        enabled: When False the fleet never leaves its baseline size
            (the fixed-replica comparison arm of experiment S1).
        quantile: Latency quantile the SLO constrains (p99 by default).
        headroom: Provisioning margin on the offered rate; >1 absorbs
            within-epoch noise the piecewise-constant model hides.
        scale_down_hold_epochs: Consecutive below-target epochs required
            before surge capacity is released.
    """

    enabled: bool = True
    quantile: float = 0.99
    headroom: float = 1.15
    scale_down_hold_epochs: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ConfigError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.headroom < 1.0:
            raise ConfigError(f"headroom must be >= 1, got {self.headroom}")
        if self.scale_down_hold_epochs < 0:
            raise ConfigError("scale_down_hold_epochs must be >= 0")


class SloAutoscaler:
    """Pure sizing logic: (service, new rate) → replica delta."""

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()

    def target_replicas(self, service: ServiceJob, rate_rps: float) -> int:
        """Smallest fleet meeting the SLO at the planned rate, clamped.

        Planning uses the spec's nominal per-replica rate (requested GPU
        type, ideal placement); replicas that land on slower hardware serve
        less, which shows up as attainment shortfall, not a planning input
        — mirroring how real autoscalers plan on nameplate capacity.
        """
        spec = service.spec
        if not self.config.enabled:
            return spec.base_replicas
        if rate_rps <= 0:
            return spec.base_replicas
        needed = min_replicas_for_slo(
            rate_rps * self.config.headroom,
            spec.reference_rate_rps(),
            spec.slo_p99_s,
            quantile=self.config.quantile,
            max_replicas=spec.max_replicas,
        )
        if needed is None:
            return spec.max_replicas  # best effort: saturate the ceiling
        return max(spec.base_replicas, min(spec.max_replicas, needed))

    def decide(self, service: ServiceJob, rate_rps: float) -> int:
        """Replica delta for the new epoch (positive = scale up).

        Mutates the service's hysteresis counter; call exactly once per
        rate epoch.  A zero rate (horizon close) releases surge capacity
        immediately — there is no peak left to hold it for.
        """
        target = self.target_replicas(service, rate_rps)
        live = len(service.live_replicas())
        if target > live:
            service.epochs_below_target = 0
            return target - live
        if target < live:
            if rate_rps <= 0:
                service.epochs_below_target = 0
                return target - live
            service.epochs_below_target += 1
            if service.epochs_below_target >= self.config.scale_down_hold_epochs:
                service.epochs_below_target = 0
                return target - live
            return 0
        service.epochs_below_target = 0
        return 0
