"""The serving fleet: wires services, autoscaler, and the simulator.

:class:`ServingFleet` is the serving subsystem's one stateful coordinator.
Attached to a :class:`~repro.sim.simulator.ClusterSimulator`, it

* pre-schedules every service's :class:`~repro.sim.events.RequestRateChange`
  epochs from its synthesized rate curve (plus a closing zero-rate event at
  the horizon);
* on each rate change, closes the accounting epoch that just ended —
  integrating offered/served/SLO-attained requests through the M/M/c model
  under the capacity that was actually live — then asks the autoscaler for
  a target and emits ``ServiceScaleUp`` / ``ServiceScaleDown`` events;
* launches replicas as ordinary jobs through ``simulator.submit_job``:
  baseline replicas in the guaranteed tier, surge replicas opportunistic
  and preemptible, so the existing quota/reclaim machinery arbitrates
  between serving surge and training exactly as it does between tiers;
* recomputes each replica's achieved request rate from its *actual*
  placement when it starts (slow GPU generation or a spread placement
  serves fewer requests/s), and freezes accounting around every capacity
  change via the simulator's start/stop hooks.

Determinism: curve synthesis uses one seeded generator consumed in service
order at construction time; everything after that is driven by the event
queue, so a (fleet seed, trace seed) pair fully determines a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..controlplane.lifecycle import Actor, Cause
from ..errors import ConfigError, SimulationError
from ..execlayer.comm import shape_from_placement
from ..ids import NodeId, ServiceId
from ..sim.events import RequestRateChange, ServiceScaleDown, ServiceScaleUp
from ..sim.metrics import ServingMetrics
from ..workload.job import Job, JobState
from .autoscaler import AutoscalerConfig, SloAutoscaler
from .demand import RateCurve, ServiceLoadConfig, synthesize_rate_curve
from .latency import slo_attainment
from .service import ReplicaRole, ServiceJob, ServiceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..sim.simulator import ClusterSimulator

#: A fleet workload: each service spec paired with its offered-load config.
ServingWorkload = Sequence[tuple[ServiceSpec, ServiceLoadConfig]]


class ServingFleet:
    """All inference services co-hosted on one simulated cluster."""

    def __init__(
        self,
        workload: ServingWorkload,
        days: float,
        autoscaler: AutoscalerConfig | None = None,
        seed: int = 0,
    ) -> None:
        if not workload:
            raise ConfigError("serving fleet needs at least one service")
        if days <= 0:
            raise ConfigError(f"days must be positive, got {days}")
        self.horizon_s = days * 86400.0
        self.autoscaler = SloAutoscaler(autoscaler)
        self.services: dict[ServiceId, ServiceJob] = {}
        self.curves: dict[ServiceId, RateCurve] = {}
        rng = np.random.default_rng(seed)
        for spec, load in workload:
            if spec.service_id in self.services:
                raise ConfigError(f"duplicate service id {spec.service_id}")
            self.services[spec.service_id] = ServiceJob(spec=spec)
            self.curves[spec.service_id] = synthesize_rate_curve(
                load, days, seed=rng, name=spec.service_id
            )
        self.replica_launches = 0
        self._sim: "ClusterSimulator | None" = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, simulator: "ClusterSimulator") -> None:
        """Register handlers and seed the event queue (simulator init)."""
        if self._sim is not None:
            raise SimulationError("serving fleet is already attached to a simulator")
        self._sim = simulator
        engine = simulator.engine
        engine.register(RequestRateChange, self._on_rate_change)
        engine.register(ServiceScaleDown, self._on_scale_down)
        engine.register(ServiceScaleUp, self._on_scale_up)
        for service_id, curve in self.curves.items():
            for time_s, rate in curve.points:
                engine.schedule_at(time_s, RequestRateChange(service_id, rate))
            # Closing epoch: rate drops to zero at the horizon, which also
            # makes the autoscaler release all surge capacity immediately.
            engine.schedule_at(curve.horizon_s, RequestRateChange(service_id, 0.0))

    def _require_sim(self) -> "ClusterSimulator":
        if self._sim is None:
            raise SimulationError("serving fleet is not attached to a simulator")
        return self._sim

    def _service_of(self, job: Job) -> ServiceJob:
        assert job.service_id is not None
        return self.services[job.service_id]

    # -- event handlers -----------------------------------------------------------

    def _on_rate_change(self, now: float, event: RequestRateChange) -> None:
        service = self.services[event.service_id]
        self._account(service, now)
        service.rate_rps = event.rate_rps
        if event.rate_rps <= 0 and now >= self.horizon_s - 1e-9:
            self._retire_all(service, now)
            return
        delta = self.autoscaler.decide(service, event.rate_rps)
        engine = self._require_sim().engine
        if delta > 0:
            engine.schedule_at(now, ServiceScaleUp(service.service_id, delta))
        elif delta < 0:
            engine.schedule_at(now, ServiceScaleDown(service.service_id, -delta))

    def _retire_all(self, service: ServiceJob, now: float) -> None:
        """Horizon close: kill every live replica, baseline included."""
        simulator = self._require_sim()
        live = service.live_replicas()
        for replica in live:
            self._retire(simulator, replica.job.job_id, detail="horizon")
        if live:
            service.scale_down_events += 1

    def _retire(self, simulator: "ClusterSimulator", job_id: str, detail: str) -> None:
        """Retire one replica through the control plane, attributed to us."""
        simulator.kill_job(
            job_id,
            cause=Cause.SERVICE_RETIRE,
            actor=Actor.AUTOSCALER,
            detail=detail,
        )

    def _on_scale_up(self, now: float, event: ServiceScaleUp) -> None:
        simulator = self._require_sim()
        service = self.services[event.service_id]
        spec = service.spec
        headroom = spec.max_replicas - len(service.live_replicas())
        to_launch = min(event.count, headroom)
        if to_launch <= 0:
            return
        if now >= self.horizon_s:
            return  # nothing left to serve; don't launch zombie replicas
        for _ in range(to_launch):
            baseline_live = len(service.live_replicas(ReplicaRole.BASELINE))
            role = (
                ReplicaRole.BASELINE
                if baseline_live < spec.base_replicas
                else ReplicaRole.SURGE
            )
            job = service.next_replica_job(role, now, self.horizon_s)
            simulator.submit_job(job)
            self.replica_launches += 1
        service.scale_up_events += 1

    def _on_scale_down(self, now: float, event: ServiceScaleDown) -> None:
        simulator = self._require_sim()
        service = self.services[event.service_id]
        surge = service.live_replicas(ReplicaRole.SURGE)
        # Retire queued surge first (they hold no GPUs), then the youngest
        # running ones; dict order is launch order, so reversed() = youngest.
        queued = [r for r in reversed(surge) if r.job.state is JobState.QUEUED]
        running = [r for r in reversed(surge) if r.job.state is JobState.RUNNING]
        retired = 0
        for replica in queued + running:
            if retired >= event.count:
                break
            self._retire(simulator, replica.job.job_id, detail="scale_down")
            retired += 1
        if retired:
            service.scale_down_events += 1

    # -- simulator capacity hooks ----------------------------------------------------

    def on_replica_start(self, now: float, job: Job, placement: dict[NodeId, int]) -> None:
        """A replica job was placed: freeze accounting, compute its rate.

        The achieved rate uses the same iteration-time model as training
        slowdowns — slowest GPU type in the placement, communication cost
        of the placement shape — so hardware generation and spread bite
        serving latency exactly as they bite training throughput.
        """
        simulator = self._require_sim()
        service = self._service_of(job)
        self._account(service, now)
        cluster = simulator.cluster
        from ..cluster.gpu import get_gpu_spec

        shape = shape_from_placement(dict(placement), cluster)
        # sorted(): equal-speed GPU types must tie-break by name, not by
        # set hash order, or replica rates drift across processes.
        gpu_types = {cluster.node(n).spec.gpu_type for n in placement}
        slowest = min(sorted(gpu_types), key=lambda t: get_gpu_spec(t).relative_speed)
        iteration_s = simulator.exec_model.iteration_time_s(job, shape, slowest)
        if iteration_s <= 0:
            raise SimulationError(f"non-positive iteration time for replica {job.job_id}")
        replica = service.replicas[job.job_id]
        replica.rate_rps = service.spec.batch_requests / iteration_s

    def on_replica_stop(self, now: float, job: Job) -> None:
        """A replica is leaving its nodes (finish/preempt/kill/failure)."""
        service = self._service_of(job)
        self._account(service, now)
        service.replicas[job.job_id].rate_rps = None

    # -- accounting --------------------------------------------------------------

    def _account(self, service: ServiceJob, now: float) -> None:
        """Integrate the epoch [last_account_time, now) at current capacity."""
        dt = now - service.last_account_time
        if dt < -1e-9:
            raise SimulationError(
                f"serving accounting went backwards for {service.service_id}"
            )
        if dt <= 0:
            return
        service.last_account_time = now
        running = service.running_replicas()
        gpus = service.spec.gpus_per_replica
        for replica in running:
            if replica.role is ReplicaRole.BASELINE:
                service.baseline_gpu_seconds += gpus * dt
            else:
                service.harvested_gpu_seconds += gpus * dt
        rate = service.rate_rps
        if rate <= 0:
            return
        offered = rate * dt
        service.offered_requests += offered
        if not running:
            return  # every request in this epoch is dropped
        capacity = sum(r.rate_rps or 0.0 for r in running)
        mu_eff = capacity / len(running)
        service.served_requests += min(rate, capacity) * dt
        attained = slo_attainment(rate, mu_eff, len(running), service.spec.slo_p99_s)
        service.slo_attained_requests += offered * attained

    def finalize(self, now: float) -> ServingMetrics:
        """Close all accounting epochs and aggregate the fleet's metrics."""
        per_service: dict[str, dict[str, float]] = {}
        offered = served = attained = 0.0
        baseline_s = harvested_s = 0.0
        launches = preemptions = ups = downs = 0
        for service_id in sorted(self.services):
            service = self.services[service_id]
            self._account(service, now)
            service_preemptions = sum(
                replica.job.preemptions for replica in service.replicas.values()
            )
            offered += service.offered_requests
            served += service.served_requests
            attained += service.slo_attained_requests
            baseline_s += service.baseline_gpu_seconds
            harvested_s += service.harvested_gpu_seconds
            launches += service.launched
            preemptions += service_preemptions
            ups += service.scale_up_events
            downs += service.scale_down_events
            per_service[service_id] = {
                "offered_requests": service.offered_requests,
                "served_requests": service.served_requests,
                "slo_attained_requests": service.slo_attained_requests,
                "slo_attainment": (
                    service.slo_attained_requests / service.offered_requests
                    if service.offered_requests
                    else 1.0
                ),
                "peak_rps": self.curves[service_id].peak_rps(),
                "replica_launches": float(service.launched),
                "replica_preemptions": float(service_preemptions),
                "baseline_gpu_hours": service.baseline_gpu_seconds / 3600.0,
                "harvested_gpu_hours": service.harvested_gpu_seconds / 3600.0,
            }
        horizon = min(now, self.horizon_s) or 1.0
        return ServingMetrics(
            services=len(self.services),
            offered_requests=offered,
            served_requests=served,
            slo_attained_requests=attained,
            slo_attainment=attained / offered if offered else 1.0,
            goodput_rps=attained / horizon,
            baseline_gpu_hours=baseline_s / 3600.0,
            harvested_gpu_hours=harvested_s / 3600.0,
            replica_launches=launches,
            replica_preemptions=preemptions,
            scale_up_events=ups,
            scale_down_events=downs,
            per_service=per_service,
        )
