"""The cluster control plane: lifecycle state machine, controller, snapshots.

One typed path for every job-state mutation in the simulated cluster —
scheduler placements, quota preemptions, failure recovery, serving
autoscaling, and user kills all flow through :class:`ClusterController`,
which validates each move against the :class:`JobLifecycle` state machine
and appends it to the authoritative :class:`TransitionLog`.
"""

from .controller import ClusterController, ReplicaHost, TimelineEvent
from .lifecycle import (
    LEGAL_TRANSITIONS,
    Actor,
    Cause,
    JobLifecycle,
    LifecycleState,
    Transition,
    TransitionLog,
)
from .snapshot import SimSnapshot, fork, snapshot

__all__ = [
    "Actor",
    "Cause",
    "ClusterController",
    "JobLifecycle",
    "LEGAL_TRANSITIONS",
    "LifecycleState",
    "ReplicaHost",
    "SimSnapshot",
    "TimelineEvent",
    "Transition",
    "TransitionLog",
    "fork",
    "snapshot",
]
