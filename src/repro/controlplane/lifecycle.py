"""The typed job-lifecycle state machine.

Every job in the simulated cluster moves through one explicit lifecycle::

                      ┌────────────────────────────┐
    PENDING ──admit──► ADMITTED ──place──► RUNNING ├──complete──► FINISHED
       │                 │  ▲                │ │ │ └──fail──────► FAILED
       └──reject/kill──► KILLED ◄──kill──────┘ │ └─node_failure─► RESTARTING
                                               └────preempt────► PREEMPTED
    (PREEMPTED / RESTARTING ──place──► RUNNING again, or terminal)
    (workflow stages: PENDING ──deps_hold──► PENDING_DEPS, which exits via
    deps_release──► ADMITTED or upstream_failed/kill──► KILLED / FAILED)

States are *observations* layered over :class:`~repro.workload.job.Job`:
the five-state ``JobState`` persisted on the job collapses ADMITTED /
PREEMPTED / RESTARTING into ``QUEUED``; the lifecycle keeps them distinct
because *why* a job is queued (fresh, evicted, crashed) is exactly what
operational metrics and the timeline need.

Every mutation produces a frozen :class:`Transition` record carrying the
cause, the actor that requested it, and the simulated timestamp.  Illegal
transitions raise :class:`~repro.errors.IllegalTransitionError` instead of
silently corrupting metrics — the state machine is the contract, not a
convention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ..errors import IllegalTransitionError
from ..workload.job import JobState


class LifecycleState(enum.Enum):
    """Control-plane view of where a job is in its life."""

    PENDING = "pending"  # submitted, arrival not yet processed
    PENDING_DEPS = "pending_deps"  # workflow stage held on upstream stages
    ADMITTED = "admitted"  # accepted and enqueued with the scheduler
    RUNNING = "running"
    PREEMPTED = "preempted"  # gracefully evicted, back in the queue
    RESTARTING = "restarting"  # evicted by a node failure, back in the queue
    FINISHED = "finished"
    KILLED = "killed"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL

    @property
    def job_state(self) -> JobState:
        """The coarse five-state ``JobState`` this lifecycle state maps to."""
        return _JOB_STATE_OF[self]


_TERMINAL = frozenset(
    {LifecycleState.FINISHED, LifecycleState.KILLED, LifecycleState.FAILED}
)

_JOB_STATE_OF: dict[LifecycleState, JobState] = {
    LifecycleState.PENDING: JobState.QUEUED,
    LifecycleState.PENDING_DEPS: JobState.QUEUED,
    LifecycleState.ADMITTED: JobState.QUEUED,
    LifecycleState.RUNNING: JobState.RUNNING,
    LifecycleState.PREEMPTED: JobState.QUEUED,
    LifecycleState.RESTARTING: JobState.QUEUED,
    LifecycleState.FINISHED: JobState.COMPLETED,
    LifecycleState.KILLED: JobState.KILLED,
    LifecycleState.FAILED: JobState.FAILED,
}

#: Lifecycle state corresponding to each coarse job state (used to seed the
#: lifecycle of jobs that enter the simulation already started/terminal).
LIFECYCLE_OF_JOB_STATE: dict[JobState, LifecycleState] = {
    JobState.QUEUED: LifecycleState.PENDING,
    JobState.RUNNING: LifecycleState.RUNNING,
    JobState.COMPLETED: LifecycleState.FINISHED,
    JobState.KILLED: LifecycleState.KILLED,
    JobState.FAILED: LifecycleState.FAILED,
}

#: The complete legal-transition relation.  Anything not listed raises.
LEGAL_TRANSITIONS: dict[LifecycleState, frozenset[LifecycleState]] = {
    LifecycleState.PENDING: frozenset(
        {LifecycleState.PENDING_DEPS, LifecycleState.ADMITTED, LifecycleState.KILLED}
    ),
    # Dependency-held stages are invisible to schedulers: the only ways out
    # are admission (all upstreams finished) or death (an upstream failed /
    # user kill) — never directly to RUNNING.
    LifecycleState.PENDING_DEPS: frozenset(
        {LifecycleState.ADMITTED, LifecycleState.KILLED, LifecycleState.FAILED}
    ),
    LifecycleState.ADMITTED: frozenset(
        {LifecycleState.RUNNING, LifecycleState.KILLED, LifecycleState.FAILED}
    ),
    LifecycleState.RUNNING: frozenset(
        {
            LifecycleState.FINISHED,
            LifecycleState.FAILED,
            LifecycleState.KILLED,
            LifecycleState.PREEMPTED,
            LifecycleState.RESTARTING,
        }
    ),
    LifecycleState.PREEMPTED: frozenset(
        {LifecycleState.RUNNING, LifecycleState.KILLED, LifecycleState.FAILED}
    ),
    LifecycleState.RESTARTING: frozenset(
        {LifecycleState.RUNNING, LifecycleState.KILLED, LifecycleState.FAILED}
    ),
    LifecycleState.FINISHED: frozenset(),
    LifecycleState.KILLED: frozenset(),
    LifecycleState.FAILED: frozenset(),
}


class Cause(enum.Enum):
    """Why a transition happened (the edge label)."""

    ADMIT = "admit"
    REJECT = "reject"
    PLACE = "place"
    PREEMPT = "preempt"
    PREEMPTION_LIMIT = "preemption_limit"
    NODE_FAILURE = "node_failure"
    COMPLETE = "complete"
    INTRINSIC_FAILURE = "intrinsic_failure"  # the job's own scripted failure
    HARDWARE_FAILURE = "hardware_failure"  # restart budget exhausted
    WALLTIME_LIMIT = "walltime_limit"
    USER_KILL = "user_kill"
    SERVICE_RETIRE = "service_retire"  # serving autoscaler scale-down/horizon
    MIGRATE = "migrate"  # checkpoint-and-migrate to another cluster
    DEPS_HOLD = "deps_hold"  # workflow stage waiting on upstream stages
    DEPS_RELEASE = "deps_release"  # last upstream finished; stage admitted
    UPSTREAM_FAILED = "upstream_failed"  # an upstream stage failed/was killed


class Actor(enum.Enum):
    """Who asked for the transition."""

    USER = "user"
    ADMISSION = "admission"
    SCHEDULER = "scheduler"
    SIMULATOR = "simulator"
    FAILURE_INJECTOR = "failure_injector"
    AUTOSCALER = "autoscaler"
    FEDERATION = "federation"  # the cross-cluster router/migrator


#: Timeline event kind emitted when a job *enters* each state (KILLED is
#: special-cased: entering it from PENDING is a "reject", otherwise "kill").
_TIMELINE_KIND: dict[LifecycleState, str] = {
    LifecycleState.PENDING_DEPS: "hold",
    LifecycleState.ADMITTED: "submit",
    LifecycleState.RUNNING: "start",
    LifecycleState.PREEMPTED: "preempt",
    LifecycleState.RESTARTING: "requeue",
    LifecycleState.FINISHED: "complete",
    LifecycleState.FAILED: "fail",
    LifecycleState.KILLED: "kill",
}


@dataclass(frozen=True)
class Transition:
    """One recorded edge of one job's lifecycle."""

    job_id: str
    time: float
    source: LifecycleState
    target: LifecycleState
    cause: Cause
    actor: Actor
    attempt: int  # the job's attempt counter when the edge was taken
    detail: str = ""

    @property
    def timeline_kind(self) -> str:
        if self.target is LifecycleState.KILLED and self.cause is Cause.REJECT:
            return "reject"
        return _TIMELINE_KIND[self.target]

    def oneline(self) -> str:
        """Human-oriented rendering for ``tcloud`` history output."""
        line = (
            f"t+{self.time / 3600.0:7.2f}h  "
            f"{self.source.value:>10s} -> {self.target.value:<10s} "
            f"cause={self.cause.value} actor={self.actor.value}"
        )
        if self.detail:
            line += f"  [{self.detail}]"
        return line


class JobLifecycle:
    """The live state machine of one job.

    Owns only the current :class:`LifecycleState`; history lives in the
    controller's :class:`TransitionLog`.  :meth:`advance` is the *only*
    way to move, and it validates against :data:`LEGAL_TRANSITIONS`.
    """

    __slots__ = ("job_id", "state")

    def __init__(
        self, job_id: str, state: LifecycleState = LifecycleState.PENDING
    ) -> None:
        self.job_id = job_id
        self.state = state

    def can(self, target: LifecycleState) -> bool:
        return target in LEGAL_TRANSITIONS[self.state]

    def advance(
        self,
        target: LifecycleState,
        *,
        time: float,
        cause: Cause,
        actor: Actor,
        attempt: int,
        detail: str = "",
    ) -> Transition:
        if not self.can(target):
            raise IllegalTransitionError(
                f"job {self.job_id}: illegal lifecycle transition "
                f"{self.state.value} -> {target.value} "
                f"(cause={cause.value}, actor={actor.value}, t={time})"
            )
        transition = Transition(
            job_id=self.job_id,
            time=time,
            source=self.state,
            target=target,
            cause=cause,
            actor=actor,
            attempt=attempt,
            detail=detail,
        )
        self.state = target
        return transition

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobLifecycle({self.job_id!r}, {self.state.value})"


class TransitionLog:
    """Append-only record of every lifecycle transition in a run.

    The single authoritative history: the timeline, churn metrics, the
    ``tcloud history`` verb, and the ops report all derive from it.

    ``retain_records=False`` keeps every count exact but drops the record
    objects themselves (``records`` stays empty, :meth:`for_job` returns
    nothing).  At fleet scale a month-long million-job run emits several
    million transitions — gigabytes of :class:`Transition` objects that
    nothing reads when the caller only wants aggregate metrics.
    """

    def __init__(self, retain_records: bool = True) -> None:
        self.retain_records = retain_records
        self.records: list[Transition] = []
        self._total = 0
        self._by_target: dict[LifecycleState, int] = {}
        self._by_cause: dict[Cause, int] = {}
        self._by_pair: dict[tuple[LifecycleState, Cause], int] = {}

    def append(self, transition: Transition) -> None:
        if self.retain_records:
            self.records.append(transition)
        self._total += 1
        self._by_target[transition.target] = self._by_target.get(transition.target, 0) + 1
        self._by_cause[transition.cause] = self._by_cause.get(transition.cause, 0) + 1
        pair = (transition.target, transition.cause)
        self._by_pair[pair] = self._by_pair.get(pair, 0) + 1

    def __len__(self) -> int:
        return self._total

    def __iter__(self) -> Iterator[Transition]:
        return iter(self.records)

    def count(
        self, target: LifecycleState | None = None, cause: Cause | None = None
    ) -> int:
        """O(1) count by target state and/or cause (exact even when record
        retention is off — counts are maintained independently)."""
        if target is not None and cause is not None:
            return self._by_pair.get((target, cause), 0)
        if target is not None:
            return self._by_target.get(target, 0)
        if cause is not None:
            return self._by_cause.get(cause, 0)
        return self._total

    def for_job(self, job_id: str) -> list[Transition]:
        return [t for t in self.records if t.job_id == job_id]

    def by_cause(self) -> dict[str, int]:
        """Cause -> count, in first-seen order (reporting)."""
        return {cause.value: count for cause, count in self._by_cause.items()}
