"""Snapshot / restore / fork of a live simulation.

A :class:`ClusterSimulator` is a closed world: jobs, cluster, scheduler,
index, RNG streams, the event heap, and the control plane all reference
each other but nothing outside (the engine's handlers are bound methods,
which ``deepcopy`` rebinds onto the copied instance).  That makes a deep
copy a *complete, independent* universe — same clock, same pending
events, same RNG state — so running the copy replays exactly what the
original would do from this point.

Three verbs build on that:

* :func:`fork` — an independent copy you can run forward immediately
  (what-if interventions, capacity planning);
* :func:`snapshot` — a frozen copy you can :meth:`~SimSnapshot.restore`
  from any number of times (each restore is a fresh fork of the frozen
  state, so restores never interfere);
* deterministic warm-start — snapshot once after an expensive ramp-up,
  then restore per benchmark iteration instead of re-running the ramp.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulator import ClusterSimulator


def fork(sim: "ClusterSimulator") -> "ClusterSimulator":
    """An independent deep copy of a live simulation, ready to run forward.

    The fork shares nothing mutable with the original: advancing one
    never affects the other, and both produce identical results if run
    identically (the RNG state is part of the copy).
    """
    return copy.deepcopy(sim)


@dataclass(frozen=True)
class SimSnapshot:
    """A frozen, restorable image of a simulation at one instant."""

    label: str
    time: float
    events_processed: int
    _frozen: "ClusterSimulator"

    def restore(self) -> "ClusterSimulator":
        """A fresh simulator resumed from this snapshot.

        Each call returns an *independent* copy of the frozen state, so a
        snapshot can seed any number of forks (benchmark iterations,
        alternative interventions) without them interfering.
        """
        return copy.deepcopy(self._frozen)


def snapshot(sim: "ClusterSimulator", label: str = "") -> SimSnapshot:
    """Capture the full state of a live simulation for later restore."""
    return SimSnapshot(
        label=label,
        time=sim.engine.now,
        events_processed=sim.engine.events_processed,
        _frozen=copy.deepcopy(sim),
    )
