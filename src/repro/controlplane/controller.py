"""The cluster control plane: one owner for every job/cluster mutation.

:class:`ClusterController` is the facade through which *every* actor —
the arrival path, the scheduler's start/preempt callbacks, the failure
injector's consequences, the serving autoscaler's retirements, and user
kills from ``tcloud`` — mutates job and cluster state.  Each mutation:

1. validates against the :class:`~repro.controlplane.lifecycle.JobLifecycle`
   state machine (illegal transitions raise instead of corrupting state);
2. applies the matching :class:`~repro.workload.job.Job` transition and
   resource change (allocate/free, placement hooks, utilization
   accounting);
3. appends one typed :class:`~repro.controlplane.lifecycle.Transition` to
   the :class:`~repro.controlplane.lifecycle.TransitionLog` — the single
   source from which churn counters, the timeline, ``tcloud history``,
   and the ops report derive.

The simulator keeps what is genuinely *simulation*: the event queue, the
execution/provisioning/staging models, and attempt-outcome planning.  The
controller keeps what is *control*: who may move which job where, and the
authoritative record that it happened.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Protocol

from ..cluster.cluster import Cluster
from ..errors import SchedulingError, SimulationError
from ..ids import JobId, NodeId
from ..sched.base import Scheduler
from ..workload.job import FailureCategory, Job, JobState
from .lifecycle import (
    LIFECYCLE_OF_JOB_STATE,
    Actor,
    Cause,
    JobLifecycle,
    LifecycleState,
    Transition,
    TransitionLog,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.metrics import MetricsCollector


@dataclass(frozen=True)
class TimelineEvent:
    """One recorded lifecycle event (``record_timeline=True`` runs)."""

    time: float
    kind: str  # submit|reject|start|preempt|requeue|complete|fail|kill|node_down|node_up
    subject: str  # job id or node id
    detail: str = ""


class ReplicaHost(Protocol):
    """Capacity hooks a serving fleet exposes to the control plane."""

    def on_replica_start(
        self, now: float, job: Job, placement: dict[NodeId, int]
    ) -> None: ...

    def on_replica_stop(self, now: float, job: Job) -> None: ...


#: Outcome planned for one attempt: ("complete" | "fail" | "walltime", category).
AttemptOutcome = tuple[str, "FailureCategory | None"]


class ClusterController:
    """Owns all job-state and allocation mutations of one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        metrics: "MetricsCollector",
        *,
        checkpoint_loss_s: float = 30.0,
        max_job_preemptions: int = 0,
        record_timeline: bool = False,
        record_transitions: bool = True,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.metrics = metrics
        self.checkpoint_loss_s = checkpoint_loss_s
        self.max_job_preemptions = max_job_preemptions
        self.record_timeline = record_timeline
        self.jobs: dict[JobId, Job] = {}
        self.running: dict[JobId, Job] = {}
        self.lifecycles: dict[JobId, JobLifecycle] = {}
        self.log = TransitionLog(retain_records=record_transitions)
        self.timeline: list[TimelineEvent] = []
        #: Planned outcome per (job, attempt); consumed when the attempt ends.
        self.attempt_outcomes: dict[tuple[JobId, int], AttemptOutcome] = {}
        #: Cumulative running wall time per job (wall-time enforcement).
        self.wall_used: dict[JobId, float] = {}
        #: Serving fleet capacity hooks, if a fleet is co-located.
        self.serving: ReplicaHost | None = None
        #: Dependency bookkeeping for workflow stages held in PENDING_DEPS.
        #: ``waiting_on`` maps a held job to its still-unmet upstream ids;
        #: ``dependents`` is the reverse index consulted when an upstream
        #: reaches a terminal state.
        self.waiting_on: dict[JobId, set[JobId]] = {}
        self.dependents: dict[JobId, list[JobId]] = {}
        #: Simulator hook fired when a held job's last upstream finishes;
        #: the simulator schedules a DependencyRelease event so the release
        #: is an ordered, visible part of the event stream.  Without a hook
        #: (unit tests, direct controller use) the release is synchronous.
        self.on_deps_ready: Callable[[float, JobId], None] | None = None
        self._live_jobs = 0

    # -- tracking -----------------------------------------------------------------

    def track(self, job: Job) -> None:
        """Register a job with the control plane (trace load / submission)."""
        self.jobs[job.job_id] = job
        self.lifecycles[job.job_id] = JobLifecycle(
            job.job_id, LIFECYCLE_OF_JOB_STATE[job.state]
        )
        if not job.state.terminal:
            self._live_jobs += 1

    def lifecycle_of(self, job_id: JobId) -> JobLifecycle:
        return self.lifecycles[job_id]

    @property
    def live_jobs(self) -> int:
        return self._live_jobs

    def work_remains(self) -> bool:
        return self._live_jobs > 0

    # -- admission ----------------------------------------------------------------

    def admit(self, now: float, job: Job) -> None:
        """Accept an arriving job and hand it to the scheduler's queue."""
        self._apply(now, job, LifecycleState.ADMITTED, Cause.ADMIT, Actor.ADMISSION)
        self.scheduler.enqueue(job, now)

    def reject(self, now: float, job: Job) -> None:
        """Reject an arriving job at submission (infeasible / no partition)."""
        job.kill(now)
        self._apply(now, job, LifecycleState.KILLED, Cause.REJECT, Actor.ADMISSION)

    def hold_for_deps(self, now: float, job: Job, unmet: Iterable[JobId]) -> None:
        """Park an arriving workflow stage until its upstreams finish.

        The job moves PENDING → PENDING_DEPS and is *not* handed to the
        scheduler — dependency-held jobs are invisible to every scheduling
        policy by construction, not by filtering.
        """
        unmet_set = set(unmet)
        if not unmet_set:
            raise SimulationError(f"hold_for_deps({job.job_id}) with no unmet deps")
        self.waiting_on[job.job_id] = unmet_set
        for upstream in sorted(unmet_set):
            self.dependents.setdefault(upstream, []).append(job.job_id)
        self._apply(
            now,
            job,
            LifecycleState.PENDING_DEPS,
            Cause.DEPS_HOLD,
            Actor.ADMISSION,
            detail=f"deps={len(unmet_set)}",
        )

    def release_deps(self, now: float, job: Job) -> None:
        """Admit a held stage whose upstreams have all finished."""
        self.waiting_on.pop(job.job_id, None)
        job.deps_released_at = now
        self._apply(
            now, job, LifecycleState.ADMITTED, Cause.DEPS_RELEASE, Actor.ADMISSION
        )
        self.scheduler.enqueue(job, now)

    def restrict_to_partition(self, job: Job, node_ids: Iterable[NodeId]) -> None:
        """Pin an arriving job's placement to its partition's node set.

        Rewriting the request is a job mutation, so it lives here rather
        than in the simulator's arrival handler: admission routing is
        control, not simulation.
        """
        job.request = replace(job.request, allowed_nodes=frozenset(node_ids))

    # -- placement ----------------------------------------------------------------

    def ensure_startable(self, job: Job, placement: dict[NodeId, int]) -> int:
        """Validate a scheduler's start request; returns the granted GPU total."""
        if job.state is not JobState.QUEUED:
            raise SchedulingError(
                f"scheduler tried to start {job.job_id} in state {job.state.value}"
            )
        if not self.lifecycles[job.job_id].can(LifecycleState.RUNNING):
            raise SchedulingError(
                f"scheduler tried to start {job.job_id} in lifecycle state "
                f"{self.lifecycles[job.job_id].state.value}"
            )
        total = sum(placement.values())
        floor = job.elastic_min_gpus if job.elastic else job.num_gpus
        if not floor <= total <= job.num_gpus:
            raise SchedulingError(
                f"placement for {job.job_id} provides {total} GPUs, "
                f"job accepts [{floor}, {job.num_gpus}]"
            )
        return total

    def start(
        self,
        now: float,
        job: Job,
        placement: dict[NodeId, int],
        *,
        slowdown: float,
        setup_s: float = 0.0,
    ) -> None:
        """Allocate resources and move the job to RUNNING."""
        total = self.ensure_startable(job, placement)
        request = job.request
        self.cluster.allocate(
            job.job_id,
            placement,
            cpus_per_gpu=request.cpus_per_gpu,
            memory_gb_per_gpu=request.memory_gb_per_gpu,
        )
        self.scheduler.placement.on_allocate(self.cluster, job.job_id, dict(placement))
        self.metrics.on_used_changed(now, self.cluster.used_gpus)
        job.start(
            now,
            tuple(sorted(placement)),
            slowdown,
            granted_gpus=total,
            setup_s=setup_s,
        )
        self.scheduler.notify_start(job, now)
        self.running[job.job_id] = job
        if job.service_id is not None and self.serving is not None:
            self.serving.on_replica_start(now, job, dict(placement))
        self._apply(
            now,
            job,
            LifecycleState.RUNNING,
            Cause.PLACE,
            Actor.SCHEDULER,
            detail=f"gpus={total} nodes={len(placement)}",
        )

    def set_outcome(self, job: Job, outcome: AttemptOutcome) -> None:
        """Record the planned outcome of the job's current attempt."""
        self.attempt_outcomes[(job.job_id, job.attempts)] = outcome

    def pop_outcome(self, job_id: JobId, attempt: int) -> AttemptOutcome:
        return self.attempt_outcomes.pop((job_id, attempt))

    # -- attempt end --------------------------------------------------------------

    def finish(
        self, now: float, job: Job, outcome: str, category: FailureCategory | None
    ) -> None:
        """Apply the end of a completed attempt (complete/fail/walltime-kill)."""
        self._release(now, job)
        if outcome == "fail":
            assert category is not None
            job.fail(now, category)
            self._apply(
                now,
                job,
                LifecycleState.FAILED,
                Cause.INTRINSIC_FAILURE,
                Actor.SIMULATOR,
                detail=category.value,
            )
        elif outcome == "walltime":
            job.kill(now)
            self._apply(
                now,
                job,
                LifecycleState.KILLED,
                Cause.WALLTIME_LIMIT,
                Actor.SIMULATOR,
                detail="walltime",
            )
        else:
            job.complete(now)
            self._apply(
                now, job, LifecycleState.FINISHED, Cause.COMPLETE, Actor.SIMULATOR
            )
        self.scheduler.notify_finish(job, now)

    def preempt(self, now: float, job: Job) -> None:
        """Gracefully evict a running job (scheduler/quota reclaim)."""
        if job.state is not JobState.RUNNING:
            raise SchedulingError(
                f"scheduler tried to preempt {job.job_id} in state {job.state.value}"
            )
        # Consent is the policy's call: borrowed runs are evictable even
        # though the job itself (guaranteed tier) is not.
        if not self.scheduler.is_preemptible(job):
            raise SchedulingError(f"job {job.job_id} is not preemptible")
        self._release(now, job)
        job.preempt(now, checkpoint_loss=self.checkpoint_loss_s)
        self._apply(now, job, LifecycleState.PREEMPTED, Cause.PREEMPT, Actor.SCHEDULER)
        limit = self.max_job_preemptions
        if limit and job.preemptions > limit:
            job.fail(now, FailureCategory.PREEMPTION_LIMIT)
            self._apply(
                now,
                job,
                LifecycleState.FAILED,
                Cause.PREEMPTION_LIMIT,
                Actor.SIMULATOR,
                detail=FailureCategory.PREEMPTION_LIMIT.value,
            )
            self.scheduler.notify_finish(job, now)
            return
        self.scheduler.enqueue(job, now)

    def kill(
        self,
        now: float,
        job: Job,
        *,
        cause: Cause = Cause.USER_KILL,
        actor: Actor = Actor.USER,
        detail: str = "user",
    ) -> None:
        """Kill a queued or running job (user cancel, replica retirement)."""
        if job.state.terminal:
            return
        if job.state is JobState.RUNNING:
            self._release(now, job)
        else:
            self.scheduler.remove(job.job_id)
        job.kill(now)
        self._apply(now, job, LifecycleState.KILLED, cause, actor, detail=detail)
        self.scheduler.notify_finish(job, now)

    # -- failure domain -----------------------------------------------------------

    def apply_node_failure(
        self, now: float, node_id: NodeId, *, max_restarts: int
    ) -> list[JobId]:
        """Fail a node and evict its jobs; returns the victim ids."""
        victim_ids = sorted(self.cluster.fail_node(node_id))
        for job_id in victim_ids:
            job = self.jobs[job_id]
            if job.state is not JobState.RUNNING:
                continue
            self._release(now, job)
            if job.attempts > max_restarts:
                job.fail(now, FailureCategory.HARDWARE)
                self._apply(
                    now,
                    job,
                    LifecycleState.FAILED,
                    Cause.HARDWARE_FAILURE,
                    Actor.FAILURE_INJECTOR,
                    detail="hardware",
                )
                self.scheduler.notify_finish(job, now)
            else:
                job.requeue(now, work_lost=True)
                self._apply(
                    now,
                    job,
                    LifecycleState.RESTARTING,
                    Cause.NODE_FAILURE,
                    Actor.FAILURE_INJECTOR,
                    detail="node_failure",
                )
                self.scheduler.enqueue(job, now)
        self.metrics.node_failures += 1
        self.metrics.on_healthy_changed(now, self.cluster.healthy_gpus)
        self._record_infra(now, "node_down", node_id)
        return victim_ids

    def apply_node_repair(self, now: float, node_id: NodeId) -> None:
        self.cluster.repair_node(node_id)
        self.metrics.on_healthy_changed(now, self.cluster.healthy_gpus)
        self._record_infra(now, "node_up", node_id)

    # -- internals ----------------------------------------------------------------

    def _release(self, now: float, job: Job) -> None:
        """Free a running job's resources and metrics-account the change."""
        if job.service_id is not None and self.serving is not None:
            self.serving.on_replica_stop(now, job)
        if job.last_start_time is not None:
            self.wall_used[job.job_id] = self.wall_used.get(job.job_id, 0.0) + max(
                0.0, now - job.last_start_time
            )
        allocation = self.cluster.free(job.job_id)
        self.scheduler.placement.on_free(self.cluster, job.job_id, allocation.placement)
        self.running.pop(job.job_id, None)
        self.attempt_outcomes.pop((job.job_id, job.attempts), None)
        self.metrics.on_used_changed(now, self.cluster.used_gpus)

    def _apply(
        self,
        now: float,
        job: Job,
        target: LifecycleState,
        cause: Cause,
        actor: Actor,
        detail: str = "",
    ) -> Transition:
        """The single transition path: validate, log, account, record."""
        transition = self.lifecycles[job.job_id].advance(
            target,
            time=now,
            cause=cause,
            actor=actor,
            attempt=job.attempts,
            detail=detail,
        )
        if job.state is not target.job_state:
            raise SimulationError(
                f"lifecycle desync for {job.job_id}: job is {job.state.value}, "
                f"lifecycle reached {target.value}"
            )
        self.log.append(transition)
        self._account(transition)
        if self.record_timeline:
            self.timeline.append(
                TimelineEvent(now, transition.timeline_kind, job.job_id, detail)
            )
        return transition

    def _account(self, transition: Transition) -> None:
        """Derive churn counters from the transition stream (single source)."""
        target = transition.target
        if target is LifecycleState.PREEMPTED:
            self.metrics.preemptions += 1
        elif target is LifecycleState.RESTARTING:
            self.metrics.job_restarts += 1
        elif target.terminal:
            self._live_jobs -= 1
            if self._live_jobs < 0:
                raise SimulationError(
                    f"live-job counter went negative at {transition.job_id}; "
                    "a terminal transition was double-counted"
                )
            if transition.cause is Cause.REJECT:
                self.metrics.rejected_jobs += 1
            elif transition.cause is Cause.WALLTIME_LIMIT:
                self.metrics.walltime_kills += 1
            self.waiting_on.pop(transition.job_id, None)
            self._on_upstream_terminal(transition)

    def _on_upstream_terminal(self, transition: Transition) -> None:
        """Resolve held downstreams when one of their upstreams ends.

        A FINISHED upstream satisfies the dependency; any other terminal
        outcome (failed, killed, walltime) cascades: the downstream stage
        can never run, so it is killed with ``UPSTREAM_FAILED``, which
        recursively resolves *its* dependents through this same path.
        """
        downstream_ids = self.dependents.pop(transition.job_id, None)
        if not downstream_ids:
            return
        satisfied = transition.target is LifecycleState.FINISHED
        for job_id in downstream_ids:
            unmet = self.waiting_on.get(job_id)
            if unmet is None:
                continue  # already released or killed
            if not satisfied:
                self.kill(
                    transition.time,
                    self.jobs[job_id],
                    cause=Cause.UPSTREAM_FAILED,
                    actor=Actor.SIMULATOR,
                    detail=f"upstream={transition.job_id}",
                )
                continue
            unmet.discard(transition.job_id)
            if not unmet:
                if self.on_deps_ready is not None:
                    self.on_deps_ready(transition.time, job_id)
                else:
                    self.release_deps(transition.time, self.jobs[job_id])

    def _record_infra(self, now: float, kind: str, subject: str) -> None:
        if self.record_timeline:
            self.timeline.append(TimelineEvent(now, kind, subject))
