"""The ``tcloud`` command-line interface.

Subcommands mirror the real tool's workflow against a simulated cluster:

* ``tcloud validate task.yaml`` — schema + semantic validation
* ``tcloud compile task.yaml`` — show the compiled instruction and what a
  (re)submission would upload
* ``tcloud submit task.yaml [--watch]`` — full submission path; ``--watch``
  advances simulated time until completion and prints aggregated logs
* ``tcloud info`` — cluster composition and queue state
* ``tcloud top [--advance H]`` — live operator dashboard
* ``tcloud profiles [--config PATH]`` — list configured cluster profiles
* ``tcloud lint [paths…]`` — simlint invariant analysis (same flags and
  exit codes as ``python -m repro.analysis``)
* ``tcloud experiment [ids…|--all]`` — regenerate study tables/figures
  (same flags and exit codes as ``python -m repro.experiments``,
  including the sweep engine's ``--jobs``/``--cache-dir``/``--no-cache``)
* ``tcloud fed [--sites N] [--policy P]`` — run a federated multi-site
  simulation and print the fleet/per-site goodput report
* ``tcloud demo`` — a scripted multi-job session exercising monitoring,
  preemption and log aggregation

Because each CLI invocation is a fresh process, the simulated cluster
lives for one invocation; the Python API (:class:`~repro.tcloud.client.
TcloudClient`) is the way to drive long-lived sessions.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from ..schema.parser import parse_task_file
from ..schema.taskspec import (
    EnvironmentSpec,
    FileSpec,
    QosSpec,
    ResourceSpec,
    TaskSpec,
)
from ..schema.validate import validate_spec
from ..tcloud.client import TcloudClient
from ..tcloud.config import TcloudConfig
from ..tcloud.frontend import synthesize_workspace


def _print(text: str = "") -> None:
    sys.stdout.write(text + "\n")


def cmd_validate(args: argparse.Namespace) -> int:
    spec = parse_task_file(args.task_file)
    client = TcloudClient(_config(args))
    issues = validate_spec(spec, client.frontend.cluster)
    if not issues:
        _print(f"task {spec.name!r}: OK (fingerprint {spec.fingerprint()[:12]})")
        return 0
    for issue in issues:
        _print(str(issue))
    return 1 if any(issue.severity == "error" for issue in issues) else 0


def cmd_compile(args: argparse.Namespace) -> int:
    spec = parse_task_file(args.task_file)
    client = TcloudClient(_config(args))
    result = client.frontend.compiler.compile(spec, synthesize_workspace(spec))
    instruction = result.instruction
    _print(f"task:        {instruction.task_name}")
    _print(f"runtime:     {instruction.runtime}")
    _print(f"nodes:       {instruction.nnodes}")
    upload = result.upload
    _print(
        f"upload:      {upload.uploaded_bytes}/{upload.total_bytes} bytes "
        f"({upload.hit_rate:.0%} chunk cache hit)"
    )
    _print("--- rank 0 script ---")
    _print(instruction.render_script(rank=0).rstrip())
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    spec = parse_task_file(args.task_file)
    client = TcloudClient(_config(args), profile=args.profile)
    job_id = client.submit(spec)
    status = client.status(job_id)
    _print(f"submitted {job_id} ({spec.name}) → state={status.state}")
    if args.watch:
        status = client.wait(job_id)
        _print(f"finished: {status.oneline()}")
        for node, lines in client.logs(job_id, tail=int(args.tail)).items():
            for line in lines:
                _print(line)
        _print("# lifecycle")
        for transition in client.history(job_id):
            _print(transition.oneline())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    client = TcloudClient(_config(args), profile=args.profile)
    for key, value in client.cluster_info().items():
        _print(f"{key:12s} {value}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from ..ops.dashboard import live_dashboard

    client = TcloudClient(_config(args), profile=args.profile)
    frontend = client.frontend
    if args.advance:
        frontend.advance(float(args.advance) * 3600.0)
    _print(
        live_dashboard(
            frontend.cluster,
            frontend.sim.jobs,
            frontend.now,
            frontend.scheduler.queue_depth,
        ).rstrip()
    )
    return 0


def cmd_profiles(args: argparse.Namespace) -> int:
    config = _config(args)
    for name, profile in sorted(config.profiles.items()):
        marker = "*" if name == config.active else " "
        _print(f"{marker} {name:12s} {profile.endpoint}  user={profile.user} lab={profile.lab}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from ..analysis.__main__ import main as simlint_main

    return simlint_main(list(args.lint_args))


def cmd_experiment(args: argparse.Namespace) -> int:
    from ..experiments.__main__ import main as experiments_main

    return experiments_main(list(args.experiment_args))


#: Site sizes (nodes of 8 GPUs) cycled by ``tcloud fed --sites N`` — a
#: deliberately lopsided fleet so routing has real work to do.
_FED_SITE_NODES = (12, 8, 5, 10, 7, 6)


def cmd_fed(args: argparse.Namespace) -> int:
    from ..federation import FederationSpec, SiteSpec, build_federation
    from ..ops.dashboard import federation_report
    from ..sweep.build import build_trace
    from ..sweep.spec import ClusterSpec, SchedulerSpec, TraceSpec

    num_sites = int(args.sites)
    if num_sites < 1:
        _print("tcloud fed: --sites must be >= 1")
        return 2
    node_counts = [_FED_SITE_NODES[i % len(_FED_SITE_NODES)] for i in range(num_sites)]
    fleet_gpus = sum(count * 8 for count in node_counts)
    trace = build_trace(
        TraceSpec(
            days=float(args.days),
            synth_seed=int(args.seed),
            load=float(args.load),
            load_gpus=fleet_gpus,
        )
    )
    spec = FederationSpec(
        sites=tuple(
            SiteSpec(
                name=f"site-{chr(ord('a') + index)}",
                cluster=ClusterSpec(kind="het", nodes=count),
                seed=index,
            )
            for index, count in enumerate(node_counts)
        ),
        policy=args.policy,
    )
    federation = build_federation(
        spec, trace, default_scheduler=SchedulerSpec("backfill-easy")
    )
    result = federation.run()
    _print(federation_report(result).rstrip())
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    client = TcloudClient(_config(args))
    _print("# tcloud demo: three jobs on the simulated campus cluster")
    code = FileSpec.of_bytes("train.py", b"print('training')\n" * 200)
    specs = [
        TaskSpec(
            name=f"demo-{model}",
            entrypoint="python train.py",
            code_files=(code,),
            environment=EnvironmentSpec(pip_packages=("torch==2.1.0",)),
            resources=ResourceSpec(num_gpus=gpus, walltime_hours=2.0),
            qos=QosSpec(tier=tier),
            model=model,
        )
        for model, gpus, tier in [
            ("resnet50", 1, "guaranteed"),
            ("bert-base", 4, "guaranteed"),
            ("bert-large", 8, "opportunistic"),
        ]
    ]
    job_ids = [client.submit(spec, duration_hint_s=1800.0 * (i + 1)) for i, spec in enumerate(specs)]
    client.advance(900.0)
    _print("\n# status after 15 simulated minutes")
    for status in client.queue():
        _print(status.oneline())
    _print("\n# aggregated logs of the first job")
    for node, lines in client.logs(job_ids[0], tail=3).items():
        for line in lines:
            _print(line)
    _print("\n# lifecycle of the first job so far")
    for transition in client.history(job_ids[0]):
        _print(transition.oneline())
    for job_id in job_ids:
        client.wait(job_id)
    _print("\n# final states")
    for status in client.queue():
        _print(status.oneline())
    return 0


def _config(args: argparse.Namespace) -> TcloudConfig:
    if getattr(args, "config", None):
        return TcloudConfig.load(args.config)
    return TcloudConfig.default()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tcloud", description="Submit and manage ML tasks on a (simulated) TACC cluster."
    )
    parser.add_argument("--config", help="path to a tcloud config JSON", default=None)
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="validate a task file")
    p_validate.add_argument("task_file")
    p_validate.set_defaults(func=cmd_validate)

    p_compile = sub.add_parser("compile", help="compile a task file and show the instruction")
    p_compile.add_argument("task_file")
    p_compile.set_defaults(func=cmd_compile)

    p_submit = sub.add_parser("submit", help="submit a task file")
    p_submit.add_argument("task_file")
    p_submit.add_argument("--profile", default=None)
    p_submit.add_argument("--watch", action="store_true", help="advance sim time until done")
    p_submit.add_argument("--tail", default=5, help="log lines per node with --watch")
    p_submit.set_defaults(func=cmd_submit)

    p_info = sub.add_parser("info", help="show cluster info")
    p_info.add_argument("--profile", default=None)
    p_info.set_defaults(func=cmd_info)

    p_top = sub.add_parser("top", help="live cluster dashboard")
    p_top.add_argument("--profile", default=None)
    p_top.add_argument("--advance", default=0.0, help="advance sim time by N hours first")
    p_top.set_defaults(func=cmd_top)

    p_profiles = sub.add_parser("profiles", help="list cluster profiles")
    p_profiles.set_defaults(func=cmd_profiles)

    p_lint = sub.add_parser(
        "lint", help="run the simlint invariant analyzer (python -m repro.analysis)"
    )
    p_lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="paths and flags forwarded to the analyzer (see its --help)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_experiment = sub.add_parser(
        "experiment",
        help="regenerate study experiments (python -m repro.experiments)",
    )
    p_experiment.add_argument(
        "experiment_args",
        nargs=argparse.REMAINDER,
        help="IDs and flags forwarded to the experiment runner (see its --help)",
    )
    p_experiment.set_defaults(func=cmd_experiment)

    p_fed = sub.add_parser(
        "fed", help="run a federated multi-site simulation and report fleet goodput"
    )
    p_fed.add_argument("--sites", default=3, help="number of federated sites")
    p_fed.add_argument(
        "--policy",
        default="least-queued",
        help="routing policy (home | first-feasible | least-queued | most-free | goodput-aware)",
    )
    p_fed.add_argument("--days", default=3.0, help="trace horizon in days")
    p_fed.add_argument("--load", default=0.85, help="offered load vs fleet capacity")
    p_fed.add_argument("--seed", default=42, help="trace synthesis seed")
    p_fed.set_defaults(func=cmd_fed)

    p_demo = sub.add_parser("demo", help="run a scripted demo session")
    p_demo.set_defaults(func=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # argparse's REMAINDER does not capture leading options ("tcloud lint
    # --list-rules"), so the lint verb forwards its argv wholesale.
    if argv and argv[0] == "lint":
        from ..analysis.__main__ import main as simlint_main

        return simlint_main(argv[1:])
    if argv and argv[0] == "experiment":
        from ..experiments.__main__ import main as experiments_main

        return experiments_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        sys.stderr.write(f"tcloud: error: {exc}\n")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
