"""The tcloud client: the user-side half of the serverless experience.

:class:`TcloudClient` resolves a profile to a frontend session and exposes
the verbs users type: ``submit``, ``status``, ``logs``, ``kill``, ``wait``.
For ``sim://`` endpoints (everything in this repository) sessions are local
:class:`~repro.tcloud.frontend.TaccFrontend` instances, one per endpoint,
shared across clients in the process — so two clients pointed at the same
profile observe the same cluster, which is how the multi-user examples
work.
"""

from __future__ import annotations

from ..controlplane.lifecycle import Transition
from ..errors import ConfigError
from ..ids import JobId
from ..schema.parser import parse_task_file, parse_task_text
from ..schema.taskspec import TaskSpec
from ..tcloud.config import ClusterProfile, TcloudConfig
from ..tcloud.frontend import JobStatus, TaccFrontend

#: Process-local registry of live simulated clusters, keyed by endpoint.
_SESSIONS: dict[str, TaccFrontend] = {}


def session_for(endpoint: str) -> TaccFrontend:
    """The shared frontend session for a ``sim://`` endpoint."""
    scheme = endpoint.split("://", 1)[0]
    if scheme != "sim":
        raise ConfigError(
            f"only sim:// endpoints are supported in this build, got {endpoint!r}"
        )
    if endpoint not in _SESSIONS:
        _SESSIONS[endpoint] = TaccFrontend()
    return _SESSIONS[endpoint]


def reset_sessions() -> None:
    """Drop all shared sessions (tests and example isolation)."""
    _SESSIONS.clear()


class TcloudClient:
    """User-facing client bound to one profile."""

    def __init__(
        self,
        config: TcloudConfig | None = None,
        profile: str | None = None,
        frontend: TaccFrontend | None = None,
    ) -> None:
        self.config = config or TcloudConfig.default()
        self.profile: ClusterProfile = self.config.get(profile)
        self.frontend = frontend or session_for(self.profile.endpoint)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        spec: TaskSpec,
        workspace: dict[str, bytes] | None = None,
        duration_hint_s: float | None = None,
    ) -> JobId:
        """Submit a task spec under this profile's identity."""
        job_id, _compile, _warnings = self.frontend.submit(
            spec,
            workspace=workspace,
            user=self.profile.user,
            lab=self.profile.lab,
            duration_hint_s=duration_hint_s,
        )
        return job_id

    def submit_file(self, path: str, **kwargs) -> JobId:
        return self.submit(parse_task_file(path), **kwargs)

    def submit_text(self, text: str, **kwargs) -> JobId:
        return self.submit(parse_task_text(text), **kwargs)

    # -- observation -----------------------------------------------------------------

    def status(self, job_id: JobId) -> JobStatus:
        return self.frontend.status(job_id)

    def logs(self, job_id: JobId, tail: int = 5) -> dict[str, list[str]]:
        return self.frontend.logs(job_id, tail=tail)

    def history(self, job_id: JobId) -> list[Transition]:
        """The job's typed lifecycle history (control-plane transition log)."""
        return self.frontend.history(job_id)

    def queue(self) -> list[JobStatus]:
        return self.frontend.list_jobs()

    def cluster_info(self) -> dict[str, object]:
        return self.frontend.cluster_info()

    # -- control ------------------------------------------------------------------------

    def kill(self, job_id: JobId) -> JobStatus:
        return self.frontend.kill(job_id)

    def advance(self, seconds: float) -> None:
        """Advance the simulated cluster's clock (sim:// only)."""
        self.frontend.advance(seconds)

    def wait(self, job_id: JobId, max_seconds: float = 30 * 86400.0) -> JobStatus:
        """Advance time until the job terminates; returns its final status."""
        return self.frontend.advance_until_done(job_id, max_seconds=max_seconds)
