"""tcloud configuration: cluster profiles.

``tcloud`` can target several cluster instances; users switch by changing
one line — the active profile.  Profiles live in a JSON config file
(default ``~/.tcloud/config.json``) and carry the connection endpoint plus
per-profile identity defaults.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import ConfigError

DEFAULT_CONFIG_PATH = Path.home() / ".tcloud" / "config.json"


@dataclass(frozen=True)
class ClusterProfile:
    """One cluster a user can submit to."""

    name: str
    endpoint: str = "sim://tacc-campus"
    user: str = "user-00"
    lab: str = "lab-00"
    default_partition: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("profile name must be non-empty")
        if "://" not in self.endpoint:
            raise ConfigError(
                f"profile {self.name}: endpoint must look like 'scheme://host', "
                f"got {self.endpoint!r}"
            )

    @property
    def scheme(self) -> str:
        return self.endpoint.split("://", 1)[0]


@dataclass
class TcloudConfig:
    """The user's full tcloud configuration."""

    profiles: dict[str, ClusterProfile] = field(default_factory=dict)
    active: str | None = None

    def add(self, profile: ClusterProfile, activate: bool = False) -> None:
        self.profiles[profile.name] = profile
        if activate or self.active is None:
            self.active = profile.name

    def get(self, name: str | None = None) -> ClusterProfile:
        """The named profile, or the active one when *name* is None."""
        key = name or self.active
        if key is None:
            raise ConfigError("no active tcloud profile; add one with 'tcloud profiles add'")
        try:
            return self.profiles[key]
        except KeyError:
            raise ConfigError(
                f"unknown profile {key!r}; known: {sorted(self.profiles)}"
            ) from None

    def switch(self, name: str) -> None:
        self.get(name)  # validate
        self.active = name

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path = DEFAULT_CONFIG_PATH) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "active": self.active,
            "profiles": {name: asdict(profile) for name, profile in self.profiles.items()},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path = DEFAULT_CONFIG_PATH) -> "TcloudConfig":
        path = Path(path)
        if not path.exists():
            return cls.default()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"tcloud config {path} is not valid JSON: {exc}") from exc
        config = cls()
        for name, raw in payload.get("profiles", {}).items():
            config.profiles[name] = ClusterProfile(**raw)
        config.active = payload.get("active")
        if config.active is not None and config.active not in config.profiles:
            raise ConfigError(
                f"tcloud config {path}: active profile {config.active!r} is not defined"
            )
        return config

    @classmethod
    def default(cls) -> "TcloudConfig":
        """The out-of-the-box config: one simulated campus cluster."""
        config = cls()
        config.add(ClusterProfile(name="campus"), activate=True)
        return config
