"""Multi-cluster federation: route submissions across cluster instances.

``tcloud`` can target different cluster instances of the platform by
changing one configuration line; this module automates the choice.  A
:class:`FederatedClient` holds one client per profile and routes each
submission by a pluggable policy:

* ``least-queued`` — the cluster whose pending queue is shallowest
  relative to its size (the default; what users do by hand);
* ``most-free`` — the cluster with the most free GPUs right now;
* ``first-feasible`` — the first cluster (in profile order) whose
  hardware can satisfy the request at all — useful when only one site
  has A100s.

Infeasible clusters (validation fails: missing GPU type, oversized
request) are always excluded before the policy ranks the rest.  The
router remembers where each job landed, so ``status``/``logs``/``wait``
proxy transparently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controlplane.lifecycle import Transition
from ..errors import ConfigError, SchemaError, SimulationError
from ..ids import JobId
from ..schema.taskspec import TaskSpec
from ..schema.validate import validate_spec
from .client import TcloudClient
from .config import TcloudConfig
from .frontend import JobStatus

ROUTING_POLICIES = ("least-queued", "most-free", "first-feasible")


@dataclass(frozen=True)
class RoutingDecision:
    """Where a submission went, and why."""

    profile: str
    reason: str
    considered: tuple[str, ...]
    excluded: tuple[str, ...]


class FederatedClient:
    """Submits to the best of several cluster instances."""

    def __init__(
        self,
        config: TcloudConfig,
        profiles: list[str] | None = None,
        policy: str = "least-queued",
        frontends: dict[str, "object"] | None = None,
    ) -> None:
        """Build one client per profile.

        ``frontends`` optionally injects a pre-built frontend per profile
        (heterogeneous simulated sites); otherwise each profile's endpoint
        resolves through the ordinary shared-session mechanism — give the
        profiles distinct ``sim://`` endpoints or they will share one
        cluster.
        """
        if policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {policy!r}; known: {list(ROUTING_POLICIES)}"
            )
        names = profiles or sorted(config.profiles)
        if not names:
            raise ConfigError("federation needs at least one profile")
        self.policy = policy
        frontends = frontends or {}
        self.clients: dict[str, TcloudClient] = {
            name: TcloudClient(config, profile=name, frontend=frontends.get(name))
            for name in names
        }
        self._home_of: dict[JobId, str] = {}

    # -- routing -----------------------------------------------------------------

    def _feasible(self, spec: TaskSpec) -> tuple[list[str], list[str]]:
        feasible, excluded = [], []
        for name, client in self.clients.items():
            issues = validate_spec(spec, client.frontend.cluster)
            if any(issue.severity == "error" for issue in issues):
                excluded.append(name)
            else:
                feasible.append(name)
        return feasible, excluded

    def route(self, spec: TaskSpec) -> RoutingDecision:
        """Pick the destination cluster for *spec* without submitting."""
        feasible, excluded = self._feasible(spec)
        if not feasible:
            raise SchemaError(
                f"task {spec.name!r} is infeasible on every federated cluster "
                f"({sorted(self.clients)})"
            )
        # Ties break by profile order (the order clients were declared),
        # never by name sort — so routing is deterministic and matches the
        # "first feasible" intuition across all policies.
        order = {name: index for index, name in enumerate(self.clients)}
        if self.policy == "first-feasible":
            chosen, reason = feasible[0], "first feasible in profile order"
        elif self.policy == "most-free":
            chosen = min(
                feasible,
                key=lambda name: (
                    -self.clients[name].frontend.cluster.free_gpus,
                    order[name],
                ),
            )
            free = self.clients[chosen].frontend.cluster.free_gpus
            reason = f"most free GPUs ({free})"
        else:  # least-queued
            def pressure(name: str) -> float:
                frontend = self.clients[name].frontend
                return frontend.scheduler.queue_depth / max(1, frontend.cluster.total_gpus)

            chosen = min(feasible, key=lambda name: (pressure(name), order[name]))
            reason = f"lowest queue pressure ({pressure(chosen):.3f} jobs/GPU)"
        return RoutingDecision(
            profile=chosen,
            reason=reason,
            considered=tuple(feasible),
            excluded=tuple(excluded),
        )

    # -- verbs (proxying) ------------------------------------------------------------

    def submit(self, spec: TaskSpec, **kwargs) -> tuple[JobId, RoutingDecision]:
        decision = self.route(spec)
        job_id = self.clients[decision.profile].submit(spec, **kwargs)
        federated_id = f"{decision.profile}/{job_id}"
        self._home_of[federated_id] = decision.profile
        return federated_id, decision

    def _resolve(self, federated_id: JobId) -> tuple[TcloudClient, JobId]:
        home = self._home_of.get(federated_id)
        if home is None:
            raise SimulationError(f"unknown federated job {federated_id}")
        return self.clients[home], federated_id.split("/", 1)[1]

    def status(self, federated_id: JobId) -> JobStatus:
        client, job_id = self._resolve(federated_id)
        return client.status(job_id)

    def logs(self, federated_id: JobId, tail: int = 5) -> dict[str, list[str]]:
        client, job_id = self._resolve(federated_id)
        return client.logs(job_id, tail=tail)

    def history(self, federated_id: JobId) -> list[Transition]:
        client, job_id = self._resolve(federated_id)
        return client.history(job_id)

    def kill(self, federated_id: JobId) -> JobStatus:
        client, job_id = self._resolve(federated_id)
        return client.kill(job_id)

    def wait(self, federated_id: JobId, **kwargs) -> JobStatus:
        client, job_id = self._resolve(federated_id)
        return client.wait(job_id, **kwargs)

    def advance_all(self, seconds: float) -> None:
        """Advance simulated time on every federated cluster."""
        for client in self.clients.values():
            client.advance(seconds)

    def cluster_info(self) -> dict[str, dict[str, object]]:
        return {name: client.cluster_info() for name, client in self.clients.items()}
