"""tcloud: the user-side CLI/client and the simulated cluster frontend."""

from .client import TcloudClient, reset_sessions, session_for
from .config import DEFAULT_CONFIG_PATH, ClusterProfile, TcloudConfig
from .federation import ROUTING_POLICIES, FederatedClient, RoutingDecision
from .frontend import JobStatus, TaccFrontend, synthesize_workspace

__all__ = [
    "DEFAULT_CONFIG_PATH",
    "ClusterProfile",
    "FederatedClient",
    "ROUTING_POLICIES",
    "RoutingDecision",
    "JobStatus",
    "TaccFrontend",
    "TcloudClient",
    "TcloudConfig",
    "reset_sessions",
    "session_for",
    "synthesize_workspace",
]
