"""The cluster frontend ``tcloud`` talks to (simulated end to end).

:class:`TaccFrontend` is the server-side composition of the whole 4-layer
stack: submissions pass through the **schema** layer (validation), the
**compiler** layer (instruction + delta upload), and enter the
**scheduling** layer inside a live :class:`~repro.sim.simulator.
ClusterSimulator`; the **execution** layer's models stretch their runtime
by placement and hardware.  Time is simulated — callers advance it
explicitly with :meth:`advance`, which is what gives the CLI a serverless
feel: submit, advance, observe.

Log output is synthesized deterministically from job progress, one stream
per node, so `tcloud logs` can demonstrate distributed log aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import Cluster, build_tacc_cluster
from ..compiler.cache import ChunkStore
from ..controlplane.lifecycle import Transition
from ..compiler.compiler import CompileResult, TaskCompiler
from ..errors import SimulationError, ValidationError
from ..execlayer.speedup import ExecutionModel
from ..ids import IdFactory, JobId
from ..schema.taskspec import TaskSpec
from ..schema.validate import ValidationIssue, ensure_valid
from ..sched.backfill import EasyBackfillScheduler
from ..sched.base import Scheduler
from ..sim.simulator import ClusterSimulator, SimConfig
from ..workload.job import Job, JobState
from ..workload.trace import Trace


@dataclass(frozen=True)
class JobStatus:
    """One job's externally visible status."""

    job_id: JobId
    name: str
    state: str
    queue_position: int | None
    nodes: tuple[str, ...]
    submitted_at: float
    wait_s: float | None
    progress: float  # fraction of work done, 0..1
    preemptions: int

    def oneline(self) -> str:
        nodes = ",".join(self.nodes) if self.nodes else "-"
        return (
            f"{self.job_id}  {self.name:20s} {self.state:9s} "
            f"progress={self.progress:5.1%} nodes={nodes}"
        )


@dataclass
class _Submission:
    spec: TaskSpec
    compile_result: CompileResult
    job: Job
    warnings: list[ValidationIssue] = field(default_factory=list)


class TaccFrontend:
    """Simulated cluster frontend: submit / advance / observe / kill."""

    def __init__(
        self,
        cluster: Cluster | None = None,
        scheduler: Scheduler | None = None,
        sim_config: SimConfig | None = None,
    ) -> None:
        self.cluster = cluster or build_tacc_cluster()
        self.scheduler = scheduler or EasyBackfillScheduler()
        self.store = ChunkStore()
        self.compiler = TaskCompiler(self.store)
        self.sim = ClusterSimulator(
            self.cluster,
            self.scheduler,
            Trace([], name="live"),
            exec_model=ExecutionModel(),
            config=sim_config or SimConfig(sample_interval_s=0.0, provisioning=True),
        )
        self._ids = IdFactory("job")
        self._submissions: dict[JobId, _Submission] = {}

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.engine.now

    def advance(self, seconds: float) -> None:
        """Advance simulated time by *seconds*, processing due events."""
        if seconds < 0:
            raise ValidationError(f"cannot advance by negative time: {seconds}")
        self.sim.engine.run(until=self.now + seconds)

    def advance_until_done(self, job_id: JobId, max_seconds: float = 30 * 86400.0) -> JobStatus:
        """Advance until *job_id* reaches a terminal state (or the cap)."""
        job = self._job(job_id)
        deadline = self.now + max_seconds
        while not job.state.terminal and self.now < deadline:
            next_time = self.sim.engine.peek_time()
            if next_time is None:
                break
            self.sim.engine.run(until=min(next_time, deadline))
        return self.status(job_id)

    # -- submission -----------------------------------------------------------------

    def submit(
        self,
        spec: TaskSpec,
        workspace: dict[str, bytes] | None = None,
        user: str = "user-00",
        lab: str = "lab-00",
        duration_hint_s: float | None = None,
    ) -> tuple[JobId, CompileResult, list[ValidationIssue]]:
        """Run the full submission path; returns (job id, compile result, warnings).

        ``duration_hint_s`` is the job's *true* runtime in the simulated
        world (unknown to the scheduler, which only sees the wall-time
        limit); it defaults to 40% of the requested wall time.
        """
        warnings = ensure_valid(spec, self.cluster)
        if workspace is None:
            workspace = synthesize_workspace(spec)
        compile_result = self.compiler.compile(spec, workspace)
        duration = duration_hint_s or spec.resources.walltime_hours * 3600.0 * 0.4
        job = Job(
            job_id=self._ids.next(),
            user_id=user,
            lab_id=lab,
            request=spec.resources.to_request(),
            submit_time=self.now,
            duration=duration,
            tier=spec.qos.job_tier,
            walltime_estimate=spec.resources.walltime_hours * 3600.0,
            preemptible=spec.qos.preemptible,
            model_name=spec.model,
            name=spec.name,
        )
        self.sim.submit_job(job)
        self._submissions[job.job_id] = _Submission(
            spec=spec, compile_result=compile_result, job=job, warnings=warnings
        )
        self.advance(0.0)  # let the arrival + scheduling pass run
        return job.job_id, compile_result, warnings

    # -- observation ---------------------------------------------------------------------

    def _job(self, job_id: JobId) -> Job:
        submission = self._submissions.get(job_id)
        if submission is None:
            raise SimulationError(f"unknown job {job_id}")
        return submission.job

    def status(self, job_id: JobId) -> JobStatus:
        job = self._job(job_id)
        queue_position: int | None = None
        if job.state is JobState.QUEUED:
            queued = sorted(self.scheduler.queue, key=lambda j: (j.submit_time, j.job_id))
            ids = [j.job_id for j in queued]
            queue_position = ids.index(job.job_id) + 1 if job.job_id in ids else None
        progress = job.work_done / job.duration if job.duration else 0.0
        if job.state is JobState.RUNNING and job.last_start_time is not None:
            live = (self.now - job.last_start_time) / job.current_slowdown
            progress = min(1.0, (job.work_done + live) / job.duration)
        return JobStatus(
            job_id=job.job_id,
            name=job.name,
            state=job.state.value,
            queue_position=queue_position,
            nodes=job.current_nodes,
            submitted_at=job.submit_time,
            wait_s=job.wait_time,
            progress=progress,
            preemptions=job.preemptions,
        )

    def list_jobs(self) -> list[JobStatus]:
        return [self.status(job_id) for job_id in sorted(self._submissions)]

    def logs(self, job_id: JobId, tail: int = 5) -> dict[str, list[str]]:
        """Aggregated per-node logs (synthesized from real progress).

        Returns ``{node_id: lines}`` — the distributed-monitoring feature:
        one call gathers every rank's output.
        """
        job = self._job(job_id)
        status = self.status(job_id)
        nodes = job.current_nodes or job.last_nodes
        if not nodes and not job.first_start_time:
            nodes = ("(not started)",)
        total_steps = 1000
        done_steps = int(status.progress * total_steps)
        streams: dict[str, list[str]] = {}
        for rank, node in enumerate(nodes):
            lines = [f"[{node}] rank {rank}/{len(nodes)} joined rendezvous"]
            first = max(0, done_steps - tail + 1)
            for step in range(first, done_steps + 1):
                loss = 2.5 * (1.0 + step) ** -0.35  # deterministic decay curve
                lines.append(f"[{node}] step {step}/{total_steps} loss={loss:.4f}")
            streams[node] = lines
        if job.state.terminal:
            marker = f"[frontend] job {job.job_id} {job.state.value}"
            streams.setdefault("frontend", []).append(marker)
        return streams

    def history(self, job_id: JobId) -> list[Transition]:
        """The job's full lifecycle history from the control plane's log.

        Every transition carries its cause, the actor that requested it,
        and the simulated timestamp — ``tcloud``'s answer to "what
        happened to my job?" without grepping scheduler logs.
        """
        self._job(job_id)
        return self.sim.controller.log.for_job(job_id)

    def kill(self, job_id: JobId) -> JobStatus:
        self._job(job_id)  # raise on unknown ids before touching the sim
        self.sim.kill_job(job_id)
        return self.status(job_id)

    def cluster_info(self) -> dict[str, object]:
        return {
            "name": self.cluster.name,
            "nodes": len(self.cluster.nodes),
            "total_gpus": self.cluster.total_gpus,
            "free_gpus": self.cluster.free_gpus,
            "gpu_census": self.cluster.gpu_census(),
            "scheduler": self.scheduler.name,
            "queue_depth": self.scheduler.queue_depth,
            "sim_time_h": self.now / 3600.0,
        }


def synthesize_workspace(spec: TaskSpec) -> dict[str, bytes]:
    """Deterministic placeholder content for a spec's declared code files.

    Used when the caller has no real files (simulated submissions); content
    is a repeatable function of path and declared size so cache behaviour
    is realistic across resubmissions.
    """
    workspace: dict[str, bytes] = {}
    for file_spec in spec.code_files:
        seed_line = f"# {file_spec.path} ({file_spec.sha256[:8]})\n".encode()
        filler = seed_line * (file_spec.size_bytes // len(seed_line) + 1)
        workspace[file_spec.path] = filler[: file_spec.size_bytes]
    return workspace
