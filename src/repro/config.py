"""Configuration utilities shared across subsystems.

The library's configuration objects are frozen dataclasses.  This module
provides generic dict/JSON round-tripping so configs can be stored alongside
experiment outputs (provenance) and reloaded exactly, plus small validation
helpers used by many config constructors.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Type, TypeVar

from .errors import ConfigError

T = TypeVar("T")


def config_to_dict(config: Any) -> dict[str, Any]:
    """Recursively convert a dataclass config to plain JSON-able types."""
    if not dataclasses.is_dataclass(config):
        raise ConfigError(f"expected a dataclass, got {type(config).__name__}")
    return _to_jsonable(config)


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return value


def config_from_dict(cls: Type[T], data: dict[str, Any]) -> T:
    """Rebuild a dataclass config from :func:`config_to_dict` output.

    Nested dataclasses, enums, lists and tuples of dataclasses are restored
    based on the type annotations of *cls*.  Unknown keys raise
    :class:`ConfigError` so typos in stored configs fail loudly.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigError(f"expected a dataclass type, got {cls!r}")
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ConfigError(
            f"unknown keys for {cls.__name__}: {sorted(unknown)}"
        )
    kwargs: dict[str, Any] = {}
    for name, raw in data.items():
        kwargs[name] = _from_jsonable(field_map[name].type, raw, cls)
    return cls(**kwargs)


def _from_jsonable(annotation: Any, raw: Any, owner: type) -> Any:
    # Annotations may be strings under `from __future__ import annotations`.
    if isinstance(annotation, str):
        annotation = _resolve_annotation(annotation, owner)
    origin = getattr(annotation, "__origin__", None)
    if origin in (list, tuple) and isinstance(raw, list):
        (item_type, *_rest) = getattr(annotation, "__args__", (Any,))
        items = [_from_jsonable(item_type, item, owner) for item in raw]
        return tuple(items) if origin is tuple else items
    if origin is dict and isinstance(raw, dict):
        _key_type, value_type = getattr(annotation, "__args__", (Any, Any))
        return {k: _from_jsonable(value_type, v, owner) for k, v in raw.items()}
    if isinstance(annotation, type):
        if dataclasses.is_dataclass(annotation) and isinstance(raw, dict):
            return config_from_dict(annotation, raw)
        if issubclass(annotation, enum.Enum):
            return annotation(raw)
    return raw


def _resolve_annotation(annotation: str, owner: type) -> Any:
    import sys
    import typing

    module = sys.modules.get(owner.__module__)
    namespace = dict(vars(typing))
    if module is not None:
        namespace.update(vars(module))
    try:
        return eval(annotation, namespace)  # noqa: S307 - controlled input
    except Exception:  # simlint: disable=R8
        # Deliberate degradation: annotations that can't be evaluated in the
        # owner module's namespace fall back to Any rather than failing load.
        return Any


def save_config(config: Any, path: str | Path) -> None:
    """Write a dataclass config as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(config_to_dict(config), indent=2, sort_keys=True) + "\n"
    )


def load_config(cls: Type[T], path: str | Path) -> T:
    """Load a dataclass config previously written by :func:`save_config`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"config file {path} is not valid JSON: {exc}") from exc
    return config_from_dict(cls, data)


def require_positive(name: str, value: float) -> None:
    """Raise :class:`ConfigError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value}")


def require_non_negative(name: str, value: float) -> None:
    """Raise :class:`ConfigError` unless ``value >= 0``."""
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value}")


def require_fraction(name: str, value: float) -> None:
    """Raise :class:`ConfigError` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value}")
