"""Cross-cluster routing policies for the federated simulator.

A policy maps an arriving job to the index of the site that should
receive it, or ``None`` when no site could *ever* run it (the federation
then submits to the first site, whose admission path rejects it with the
ordinary bookkeeping — the job shows up as rejected, not silently lost).

Every policy is a pure function of current site state and breaks ties by
declaration order, so routing is deterministic for a fixed site list.
Feasibility uses the sites' memoized static-feasibility probe — the same
verdict their own admission applies — so a policy never routes a job to
a site that would reject it while a runnable site exists.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..sim.simulator import ClusterSimulator
from ..workload.job import Job


class RoutableSite(Protocol):
    """What a routing policy may observe about a site (read-only)."""

    @property
    def name(self) -> str: ...

    @property
    def sim(self) -> ClusterSimulator: ...


RoutingPolicy = Callable[[Sequence[RoutableSite], Job], "int | None"]


def _feasible(sites: Sequence[RoutableSite], job: Job) -> list[int]:
    return [
        index
        for index, site in enumerate(sites)
        if site.sim.statically_feasible(job)
    ]


def route_home(sites: Sequence[RoutableSite], job: Job) -> int | None:
    """Degenerate baseline: everything to the first site, feasible or not.

    Models a fleet without federation — remote sites exist (and count in
    the fleet's total GPU-time) but receive nothing.  The gap between
    this and any real policy is the goodput the federation recovers.
    """
    return 0


def route_first_feasible(sites: Sequence[RoutableSite], job: Job) -> int | None:
    """First site in declaration order whose hardware can run the job."""
    feasible = _feasible(sites, job)
    return feasible[0] if feasible else None


def route_least_queued(sites: Sequence[RoutableSite], job: Job) -> int | None:
    """Feasible site with the shallowest queue relative to its size."""
    feasible = _feasible(sites, job)
    if not feasible:
        return None
    return min(
        feasible,
        key=lambda index: (
            sites[index].sim.scheduler.queue_depth
            / max(1, sites[index].sim.cluster.total_gpus),
            index,
        ),
    )


def route_most_free(sites: Sequence[RoutableSite], job: Job) -> int | None:
    """Feasible site with the most free healthy GPUs right now."""
    feasible = _feasible(sites, job)
    if not feasible:
        return None
    return min(
        feasible,
        key=lambda index: (-sites[index].sim.cluster.free_gpus, index),
    )


def route_goodput_aware(sites: Sequence[RoutableSite], job: Job) -> int | None:
    """Feasible site with the lowest committed load per healthy GPU.

    Commitment counts GPUs in use *plus* the GPU demand already queued —
    the capacity this job would compete with — normalised by healthy
    capacity, so a small healthy site is not mistaken for an idle one and
    a degraded site (failures pending repair) is discounted.  This is the
    routing analogue of maximising the fleet's efficiency factor:
    spreading committed load keeps every site's served/healthy ratio up
    without stacking queues anywhere.
    """
    feasible = _feasible(sites, job)
    if not feasible:
        return None

    def committed_per_healthy(index: int) -> float:
        sim = sites[index].sim
        queued_demand = sum(queued.num_gpus for queued in sim.scheduler.queue)
        committed = sim.cluster.used_gpus + queued_demand + job.num_gpus
        return committed / max(1, sim.cluster.healthy_gpus)

    return min(feasible, key=lambda index: (committed_per_healthy(index), index))


#: Registry keyed by the policy names :class:`~repro.federation.spec.
#: FederationSpec` accepts.
ROUTING_POLICIES: dict[str, RoutingPolicy] = {
    "home": route_home,
    "first-feasible": route_first_feasible,
    "least-queued": route_least_queued,
    "most-free": route_most_free,
    "goodput-aware": route_goodput_aware,
}
