"""The federated event loop: N sites in deterministic lockstep.

:class:`FederationSimulator` owns a list of per-site
:class:`~repro.sim.simulator.ClusterSimulator` instances and one global
clock.  Each step advances to the earliest pending moment across the
fleet — the next trace arrival, the next event of any site's engine, or
the next federation tick — and advances every site's engine to exactly
that time, in declaration order.  Because each site is itself
deterministic and the federation's own decisions (routing, migration,
elastic growth) are pure functions of site state with declaration-order
tie-breaks, a federated run is bit-reproducible end to end.

Cross-cluster moves are checkpoint-and-migrate: the source incarnation
is killed with ``Cause.MIGRATE`` (a *shell* — excluded from the merged
job population, its retained progress re-credited at the fleet level),
and a :meth:`~repro.workload.job.Job.checkpoint_clone` is submitted to
the target with a WAN-transfer delay and a restore-work cost, both
modelled, both non-productive in the goodput decomposition.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..controlplane.lifecycle import Actor, Cause
from ..errors import ConfigError, SimulationError
from ..ids import JobId
from ..sim.metrics import GoodputMetrics, MetricsCollector, SimMetrics, summarize
from ..sim.simulator import ClusterSimulator, SimulationResult
from ..workload.job import Job
from ..workload.trace import Trace
from .routing import ROUTING_POLICIES, RoutingPolicy


@dataclass(frozen=True)
class MigrationEvent:
    """One checkpoint-and-migrate move between sites."""

    time: float
    job_id: JobId  # id of the killed source incarnation
    clone_id: JobId  # id of the incarnation submitted to the target
    source: str
    target: str
    transfer_s: float
    was_running: bool  # True for elastic-growth moves of running jobs


@dataclass(frozen=True)
class SiteResult:
    """One site's outcome within a federated run."""

    name: str
    result: SimulationResult
    routed_jobs: int

    @property
    def metrics(self) -> SimMetrics:
        return self.result.metrics


@dataclass
class FederationResult:
    """Everything a federated run produced.

    ``metrics`` is the fleet-level merge: exact GPU-second integrals
    summed across sites at the common horizon, job population merged with
    migration shells removed, and the goodput decomposition re-credited
    with the shells' retained progress — so fleet ``productive`` equals
    the sum of site ``productive`` plus ``migrated_shell_gpu_hours``
    exactly, and the availability × efficiency × productive-share
    identity holds at both levels.
    """

    sites: list[SiteResult]
    metrics: SimMetrics
    end_time: float
    #: Fleet job population: every trace job's *final* incarnation (plus
    #: serving replicas), migration shells excluded.
    jobs: dict[JobId, Job] = field(default_factory=dict)
    migrations: list[MigrationEvent] = field(default_factory=list)
    migrated_shell_gpu_hours: float = 0.0
    routed: dict[str, int] = field(default_factory=dict)

    @property
    def goodput(self) -> GoodputMetrics:
        assert self.metrics.goodput is not None  # always set by the merge
        return self.metrics.goodput

    def summary(self) -> dict[str, float]:
        row = self.metrics.as_row()
        row.update(self.goodput.as_row())
        row["migrations"] = float(len(self.migrations))
        row["events"] = float(
            sum(site.result.events_processed for site in self.sites)
        )
        return row


class FederationSite:
    """A named site: one :class:`ClusterSimulator` inside the federation."""

    __slots__ = ("name", "sim", "routed_jobs")

    def __init__(self, name: str, sim: ClusterSimulator) -> None:
        self.name = name
        self.sim = sim
        self.routed_jobs = 0


class FederationSimulator:
    """Replays one trace across several sites under a routing policy."""

    def __init__(
        self,
        trace: Trace,
        sites: list[tuple[str, ClusterSimulator]],
        *,
        policy: str = "least-queued",
        tick_s: float = 1800.0,
        migrate_after_wait_s: float = 7200.0,
        wan_gbps: float = 10.0,
        checkpoint_gb_per_gpu: float = 2.0,
        restore_s: float = 120.0,
        elastic_growth: bool = True,
        elastic_cooldown_s: float = 21600.0,
        max_migrations_per_job: int = 2,
    ) -> None:
        if not sites:
            raise ConfigError("a federation needs at least one site")
        names = [name for name, _sim in sites]
        if len(set(names)) != len(names):
            raise ConfigError(f"federation site names must be unique: {names}")
        sims = [sim for _name, sim in sites]
        if len(set(map(id, sims))) != len(sims):
            raise ConfigError("each federation site needs its own simulator")
        try:
            self._policy_fn: RoutingPolicy = ROUTING_POLICIES[policy]
        except KeyError:
            raise ConfigError(
                f"unknown routing policy {policy!r}; known: {sorted(ROUTING_POLICIES)}"
            ) from None
        self.trace = trace
        self.policy = policy
        self.sites = [FederationSite(name, sim) for name, sim in sites]
        self.tick_s = tick_s
        self.migrate_after_wait_s = migrate_after_wait_s
        self.wan_gbps = wan_gbps
        self.checkpoint_gb_per_gpu = checkpoint_gb_per_gpu
        self.restore_s = restore_s
        self.elastic_growth = elastic_growth
        self.elastic_cooldown_s = elastic_cooldown_s
        self.max_migrations_per_job = max_migrations_per_job
        self.migrations: list[MigrationEvent] = []
        #: Killed source incarnations whose checkpoints survived the move;
        #: their retained progress is re-credited at the fleet level.
        self._shells: list[Job] = []
        self._migration_count: dict[JobId, int] = {}
        self._last_move: dict[JobId, float] = {}
        self._ran = False

    # -- the lockstep loop ---------------------------------------------------------

    def run(self) -> FederationResult:
        """Drive every site to global quiescence and merge the results."""
        if self._ran:
            raise SimulationError("a FederationSimulator can only run once")
        self._ran = True
        arrivals = list(self.trace)
        index = 0
        next_tick = self.tick_s if self.tick_s > 0 else None
        while True:
            times: list[float] = []
            if index < len(arrivals):
                times.append(arrivals[index].submit_time)
            pending_events = False
            for site in self.sites:
                head = site.sim.engine.peek_time()
                if head is not None:
                    pending_events = True
                    times.append(head)
            if next_tick is not None and (pending_events or index < len(arrivals)):
                times.append(next_tick)
            if not times:
                break
            now = min(times)
            # Advance every site to exactly `now`, declaration order.
            for site in self.sites:
                site.sim.engine.run(until=now)
            while index < len(arrivals) and arrivals[index].submit_time <= now:
                self._route(arrivals[index])
                index += 1
            if next_tick is not None and now >= next_tick:
                self._migration_pass(now)
                if self.elastic_growth:
                    self._elastic_pass(now)
                next_tick = now + self.tick_s
            # Early quiescence: all arrivals routed and every job settled.
            # What remains pending is pre-sampled failure/repair chains on
            # an empty fleet — running them out would stretch the horizon
            # (and the goodput denominator) by idle hours that carry no
            # information about the workload.
            if index >= len(arrivals) and self._quiescent():
                break
        return self._finalize()

    def _quiescent(self) -> bool:
        """No site has live work: nothing running, queued, or in flight.

        The in-flight check (non-terminal jobs) catches migration clones
        whose WAN transfer has not landed yet — their ``JobArrival`` is
        pending but they are in no queue.  Cheap checks first: the job
        scan only runs when every queue is already empty.
        """
        for site in self.sites:
            if site.sim.running or site.sim.scheduler.queue_depth:
                return False
        for site in self.sites:
            for job in site.sim.jobs.values():
                if not job.state.terminal:
                    return False
        return True

    # -- routing -------------------------------------------------------------------

    def _route(self, job: Job) -> None:
        chosen = self._policy_fn(self.sites, job)
        if chosen is None:
            # Infeasible everywhere: submit to the first site so its
            # admission path rejects it with the ordinary bookkeeping.
            chosen = 0
        site = self.sites[chosen]
        site.routed_jobs += 1
        site.sim.submit_job(job)

    # -- migration -----------------------------------------------------------------

    @staticmethod
    def _base_id(job_id: JobId) -> JobId:
        """The trace-level id behind a (possibly renamed) incarnation."""
        return job_id.split("~m", 1)[0]

    def _transfer_s(self, job: Job) -> float:
        """WAN transfer time for the job's checkpoint plus its dataset."""
        gigabytes = self.checkpoint_gb_per_gpu * job.num_gpus + job.dataset_gb
        return gigabytes * 8.0 / self.wan_gbps

    def _may_move(self, job: Job, now: float) -> bool:
        if job.service_id is not None:
            return False  # serving replicas are autoscaler property
        base = self._base_id(job.job_id)
        if self._migration_count.get(base, 0) >= self.max_migrations_per_job:
            return False
        last = self._last_move.get(base)
        return last is None or now - last >= self.elastic_cooldown_s

    def _pick_target(self, source_index: int, job: Job) -> int | None:
        """Best other site that could run the job at full width *now*."""
        candidates = [
            index
            for index, site in enumerate(self.sites)
            if index != source_index
            and site.sim.statically_feasible(job)
            and site.sim.cluster.free_gpus >= job.num_gpus
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda index: (-self.sites[index].sim.cluster.free_gpus, index),
        )

    def _migrate(
        self, now: float, source_index: int, target_index: int, job: Job, *, was_running: bool
    ) -> None:
        source = self.sites[source_index]
        target = self.sites[target_index]
        base = self._base_id(job.job_id)
        transfer_s = self._transfer_s(job)
        # Kill first: for running jobs the kill checkpoints live progress,
        # so the clone resumes from the freshest remaining_work.
        source.sim.kill_job(
            job.job_id,
            cause=Cause.MIGRATE,
            actor=Actor.FEDERATION,
            detail=f"to={target.name}",
        )
        count = self._migration_count.get(base, 0) + 1
        clone = job.checkpoint_clone(
            submit_time=now + transfer_s,
            restore_s=self.restore_s,
            job_id=f"{base}~m{count}",
        )
        target.sim.submit_job(clone)
        self._shells.append(job)
        self._migration_count[base] = count
        self._last_move[base] = now
        self.migrations.append(
            MigrationEvent(
                time=now,
                job_id=job.job_id,
                clone_id=clone.job_id,
                source=source.name,
                target=target.name,
                transfer_s=transfer_s,
                was_running=was_running,
            )
        )

    def _migration_pass(self, now: float) -> None:
        """Move long-waiting queued jobs to a site that can run them now."""
        for source_index, site in enumerate(self.sites):
            sim = site.sim
            if sim.cluster.free_gpus > 0 and sim.scheduler.queue_depth == 0:
                continue
            # Snapshot: migrations mutate the queue mid-pass.
            queued = sorted(
                sim.scheduler.queue, key=lambda job: (job.submit_time, job.job_id)
            )
            for job in queued:
                if not self._may_move(job, now):
                    continue
                # Waiting time since the job last held resources here (or
                # since submission if it never ran).  JobLifecycle keeps no
                # timestamps, so this is a deliberate conservative proxy.
                waited = now - (
                    job.last_start_time
                    if job.last_start_time is not None
                    else job.submit_time
                )
                if waited <= self.migrate_after_wait_s:
                    continue
                if sim.cluster.free_gpus >= job.num_gpus:
                    continue  # could start here imminently; don't churn
                target_index = self._pick_target(source_index, job)
                if target_index is not None:
                    self._migrate(now, source_index, target_index, job, was_running=False)

    def _elastic_pass(self, now: float) -> None:
        """Grow elastic jobs running narrow by moving them to a wider site."""
        for source_index, site in enumerate(self.sites):
            running = sorted(
                (
                    job
                    for job in site.sim.running.values()
                    if job.elastic and 0 < job.current_gpus < job.num_gpus
                ),
                key=lambda job: job.job_id,
            )
            for job in running:
                if not self._may_move(job, now):
                    continue
                transfer_s = self._transfer_s(job)
                # Not worth moving when the move costs a sizeable share of
                # what is left to compute.
                if job.remaining_work_at(now) <= 4.0 * (transfer_s + self.restore_s):
                    continue
                target_index = self._pick_target(source_index, job)
                if target_index is not None:
                    self._migrate(now, source_index, target_index, job, was_running=True)

    # -- merge ---------------------------------------------------------------------

    def _finalize(self) -> FederationResult:
        """Finalize every site at a common horizon and merge to fleet level."""
        end = max(site.sim.engine.now for site in self.sites)
        site_results = [
            SiteResult(site.name, site.sim.run(until=end), site.routed_jobs)
            for site in self.sites
        ]
        shell_ids = {shell.job_id for shell in self._shells}
        merged: dict[JobId, Job] = {}
        for site in self.sites:
            for job_id, job in site.sim.jobs.items():
                if job_id in shell_ids:
                    continue
                if job_id in merged:
                    raise SimulationError(
                        f"job id {job_id} appears at more than one site"
                    )
                merged[job_id] = job
        fleet_collector = MetricsCollector.merged(
            [site.sim.metrics for site in self.sites], end
        )
        fleet = summarize(merged, fleet_collector, end)
        # Shells are KILLED incarnations, so summarize credits them zero —
        # but their checkpoints survived the move.  Re-credit their
        # retained progress at the fleet level.
        shell_credit_h = (
            sum(shell.productive_gpu_seconds for shell in self._shells) / 3600.0
        )
        assert fleet.goodput is not None
        adjusted = GoodputMetrics.from_gpu_hours(
            total=fleet.goodput.total_gpu_hours,
            healthy=fleet.goodput.healthy_gpu_hours,
            served=fleet.goodput.served_gpu_hours,
            productive=fleet.goodput.productive_gpu_hours + shell_credit_h,
        )
        fleet = dataclasses.replace(fleet, goodput=adjusted)
        return FederationResult(
            sites=site_results,
            metrics=fleet,
            end_time=end,
            jobs=merged,
            migrations=self.migrations,
            migrated_shell_gpu_hours=shell_credit_h,
            routed={site.name: site.routed_jobs for site in self.sites},
        )
