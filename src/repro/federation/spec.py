"""Declarative federation specs: pure data, sweep-cell compatible.

A :class:`FederationSpec` describes a whole federated run — the sites
(each a cluster recipe plus its own scheduler, failure plan, and seed)
and the cross-cluster policy knobs — as plain frozen dataclasses, so it
canonicalises through :func:`repro.sweep.spec.canonical_json` and rides
inside a :class:`~repro.sweep.spec.SimCell` (content-addressed caching
and worker fan-out included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigError
from ..sweep.spec import ClusterSpec, SchedulerSpec
from .routing import ROUTING_POLICIES


@dataclass(frozen=True)
class SiteSpec:
    """One federated site: a cluster plus its local operating regime.

    ``scheduler=None`` inherits the federation-level default (for cells,
    the cell's scheduler spec).  ``failures`` are
    :class:`~repro.sim.failures.FailureConfig` kwargs (``None`` = no
    injection at this site).  ``seed`` feeds the site's own
    :class:`~repro.sim.simulator.SimConfig` so failure sampling streams
    are independent across sites.
    """

    name: str
    cluster: ClusterSpec
    scheduler: SchedulerSpec | None = None
    failures: dict[str, Any] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("federation sites need a non-empty name")


@dataclass(frozen=True)
class FederationSpec:
    """The federated fleet and its cross-cluster policy knobs.

    Attributes:
        sites: Site recipes, in declaration order (routing tie-break order).
        policy: Routing policy name (see
            :data:`~repro.federation.routing.ROUTING_POLICIES`).
        tick_s: Period of the migration/elastic pass (0 disables both).
        migrate_after_wait_s: Queued jobs waiting longer than this become
            migration candidates.
        wan_gbps: Inter-site WAN bandwidth used to model checkpoint +
            dataset transfer time.
        checkpoint_gb_per_gpu: Checkpoint size scaling with job width.
        restore_s: Work re-done when resuming from a migrated checkpoint
            (non-productive in the goodput decomposition).
        elastic_growth: Migrate running elastic jobs to a site that can
            fit their full width when they are running narrow.
        elastic_cooldown_s: Minimum time between moves of the same job.
        max_migrations_per_job: Migration budget per job (0 = never).
    """

    sites: tuple[SiteSpec, ...]
    policy: str = "least-queued"
    tick_s: float = 1800.0
    migrate_after_wait_s: float = 7200.0
    wan_gbps: float = 10.0
    checkpoint_gb_per_gpu: float = 2.0
    restore_s: float = 120.0
    elastic_growth: bool = True
    elastic_cooldown_s: float = 21600.0
    max_migrations_per_job: int = 2

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigError("a federation needs at least one site")
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ConfigError(f"federation site names must be unique: {names}")
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; "
                f"known: {sorted(ROUTING_POLICIES)}"
            )
        if self.tick_s < 0:
            raise ConfigError("tick_s must be >= 0")
        if self.wan_gbps <= 0:
            raise ConfigError("wan_gbps must be positive")
        if self.checkpoint_gb_per_gpu < 0 or self.restore_s < 0:
            raise ConfigError("checkpoint/restore costs must be non-negative")
        if self.migrate_after_wait_s < 0 or self.elastic_cooldown_s < 0:
            raise ConfigError("migration wait/cooldown must be non-negative")
        if self.max_migrations_per_job < 0:
            raise ConfigError("max_migrations_per_job must be >= 0")
