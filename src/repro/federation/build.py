"""Materialise federation specs into live simulators.

The site builder reuses the sweep's cluster/scheduler factories so a
federated cell and a single-cluster cell interpret identical specs
identically; each site gets an *empty* trace (the federation routes
arrivals itself) and its own :class:`~repro.sim.simulator.SimConfig`
seed so failure-sampling streams stay independent across sites.
"""

from __future__ import annotations

from typing import Any

from ..sim.failures import FailureConfig
from ..sim.simulator import ClusterSimulator, SimConfig
from ..sweep.build import build_cluster, build_scheduler
from ..sweep.spec import SchedulerSpec
from ..workload.trace import Trace
from .federation import FederationSimulator
from .spec import FederationSpec, SiteSpec

_DEFAULT_SCHEDULER = SchedulerSpec(name="backfill-easy")


def build_site(
    spec: SiteSpec,
    *,
    default_scheduler: SchedulerSpec | None = None,
    sim: dict[str, Any] | None = None,
) -> ClusterSimulator:
    """Build one site's simulator with an empty trace (federation-fed)."""
    scheduler_spec = spec.scheduler or default_scheduler or _DEFAULT_SCHEDULER
    scheduler, _placement = build_scheduler(scheduler_spec)
    cluster = build_cluster(spec.cluster)
    failure_config = FailureConfig(**spec.failures) if spec.failures else None
    overrides = dict(sim or {})
    overrides.pop("seed", None)  # the site's own seed always wins
    config = SimConfig(seed=spec.seed, **overrides)
    return ClusterSimulator(
        cluster=cluster,
        scheduler=scheduler,
        trace=Trace([], name=spec.name),
        failure_config=failure_config,
        config=config,
    )


def build_federation(
    spec: FederationSpec,
    trace: Trace,
    *,
    default_scheduler: SchedulerSpec | None = None,
    sim: dict[str, Any] | None = None,
) -> FederationSimulator:
    """Wire a whole federated run: sites in declaration order plus knobs."""
    sites = [
        (site.name, build_site(site, default_scheduler=default_scheduler, sim=sim))
        for site in spec.sites
    ]
    return FederationSimulator(
        trace,
        sites,
        policy=spec.policy,
        tick_s=spec.tick_s,
        migrate_after_wait_s=spec.migrate_after_wait_s,
        wan_gbps=spec.wan_gbps,
        checkpoint_gb_per_gpu=spec.checkpoint_gb_per_gpu,
        restore_s=spec.restore_s,
        elastic_growth=spec.elastic_growth,
        elastic_cooldown_s=spec.elastic_cooldown_s,
        max_migrations_per_job=spec.max_migrations_per_job,
    )
