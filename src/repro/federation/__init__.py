"""Multi-cluster federation: N campus sites under one event loop.

The federation layer composes several :class:`~repro.sim.simulator.
ClusterSimulator` instances — each a full site with its own hardware mix,
scheduler/quota regime, and failure plan — and advances them in
deterministic lockstep.  A cross-cluster router places each arriving job
(:mod:`repro.federation.routing`), a periodic migration pass
checkpoint-and-migrates long-waiting or elastic jobs between sites with a
modelled WAN transfer and restore cost, and the result carries both
per-site :class:`~repro.sim.metrics.SimMetrics` and a fleet-level merge
whose goodput decomposition (availability × efficiency × productive
share) sums exactly from the site components.
"""

from .build import build_federation, build_site
from .federation import (
    FederationResult,
    FederationSimulator,
    FederationSite,
    MigrationEvent,
    SiteResult,
)
from .routing import ROUTING_POLICIES
from .spec import FederationSpec, SiteSpec

__all__ = [
    "FederationResult",
    "FederationSimulator",
    "FederationSite",
    "FederationSpec",
    "MigrationEvent",
    "ROUTING_POLICIES",
    "SiteResult",
    "SiteSpec",
    "build_federation",
    "build_site",
]
