"""Ablation experiments: the design-choice sensitivity studies (A1–A4).

DESIGN.md calls out four design choices whose sensitivity the study
discusses; each gets an ablation:

* **A1 — estimate quality**: scheduling on user wall-time estimates vs
  progressively worse overestimates vs an oracle.
* **A2 — elasticity**: the Pollux-style elastic scheduler vs rigid
  backfill on the same saturated workload.
* **A3 — checkpoint cost**: how preemption overhead erodes the tiered-
  quota design's free tier.
* **A4 — dataset staging cache**: shared-filesystem staging with and
  without node-local caches, across cache sizes.

Every arm is a sweep cell; per-run instruments (storage hit rate, the
learned predictor's observation count) come back in ``result.extras``.
"""

from __future__ import annotations

import numpy as np

from .. import sweep
from ..sched import QuotaConfig
from ..sweep import SchedulerSpec, SimCell
from .common import ExperimentResult, campus_trace_spec


def run_a1_estimate_quality(seed: int, scale: float) -> ExperimentResult:
    """A1: how much does wall-time estimate *noise* cost SJF and backfill?

    Uniform inflation is order-preserving (scale cancels out of both SJF's
    ranking and backfill's shadow-time test), so what this ablation sweeps
    is the log-normal noise width — the degree to which estimates scramble
    the true duration ranking.
    """
    sweeps = [("oracle", None), ("rank-perfect", 0.01), ("typical", 0.6), ("noisy", 1.5), ("chaotic", 2.5)]
    cells = {}
    for label, sigma in sweeps:
        overrides = {}
        if sigma is not None:
            overrides = {"walltime_overestimate_sigma": sigma}
        tspec = campus_trace_spec(seed, scale, days=5.0, load=1.3, **overrides)
        scheduler_name = "sjf-oracle" if sigma is None else "sjf"
        for policy in (scheduler_name, "backfill-easy"):
            cells[f"{label}:{policy}"] = SimCell(
                trace=tspec, scheduler=SchedulerSpec(name=policy)
            )
    results = sweep.run_cells(cells)
    rows = []
    for label, sigma in sweeps:
        scheduler_name = "sjf-oracle" if sigma is None else "sjf"
        for policy in (scheduler_name, "backfill-easy"):
            result = results[f"{label}:{policy}"]
            rows.append(
                {
                    "estimates": label,
                    "scheduler": policy,
                    "avg_wait_h": result.metrics.wait_mean_s / 3600.0,
                    "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
                    "p99_wait_h": result.metrics.wait_percentiles["p99"] / 3600.0,
                }
            )
    return ExperimentResult(
        "A1",
        "Wall-time estimate quality ablation",
        rows=rows,
        notes=(
            "SJF's advantage erodes as estimate noise scrambles its ranking; "
            "backfill is more robust (the shadow-time test is scale-invariant "
            "and only mildly rank-sensitive). The oracle rows bound what "
            "perfect duration knowledge could buy. At campus scale the "
            "penalty is modest — queue contention moments, where ordering "
            "actually decides who gets a freed slot, are a minority of "
            "scheduling decisions."
        ),
    )


def run_a2_elasticity(seed: int, scale: float) -> ExperimentResult:
    """A2: elastic (Pollux-style) vs rigid scheduling under saturation."""
    tspec = campus_trace_spec(seed, scale, days=5.0, load=1.2, elastic_fraction=0.7)
    cells = {
        "rigid-backfill": SimCell(
            trace=tspec, scheduler=SchedulerSpec(name="backfill-easy")
        ),
        "elastic": SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(
                name="elastic", params={"tick_s": 900.0, "resize_cooldown_s": 3600.0}
            ),
        ),
    }
    rows = []
    for name, result in sweep.run_cells(cells).items():
        jobs = list(result.jobs.values())
        elastic_jobs = [j for j in jobs if j.elastic]
        waits = [j.wait_time for j in elastic_jobs if j.wait_time is not None]
        rows.append(
            {
                "policy": name,
                "avg_wait_h": result.metrics.wait_mean_s / 3600.0,
                "elastic_wait_p50_h": float(np.median(waits)) / 3600.0 if waits else float("nan"),
                "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
                "utilization": result.metrics.avg_utilization,
                "resizes": result.metrics.preemptions,
            }
        )
    return ExperimentResult(
        "A2",
        "Elastic vs rigid scheduling",
        rows=rows,
        notes=(
            "Under a 1.2x offered load, resizing elastic jobs downward admits "
            "queued work immediately: waits drop versus rigid backfill at the "
            "cost of resize churn; served JCT of elastic jobs stretches only "
            "while the cluster is actually contended."
        ),
    )


def run_a3_checkpoint_cost(seed: int, scale: float) -> ExperimentResult:
    """A3: preemption checkpoint cost vs free-tier usefulness."""
    tspec = campus_trace_spec(seed, scale, days=5.0, load=1.5, guaranteed_fraction=0.6)
    quota = QuotaConfig.equal_shares(sweep.trace_meta(tspec).labs, 176, fraction=0.85)
    cells = {
        str(loss_s): SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="tiered-quota", quotas=dict(quota.quotas)),
            sim={"sample_interval_s": 0.0, "checkpoint_loss_s": loss_s},
        )
        for loss_s in (0.0, 60.0, 900.0, 3600.0)
    }
    results = sweep.run_cells(cells)
    rows = []
    for loss_s in (0.0, 60.0, 900.0, 3600.0):
        result = results[str(loss_s)]
        metrics = result.metrics
        opportunistic_jct = [
            j.jct
            for j in result.jobs.values()
            if j.tier.value == "opportunistic" and j.jct is not None
        ]
        useful_gpu_h = sum(
            j.duration * j.num_gpus / 3600.0
            for j in result.jobs.values()
            if j.state.value == "completed"
        )
        rows.append(
            {
                "checkpoint_loss_s": loss_s,
                "preemptions": metrics.preemptions,
                "opp_jct_p50_h": float(np.median(opportunistic_jct)) / 3600.0
                if opportunistic_jct
                else float("nan"),
                "guaranteed_wait_h": metrics.wait_mean_by_tier["guaranteed"] / 3600.0,
                "wasted_gpu_h": metrics.served_gpu_hours - useful_gpu_h,
            }
        )
    return ExperimentResult(
        "A3",
        "Checkpoint-cost sensitivity of the two-tier design",
        rows=rows,
        notes=(
            "Guaranteed-tier latency is insensitive to checkpoint cost (it "
            "never pays it); opportunistic JCT and total served work degrade "
            "as each eviction burns more redone work — cheap checkpoints are "
            "what make the free tier nearly free."
        ),
    )


def run_a5_learned_predictions(seed: int, scale: float) -> ExperimentResult:
    """A5: learned runtime predictions vs user estimates vs oracle SJF."""
    tspec = campus_trace_spec(seed, scale, days=7.0, load=1.3)
    cells = {
        "sjf-user-estimates": SimCell(trace=tspec, scheduler=SchedulerSpec(name="sjf")),
        "sjf-predicted": SimCell(
            trace=tspec, scheduler=SchedulerSpec(name="sjf-predicted")
        ),
        "sjf-oracle": SimCell(trace=tspec, scheduler=SchedulerSpec(name="sjf-oracle")),
    }
    rows = []
    observations: int | None = None
    for name, result in sweep.run_cells(cells).items():
        row = {
            "policy": name,
            "avg_wait_h": result.metrics.wait_mean_s / 3600.0,
            "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
            "p99_wait_h": result.metrics.wait_percentiles["p99"] / 3600.0,
        }
        if "predictor_observations" in result.extras:
            observations = int(result.extras["predictor_observations"])
            row["observations"] = observations
        rows.append(row)
    notes = (
        "A per-(user, width-class) quantile of observed runtimes replaces "
        "the 2.5x-inflated user estimates; prediction-driven SJF closes the "
        "estimate-to-oracle gap once history accrues — and can even edge "
        "out the oracle, because the oracle ranks by reference work while "
        "the predictor learns *wall* runtimes including hardware/placement "
        "slowdowns, which is what the queue actually experiences"
    )
    if observations is not None:
        notes += f" ({observations} runtimes observed online)."
    return ExperimentResult("A5", "Learned runtime predictions", rows=rows, notes=notes)


def run_a4_storage_cache(seed: int, scale: float) -> ExperimentResult:
    """A4: dataset-staging cache ablation."""
    tspec = campus_trace_spec(seed, scale, days=3.0, load=0.7)
    storage_configs = {
        "no-cache": {"node_cache_gb": 1e-6},
        "small-cache-200gb": {"node_cache_gb": 200.0},
        "standard-2tb": {"node_cache_gb": 2000.0},
    }
    cells = {
        label: SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy"),
            sim={"sample_interval_s": 0.0},
            storage=dict(storage_kwargs),
        )
        for label, storage_kwargs in storage_configs.items()
    }
    rows = []
    for label, result in sweep.run_cells(cells).items():
        rows.append(
            {
                "cache": label,
                "stage_hours_total": result.metrics.stage_seconds / 3600.0,
                "cache_hit_rate": result.extras["storage_hit_rate"],
                "staged_tb": result.extras["storage_bytes_staged_gb"] / 1000.0,
                "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
            }
        )
    return ExperimentResult(
        "A4",
        "Dataset staging cache ablation",
        rows=rows,
        notes=(
            "Node-local caches turn repeat experiments on the same data "
            "from cold stages into instant starts: hit rate rises with cache "
            "size and total staging time falls accordingly."
        ),
    )
