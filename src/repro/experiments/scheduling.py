"""Scheduling experiments: F4 (utilization), F5/T2 (policy comparison),
F6 (backfill ablation), F11 (gang time-slicing).

All runs replay the same load-calibrated campus trace (fresh job objects
per policy) on identical clusters, so differences are attributable to
policy alone.  Each run is declared as a :class:`~repro.sweep.SimCell`
and executed through the sweep engine — serially, in parallel, or from
cache, all byte-identically.
"""

from __future__ import annotations

import numpy as np

from .. import sweep
from ..ops.analytics import queue_depth_series, utilization_series, wait_cdf
from ..sched import QuotaConfig
from ..sweep import SchedulerSpec, SimCell
from .common import ExperimentResult, campus_trace_spec

#: The policy set compared in F5/T2 (tiered-quota is added separately
#: because it needs the trace's lab census for quota construction).
COMPARED_SCHEDULERS = ("fifo", "sjf", "fair-share", "backfill-easy", "tiresias")


def _comparison_runs(seed: int, scale: float, load: float = 0.95):
    tspec = campus_trace_spec(seed, scale, days=7.0, load=load)
    cells = {
        name: SimCell(trace=tspec, scheduler=SchedulerSpec(name=name))
        for name in COMPARED_SCHEDULERS
    }
    quota = QuotaConfig.equal_shares(sweep.trace_meta(tspec).labs, 176, fraction=0.6)
    cells["tiered-quota"] = SimCell(
        trace=tspec,
        scheduler=SchedulerSpec(name="tiered-quota", quotas=dict(quota.quotas)),
    )
    return sweep.run_cells(cells)


def run_f4_utilization(seed: int, scale: float) -> ExperimentResult:
    """F4: cluster GPU allocation and queue depth over two weeks."""
    tspec = campus_trace_spec(seed, scale, days=14.0, load=0.85)
    result = sweep.run_one(
        SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy"),
            sim={"sample_interval_s": 900.0},
        )
    )
    util = utilization_series(result.samples, bin_s=3600.0)
    depth = queue_depth_series(result.samples, bin_s=3600.0)
    horizon_h = sweep.trace_meta(tspec).span_seconds / 3600.0
    series = {
        "utilization": [(x, y) for x, y in util if x <= horizon_h],
        "queue_depth": [(x, y) for x, y in depth if x <= horizon_h],
    }
    return ExperimentResult(
        "F4",
        "GPU utilization and queue depth over time",
        series=series,
        x_label="hour",
        notes=(
            f"Average utilization {result.metrics.avg_utilization:.1%} over the "
            "submission window; utilization dips track the diurnal arrival "
            "trough, queue depth spikes track wide-job arrivals."
        ),
    )


def run_f5_queueing(seed: int, scale: float) -> ExperimentResult:
    """F5: queueing-delay CDF per scheduling policy."""
    runs = _comparison_runs(seed, scale)
    series = {}
    for name, result in runs.items():
        cdf = wait_cdf(result.jobs)
        series[name] = [(value / 3600.0, prob) for value, prob in cdf.points(50)]
    medians = {
        name: wait_cdf(result.jobs).quantile(0.5) / 3600.0 for name, result in runs.items()
    }
    best = min(medians, key=medians.get)
    worst = max(medians, key=medians.get)
    return ExperimentResult(
        "F5",
        "Queueing delay CDF by scheduler",
        series=series,
        x_label="wait_h",
        notes=(
            f"Median wait spans {medians[best]:.2f} h ({best}) to "
            f"{medians[worst]:.2f} h ({worst}) on the same workload."
        ),
    )


def run_t2_sched_comparison(seed: int, scale: float) -> ExperimentResult:
    """T2: scheduler comparison table (JCT, wait, utilization, makespan)."""
    runs = _comparison_runs(seed, scale)
    rows = []
    for name, result in runs.items():
        row = {"scheduler": name}
        row.update(result.summary)
        row.pop("events", None)
        rows.append(row)
    return ExperimentResult(
        "T2",
        "Scheduler comparison",
        rows=rows,
        notes=(
            "Same trace, same cluster. FIFO's head-of-line blocking inflates "
            "mean wait by roughly an order of magnitude versus SJF-style "
            "ordering; EASY backfill recovers part of that while preserving "
            "FIFO arrival fairness (its gain is bounded by the 2.5x-inflated "
            "user estimates it plans with — see ablation A1). Preemptive "
            "policies (Tiresias, tiered-quota) get the best of both by "
            "revisiting decisions; tiered-quota additionally protects its "
            "guaranteed tier (F7)."
        ),
    )


def run_f6_backfill(seed: int, scale: float) -> ExperimentResult:
    """F6: backfill ablation — none vs conservative vs EASY, by job width."""
    tspec = campus_trace_spec(seed, scale, days=7.0, load=0.95)
    cells = {
        "no-backfill": SimCell(trace=tspec, scheduler=SchedulerSpec(name="fifo")),
        "conservative": SimCell(
            trace=tspec, scheduler=SchedulerSpec(name="backfill-conservative")
        ),
        "easy": SimCell(trace=tspec, scheduler=SchedulerSpec(name="backfill-easy")),
    }
    rows = []
    for name, result in sweep.run_cells(cells).items():
        jobs = list(result.jobs.values())
        narrow = [j.wait_time for j in jobs if j.num_gpus <= 2 and j.wait_time is not None]
        wide = [j.wait_time for j in jobs if j.num_gpus >= 8 and j.wait_time is not None]
        rows.append(
            {
                "policy": name,
                "narrow_wait_p50_h": float(np.median(narrow)) / 3600.0 if narrow else float("nan"),
                "wide_wait_p50_h": float(np.median(wide)) / 3600.0 if wide else float("nan"),
                "wide_wait_p99_h": float(np.percentile(wide, 99)) / 3600.0 if wide else float("nan"),
                "utilization": result.metrics.avg_utilization,
                "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
            }
        )
    return ExperimentResult(
        "F6",
        "Backfill ablation: wait by job width",
        rows=rows,
        notes=(
            "Backfill collapses narrow-job waits without starving wide jobs "
            "(their p50/p99 stay comparable), and lifts utilization; EASY "
            "backfills more than conservative."
        ),
    )


def run_f11_gang(seed: int, scale: float) -> ExperimentResult:
    """F11: gang time-slicing and interactive-job wait."""
    tspec = campus_trace_spec(
        seed,
        scale,
        days=5.0,
        load=1.1,  # slicing only matters when demand exceeds capacity
        interactive_fraction=0.3,
    )
    # Slicing needs consent: every cell marks its rehydrated trace copy
    # preemptible before the simulator exists (the memoised trace itself
    # is never touched).
    cells = {
        "backfill-easy": SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy"),
            preemptible_override=True,
        ),
        "gang-30min": SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="gang", params={"quantum_s": 1800.0}),
            preemptible_override=True,
        ),
        "gang-2h": SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="gang", params={"quantum_s": 7200.0}),
            preemptible_override=True,
        ),
    }
    rows = []
    for name, result in sweep.run_cells(cells).items():
        jobs = list(result.jobs.values())
        interactive = [
            j.wait_time for j in jobs if j.interactive and j.wait_time is not None
        ]
        batch = [
            j.wait_time for j in jobs if not j.interactive and j.wait_time is not None
        ]
        rows.append(
            {
                "policy": name,
                "interactive_wait_p50_min": float(np.median(interactive)) / 60.0
                if interactive
                else float("nan"),
                "interactive_wait_p95_min": float(np.percentile(interactive, 95)) / 60.0
                if interactive
                else float("nan"),
                "batch_wait_p50_h": float(np.median(batch)) / 3600.0 if batch else float("nan"),
                "preemptions": result.metrics.preemptions,
                "completed": result.metrics.jobs_completed,
            }
        )
    return ExperimentResult(
        "F11",
        "Gang time-slicing vs interactive wait",
        rows=rows,
        notes=(
            "Under overload, time-slicing bounds interactive wait at the cost "
            "of preemption churn; shorter quanta cut waits further but "
            "multiply preemptions."
        ),
    )
