"""The experiment registry: every paper table/figure mapped to a runner.

``EXPERIMENTS`` is the single source of truth the benchmarks, the
EXPERIMENTS.md generator and the CLI all consult.  IDs follow DESIGN.md's
reconstructed index (T = table, F = figure).
"""

from __future__ import annotations

from ..errors import ConfigError
from .ablations import (
    run_a1_estimate_quality,
    run_a2_elasticity,
    run_a3_checkpoint_cost,
    run_a4_storage_cache,
    run_a5_learned_predictions,
)
from .characterization import (
    run_f1_arrivals,
    run_f2_gpu_demand,
    run_f3_durations,
    run_t1_cluster_composition,
)
from .common import ExperimentResult, ExperimentSpec
from .federation import run_f_fed
from .quota_placement import run_f7_quota_tiers, run_f8_placement, run_t5_fairness
from .serving import run_s1_serving_slo, run_s2_serving_colocation
from .scheduling import (
    run_f4_utilization,
    run_f5_queueing,
    run_f6_backfill,
    run_f11_gang,
    run_t2_sched_comparison,
)
from .systems import (
    run_f9_locality,
    run_f10_scalability,
    run_t3_failures,
    run_t4_compiler_cache,
)
from .workflows import run_w_dag

EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "T1", "Cluster composition", "table", run_t1_cluster_composition,
            "Hardware inventory of the campus cluster: node groups, GPU types, fabric.",
        ),
        ExperimentSpec(
            "F1", "Diurnal submission pattern", "figure", run_f1_arrivals,
            "Jobs/hour by hour-of-day, weekday vs weekend, from the synthesized trace.",
        ),
        ExperimentSpec(
            "F2", "GPU demand distribution", "figure", run_f2_gpu_demand,
            "Job-count share vs GPU-hour share per GPU demand (1-GPU dominance).",
        ),
        ExperimentSpec(
            "F3", "Duration CDFs by demand class", "figure", run_f3_durations,
            "Heavy-tailed log-normal durations, wider jobs running longer.",
        ),
        ExperimentSpec(
            "F4", "Utilization over time", "figure", run_f4_utilization,
            "Two-week replay under EASY backfill: utilization + queue depth series.",
        ),
        ExperimentSpec(
            "F5", "Queueing delay by scheduler", "figure", run_f5_queueing,
            "Wait-time CDFs of six policies on the same load-calibrated trace.",
        ),
        ExperimentSpec(
            "T2", "Scheduler comparison", "table", run_t2_sched_comparison,
            "JCT/wait/utilization/makespan table across the policy zoo.",
        ),
        ExperimentSpec(
            "F6", "Backfill ablation", "figure", run_f6_backfill,
            "None vs conservative vs EASY backfill, split by job width.",
        ),
        ExperimentSpec(
            "F7", "Two-tier quota behaviour", "figure", run_f7_quota_tiers,
            "Guaranteed vs opportunistic wait and preemption churn under quota reclaim.",
        ),
        ExperimentSpec(
            "F8", "Placement ablation", "figure", run_f8_placement,
            "first/best/worst-fit vs topology-aware vs HiveD buddy cells: fragmentation and wide-job wait.",
        ),
        ExperimentSpec(
            "F9", "Locality vs throughput", "figure", run_f9_locality,
            "Ring/tree/PS/in-network sync across placement spreads (analytic).",
        ),
        ExperimentSpec(
            "T3", "Failure taxonomy", "table", run_t3_failures,
            "Job failure categories and node-failure impact under injection.",
        ),
        ExperimentSpec(
            "T4", "Compiler cache savings", "table", run_t4_compiler_cache,
            "Delta-upload bytes across realistic resubmission patterns.",
        ),
        ExperimentSpec(
            "F10", "Simulator scalability", "figure", run_f10_scalability,
            "Wall-clock throughput of the DES as the cluster grows.",
        ),
        ExperimentSpec(
            "F11", "Gang time-slicing", "figure", run_f11_gang,
            "Interactive wait under overload with and without time slicing.",
        ),
        ExperimentSpec(
            "T5", "Fairness across labs", "table", run_t5_fairness,
            "Jain index per scheduler plus per-lab quota adherence.",
        ),
        ExperimentSpec(
            "S1", "Serving SLO vs offered load", "table", run_s1_serving_slo,
            "SLO attainment and goodput as request load grows: autoscaled harvesting vs a fixed baseline fleet.",
        ),
        ExperimentSpec(
            "S2", "Serving co-location impact", "table", run_s2_serving_colocation,
            "Training-tier waits and preemptions with and without a co-located autoscaled serving fleet.",
        ),
        ExperimentSpec(
            "A1", "Estimate-quality ablation", "table", run_a1_estimate_quality,
            "SJF/backfill sensitivity to wall-time estimate inflation (oracle bound).",
        ),
        ExperimentSpec(
            "A2", "Elasticity ablation", "table", run_a2_elasticity,
            "Pollux-style elastic resizing vs rigid backfill under saturation.",
        ),
        ExperimentSpec(
            "A3", "Checkpoint-cost ablation", "table", run_a3_checkpoint_cost,
            "Preemption checkpoint cost vs free-tier JCT under the quota design.",
        ),
        ExperimentSpec(
            "A4", "Storage-cache ablation", "table", run_a4_storage_cache,
            "Dataset staging time vs node-local cache capacity.",
        ),
        ExperimentSpec(
            "A5", "Learned runtime predictions", "table", run_a5_learned_predictions,
            "Online per-user runtime prediction vs user estimates vs oracle SJF.",
        ),
        ExperimentSpec(
            "F-FED", "Federated multi-site goodput", "table", run_f_fed,
            "Cross-cluster routing/migration policies vs a single overloaded home site, with the fleet goodput decomposition.",
        ),
        ExperimentSpec(
            "W-DAG", "Workflow-DAG placement", "table", run_w_dag,
            "Transfer-aware vs oblivious placement for pipeline DAGs: makespan, critical-path bound, and artifact fetch time.",
        ),
    ]
}


def run_experiment(experiment_id: str, seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by ID."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return spec.run(seed=seed, scale=scale)


def run_all(
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
    cache_dir: str | None = None,
    no_cache: bool = True,
) -> dict[str, ExperimentResult]:
    """Run the full suite in index order.

    ``jobs``/``cache_dir``/``no_cache`` configure the sweep engine for
    the whole batch: simulation cells fan out over ``jobs`` workers and
    (unless ``no_cache``) reuse the content-addressed result cache.
    Defaults keep library callers pure — serial, cache-less.
    """
    from .. import sweep

    with sweep.execution(jobs=jobs, cache_dir=cache_dir, no_cache=no_cache):
        return {
            experiment_id: EXPERIMENTS[experiment_id].run(seed=seed, scale=scale)
            for experiment_id in EXPERIMENTS
        }
