"""Systems experiments: F9 (locality/communication), T3 (failures),
T4 (compiler cache), F10 (simulator/scheduler scalability).

F9 and T4 are analytic/deterministic (no DES); T3 runs failure injection;
F10 measures this repository's own wall-clock scaling, the honesty check
that the simulator can carry trace-scale studies.
"""

from __future__ import annotations

import numpy as np

from .. import sweep
from ..cluster.topology import Locality
from ..compiler.cache import ChunkStore
from ..execlayer.comm import CommMethod, PlacementShape, sync_time_s
from ..sweep import ClusterSpec, SchedulerSpec, SimCell, TraceSpec
from ..workload.models import MODEL_CATALOG
from .common import ExperimentResult, campus_trace_spec

#: Placement shapes swept in F9: 16 GPUs arranged ever more spread out.
_F9_SHAPES: list[tuple[str, tuple[int, ...], Locality]] = [
    ("2n-same-rack", (8, 8), Locality.SAME_RACK),
    ("2n-cross-rack", (8, 8), Locality.CROSS_RACK),
    ("4n-same-rack", (4, 4, 4, 4), Locality.SAME_RACK),
    ("4n-cross-rack", (4, 4, 4, 4), Locality.CROSS_RACK),
    ("16n-cross-rack", (1,) * 16, Locality.CROSS_RACK),
]


def run_f9_locality(seed: int, scale: float) -> ExperimentResult:
    """F9: training throughput vs placement spread per comm substrate."""
    model = MODEL_CATALOG["bert-large"]
    intra_gbps, nic_gbps, oversub = 300.0, 100.0, 2.0
    ideal = PlacementShape((16,), Locality.SAME_NODE, intra_gbps, nic_gbps, oversub)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for method in CommMethod:
        points = []
        for index, (label, gpus_per_node, locality) in enumerate(_F9_SHAPES):
            shape = PlacementShape(gpus_per_node, locality, intra_gbps, nic_gbps, oversub)
            iter_actual = model.compute_ms / 1000.0 + sync_time_s(
                model.gradient_mb, shape, method
            )
            iter_ideal = model.compute_ms / 1000.0 + sync_time_s(
                model.gradient_mb, ideal, CommMethod.RING
            )
            throughput = iter_ideal / iter_actual
            points.append((float(index), throughput))
            rows.append(
                {
                    "method": method.value,
                    "shape": label,
                    "iter_ms": iter_actual * 1000.0,
                    "rel_throughput": throughput,
                }
            )
        series[method.value] = points
    shape_legend = ", ".join(f"{i}={label}" for i, (label, *_rest) in enumerate(_F9_SHAPES))
    return ExperimentResult(
        "F9",
        "Locality vs training throughput (bert-large, 16 GPUs)",
        rows=rows,
        series=series,
        x_label="shape_index",
        notes=(
            f"Shape index: {shape_legend}. Ring all-reduce degrades with "
            "spread (cross-rack pays the oversubscribed spine); the parameter "
            "server bottlenecks hardest; in-network aggregation flattens the "
            "cross-rack penalty, recovering most of the locality loss."
        ),
    )


def run_t3_failures(seed: int, scale: float) -> ExperimentResult:
    """T3: failure taxonomy and job outcomes under injected node faults."""
    tspec = campus_trace_spec(seed, scale, days=14.0, load=0.8)
    result = sweep.run_one(
        SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy"),
            sim={"sample_interval_s": 3600.0, "seed": seed},
            failures={
                "mtbf_hours": 24.0 * 20.0,
                "consumer_mtbf_factor": 4.0,
                "repair_hours_median": 2.0,
            },
        )
    )
    metrics = result.metrics
    total_failed = max(1, metrics.jobs_failed)
    rows = [
        {
            "category": category,
            "failed_jobs": count,
            "share_of_failures": count / total_failed,
        }
        for category, count in sorted(metrics.failure_taxonomy.items())
    ]
    rows.append(
        {
            "category": "(all failures)",
            "failed_jobs": metrics.jobs_failed,
            "share_of_failures": metrics.jobs_failed / max(1, metrics.jobs_total),
        }
    )
    return ExperimentResult(
        "T3",
        "Failure taxonomy",
        rows=rows,
        notes=(
            f"{metrics.node_failures} node failures over the run killed and "
            f"restarted running jobs ({result.jobs and sum(j.attempts > 1 for j in result.jobs.values())} "
            "jobs needed restarts); user errors dominate job failures, as in "
            "the operational study — most failures are not the cluster's "
            "fault."
        ),
    )


def run_t4_compiler_cache(seed: int, scale: float) -> ExperimentResult:
    """T4: delta-upload savings across realistic resubmission patterns."""
    rng = np.random.default_rng(seed)
    store = ChunkStore(chunk_size=1 << 16)  # 64 KiB chunks at this scale

    def random_bytes(size: int) -> bytes:
        return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()

    code = {f"src/module_{i}.py": random_bytes(20_000) for i in range(10)}
    dataset = {"data/train.bin": random_bytes(8_000_000)}
    environment = {"wheels/torch.whl": random_bytes(4_000_000)}

    rows = []

    def submit(label: str, workspace: dict[str, bytes]) -> None:
        _manifest, report = store.upload(workspace)
        rows.append(
            {
                "submission": label,
                "total_mb": report.total_bytes / 1e6,
                "uploaded_mb": report.uploaded_bytes / 1e6,
                "chunk_hit_rate": report.hit_rate,
                "dedup_factor": min(report.dedup_factor, 9999.0),
            }
        )

    submit("initial", {**code, **dataset, **environment})
    edited = dict(code)
    edited["src/module_0.py"] = code["src/module_0.py"][:-100] + random_bytes(100)
    submit("edit-one-file", {**edited, **dataset, **environment})
    added = dict(edited)
    added["src/module_new.py"] = random_bytes(15_000)
    submit("add-one-file", {**added, **dataset, **environment})
    submit("identical-resubmit", {**added, **dataset, **environment})
    grown = dict(added)
    grown["data/train_extra.bin"] = random_bytes(2_000_000)
    submit("grow-dataset", {**grown, **dataset, **environment})

    first, second = rows[0], rows[1]
    return ExperimentResult(
        "T4",
        "Compiler-layer content cache: delta uploads",
        rows=rows,
        notes=(
            f"The first submission uploads everything ({first['total_mb']:.1f} MB); "
            f"a one-line edit re-uploads {second['uploaded_mb']:.3f} MB — a "
            f"{second['dedup_factor']:.0f}× reduction — and identical "
            "resubmission uploads nothing."
        ),
    )


def run_f10_scalability(seed: int, scale: float) -> ExperimentResult:
    """F10: simulator throughput vs cluster size (fixed load)."""
    rows = []
    series = {"events_per_s": [], "sim_wall_s": []}
    node_counts = [4, 8, 16, 32, 64, 128, 256] if scale >= 1.0 else [4, 8, 16, 32]
    cells = {
        str(nodes): SimCell(
            trace=TraceSpec(
                days=2.0,
                synth_seed=seed + nodes,
                load=0.9,
                load_gpus=nodes * 8,
                load_seed=0,
                model_seed=seed,
            ),
            scheduler=SchedulerSpec(name="backfill-easy"),
            cluster=ClusterSpec(kind="uniform", nodes=nodes, gpus_per_node=8),
        )
        for nodes in node_counts
    }
    results = sweep.run_cells(cells)
    for nodes in node_counts:
        result = results[str(nodes)]
        # Wall time is measured in-worker around the simulation proper and
        # travels with the (possibly cached) result — see CellResult.wall_s.
        elapsed = result.wall_s
        events_per_s = result.events_processed / max(elapsed, 1e-9)
        gpus = float(nodes * 8)
        rows.append(
            {
                "gpus": int(gpus),
                "jobs": result.trace_jobs,
                "events": result.events_processed,
                "sim_wall_s": elapsed,
                "events_per_s": events_per_s,
                "sim_days_per_wall_s": (result.end_time / 86400.0) / max(elapsed, 1e-9),
                "placement_attempts": int(result.perf["placement_attempts"]),
                "nodes_per_attempt": round(result.perf["nodes_per_attempt"], 3),
                "sched_pass_wall_s": round(result.perf["sched_pass_wall_s"], 6),
            }
        )
        series["events_per_s"].append((gpus, events_per_s))
        series["sim_wall_s"].append((gpus, elapsed))
    return ExperimentResult(
        "F10",
        "Simulator scalability vs cluster size",
        rows=rows,
        series=series,
        x_label="gpus",
        notes=(
            "The incremental cluster index keeps nodes-examined-per-attempt "
            "roughly flat as the cluster grows (candidate scans are pre-"
            "bucketed by GPU type and doomed attempts are rejected in O(1) "
            "from the availability histogram), so wall time scales with the "
            "event count rather than cluster-size x queue-depth, and multi-"
            "month campus traces simulate in seconds-to-minutes."
        ),
    )
