"""Shared plumbing for the experiment suite.

Every experiment is a function ``(seed, scale) → ExperimentResult`` where
*scale* multiplies trace length — benchmarks run at ``scale≈0.3`` for
wall-clock sanity, the EXPERIMENTS.md numbers at ``scale=1.0``.  Results
carry printable rows (tables) and/or named series (figures) plus free-form
notes, and know how to render themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cluster.cluster import Cluster, build_tacc_cluster
from ..errors import ConfigError
from ..execlayer.speedup import ExecutionModel
from ..sched.base import Scheduler
from ..sim.simulator import ClusterSimulator, SimConfig, SimulationResult
from ..sweep.spec import TraceSpec
from ..workload.models import assign_models
from ..workload.synth import SyntheticTraceConfig, TraceSynthesizer, tacc_campus, with_load
from ..workload.trace import Trace
from ..ops.reports import render_series, render_table, series_to_rows, write_csv

Series = dict[str, list[tuple[float, float]]]


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    series: Series = field(default_factory=dict)
    notes: str = ""
    x_label: str = "x"

    def render(self) -> str:
        parts = []
        if self.rows:
            parts.append(render_table(self.rows, title=f"{self.experiment_id}: {self.title}"))
        if self.series:
            parts.append(
                render_series(
                    self.series,
                    title=f"{self.experiment_id} series",
                    x_label=self.x_label,
                )
            )
        if self.notes:
            parts.append(self.notes.rstrip() + "\n")
        return "\n".join(parts)

    def export_csv(self, path) -> None:
        rows = self.rows or series_to_rows(self.series, x_label=self.x_label)
        write_csv(rows, path)


Runner = Callable[[int, float], ExperimentResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry mapping a paper table/figure to its runner."""

    experiment_id: str
    title: str
    kind: str  # "table" | "figure"
    runner: Runner
    description: str

    def __post_init__(self) -> None:
        if self.kind not in ("table", "figure"):
            raise ConfigError(f"{self.experiment_id}: kind must be table|figure")

    def run(self, seed: int = 0, scale: float = 1.0) -> ExperimentResult:
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        return self.runner(seed, scale)


# --------------------------------------------------------------------------
# Workload/sim helpers
# --------------------------------------------------------------------------


def campus_trace_spec(
    seed: int,
    scale: float,
    days: float = 7.0,
    load: float | None = 0.9,
    cluster_gpus: int = 176,
    **overrides,
) -> TraceSpec:
    """The :func:`campus_trace` recipe as a declarative sweep spec.

    ``sweep.build_trace`` on this spec reproduces :func:`campus_trace`'s
    construction order exactly (preset → load calibration → synthesis →
    model assignment), so cell-based experiments match the pre-sweep
    numbers bit-for-bit.
    """
    return TraceSpec(
        days=max(1.0, days * scale),
        synth_seed=seed,
        load=load,
        load_gpus=cluster_gpus,
        model_seed=seed,
        overrides=dict(overrides),
    )


def campus_trace(
    seed: int,
    scale: float,
    days: float = 7.0,
    load: float | None = 0.9,
    cluster_gpus: int = 176,
    base: SyntheticTraceConfig | None = None,
    **overrides,
) -> Trace:
    """The standard experiment workload: campus preset, load-calibrated.

    ``scale`` shortens the horizon (days × scale, floor 1 day) so the same
    experiment runs quickly as a benchmark and fully for the writeup.
    """
    config = base or tacc_campus(days=max(1.0, days * scale), **overrides)
    if base is not None and overrides:
        from dataclasses import replace

        config = replace(config, days=max(1.0, days * scale), **overrides)
    if load is not None:
        config = with_load(config, cluster_gpus, load, seed=seed + 777)
    trace = TraceSynthesizer(config, seed=seed).generate()
    assign_models(trace, seed=seed)
    return trace


def run_policy(
    scheduler: Scheduler,
    trace: Trace,
    cluster: Cluster | None = None,
    exec_model: ExecutionModel | None = None,
    sim_config: SimConfig | None = None,
    **sim_kwargs,
) -> SimulationResult:
    """Run one (scheduler, trace) combination on a fresh campus cluster."""
    cluster = cluster or build_tacc_cluster()
    simulator = ClusterSimulator(
        cluster,
        scheduler,
        trace,
        exec_model=exec_model or ExecutionModel(),
        config=sim_config or SimConfig(sample_interval_s=1800.0),
        **sim_kwargs,
    )
    return simulator.run()


def fresh_trace_copy(trace: Trace) -> Trace:
    """Deep-ish copy of a trace with pristine runtime state.

    Jobs are stateful; running the same trace under a second scheduler
    requires fresh Job objects.  Rehydrating from the trace's memoised
    serialisation rows guarantees only static fields survive — and
    serialises each job once per trace instead of once per compared
    policy (the rows are the same form the sweep cache and worker
    shipping use).
    """
    return Trace.from_rows(
        trace.frozen_rows(), name=trace.name, metadata=dict(trace.metadata)
    )
