"""F-FED: multi-site federation vs a single overloaded home cluster.

Three heterogeneous campus sites — different sizes, schedulers, failure
regimes, seeds — share one load-calibrated trace.  The ``home`` arm
routes everything to the first site with cross-cluster machinery off
(the no-federation baseline: remote capacity exists but sits idle),
while the real policies spread and migrate work across the fleet.  The
gap in fleet goodput is the capacity federation recovers.

Every arm is declared as a :class:`~repro.sweep.SimCell` (the
``federation`` field), so the comparison runs through the sweep engine
with content-addressed caching like any single-cluster experiment.
"""

from __future__ import annotations

import dataclasses

from .. import sweep
from ..federation.spec import FederationSpec, SiteSpec
from ..sweep import ClusterSpec, SchedulerSpec, SimCell
from ..workload.synth import DurationModel
from .common import ExperimentResult, campus_trace_spec

#: The three campus sites: a big backfill site, a mid-size FIFO site with
#: flakier hardware, and a small SJF site.  200 fleet GPUs total.
FED_SITES = (
    SiteSpec(
        name="site-a",
        cluster=ClusterSpec(kind="het", nodes=12),
        scheduler=SchedulerSpec(name="backfill-easy"),
        seed=11,
    ),
    SiteSpec(
        name="site-b",
        cluster=ClusterSpec(kind="het", nodes=8),
        scheduler=SchedulerSpec(name="fifo"),
        failures={"mtbf_hours": 360.0, "repair_hours_median": 4.0},
        seed=22,
    ),
    SiteSpec(
        name="site-c",
        cluster=ClusterSpec(kind="het", nodes=5),
        scheduler=SchedulerSpec(name="sjf"),
        seed=33,
    ),
)

#: Policies compared against the ``home`` baseline.
FED_POLICIES = ("first-feasible", "least-queued", "most-free", "goodput-aware")


def _fleet_gpus() -> int:
    return sum(site.cluster.total_gpus for site in FED_SITES)


def _federation_cells(seed: int, scale: float) -> dict[str, SimCell]:
    # Full fleet load with the multi-week duration tail capped: the
    # uncapped p-max straggler would set every arm's horizon and drown
    # the makespan signal the goodput denominator carries.
    tspec = campus_trace_spec(
        seed,
        scale,
        days=7.0,
        load=1.0,
        cluster_gpus=_fleet_gpus(),
        duration=DurationModel(max_seconds=36.0 * 3600.0),
        elastic_fraction=0.15,
    )
    base = FederationSpec(sites=FED_SITES, policy="least-queued")
    cells = {
        policy: SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy"),
            federation=dataclasses.replace(base, policy=policy),
        )
        for policy in FED_POLICIES
    }
    # The no-federation arm: same fleet, same trace, but everything lands
    # on site-a and nothing ever moves — remote capacity counts in the
    # fleet total yet serves nothing, which is exactly the waste a
    # federation exists to recover.
    cells["home"] = SimCell(
        trace=tspec,
        scheduler=SchedulerSpec(name="backfill-easy"),
        federation=dataclasses.replace(
            base, policy="home", tick_s=0.0, elastic_growth=False
        ),
    )
    return cells


def run_f_fed(seed: int, scale: float) -> ExperimentResult:
    """F-FED: fleet goodput decomposition per cross-cluster routing policy."""
    runs = sweep.run_cells(_federation_cells(seed, scale))
    rows = []
    for policy, result in runs.items():
        summary = result.summary
        rows.append(
            {
                "policy": policy,
                "goodput": round(summary["goodput"], 4),
                "availability": round(summary["availability"], 4),
                "efficiency": round(summary["efficiency"], 4),
                "productive_share": round(summary["productive_share"], 4),
                "productive_gpu_h": round(summary["productive_gpu_h"], 1),
                "completed": summary["completed"],
                "p50_jct_h": round(summary["p50_jct_h"], 2),
                "avg_wait_h": round(summary["avg_wait_h"], 2),
                "migrations": result.extras["migrations"],
            }
        )
    rows.sort(key=lambda row: -float(row["goodput"]))
    home = next(row for row in rows if row["policy"] == "home")
    best = rows[0]
    gain = float(best["goodput"]) - float(home["goodput"])
    return ExperimentResult(
        "F-FED",
        "Federated multi-site goodput by routing policy",
        rows=rows,
        notes=(
            f"Three heterogeneous sites ({_fleet_gpus()} fleet GPUs), one "
            f"trace calibrated to the full fleet's capacity. The home arm "
            f"funnels everything to site-a, so fleet goodput collapses to "
            f"{float(home['goodput']):.1%} — the other sites' GPU-hours are "
            f"in the denominator but serve nothing. {best['policy']} recovers "
            f"that idle capacity: {float(best['goodput']):.1%} fleet goodput "
            f"(+{gain:.1%} absolute), with checkpoint-and-migrate rescuing "
            f"queue-stuck jobs across sites. Availability < 100% on site-b "
            f"reflects its injected node failures; the decomposition "
            f"(availability × efficiency × productive share) isolates each "
            f"loss mechanism per site and for the fleet."
        ),
    )
