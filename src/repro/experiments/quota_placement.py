"""Quota, placement and fairness experiments: F7, F8, T5.

F7 measures the two-tier quota design's core promise (guaranteed-tier
latency) and cost (opportunistic-tier preemption churn).  F8 ablates the
placement policy under a multi-GPU-heavy workload, measuring fragmentation
and wide-job waits.  T5 reports cross-lab fairness under different
schedulers.  All runs are declared as sweep cells; F8's fragmentation
probe is requested declaratively and captured worker-side.
"""

from __future__ import annotations

import numpy as np

from .. import sweep
from ..ops.fairness import fairness_summary, jain_index, quota_adherence
from ..sched import QuotaConfig
from ..sweep import SchedulerSpec, SimCell
from ..workload.job import JobTier
from .common import ExperimentResult, campus_trace_spec


def run_f7_quota_tiers(seed: int, scale: float) -> ExperimentResult:
    """F7: guaranteed vs opportunistic wait and preemption under quota."""
    tspec = campus_trace_spec(seed, scale, days=7.0, load=1.15, guaranteed_fraction=0.5)
    quota = QuotaConfig.equal_shares(sweep.trace_meta(tspec).labs, 176, fraction=0.6)
    result = sweep.run_one(
        SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="tiered-quota", quotas=dict(quota.quotas)),
        )
    )
    jobs = list(result.jobs.values())
    rows = []
    for tier in JobTier:
        tier_jobs = [j for j in jobs if j.tier is tier]
        waits = [j.wait_time for j in tier_jobs if j.wait_time is not None]
        rows.append(
            {
                "tier": tier.value,
                "jobs": len(tier_jobs),
                "wait_p50_h": float(np.median(waits)) / 3600.0 if waits else float("nan"),
                "wait_p95_h": float(np.percentile(waits, 95)) / 3600.0 if waits else float("nan"),
                "preemptions": sum(j.preemptions for j in tier_jobs),
                "completed": sum(1 for j in tier_jobs if j.state.value == "completed"),
            }
        )
    entitled = rows[0]
    free_tier = rows[1]
    return ExperimentResult(
        "F7",
        "Two-tier quota: wait and preemption by tier",
        rows=rows,
        notes=(
            f"Guaranteed jobs wait a median {entitled['wait_p50_h']:.2f} h while "
            f"opportunistic jobs wait {free_tier['wait_p50_h']:.2f} h and absorb "
            f"all {free_tier['preemptions']} preemptions — idle capacity is "
            "monetised as a free tier without hurting paying labs."
        ),
    )


def run_f8_placement(seed: int, scale: float) -> ExperimentResult:
    """F8: placement-policy ablation under a multi-GPU-heavy workload."""
    tspec = campus_trace_spec(
        seed,
        scale,
        days=5.0,
        load=0.95,
        gpu_demand_pmf={1: 0.35, 2: 0.20, 4: 0.20, 8: 0.15, 16: 0.07, 32: 0.03},
    )
    cells = {
        placement_name: SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy", placement=placement_name),
            probes=("fragmentation",),
        )
        for placement_name in (
            "first-fit",
            "best-fit",
            "worst-fit",
            "topology-aware",
            "buddy-cell",
        )
    }
    rows = []
    for placement_name, result in sweep.run_cells(cells).items():
        jobs = list(result.jobs.values())
        wide_waits = [j.wait_time for j in jobs if j.num_gpus >= 8 and j.wait_time is not None]
        row = {
            "placement": placement_name,
            "wide_wait_p50_h": float(np.median(wide_waits)) / 3600.0
            if wide_waits
            else float("nan"),
            "wide_wait_p99_h": float(np.percentile(wide_waits, 99)) / 3600.0
            if wide_waits
            else float("nan"),
            "mean_frag": result.extras["mean_frag"],
            "utilization": result.metrics.avg_utilization,
            "avg_jct_h": result.metrics.jct_mean_s / 3600.0,
        }
        if "alignment_waste_gpus" in result.extras:
            row["alignment_waste_gpus"] = result.extras["alignment_waste_gpus"]
        rows.append(row)
    return ExperimentResult(
        "F8",
        "Placement ablation: fragmentation and wide-job wait",
        rows=rows,
        notes=(
            "Fragmentation-aware packing (best-fit, topology-aware, buddy "
            "cells) keeps wide-job waits and fragmentation below first-fit; "
            "worst-fit shreds nodes and is the anti-baseline. Buddy cells pay "
            "a small alignment waste for affinity guarantees."
        ),
    )


def run_t5_fairness(seed: int, scale: float) -> ExperimentResult:
    """T5: cross-lab fairness (Jain) and quota adherence."""
    tspec = campus_trace_spec(seed, scale, days=7.0, load=1.05)
    quota = QuotaConfig.equal_shares(sweep.trace_meta(tspec).labs, 176, fraction=0.6)
    cells = {
        "fifo": SimCell(trace=tspec, scheduler=SchedulerSpec(name="fifo")),
        "fair-share": SimCell(trace=tspec, scheduler=SchedulerSpec(name="fair-share")),
        "tiered-quota": SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="tiered-quota", quotas=dict(quota.quotas)),
        ),
    }
    rows = []
    adherence_rows = []
    for name, result in sweep.run_cells(cells).items():
        lab_summary = fairness_summary(result.jobs, key="lab_id")
        user_summary = fairness_summary(result.jobs, key="user_id")
        rows.append(
            {
                "scheduler": name,
                "jain_labs": lab_summary["jain"],
                "jain_users": user_summary["jain"],
                "max_lab_share": lab_summary["max_share"],
                "avg_wait_h": result.metrics.wait_mean_s / 3600.0,
            }
        )
        if name == "tiered-quota":
            horizon = max(1.0, result.end_time)
            for report in quota_adherence(result.jobs, quota, horizon):
                adherence_rows.append(
                    {
                        "lab": report.lab,
                        "quota_gpus": report.quota_gpus,
                        "guaranteed_gpu_h": report.guaranteed_gpu_hours,
                        "free_tier_gpu_h": report.opportunistic_gpu_hours,
                        "adherence": report.adherence,
                    }
                )
    lab_hours = [row["guaranteed_gpu_h"] for row in adherence_rows]
    notes = (
        "Fair-share and tiered-quota raise Jain's index over FIFO (whose lab "
        "shares just mirror demand skew)."
    )
    if lab_hours:
        notes += (
            f" Under tiered-quota, guaranteed-tier GPU-hours across labs have "
            f"Jain {jain_index(lab_hours):.3f}."
        )
    result_rows = rows + adherence_rows
    return ExperimentResult("T5", "Fairness across labs", rows=result_rows, notes=notes)
