"""Command-line runner for the experiment registry.

Usage::

    python -m repro.experiments T2                 # one experiment
    python -m repro.experiments T2 F5 --scale 0.5  # several, quick scale
    python -m repro.experiments --all --jobs 4     # fan out over 4 workers
    python -m repro.experiments --all --csv-dir out/
    python -m repro.experiments --list

Simulation runs execute through the sweep engine: ``--jobs N`` fans
independent cells over a process pool (rendered output stays
byte-identical to serial), and the content-addressed result cache makes
warm re-runs near-instant (``--no-cache`` opts out, ``--cache-dir`` /
``$TCLOUD_SWEEP_CACHE`` relocate it).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .. import sweep
from ..errors import ReproError
from .registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of the campus-cluster study.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment IDs (e.g. T2 F5 A1)")
    parser.add_argument("--all", action="store_true", help="run the full suite")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv-dir", default=None, help="also export each result as CSV here")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for simulation cells (default 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="sweep result cache root (default: $TCLOUD_SWEEP_CACHE or ~/.cache/tcloud-sweep)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id, spec in EXPERIMENTS.items():
            print(f"{experiment_id:4s} [{spec.kind:6s}] {spec.title} — {spec.description}")
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    ids = list(EXPERIMENTS) if args.all else [e.upper() for e in args.experiments]
    if not ids:
        parser.error("name at least one experiment ID, or use --all / --list")
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; known: {sorted(EXPERIMENTS)}")

    csv_dir = Path(args.csv_dir) if args.csv_dir else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)

    failed: list[str] = []
    with sweep.execution(
        jobs=args.jobs, cache_dir=args.cache_dir, no_cache=args.no_cache
    ) as runner:
        for experiment_id in ids:
            started = time.perf_counter()
            before = runner.stats.snapshot()
            try:
                result = EXPERIMENTS[experiment_id].run(seed=args.seed, scale=args.scale)
            except ReproError as exc:
                print(f"{experiment_id}: error: {exc}", file=sys.stderr)
                failed.append(experiment_id)
                continue
            elapsed = time.perf_counter() - started
            after = runner.stats.snapshot()
            hits = after["cache_hits"] - before["cache_hits"]
            misses = after["cache_misses"] - before["cache_misses"]
            footer = f"[{experiment_id} regenerated in {elapsed:.1f}s at scale {args.scale}"
            if hits or misses:
                footer += f"; cells {hits} cached / {misses} run"
                footer += f"; jobs {args.jobs}"
            footer += "]"
            print(result.render())
            print(footer + "\n")
            if csv_dir:
                result.export_csv(csv_dir / f"{experiment_id}.csv")

    if failed:
        print(
            f"{len(failed)} experiment(s) failed: {', '.join(failed)}", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
