"""Command-line runner for the experiment registry.

Usage::

    python -m repro.experiments T2                 # one experiment
    python -m repro.experiments T2 F5 --scale 0.5  # several, quick scale
    python -m repro.experiments --all --csv-dir out/
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..errors import ReproError
from .registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of the campus-cluster study.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment IDs (e.g. T2 F5 A1)")
    parser.add_argument("--all", action="store_true", help="run the full suite")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv-dir", default=None, help="also export each result as CSV here")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id, spec in EXPERIMENTS.items():
            print(f"{experiment_id:4s} [{spec.kind:6s}] {spec.title} — {spec.description}")
        return 0

    ids = list(EXPERIMENTS) if args.all else [e.upper() for e in args.experiments]
    if not ids:
        parser.error("name at least one experiment ID, or use --all / --list")
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; known: {sorted(EXPERIMENTS)}")

    csv_dir = Path(args.csv_dir) if args.csv_dir else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in ids:
        started = time.perf_counter()
        try:
            result = EXPERIMENTS[experiment_id].run(seed=args.seed, scale=args.scale)
        except ReproError as exc:
            print(f"{experiment_id}: error: {exc}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s at scale {args.scale}]\n")
        if csv_dir:
            result.export_csv(csv_dir / f"{experiment_id}.csv")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
