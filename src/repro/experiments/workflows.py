"""W-DAG: transfer-aware vs transfer-oblivious placement for workflow DAGs.

Pipeline-shaped jobs (chains, fan-outs, fan-ins, RAG diamonds) ship
artifacts between stages over the leaf–spine fabric.  A placement policy
that ignores where the upstream artifacts landed pays the fabric price on
every edge; :class:`~repro.sched.placement.transfer_aware.TransferAwarePlacement`
ranks candidate nodes by artifact-fetch cost (colocating with the data
when it can, deferring briefly when the data-holding node is about to
free up) and pays less.  This experiment pins that gap: same trace, same
cluster, same scheduler — only the placement differs — and transfer-aware
must beat the oblivious baselines on mean workflow makespan at equal
utilization.

The unit execution model makes the per-workflow critical path an exact
analytical lower bound on makespan (no interference slowdown), so the
table also reports the bound and the residual — which is pure queueing
plus transfer, the only levers placement holds.
"""

from __future__ import annotations

from .. import sweep
from ..sweep import ClusterSpec, SchedulerSpec, SimCell, WorkflowTraceSpec
from .common import ExperimentResult, campus_trace_spec

#: Oblivious baselines the transfer-aware policy is measured against.
WDAG_PLACEMENTS = ("transfer-aware", "best-fit", "first-fit")

#: Cluster sized so pipeline stages compete for nodes but never starve:
#: 12 × 8 = 96 GPUs.
_WDAG_NODES = 12

#: Stage artifacts are deliberately heavy (median 320 GB): at the fabric's
#: 100 Gbps cross-node bandwidth an average edge costs ~26 s of fetch,
#: which only same-node colocation (infinite bandwidth) avoids entirely.
#: Stages and background jobs are kept narrow (≤ 4 GPUs) so whole-node
#: fragmentation — a packing effect every placement pays, studied in F8 —
#: does not drown the transfer signal this experiment isolates.
_WDAG_WORKFLOW_OVERRIDES = {
    "artifact_gb_median": 320.0,
    "artifact_gb_sigma": 1.0,
    "stage_median_minutes": 18.0,
    "fan_width": (2, 4),
    "stage_gpu_pmf": {1: 0.6, 2: 0.3, 4: 0.1},
}


def _wdag_cells(seed: int, scale: float) -> dict[str, SimCell]:
    days = max(1.0, 4.0 * scale)
    # Moderate background load (45% of the 96-GPU capacity) so workflow
    # stages queue realistically without the base jobs drowning them.
    tspec = campus_trace_spec(
        seed,
        scale,
        days=4.0,
        load=0.45,
        cluster_gpus=_WDAG_NODES * 8,
        gpu_demand_pmf={1: 0.55, 2: 0.25, 4: 0.20},
    )
    wspec = WorkflowTraceSpec(
        days=days,
        workflows_per_day=36.0,
        synth_seed=seed + 101,
        overrides=dict(_WDAG_WORKFLOW_OVERRIDES),
    )
    return {
        placement: SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="backfill-easy", placement=placement),
            cluster=ClusterSpec(kind="uniform", nodes=_WDAG_NODES),
            exec_model={"unit": True},
            workflow=wspec,
        )
        for placement in WDAG_PLACEMENTS
    }


def run_w_dag(seed: int, scale: float) -> ExperimentResult:
    """W-DAG: workflow makespan by placement policy (table)."""
    runs = sweep.run_cells(_wdag_cells(seed, scale))
    rows = []
    for placement, result in runs.items():
        summary = result.summary
        rows.append(
            {
                "placement": placement,
                "wf_makespan_mean_h": round(summary["wf_makespan_mean_h"], 4),
                "wf_critical_path_h": round(summary["wf_critical_path_h"], 4),
                "wf_transfer_s": round(summary["wf_transfer_s"], 1),
                "wf_completed": int(summary["wf_completed"]),
                "workflows": int(summary["workflows"]),
                "utilization": round(summary["utilization"], 4),
                "avg_wait_h": round(summary["avg_wait_h"], 3),
                "completed": int(summary["completed"]),
            }
        )
    rows.sort(key=lambda row: float(row["wf_makespan_mean_h"]))
    aware = next(row for row in rows if row["placement"] == "transfer-aware")
    oblivious = min(
        (row for row in rows if row["placement"] != "transfer-aware"),
        key=lambda row: float(row["wf_makespan_mean_h"]),
    )
    gap_s = 3600.0 * (
        float(oblivious["wf_makespan_mean_h"]) - float(aware["wf_makespan_mean_h"])
    )
    return ExperimentResult(
        "W-DAG",
        "Workflow makespan: transfer-aware vs oblivious placement",
        rows=rows,
        notes=(
            f"Pipeline DAGs (chain/fan-out/fan-in/RAG, ~320 GB median "
            f"artifacts) over a {_WDAG_NODES}-node uniform cluster with "
            f"background campus load; unit execution model, so "
            f"wf_critical_path_h is an exact per-workflow lower bound and "
            f"the makespan residual is queueing + transfer only. "
            f"Transfer-aware placement colocates stages with their upstream "
            f"artifacts (cross-node fetches cost ~26 s per edge at 100 Gbps), "
            f"cutting fetch time to {float(aware['wf_transfer_s']):.0f} s vs "
            f"{float(oblivious['wf_transfer_s']):.0f} s for the best "
            f"oblivious baseline ({oblivious['placement']}) and the mean "
            f"workflow makespan by {gap_s:.0f} s — at equal utilization "
            f"({float(aware['utilization']):.4f} vs "
            f"{float(oblivious['utilization']):.4f})."
        ),
    )
