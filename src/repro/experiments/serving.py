"""Inference-serving experiments: S1, S2.

S1 stresses the serving story itself: as offered load grows past what the
baseline (quota-backed) replicas can serve, does autoscaled harvesting of
idle GPUs hold the p99 SLO where a fixed fleet visibly cannot?  S2 turns
the question around and asks what serving costs training: co-locating an
autoscaled fleet on the campus cluster must leave the guaranteed tier's F7
promise (near-zero wait) intact, pushing all displacement into the
opportunistic tier.

The fleets are declared as :class:`~repro.sweep.ServingSpec` data so each
(arm, multiplier) run is an independent sweep cell.
"""

from __future__ import annotations

import numpy as np

from .. import sweep
from ..sched import QuotaConfig
from ..sweep import SchedulerSpec, ServingSpec, SimCell, TraceSpec
from ..workload.job import JobTier
from ..workload.trace import Trace
from .common import ExperimentResult, campus_trace_spec

#: Lab owning the co-located inference services.
SERVING_LAB = "lab-serve"

#: Horizon of the serving experiments (scaled like every other experiment).
SERVING_DAYS = 3.0


def serving_services(load_multiplier: float = 1.0) -> tuple[tuple[dict, dict], ...]:
    """The standard two-service fleet of the S-experiments, as spec data.

    A chat-style service (gpt2-medium, ~26 req/s per V100 replica) and an
    embedding service (bert-base, ~43 req/s per replica).  At multiplier
    1.0 the baseline replicas cover the diurnal peak with margin; past
    ~1.5× the chat baseline saturates and only surge capacity can hold
    the SLO.
    """
    return (
        (
            {
                "service_id": "svc-chat",
                "user_id": "u-serve-1",
                "lab_id": SERVING_LAB,
                "model_name": "gpt2-medium",
                "slo_p99_s": 2.0,
                "base_replicas": 2,
                "max_replicas": 12,
            },
            {"peak_rps": 40.0 * load_multiplier},
        ),
        (
            {
                "service_id": "svc-embed",
                "user_id": "u-serve-2",
                "lab_id": SERVING_LAB,
                "model_name": "bert-base",
                "slo_p99_s": 0.5,
                "base_replicas": 1,
                "max_replicas": 8,
            },
            {"peak_rps": 25.0 * load_multiplier, "start_weekday": 2},
        ),
    )


def serving_workload(load_multiplier: float = 1.0):
    """The standard fleet as live (ServiceSpec, ServiceLoadConfig) pairs.

    Kept for callers that build a :class:`~repro.serving.ServingFleet`
    directly (lifecycle tests, golden captures); the experiments
    themselves ship :func:`serving_services` spec data inside cells.
    """
    from ..serving import ServiceLoadConfig, ServiceSpec

    return [
        (ServiceSpec(**service), ServiceLoadConfig(**load))
        for service, load in serving_services(load_multiplier)
    ]


def _quota_with_serving_slice(labs: tuple[str, ...]) -> QuotaConfig:
    base = QuotaConfig.equal_shares(labs, 176, fraction=0.6)
    quotas = dict(base.quotas)
    quotas[SERVING_LAB] = 3
    return QuotaConfig(quotas=quotas)


def serving_quota(trace: Trace) -> QuotaConfig:
    """Campus quota plus a small guaranteed slice for the serving lab.

    The serving lab's quota covers exactly its baseline replicas (3 GPUs):
    baselines are entitled, everything the autoscaler adds on top must be
    harvested opportunistically.
    """
    return _quota_with_serving_slice(trace.labs())


def _colocated_cell(
    tspec: TraceSpec,
    quota: QuotaConfig,
    seed: int,
    scale: float,
    load_multiplier: float,
    autoscaled: bool,
) -> SimCell:
    """One (trace copy, serving fleet) co-located run under tiered quota."""
    return SimCell(
        trace=tspec,
        scheduler=SchedulerSpec(name="tiered-quota", quotas=dict(quota.quotas)),
        serving=ServingSpec(
            services=serving_services(load_multiplier),
            days=max(1.0, SERVING_DAYS * scale),
            autoscaled=autoscaled,
            seed=seed + 13,
        ),
    )


def run_s1_serving_slo(seed: int, scale: float) -> ExperimentResult:
    """S1: SLO attainment vs offered load, harvesting vs fixed replicas."""
    tspec = campus_trace_spec(seed, scale, days=SERVING_DAYS, load=0.9)
    quota = _quota_with_serving_slice(sweep.trace_meta(tspec).labs)
    cells = {}
    for multiplier in (0.5, 1.0, 2.0, 3.0, 5.0):
        for arm, autoscaled in (("autoscaled", True), ("fixed", False)):
            cells[f"{multiplier}:{arm}"] = _colocated_cell(
                tspec, quota, seed, scale, multiplier, autoscaled
            )
    results = sweep.run_cells(cells)
    rows = []
    attainment: dict[str, list[tuple[float, float]]] = {
        "autoscaled": [],
        "fixed": [],
    }
    for multiplier in (0.5, 1.0, 2.0, 3.0, 5.0):
        for arm in ("autoscaled", "fixed"):
            result = results[f"{multiplier}:{arm}"]
            serving = result.metrics.serving
            assert serving is not None
            rows.append(
                {
                    "load_x": multiplier,
                    "arm": arm,
                    "offered_mreq": serving.offered_requests / 1e6,
                    "slo_attainment": serving.slo_attainment,
                    "goodput_rps": serving.goodput_rps,
                    "harvested_gpu_h": serving.harvested_gpu_hours,
                    "serving_preempt": serving.replica_preemptions,
                    "guar_wait_h": result.metrics.wait_mean_by_tier["guaranteed"]
                    / 3600.0,
                }
            )
            attainment[arm].append((multiplier, serving.slo_attainment))
    top = max(row["load_x"] for row in rows)
    by_arm = {(row["load_x"], row["arm"]): row for row in rows}
    peak_auto = by_arm[(top, "autoscaled")]
    peak_fixed = by_arm[(top, "fixed")]
    return ExperimentResult(
        "S1",
        "Serving SLO attainment vs offered load",
        rows=rows,
        series=attainment,
        x_label="load_x",
        notes=(
            f"At {top:g}x load the fixed baseline fleet attains the p99 SLO for only "
            f"{peak_fixed['slo_attainment']:.0%} of requests while autoscaled "
            f"harvesting holds {peak_auto['slo_attainment']:.0%} using "
            f"{peak_auto['harvested_gpu_h']:.0f} harvested GPU-hours of surge "
            f"capacity — and guaranteed-tier training wait stays at "
            f"{peak_auto['guar_wait_h']:.2f} h (fixed arm: "
            f"{peak_fixed['guar_wait_h']:.2f} h), because surge replicas run "
            "opportunistically and absorb the reclaim preemptions themselves."
        ),
    )


def run_s2_serving_colocation(seed: int, scale: float) -> ExperimentResult:
    """S2: does co-located serving disturb training's tier guarantees?"""
    tspec = campus_trace_spec(
        seed, scale, days=SERVING_DAYS, load=1.1, guaranteed_fraction=0.5
    )
    quota = _quota_with_serving_slice(sweep.trace_meta(tspec).labs)
    cells = {
        "co-located": _colocated_cell(
            tspec, quota, seed, scale, load_multiplier=1.5, autoscaled=True
        ),
        "training-only": SimCell(
            trace=tspec,
            scheduler=SchedulerSpec(name="tiered-quota", quotas=dict(quota.quotas)),
        ),
    }
    results = sweep.run_cells(cells)
    colocated = results["co-located"]
    training_only = results["training-only"]
    assert colocated.metrics.serving is not None
    rows = []
    for arm, result in (("training-only", training_only), ("co-located", colocated)):
        training_jobs = [j for j in result.jobs.values() if j.service_id is None]
        for tier in JobTier:
            tier_jobs = [j for j in training_jobs if j.tier is tier]
            waits = [j.wait_time for j in tier_jobs if j.wait_time is not None]
            rows.append(
                {
                    "arm": arm,
                    "tier": tier.value,
                    "jobs": len(tier_jobs),
                    "wait_p50_h": float(np.median(waits)) / 3600.0
                    if waits
                    else float("nan"),
                    "wait_p95_h": float(np.percentile(waits, 95)) / 3600.0
                    if waits
                    else float("nan"),
                    "preemptions": sum(j.preemptions for j in tier_jobs),
                    "completed": sum(
                        1 for j in tier_jobs if j.state.value == "completed"
                    ),
                }
            )
    serving = colocated.metrics.serving
    guar = {row["arm"]: row for row in rows if row["tier"] == "guaranteed"}
    oppo = {row["arm"]: row for row in rows if row["tier"] == "opportunistic"}
    return ExperimentResult(
        "S2",
        "Training-tier impact of co-located serving",
        rows=rows,
        notes=(
            f"Adding a serving fleet ({serving.offered_requests / 1e6:.1f}M "
            f"requests at {serving.slo_attainment:.0%} SLO attainment, "
            f"{serving.harvested_gpu_hours:.0f} harvested GPU-hours) moves "
            f"guaranteed-tier median training wait from "
            f"{guar['training-only']['wait_p50_h']:.2f} h to "
            f"{guar['co-located']['wait_p50_h']:.2f} h — the F7 promise holds "
            f"— while the opportunistic tier absorbs the squeeze "
            f"(p95 wait {oppo['training-only']['wait_p95_h']:.1f} h → "
            f"{oppo['co-located']['wait_p95_h']:.1f} h); harvested serving "
            "competes with free-tier training for idle GPUs, not with paid "
            "quota."
        ),
    )
