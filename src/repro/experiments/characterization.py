"""Workload-characterization experiments: T1 and F1–F3.

These regenerate the operational study's descriptive statistics from the
synthesized campus trace: cluster composition, diurnal arrivals, GPU-demand
mix, and duration distributions.  They exercise the workload substrate
only — no simulation — so they are fast at any scale.
"""

from __future__ import annotations

from .. import sweep
from ..cluster.cluster import build_tacc_cluster, tacc_cluster_spec
from ..ops.analytics import (
    arrivals_per_hour_of_day,
    duration_cdf_by_class,
    gpu_demand_distribution,
)
from ..sweep import TraceSpec
from ..workload.synth import tacc_campus
from .common import ExperimentResult


def run_t1_cluster_composition(seed: int, scale: float) -> ExperimentResult:
    """T1: the campus cluster's hardware composition."""
    spec = tacc_cluster_spec()
    cluster = build_tacc_cluster()
    rows = []
    for group in spec.groups:
        gpu = group.spec.gpu_spec
        rows.append(
            {
                "gpu_type": gpu.marketing_name,
                "nodes": group.count,
                "gpus_per_node": group.spec.num_gpus,
                "total_gpus": group.count * group.spec.num_gpus,
                "gpu_mem_gb": gpu.memory_gb,
                "nic_gbps": group.spec.nic_gbps,
                "grade": "datacenter" if gpu.datacenter_grade else "consumer",
            }
        )
    rows.append(
        {
            "gpu_type": "TOTAL",
            "nodes": spec.total_nodes,
            "gpus_per_node": "",
            "total_gpus": spec.total_gpus,
            "gpu_mem_gb": "",
            "nic_gbps": "",
            "grade": f"{len(cluster.topology.rack_ids)} racks",
        }
    )
    return ExperimentResult(
        "T1",
        "Cluster composition",
        rows=rows,
        notes=(
            "Heterogeneous fleet mixing grant-funded datacenter parts with "
            "cost-efficient consumer cards, as operated on campus."
        ),
    )


def _wide_mix_spec(seed: int, scale: float) -> TraceSpec:
    """The demand/duration characterization trace (shared by F2 and F3)."""
    return TraceSpec(
        days=max(3.0, 14.0 * scale),
        synth_seed=seed,
        load=None,
        overrides={"jobs_per_day": 500.0},
    )


def run_f1_arrivals(seed: int, scale: float) -> ExperimentResult:
    """F1: diurnal submission pattern, weekday vs weekend."""
    days = max(7.0, 7.0 * scale)
    trace = sweep.trace_for(
        TraceSpec(
            days=days, synth_seed=seed, load=None, overrides={"jobs_per_day": 400.0}
        )
    )
    weekday = trace.filter(lambda job: (job.submit_time // 86400.0) % 7 < 5, name="weekday")
    weekend = trace.filter(lambda job: (job.submit_time // 86400.0) % 7 >= 5, name="weekend")
    weekday_rates = arrivals_per_hour_of_day(weekday)
    weekend_rates = arrivals_per_hour_of_day(weekend)
    # Normalise per actual day count of each regime (5 weekdays, 2 weekend
    # days per week of trace).
    weeks = days / 7.0
    series = {
        "weekday_jobs_per_h": [
            (float(hour), count * days / max(1.0, 5 * weeks) / days)
            for hour, count in weekday_rates.items()
        ],
        "weekend_jobs_per_h": [
            (float(hour), count * days / max(1.0, 2 * weeks) / days)
            for hour, count in weekend_rates.items()
        ],
    }
    peak_hour = max(weekday_rates, key=weekday_rates.get)
    trough_hour = min(weekday_rates, key=weekday_rates.get)
    return ExperimentResult(
        "F1",
        "Diurnal job submission pattern",
        series=series,
        x_label="hour_of_day",
        notes=(
            f"Weekday submissions peak around {peak_hour:02d}:00 and trough "
            f"around {trough_hour:02d}:00; weekends run at "
            f"~{tacc_campus(days=days).weekend_factor:.0%} of weekday volume."
        ),
    )


def run_f2_gpu_demand(seed: int, scale: float) -> ExperimentResult:
    """F2: GPU-demand distribution — jobs vs GPU-hours."""
    trace = sweep.trace_for(_wide_mix_spec(seed, scale))
    distribution = gpu_demand_distribution(trace)
    rows = [
        {
            "gpus": demand,
            "jobs": int(stats["jobs"]),
            "job_share": stats["job_share"],
            "gpu_hour_share": stats["gpu_hour_share"],
        }
        for demand, stats in distribution.items()
    ]
    single = distribution.get(1, {"job_share": 0.0, "gpu_hour_share": 0.0})
    return ExperimentResult(
        "F2",
        "GPU demand: job count vs GPU-hours",
        rows=rows,
        notes=(
            f"Single-GPU jobs are {single['job_share']:.0%} of submissions but "
            f"only {single['gpu_hour_share']:.0%} of GPU-hours — wide jobs "
            "dominate capacity, small jobs dominate the queue."
        ),
    )


def run_f3_durations(seed: int, scale: float) -> ExperimentResult:
    """F3: duration CDFs by GPU-demand class (heavy tail)."""
    trace = sweep.trace_for(_wide_mix_spec(seed, scale))
    cdfs = duration_cdf_by_class(trace, boundaries=(1, 2, 8))
    series = {
        f"gpus_{label}": [(value / 3600.0, prob) for value, prob in cdf.points(60)]
        for label, cdf in cdfs.items()
    }
    medians = {label: cdf.quantile(0.5) / 60.0 for label, cdf in cdfs.items()}
    p99s = {label: cdf.quantile(0.99) / 3600.0 for label, cdf in cdfs.items()}
    notes = "; ".join(
        f"class {label}: median {medians[label]:.0f} min, p99 {p99s[label]:.0f} h"
        for label in sorted(cdfs)
    )
    return ExperimentResult(
        "F3",
        "Job duration CDF by GPU-demand class",
        series=series,
        x_label="duration_h",
        notes=f"Wider jobs run longer; {notes}.",
    )
