"""Experiment harness: regenerate every table and figure of the study."""

from .common import ExperimentResult, ExperimentSpec, campus_trace, fresh_trace_copy, run_policy
from .registry import EXPERIMENTS, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "campus_trace",
    "fresh_trace_copy",
    "run_all",
    "run_experiment",
]
