"""Node model: a server with GPUs, CPUs and memory, plus allocation state.

A :class:`Node` tracks which GPU indices, CPU cores and memory each job
holds.  All mutation goes through :meth:`Node.allocate` / :meth:`Node.free`,
which maintain the invariant that resources are never double-booked and that
freeing returns exactly what was allocated.  The cluster-level invariant
checker (:meth:`repro.cluster.cluster.Cluster.verify_invariants`) audits
these books after every simulated event in debug mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError, CapacityError, ConfigError, UnknownJobError
from ..ids import JobId, NodeId, RackId
from .gpu import GPUSpec, get_gpu_spec


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware description of one node.

    Attributes:
        gpu_type: Catalogue key into :data:`repro.cluster.gpu.GPU_CATALOG`.
        num_gpus: GPUs installed in the node.
        cpus: Logical CPU cores.
        memory_gb: Host DRAM in GiB.
        nic_gbps: Bandwidth of the node's uplink NIC (RDMA-capable fabric on
            the campus cluster).
    """

    gpu_type: str
    num_gpus: int
    cpus: int
    memory_gb: float
    nic_gbps: float = 100.0

    def __post_init__(self) -> None:
        get_gpu_spec(self.gpu_type)  # validate the key early
        if self.num_gpus <= 0:
            raise ConfigError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.cpus <= 0:
            raise ConfigError(f"cpus must be positive, got {self.cpus}")
        if self.memory_gb <= 0:
            raise ConfigError(f"memory_gb must be positive, got {self.memory_gb}")
        if self.nic_gbps <= 0:
            raise ConfigError(f"nic_gbps must be positive, got {self.nic_gbps}")

    @property
    def gpu_spec(self) -> GPUSpec:
        return get_gpu_spec(self.gpu_type)


@dataclass(frozen=True)
class NodeAllocation:
    """Immutable record of one job's holdings on one node."""

    job_id: JobId
    node_id: NodeId
    gpu_indices: tuple[int, ...]
    cpus: int
    memory_gb: float

    @property
    def num_gpus(self) -> int:
        return len(self.gpu_indices)


@dataclass
class Node:
    """A node with live allocation bookkeeping.

    Attributes:
        node_id: Unique id, conventionally ``node-rXX-sYY``.
        spec: Hardware description.
        rack_id: Rack this node sits in (placement locality).
        healthy: False while the node is failed/draining; unhealthy nodes
            refuse new allocations but keep existing books so the simulator
            can account for jobs killed by the failure.
    """

    node_id: NodeId
    spec: NodeSpec
    rack_id: RackId
    healthy: bool = True
    _allocations: dict[JobId, NodeAllocation] = field(default_factory=dict)
    _free_gpu_indices: set[int] = field(default_factory=set)
    _free_cpus: int = 0
    _free_memory_gb: float = 0.0

    def __post_init__(self) -> None:
        self._free_gpu_indices = set(range(self.spec.num_gpus))
        self._free_cpus = self.spec.cpus
        self._free_memory_gb = self.spec.memory_gb

    # -- read-only views ---------------------------------------------------

    @property
    def free_gpus(self) -> int:
        return len(self._free_gpu_indices)

    @property
    def used_gpus(self) -> int:
        return self.spec.num_gpus - self.free_gpus

    @property
    def free_cpus(self) -> int:
        return self._free_cpus

    @property
    def free_memory_gb(self) -> float:
        return self._free_memory_gb

    @property
    def jobs(self) -> tuple[JobId, ...]:
        return tuple(self._allocations)

    @property
    def idle(self) -> bool:
        return not self._allocations

    def allocation_for(self, job_id: JobId) -> NodeAllocation:
        try:
            return self._allocations[job_id]
        except KeyError:
            raise UnknownJobError(
                f"job {job_id} holds no allocation on {self.node_id}"
            ) from None

    def holds_job(self, job_id: JobId) -> bool:
        return job_id in self._allocations

    def can_fit(self, gpus: int, cpus: int = 0, memory_gb: float = 0.0) -> bool:
        """True when the node is healthy and has the free resources."""
        return (
            self.healthy
            and gpus <= self.free_gpus
            and cpus <= self._free_cpus
            and memory_gb <= self._free_memory_gb
        )

    # -- mutation ------------------------------------------------------------

    def allocate(
        self,
        job_id: JobId,
        gpus: int,
        cpus: int = 0,
        memory_gb: float = 0.0,
    ) -> NodeAllocation:
        """Reserve resources for *job_id* and return the allocation record.

        GPU indices are assigned lowest-first so allocations are
        deterministic.  A job may hold at most one allocation per node
        (multi-node jobs hold one per node).
        """
        if gpus < 0 or cpus < 0 or memory_gb < 0:
            raise AllocationError(
                f"negative request for {job_id} on {self.node_id}: "
                f"gpus={gpus} cpus={cpus} mem={memory_gb}"
            )
        if gpus == 0 and cpus == 0 and memory_gb == 0:
            raise AllocationError(f"empty request for {job_id} on {self.node_id}")
        if job_id in self._allocations:
            raise AllocationError(
                f"job {job_id} already holds an allocation on {self.node_id}"
            )
        if not self.healthy:
            raise AllocationError(f"node {self.node_id} is unhealthy")
        if gpus > self.spec.num_gpus or cpus > self.spec.cpus or memory_gb > self.spec.memory_gb:
            raise CapacityError(
                f"request for {job_id} exceeds {self.node_id} capacity: "
                f"gpus {gpus}/{self.spec.num_gpus}, cpus {cpus}/{self.spec.cpus}, "
                f"mem {memory_gb}/{self.spec.memory_gb}"
            )
        if not self.can_fit(gpus, cpus, memory_gb):
            raise AllocationError(
                f"node {self.node_id} cannot fit {job_id}: need "
                f"gpus={gpus} cpus={cpus} mem={memory_gb}, free "
                f"gpus={self.free_gpus} cpus={self._free_cpus} mem={self._free_memory_gb}"
            )
        indices = tuple(sorted(self._free_gpu_indices)[:gpus])
        self._free_gpu_indices -= set(indices)
        self._free_cpus -= cpus
        self._free_memory_gb -= memory_gb
        allocation = NodeAllocation(job_id, self.node_id, indices, cpus, memory_gb)
        self._allocations[job_id] = allocation
        return allocation

    def free(self, job_id: JobId) -> NodeAllocation:
        """Release *job_id*'s allocation and return the released record."""
        allocation = self.allocation_for(job_id)
        del self._allocations[job_id]
        overlap = self._free_gpu_indices & set(allocation.gpu_indices)
        if overlap:
            raise AllocationError(
                f"corrupt books on {self.node_id}: GPUs {sorted(overlap)} "
                f"were already free while held by {job_id}"
            )
        self._free_gpu_indices |= set(allocation.gpu_indices)
        self._free_cpus += allocation.cpus
        self._free_memory_gb += allocation.memory_gb
        return allocation

    def fail(self) -> tuple[JobId, ...]:
        """Mark the node unhealthy; return the jobs running on it.

        The caller (failure model) is responsible for killing/requeueing the
        returned jobs, which frees their allocations through :meth:`free`.
        """
        self.healthy = False
        return tuple(self._allocations)

    def repair(self) -> None:
        """Return a failed node to service.

        Requires all allocations to have been freed first — a repaired node
        must come back empty.
        """
        if self._allocations:
            raise AllocationError(
                f"cannot repair {self.node_id}: jobs {sorted(self._allocations)} "
                "still hold allocations"
            )
        self.healthy = True

    def verify_invariants(self) -> None:
        """Audit the books; raise :class:`AllocationError` on any corruption."""
        held: set[int] = set()
        for allocation in self._allocations.values():
            indices = set(allocation.gpu_indices)
            if indices & held:
                raise AllocationError(
                    f"{self.node_id}: GPU indices double-booked: {sorted(indices & held)}"
                )
            held |= indices
        if held & self._free_gpu_indices:
            raise AllocationError(
                f"{self.node_id}: GPUs both held and free: "
                f"{sorted(held & self._free_gpu_indices)}"
            )
        if held | self._free_gpu_indices != set(range(self.spec.num_gpus)):
            raise AllocationError(f"{self.node_id}: GPU indices lost from the books")
        used_cpus = sum(a.cpus for a in self._allocations.values())
        if used_cpus + self._free_cpus != self.spec.cpus:
            raise AllocationError(f"{self.node_id}: CPU books do not balance")
        used_mem = sum(a.memory_gb for a in self._allocations.values())
        if abs(used_mem + self._free_memory_gb - self.spec.memory_gb) > 1e-6:
            raise AllocationError(f"{self.node_id}: memory books do not balance")
