"""Network topology model: racks and a two-tier leaf–spine fabric.

The campus cluster wires every node to its rack's top-of-rack (leaf) switch,
and every leaf to a spine layer, giving three locality classes that the
placement policies and communication models care about:

* ``SAME_NODE`` — peers communicate over NVLink/PCIe inside one server;
* ``SAME_RACK`` — one leaf hop, full NIC bandwidth;
* ``CROSS_RACK`` — through the spine, where the leaf uplinks are
  oversubscribed by a configurable factor.

The topology is held as a :mod:`networkx` graph so path computations stay
general (e.g. for future multi-tier fabrics), but the common queries are
answered from precomputed maps in O(1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx

from ..errors import ConfigError, UnknownNodeError
from ..ids import NodeId, RackId


class Locality(enum.IntEnum):
    """Distance class between two placement endpoints (ordered near→far)."""

    SAME_NODE = 0
    SAME_RACK = 1
    CROSS_RACK = 2


@dataclass(frozen=True)
class FabricSpec:
    """Parameters of the leaf–spine fabric.

    Attributes:
        node_uplink_gbps: Node NIC → leaf link bandwidth.
        leaf_uplink_gbps: Aggregate leaf → spine bandwidth per rack.
        oversubscription: Ratio of rack ingress capacity to leaf uplink
            capacity; >1 means cross-rack traffic can congest.
        latency_us_same_rack: One-way latency for intra-rack messages.
        latency_us_cross_rack: One-way latency through the spine.
    """

    node_uplink_gbps: float = 100.0
    leaf_uplink_gbps: float = 400.0
    oversubscription: float = 2.0
    latency_us_same_rack: float = 2.0
    latency_us_cross_rack: float = 6.0

    def __post_init__(self) -> None:
        for name in ("node_uplink_gbps", "leaf_uplink_gbps", "oversubscription"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass
class Topology:
    """Rack membership plus fabric bandwidth queries.

    Build with :meth:`Topology.build` from a ``{rack_id: [node_ids]}``
    mapping; nodes may not repeat across racks.
    """

    fabric: FabricSpec
    _rack_of: dict[NodeId, RackId] = field(default_factory=dict)
    _racks: dict[RackId, tuple[NodeId, ...]] = field(default_factory=dict)
    _graph: nx.Graph = field(default_factory=nx.Graph)

    @classmethod
    def build(
        cls,
        racks: dict[RackId, list[NodeId]],
        fabric: FabricSpec | None = None,
    ) -> "Topology":
        fabric = fabric or FabricSpec()
        topo = cls(fabric=fabric)
        seen: set[NodeId] = set()
        for rack_id, node_ids in racks.items():
            if not node_ids:
                raise ConfigError(f"rack {rack_id} has no nodes")
            duplicates = seen & set(node_ids)
            if duplicates:
                raise ConfigError(
                    f"nodes appear in multiple racks: {sorted(duplicates)}"
                )
            seen |= set(node_ids)
            topo._racks[rack_id] = tuple(node_ids)
            leaf = f"leaf:{rack_id}"
            topo._graph.add_edge(leaf, "spine", gbps=fabric.leaf_uplink_gbps)
            for node in node_ids:
                topo._rack_of[node] = rack_id
                topo._graph.add_edge(node, leaf, gbps=fabric.node_uplink_gbps)
        return topo

    # -- membership ----------------------------------------------------------

    @property
    def rack_ids(self) -> tuple[RackId, ...]:
        return tuple(self._racks)

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        return tuple(self._rack_of)

    def rack_of(self, node: NodeId) -> RackId:
        try:
            return self._rack_of[node]
        except KeyError:
            raise UnknownNodeError(f"node {node} is not in the topology") from None

    def nodes_in_rack(self, rack: RackId) -> tuple[NodeId, ...]:
        try:
            return self._racks[rack]
        except KeyError:
            raise ConfigError(f"unknown rack {rack}") from None

    # -- locality ------------------------------------------------------------

    def locality(self, a: NodeId, b: NodeId) -> Locality:
        """Distance class between two nodes."""
        if a == b:
            # Both endpoints are valid node ids; validate before the shortcut.
            self.rack_of(a)
            return Locality.SAME_NODE
        if self.rack_of(a) == self.rack_of(b):
            return Locality.SAME_RACK
        return Locality.CROSS_RACK

    def bandwidth_gbps(self, a: NodeId, b: NodeId) -> float:
        """Bottleneck bandwidth of the path between two nodes.

        Same-node pairs return ``inf`` — intra-node bandwidth is a property
        of the GPU interconnect, handled by the communication models.
        """
        loc = self.locality(a, b)
        if loc is Locality.SAME_NODE:
            return float("inf")
        if loc is Locality.SAME_RACK:
            return self.fabric.node_uplink_gbps
        return min(
            self.fabric.node_uplink_gbps,
            self.fabric.leaf_uplink_gbps / self.fabric.oversubscription,
        )

    def latency_us(self, a: NodeId, b: NodeId) -> float:
        loc = self.locality(a, b)
        if loc is Locality.SAME_NODE:
            return 0.5
        if loc is Locality.SAME_RACK:
            return self.fabric.latency_us_same_rack
        return self.fabric.latency_us_cross_rack

    def hops(self, a: NodeId, b: NodeId) -> int:
        """Switch hops between two nodes (0 same node, 2 same rack, 4 cross)."""
        loc = self.locality(a, b)
        return {Locality.SAME_NODE: 0, Locality.SAME_RACK: 2, Locality.CROSS_RACK: 4}[loc]

    # -- placement spread ------------------------------------------------------

    def spread(self, nodes: list[NodeId]) -> Locality:
        """Worst locality class among a set of placement nodes.

        A single-node placement is ``SAME_NODE``; all nodes in one rack is
        ``SAME_RACK``; otherwise ``CROSS_RACK``.  Used by the execution-layer
        slowdown model and the F9 locality experiment.
        """
        if not nodes:
            raise ConfigError("spread of an empty placement is undefined")
        unique = set(nodes)
        if len(unique) == 1:
            self.rack_of(next(iter(unique)))
            return Locality.SAME_NODE
        racks = {self.rack_of(n) for n in nodes}
        return Locality.SAME_RACK if len(racks) == 1 else Locality.CROSS_RACK

    def racks_spanned(self, nodes: list[NodeId]) -> int:
        return len({self.rack_of(n) for n in nodes})
