"""Cluster substrate: heterogeneous GPU nodes, racks, fabric, partitions."""

from .cluster import (
    HETEROGENEOUS_MIX,
    Cluster,
    ClusterSpec,
    JobAllocation,
    NodeGroup,
    Placement,
    build_cluster,
    build_tacc_cluster,
    heterogeneous_cluster,
    heterogeneous_cluster_spec,
    tacc_cluster_spec,
    uniform_cluster,
)
from .gpu import GPU_CATALOG, GPUSpec, get_gpu_spec, register_gpu_spec
from .index import ClusterIndex
from .node import Node, NodeAllocation, NodeSpec
from .partition import PartitionSpec, PartitionTable
from .topology import FabricSpec, Locality, Topology

__all__ = [
    "GPU_CATALOG",
    "HETEROGENEOUS_MIX",
    "Cluster",
    "ClusterIndex",
    "ClusterSpec",
    "FabricSpec",
    "GPUSpec",
    "JobAllocation",
    "Locality",
    "Node",
    "NodeAllocation",
    "NodeGroup",
    "NodeSpec",
    "PartitionSpec",
    "PartitionTable",
    "Placement",
    "Topology",
    "build_cluster",
    "build_tacc_cluster",
    "get_gpu_spec",
    "heterogeneous_cluster",
    "heterogeneous_cluster_spec",
    "register_gpu_spec",
    "tacc_cluster_spec",
    "uniform_cluster",
]
