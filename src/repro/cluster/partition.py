"""Slurm-style partitions: named node subsets with admission limits.

The campus cluster exposes partitions per hardware pool (e.g. ``a100``,
``v100``, ``consumer``) with different wall-time caps and access tiers.
Partitions only *admit* jobs; resource accounting stays on the nodes, so a
partition is a thin policy object over the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ConfigError
from ..ids import NodeId, PartitionId


@dataclass(frozen=True)
class PartitionSpec:
    """Admission policy for one partition.

    Attributes:
        name: Partition id, referenced from job requests.
        node_ids: Nodes in this partition (a node may appear in several
            partitions, as in Slurm).
        max_walltime_hours: Reject jobs whose requested wall time exceeds
            this (``None`` = unlimited).
        max_gpus_per_job: Reject jobs wider than this (``None`` = unlimited).
        allowed_tiers: Tier names admitted (empty = all tiers).
        default: Jobs that name no partition land here.
    """

    name: PartitionId
    node_ids: tuple[NodeId, ...]
    max_walltime_hours: float | None = None
    max_gpus_per_job: int | None = None
    allowed_tiers: tuple[str, ...] = ()
    default: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("partition name must be non-empty")
        if not self.node_ids:
            raise ConfigError(f"partition {self.name} has no nodes")
        if self.max_walltime_hours is not None and self.max_walltime_hours <= 0:
            raise ConfigError(f"partition {self.name}: max_walltime_hours must be positive")
        if self.max_gpus_per_job is not None and self.max_gpus_per_job <= 0:
            raise ConfigError(f"partition {self.name}: max_gpus_per_job must be positive")

    def admits(self, num_gpus: int, walltime_hours: float, tier: str) -> bool:
        """True when a job with these characteristics may enter the partition."""
        if self.max_gpus_per_job is not None and num_gpus > self.max_gpus_per_job:
            return False
        if self.max_walltime_hours is not None and walltime_hours > self.max_walltime_hours:
            return False
        if self.allowed_tiers and tier not in self.allowed_tiers:
            return False
        return True

    def rejection_reason(
        self, num_gpus: int, walltime_hours: float, tier: str
    ) -> str | None:
        """Explain why a job is rejected, or ``None`` when admitted."""
        if self.max_gpus_per_job is not None and num_gpus > self.max_gpus_per_job:
            return (
                f"requests {num_gpus} GPUs, partition {self.name} caps jobs "
                f"at {self.max_gpus_per_job}"
            )
        if self.max_walltime_hours is not None and walltime_hours > self.max_walltime_hours:
            return (
                f"requests {walltime_hours:.1f}h wall time, partition "
                f"{self.name} caps at {self.max_walltime_hours:.1f}h"
            )
        if self.allowed_tiers and tier not in self.allowed_tiers:
            return f"tier {tier!r} not admitted by partition {self.name}"
        return None


@dataclass
class PartitionTable:
    """The set of partitions configured on a cluster."""

    partitions: dict[PartitionId, PartitionSpec] = field(default_factory=dict)

    def add(self, spec: PartitionSpec) -> None:
        if spec.name in self.partitions:
            raise ConfigError(f"duplicate partition {spec.name}")
        if spec.default and any(p.default for p in self.partitions.values()):
            raise ConfigError("only one partition may be the default")
        self.partitions[spec.name] = spec

    def get(self, name: PartitionId) -> PartitionSpec:
        try:
            return self.partitions[name]
        except KeyError:
            known = ", ".join(sorted(self.partitions))
            raise ConfigError(
                f"unknown partition {name!r}; known partitions: {known or '(none)'}"
            ) from None

    def default_partition(self) -> PartitionSpec:
        for spec in self.partitions.values():
            if spec.default:
                return spec
        raise ConfigError("no default partition configured")

    def resolve(self, name: PartitionId | None) -> PartitionSpec:
        """Resolve an optional partition name to a spec (default on None)."""
        return self.default_partition() if name is None else self.get(name)

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self.partitions.values())
