"""Cluster state: nodes + topology + partitions, with allocation bookkeeping.

The :class:`Cluster` is the single source of truth for who holds what.  The
scheduler proposes placements (``{node_id: gpu_count}``); the cluster turns
them into per-node allocations atomically — a multi-node placement either
fully commits or leaves no trace.  :func:`build_cluster` constructs a cluster
from a declarative :class:`ClusterSpec`, and :func:`build_tacc_cluster`
reproduces the campus cluster composition reported in experiment T1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import AllocationError, ConfigError, UnknownJobError, UnknownNodeError
from ..ids import JobId, NodeId, RackId
from .index import ClusterIndex
from .node import Node, NodeAllocation, NodeSpec
from .partition import PartitionSpec, PartitionTable
from .topology import FabricSpec, Topology

Placement = Mapping[NodeId, int]
"""A scheduler's placement decision: GPUs taken from each node."""


@dataclass(frozen=True)
class NodeGroup:
    """A homogeneous batch of nodes in a cluster spec.

    Attributes:
        count: Number of identical nodes.
        spec: Hardware of each node.
        nodes_per_rack: Rack granularity; racks are filled in order.
        name_prefix: Prefix for generated node ids (defaults to GPU type).
    """

    count: int
    spec: NodeSpec
    nodes_per_rack: int = 8
    name_prefix: str | None = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigError("NodeGroup.count must be positive")
        if self.nodes_per_rack <= 0:
            raise ConfigError("NodeGroup.nodes_per_rack must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a whole cluster."""

    groups: tuple[NodeGroup, ...]
    fabric: FabricSpec = FabricSpec()
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigError("cluster spec has no node groups")

    @property
    def total_gpus(self) -> int:
        return sum(g.count * g.spec.num_gpus for g in self.groups)

    @property
    def total_nodes(self) -> int:
        return sum(g.count for g in self.groups)


@dataclass(frozen=True)
class JobAllocation:
    """Everything one job holds across the cluster."""

    job_id: JobId
    node_allocations: tuple[NodeAllocation, ...]

    @property
    def num_gpus(self) -> int:
        return sum(a.num_gpus for a in self.node_allocations)

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        return tuple(a.node_id for a in self.node_allocations)

    @property
    def placement(self) -> dict[NodeId, int]:
        return {a.node_id: a.num_gpus for a in self.node_allocations}


@dataclass
class Cluster:
    """Live cluster state.

    Use :func:`build_cluster` rather than constructing directly; it wires
    nodes, racks, topology and partitions consistently.
    """

    name: str
    nodes: dict[NodeId, Node]
    topology: Topology
    partitions: PartitionTable = field(default_factory=PartitionTable)
    _job_allocations: dict[JobId, JobAllocation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # The node set is fixed for the cluster's lifetime; the index keeps
        # O(1) aggregates and pre-sorted candidate pools over it.
        self._index = ClusterIndex(self.nodes)

    # -- capacity queries ------------------------------------------------------

    @property
    def index(self) -> ClusterIndex:
        """Incremental aggregates + candidate pools (read-optimised view)."""
        return self._index

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        return tuple(self.nodes)

    @property
    def total_gpus(self) -> int:
        return self._index.total_gpus

    @property
    def healthy_gpus(self) -> int:
        return self._index.healthy_gpus

    @property
    def free_gpus(self) -> int:
        return self._index.free_healthy_gpus

    @property
    def used_gpus(self) -> int:
        return self._index.used_gpus

    @property
    def running_jobs(self) -> tuple[JobId, ...]:
        return tuple(self._job_allocations)

    def node(self, node_id: NodeId) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id}") from None

    def gpu_type_of(self, node_id: NodeId) -> str:
        return self.node(node_id).spec.gpu_type

    def nodes_of_type(self, gpu_type: str) -> tuple[Node, ...]:
        return self._index.nodes_of_type(gpu_type)

    def gpu_census(self) -> dict[str, int]:
        """Total GPUs by type — the T1 composition table."""
        census: dict[str, int] = {}
        for node in self.nodes.values():
            census[node.spec.gpu_type] = census.get(node.spec.gpu_type, 0) + node.spec.num_gpus
        return census

    def free_gpus_by_node(self, gpu_type: str | None = None) -> dict[NodeId, int]:
        """Free GPU count for each healthy node, optionally filtered by type."""
        return {
            node_id: node.free_gpus
            for node_id, node in self.nodes.items()
            if node.healthy and (gpu_type is None or node.spec.gpu_type == gpu_type)
        }

    def holds_job(self, job_id: JobId) -> bool:
        return job_id in self._job_allocations

    def allocation_of(self, job_id: JobId) -> JobAllocation:
        try:
            return self._job_allocations[job_id]
        except KeyError:
            raise UnknownJobError(f"job {job_id} holds no allocation") from None

    # -- allocation --------------------------------------------------------------

    def allocate(
        self,
        job_id: JobId,
        placement: Placement,
        cpus_per_gpu: int = 0,
        memory_gb_per_gpu: float = 0.0,
    ) -> JobAllocation:
        """Atomically commit a placement for *job_id*.

        On any per-node failure the already-committed nodes are rolled back,
        so a raised :class:`AllocationError` leaves the cluster unchanged.
        """
        if job_id in self._job_allocations:
            raise AllocationError(f"job {job_id} already holds an allocation")
        if not placement:
            raise AllocationError(f"empty placement for job {job_id}")
        if any(count <= 0 for count in placement.values()):
            raise AllocationError(
                f"placement for {job_id} contains non-positive GPU counts: {dict(placement)}"
            )
        committed: list[NodeAllocation] = []
        try:
            # Sort for deterministic commit order (and deterministic errors).
            for node_id in sorted(placement):
                count = placement[node_id]
                node = self.node(node_id)
                committed.append(
                    node.allocate(
                        job_id,
                        gpus=count,
                        cpus=cpus_per_gpu * count,
                        memory_gb=memory_gb_per_gpu * count,
                    )
                )
        except Exception:
            for done in committed:
                self.nodes[done.node_id].free(job_id)
            raise
        for done in committed:
            self._index.on_allocate(self.nodes[done.node_id], done.num_gpus)
        allocation = JobAllocation(job_id, tuple(committed))
        self._job_allocations[job_id] = allocation
        return allocation

    def free(self, job_id: JobId) -> JobAllocation:
        """Release everything *job_id* holds; returns the released record."""
        allocation = self.allocation_of(job_id)
        for node_allocation in allocation.node_allocations:
            node = self.nodes[node_allocation.node_id]
            node.free(job_id)
            self._index.on_free(node, node_allocation.num_gpus)
        del self._job_allocations[job_id]
        return allocation

    def fail_node(self, node_id: NodeId) -> tuple[JobId, ...]:
        """Mark a node failed; return ids of jobs that were running on it.

        The returned jobs still hold cluster-wide allocations — the caller
        decides whether to kill or requeue them (and must then :meth:`free`).
        """
        node = self.node(node_id)
        was_healthy = node.healthy
        victims = node.fail()
        if was_healthy:
            self._index.on_fail(node)
        return victims

    def repair_node(self, node_id: NodeId) -> None:
        node = self.node(node_id)
        was_healthy = node.healthy
        node.repair()
        if not was_healthy:
            self._index.on_repair(node)

    def jobs_on_node(self, node_id: NodeId) -> tuple[JobId, ...]:
        return self.node(node_id).jobs

    # -- feasibility ----------------------------------------------------------------

    def fits_anywhere(
        self,
        num_gpus: int,
        gpus_per_node: int | None = None,
        gpu_type: str | None = None,
        cpus_per_gpu: int = 0,
        memory_gb_per_gpu: float = 0.0,
    ) -> bool:
        """True when an idle-enough set of nodes could host the request now.

        Uses the same gang-chunk semantics as the placement policies: the
        request splits into equal per-node chunks (``gpus_per_node`` each,
        or one chunk of ``num_gpus``), and every chunk needs a distinct
        node that fits it whole.  This is a capacity check, not a placement
        decision — placement policies may still decline (e.g. buddy-cell
        alignment).
        """
        chunk = min(num_gpus, gpus_per_node or num_gpus)
        chunks_needed = max(1, -(-num_gpus // chunk))
        # O(1) pre-filter: chunks_needed nodes with `chunk` free each need at
        # least that much free in total on eligible healthy nodes.
        if gpu_type is None:
            if self._index.free_healthy_gpus < chunk * chunks_needed:
                return False
        elif self._index.free_gpus_of_type(gpu_type) < chunk * chunks_needed:
            return False
        hosts = 0
        for node in self._index.candidate_pool(gpu_type):
            if node.can_fit(chunk, cpus_per_gpu * chunk, memory_gb_per_gpu * chunk):
                hosts += 1
                if hosts >= chunks_needed:
                    return True
        return False

    # -- auditing -----------------------------------------------------------------

    def verify_invariants(self) -> None:
        """Audit all books: per-node invariants, cross-references, and the
        incremental index counters against a full scan."""
        for node in self.nodes.values():
            node.verify_invariants()
        self._index.verify(self.nodes)
        for job_id, allocation in self._job_allocations.items():
            for node_allocation in allocation.node_allocations:
                node = self.node(node_allocation.node_id)
                if not node.holds_job(job_id):
                    raise AllocationError(
                        f"cluster books list {job_id} on {node.node_id} "
                        "but the node does not"
                    )
        for node in self.nodes.values():
            for job_id in node.jobs:
                if job_id not in self._job_allocations:
                    raise AllocationError(
                        f"node {node.node_id} holds {job_id} unknown to the cluster"
                    )

    def utilization(self) -> float:
        """Fraction of healthy GPUs currently allocated (0 when none healthy)."""
        healthy = self.healthy_gpus
        if healthy == 0:
            return 0.0
        # Used-on-healthy falls out of the incremental aggregates: everything
        # on a healthy node is either free or allocated.
        return (healthy - self._index.free_healthy_gpus) / healthy


def build_cluster(spec: ClusterSpec, partitions: Iterable[PartitionSpec] = ()) -> Cluster:
    """Materialise a :class:`Cluster` from a declarative spec.

    Nodes in each group are laid out into racks of ``nodes_per_rack``; racks
    are never shared between groups (matching how the campus cluster racks
    homogeneous purchases together).
    """
    nodes: dict[NodeId, Node] = {}
    racks: dict[RackId, list[NodeId]] = {}
    rack_counter = 0
    for group in spec.groups:
        prefix = group.name_prefix or group.spec.gpu_type
        for index in range(group.count):
            if index % group.nodes_per_rack == 0:
                rack_counter += 1
            rack = f"rack-{rack_counter:02d}"
            node_id = f"{prefix}-{index:03d}"
            if node_id in nodes:
                raise ConfigError(f"duplicate node id {node_id}; use distinct name_prefix")
            nodes[node_id] = Node(node_id=node_id, spec=group.spec, rack_id=rack)
            racks.setdefault(rack, []).append(node_id)
    topology = Topology.build(racks, spec.fabric)
    table = PartitionTable()
    for partition in partitions:
        missing = set(partition.node_ids) - set(nodes)
        if missing:
            raise ConfigError(
                f"partition {partition.name} references unknown nodes: {sorted(missing)}"
            )
        table.add(partition)
    return Cluster(name=spec.name, nodes=nodes, topology=topology, partitions=table)


def tacc_cluster_spec() -> ClusterSpec:
    """The campus-cluster composition used throughout the evaluation (T1).

    A heterogeneous fleet mirroring the paper's mix of grant-funded
    datacenter parts and cost-efficient consumer cards:

    * 4 nodes × 8 A100-80GB  (32 GPUs)
    * 10 nodes × 8 V100      (80 GPUs)
    * 6 nodes × 8 RTX 3090   (48 GPUs)
    * 4 nodes × 4 RTX 2080Ti (16 GPUs)

    Total: 24 nodes, 176 GPUs.
    """
    return ClusterSpec(
        name="tacc-campus",
        groups=(
            NodeGroup(4, NodeSpec("a100-80", 8, 128, 1024, nic_gbps=200.0), nodes_per_rack=4),
            NodeGroup(10, NodeSpec("v100", 8, 96, 768, nic_gbps=100.0), nodes_per_rack=5),
            NodeGroup(6, NodeSpec("rtx3090", 8, 64, 512, nic_gbps=50.0), nodes_per_rack=6),
            NodeGroup(4, NodeSpec("rtx2080ti", 4, 32, 256, nic_gbps=25.0), nodes_per_rack=4),
        ),
        fabric=FabricSpec(node_uplink_gbps=100.0, leaf_uplink_gbps=400.0, oversubscription=2.0),
    )


def build_tacc_cluster() -> Cluster:
    """Build the campus cluster with its standard partitions."""
    spec = tacc_cluster_spec()
    cluster = build_cluster(spec)
    by_type: dict[str, list[NodeId]] = {}
    for node_id, node in cluster.nodes.items():
        by_type.setdefault(node.spec.gpu_type, []).append(node_id)
    cluster.partitions.add(
        PartitionSpec(
            "a100", tuple(by_type["a100-80"]), max_walltime_hours=72.0, max_gpus_per_job=32
        )
    )
    cluster.partitions.add(
        PartitionSpec("v100", tuple(by_type["v100"]), max_walltime_hours=120.0, default=True)
    )
    cluster.partitions.add(
        PartitionSpec(
            "consumer",
            tuple(by_type["rtx3090"] + by_type["rtx2080ti"]),
            max_walltime_hours=48.0,
            max_gpus_per_job=8,
        )
    )
    return cluster


#: Node flavours of the heterogeneous fleet preset, keyed by gpu type:
#: (cpus, memory_gb, nic_gbps), mirroring the campus cluster's hardware.
_HET_NODE_FLAVOURS: dict[str, tuple[int, float, float]] = {
    "a100-80": (128, 1024.0, 200.0),
    "v100": (96, 768.0, 100.0),
    "rtx3090": (64, 512.0, 50.0),
}

#: Default gpu-type mix of the heterogeneous fleet preset: the campus
#: cluster's 8-GPU node proportions (a100 : v100 : rtx3090 = 32 : 80 : 48),
#: which also covers every type the synthetic workloads may demand.
HETEROGENEOUS_MIX: tuple[tuple[str, float], ...] = (
    ("a100-80", 0.20),
    ("v100", 0.50),
    ("rtx3090", 0.30),
)


def heterogeneous_cluster_spec(
    num_nodes: int,
    gpus_per_node: int = 8,
    mix: tuple[tuple[str, float], ...] = HETEROGENEOUS_MIX,
    nodes_per_rack: int = 8,
    name: str | None = None,
) -> ClusterSpec:
    """A mixed-gpu-type fleet: *num_nodes* nodes split by the *mix* weights.

    Uniform benchmark clusters reject every job that names a gpu type the
    cluster lacks (~20 % of a campus-shaped trace); this preset carries
    all the types the synthetic workloads demand, in campus-like
    proportions, so fleet-scale benchmarks and federation sites exercise
    type-constrained placement instead of discarding it at admission.
    Node counts are rounded deterministically with the remainder going to
    the first (largest-weight stays stable) entry.
    """
    if num_nodes <= 0:
        raise ConfigError("heterogeneous cluster needs a positive node count")
    weights = [max(0.0, weight) for _gpu_type, weight in mix]
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ConfigError("heterogeneous mix weights must not all be zero")
    counts = [int(num_nodes * weight / total_weight) for weight in weights]
    counts[0] += num_nodes - sum(counts)  # deterministic remainder placement
    groups = []
    for (gpu_type, _weight), count in zip(mix, counts):
        if count <= 0:
            continue
        cpus, memory_gb, nic_gbps = _HET_NODE_FLAVOURS.get(gpu_type, (96, 768.0, 100.0))
        groups.append(
            NodeGroup(
                count,
                NodeSpec(gpu_type, gpus_per_node, cpus, memory_gb, nic_gbps=nic_gbps),
                nodes_per_rack=nodes_per_rack,
            )
        )
    return ClusterSpec(
        name=name or f"het-{num_nodes}x{gpus_per_node}",
        groups=tuple(groups),
        fabric=FabricSpec(node_uplink_gbps=100.0, leaf_uplink_gbps=400.0, oversubscription=2.0),
    )


def heterogeneous_cluster(
    num_nodes: int,
    gpus_per_node: int = 8,
    mix: tuple[tuple[str, float], ...] = HETEROGENEOUS_MIX,
    nodes_per_rack: int = 8,
    name: str | None = None,
) -> Cluster:
    """Build the heterogeneous fleet preset (see
    :func:`heterogeneous_cluster_spec`)."""
    return build_cluster(
        heterogeneous_cluster_spec(
            num_nodes,
            gpus_per_node=gpus_per_node,
            mix=mix,
            nodes_per_rack=nodes_per_rack,
            name=name,
        )
    )


def uniform_cluster(
    num_nodes: int,
    gpus_per_node: int = 8,
    gpu_type: str = "v100",
    cpus: int = 96,
    memory_gb: float = 768.0,
    nodes_per_rack: int = 8,
) -> Cluster:
    """Convenience factory for homogeneous clusters (tests, sweeps, F10)."""
    spec = ClusterSpec(
        name=f"uniform-{num_nodes}x{gpus_per_node}",
        groups=(
            NodeGroup(
                num_nodes,
                NodeSpec(gpu_type, gpus_per_node, cpus, memory_gb),
                nodes_per_rack=nodes_per_rack,
            ),
        ),
    )
    return build_cluster(spec)
