"""Incremental cluster-state index: O(1) aggregates + pre-bucketed node pools.

Every scheduling pass asks the same questions — how many GPUs are free,
which healthy nodes of type X could host a chunk — and answering them with
full node scans makes per-event cost grow with cluster size.  This module
keeps the answers *incrementally*:

* **Running aggregates** (``used_gpus``, ``healthy_gpus``,
  ``free_healthy_gpus``, per-type free counts) are updated by O(placement)
  hooks that :class:`~repro.cluster.cluster.Cluster` calls from
  ``allocate`` / ``free`` / ``fail_node`` / ``repair_node``, so capacity
  queries are O(1) regardless of node count.
* **Candidate pools** — all nodes sorted by id once at build time, plus a
  per-GPU-type view in the same relative order.  Placement policies filter
  these static tuples instead of re-sorting ``cluster.nodes`` on every
  attempt; within a pool the order is identical to sorting the full node
  dict, so placements (and therefore simulation results) are byte-for-byte
  unchanged.

The node *set* is fixed after cluster construction (the simulator models
failures as health flips, never membership changes), which is what lets the
pools be immutable tuples.  :meth:`verify` cross-checks every incremental
counter against a full scan and is wired into
``Cluster.verify_invariants`` so the debug-mode audit catches any drift.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from ..errors import AllocationError
from ..ids import NodeId
from ..perf import PerfCounters
from .node import Node


class ClusterIndex:
    """Read-optimised incremental view of one cluster's node state.

    Mutation happens only through the ``on_*`` hooks, which the owning
    :class:`~repro.cluster.cluster.Cluster` invokes around its own state
    transitions; everything else is a query.
    """

    def __init__(self, nodes: Mapping[NodeId, Node]) -> None:
        ordered = tuple(nodes[node_id] for node_id in sorted(nodes))
        self._nodes_sorted: tuple[Node, ...] = ordered
        by_type: dict[str, list[Node]] = {}
        for node in ordered:
            by_type.setdefault(node.spec.gpu_type, []).append(node)
        self._by_type: dict[str, tuple[Node, ...]] = {
            gpu_type: tuple(members) for gpu_type, members in by_type.items()
        }
        # -- running aggregates (maintained by the hooks below) --------------
        self.total_gpus: int = sum(n.spec.num_gpus for n in ordered)
        self.used_gpus: int = sum(n.used_gpus for n in ordered)
        self.healthy_gpus: int = sum(n.spec.num_gpus for n in ordered if n.healthy)
        self.free_healthy_gpus: int = sum(n.free_gpus for n in ordered if n.healthy)
        self._free_by_type: dict[str, int] = {
            gpu_type: sum(n.free_gpus for n in members if n.healthy)
            for gpu_type, members in self._by_type.items()
        }
        # Per-type availability histogram: _free_hist[t][c] counts healthy
        # nodes of type t with at least c GPUs free (c >= 1).  Lets the
        # placement layer reject impossible requests in O(1) — the common
        # case on a congested cluster — instead of scanning every node to
        # conclude nothing fits.  Updated in O(gpus moved) per transition.
        self._free_hist: dict[str, list[int]] = {}
        for gpu_type, members in self._by_type.items():
            hist = [0] * (max(n.spec.num_gpus for n in members) + 1)
            for node in members:
                if node.healthy:
                    for count in range(1, node.free_gpus + 1):
                        hist[count] += 1
            self._free_hist[gpu_type] = hist
        # -- array-of-structs mirror (placement inner loop) -------------------
        # Parallel arrays aligned with ``_nodes_sorted``: free GPU count and
        # health per node, kept exact by the same hooks that maintain the
        # scalar aggregates.  Candidate scans become one vectorized mask over
        # these arrays instead of a Python loop over Node objects; selected
        # positions come back ascending, i.e. in the identical id order the
        # object scan used, so placements are byte-for-byte unchanged.
        self._free_arr: np.ndarray = np.array(
            [n.free_gpus for n in ordered], dtype=np.int64
        )
        self._healthy_arr: np.ndarray = np.array(
            [n.healthy for n in ordered], dtype=bool
        )
        self._pos_of: dict[NodeId, int] = {
            node.node_id: position for position, node in enumerate(ordered)
        }
        self._type_positions: dict[str, np.ndarray] = {
            gpu_type: np.array(
                [self._pos_of[node.node_id] for node in members], dtype=np.int64
            )
            for gpu_type, members in self._by_type.items()
        }
        # -- relax epochs (dirty-set signal for the blocked-verdict cache) ----
        # Placement feasibility is *monotone* between capacity-increasing
        # events: allocations and failures only shrink the fit set, so a
        # request that found no placement stays unplaceable until a free or
        # repair occurs on a node it could use.  The epochs below tick on
        # exactly those transitions (per GPU type, plus a global counter for
        # untyped requests); schedulers compare a failure's epoch against the
        # current one to skip provably-doomed placement attempts.
        self._relax_epoch_by_type: dict[str, int] = dict.fromkeys(self._by_type, 0)
        self.relax_epoch_global: int = 0
        #: Hot-path counters; the simulator rebinds a fresh struct per run.
        self.perf = PerfCounters()

    # -- queries ---------------------------------------------------------------

    @property
    def nodes_sorted(self) -> tuple[Node, ...]:
        """All nodes in id order (health and fullness NOT filtered)."""
        return self._nodes_sorted

    @property
    def gpu_types(self) -> tuple[str, ...]:
        """GPU types present, in first-appearance (id) order."""
        return tuple(self._by_type)

    def nodes_of_type(self, gpu_type: str) -> tuple[Node, ...]:
        """Nodes of one type in id order (empty for unknown types)."""
        return self._by_type.get(gpu_type, ())

    def free_gpus_of_type(self, gpu_type: str) -> int:
        """Free GPUs on healthy nodes of one type — O(1)."""
        return self._free_by_type.get(gpu_type, 0)

    def candidate_pool(self, gpu_type: str | None) -> tuple[Node, ...]:
        """The static pool a placement scan should filter.

        Typed requests get the per-type tuple; untyped requests get the
        global id-ordered tuple (the single-GPU-type rule is applied by the
        placement layer, which needs cross-type candidate order).
        """
        if gpu_type is None:
            return self._nodes_sorted
        return self._by_type.get(gpu_type, ())

    def relax_epoch(self, gpu_type: str | None) -> int:
        """Capacity-relaxation epoch for requests eligible on *gpu_type*.

        Ticks whenever schedulable capacity that could serve such a request
        *increases* (a free on a healthy node, a repair).  While the epoch
        is unchanged, a placement failure observed under it is still valid —
        the monotone-feasibility argument in the class docstring — which is
        what lets the scheduler layer cache blocked verdicts.  Types absent
        from the cluster pin at 0 (nothing can ever relax them).
        """
        if gpu_type is None:
            return self.relax_epoch_global
        return self._relax_epoch_by_type.get(gpu_type, 0)

    def nodes_with_free(self, gpu_type: str, chunk: int) -> int:
        """Healthy nodes of one type with >= *chunk* GPUs free — O(1).

        An upper bound on a request's candidate count (CPU/memory and
        allowed-node constraints can only shrink it further), which is what
        makes it safe for short-circuiting impossible placements.
        """
        hist = self._free_hist.get(gpu_type)
        if hist is None or chunk >= len(hist):
            return 0
        return hist[chunk] if chunk >= 1 else len(self._by_type[gpu_type])

    def may_fit_chunk(self, gpu_type: str | None, chunk: int) -> bool:
        """Cheap O(1) pre-filter: could *any* node host a chunk this size?"""
        if gpu_type is None:
            return any(
                self.nodes_with_free(gpu_type, chunk) > 0 for gpu_type in self._by_type
            )
        return self.nodes_with_free(gpu_type, chunk) > 0

    def placement_possible(self, gpu_type: str | None, chunk: int, num_chunks: int) -> bool:
        """O(#types) necessary condition for a gang placement to exist now.

        Every policy needs ``num_chunks`` distinct nodes of a single GPU
        type with ``chunk`` free GPUs each; when no type has that many,
        every candidate scan is guaranteed to come up short, so policies
        return ``None`` without touching a node.
        """
        if gpu_type is not None:
            return self.nodes_with_free(gpu_type, chunk) >= num_chunks
        return any(
            self.nodes_with_free(gpu_type, chunk) >= num_chunks
            for gpu_type in self._by_type
        )

    def iter_candidates(self, gpu_type: str | None, chunk: int) -> Iterator[Node]:
        """Nodes (id order) with the chunk's GPUs free, with perf accounting.

        One vectorized mask over the array mirror selects healthy nodes
        with ``>= chunk`` free GPUs; callers still apply their full fit
        predicate (CPU/memory, allowed nodes) against the real ``Node``
        objects, so every node the object scan would have accepted — and
        only those — survives, in the identical id order (``np.nonzero``
        returns ascending positions).  Nodes the mask drops would have
        failed ``can_fit`` anyway.  Short-circuits to nothing when
        :meth:`may_fit_chunk` proves the scan pointless; nodes handed out
        are counted into :attr:`perf` even when the consumer stops early
        (first-fit).
        """
        perf = self.perf
        perf.candidate_scans += 1
        if not self.may_fit_chunk(gpu_type, chunk):
            return
        fits = self._healthy_arr & (self._free_arr >= chunk)
        if gpu_type is None:
            positions = np.nonzero(fits)[0]
        else:
            typed = self._type_positions.get(gpu_type)
            if typed is None:
                return
            positions = typed[fits[typed]]
        nodes = self._nodes_sorted
        examined = 0
        try:
            for position in positions:
                examined += 1
                yield nodes[position]
        finally:
            perf.nodes_examined += examined

    # -- mutation hooks (called by Cluster only) --------------------------------

    def on_allocate(self, node: Node, gpus: int) -> None:
        """*gpus* GPUs were just allocated on *node* (node was healthy)."""
        self.used_gpus += gpus
        self.free_healthy_gpus -= gpus
        gpu_type = node.spec.gpu_type
        self._free_by_type[gpu_type] -= gpus
        hist = self._free_hist[gpu_type]
        free_now = node.free_gpus  # node books already reflect the grab
        self._free_arr[self._pos_of[node.node_id]] = free_now
        for count in range(free_now + 1, free_now + gpus + 1):
            hist[count] -= 1

    def on_free(self, node: Node, gpus: int) -> None:
        """*gpus* GPUs were just released on *node*.

        Failed nodes keep their books until their jobs are cleaned up, so a
        release on an unhealthy node adjusts only the used counter — the
        GPUs do not become schedulable until repair.
        """
        self.used_gpus -= gpus
        self._free_arr[self._pos_of[node.node_id]] = node.free_gpus
        if node.healthy:
            gpu_type = node.spec.gpu_type
            self.free_healthy_gpus += gpus
            self._free_by_type[gpu_type] += gpus
            self._relax_epoch_by_type[gpu_type] += 1
            self.relax_epoch_global += 1
            hist = self._free_hist[gpu_type]
            free_now = node.free_gpus
            for count in range(free_now - gpus + 1, free_now + 1):
                hist[count] += 1

    def on_fail(self, node: Node) -> None:
        """*node* just transitioned healthy → failed (books still intact)."""
        gpu_type = node.spec.gpu_type
        self._healthy_arr[self._pos_of[node.node_id]] = False
        self.healthy_gpus -= node.spec.num_gpus
        self.free_healthy_gpus -= node.free_gpus
        self._free_by_type[gpu_type] -= node.free_gpus
        hist = self._free_hist[gpu_type]
        for count in range(1, node.free_gpus + 1):
            hist[count] -= 1

    def on_repair(self, node: Node) -> None:
        """*node* just transitioned failed → healthy (books emptied)."""
        gpu_type = node.spec.gpu_type
        position = self._pos_of[node.node_id]
        self._healthy_arr[position] = True
        self._free_arr[position] = node.free_gpus
        self.healthy_gpus += node.spec.num_gpus
        self.free_healthy_gpus += node.free_gpus
        self._free_by_type[gpu_type] += node.free_gpus
        self._relax_epoch_by_type[gpu_type] += 1
        self.relax_epoch_global += 1
        hist = self._free_hist[gpu_type]
        for count in range(1, node.free_gpus + 1):
            hist[count] += 1

    # -- auditing ----------------------------------------------------------------

    def verify(self, nodes: Mapping[NodeId, Node]) -> None:
        """Cross-check every incremental counter against a full scan."""
        if set(nodes) != {node.node_id for node in self._nodes_sorted}:
            raise AllocationError("index node set diverged from the cluster")
        scans = {
            "total_gpus": (self.total_gpus, sum(n.spec.num_gpus for n in nodes.values())),
            "used_gpus": (self.used_gpus, sum(n.used_gpus for n in nodes.values())),
            "healthy_gpus": (
                self.healthy_gpus,
                sum(n.spec.num_gpus for n in nodes.values() if n.healthy),
            ),
            "free_healthy_gpus": (
                self.free_healthy_gpus,
                sum(n.free_gpus for n in nodes.values() if n.healthy),
            ),
        }
        for counter, (incremental, scanned) in scans.items():
            if incremental != scanned:
                raise AllocationError(
                    f"index counter {counter} drifted: incremental={incremental} "
                    f"full-scan={scanned}"
                )
        for gpu_type, members in self._by_type.items():
            scanned = sum(n.free_gpus for n in members if n.healthy)
            if self._free_by_type[gpu_type] != scanned:
                raise AllocationError(
                    f"index free count for {gpu_type} drifted: "
                    f"incremental={self._free_by_type[gpu_type]} full-scan={scanned}"
                )
            hist = self._free_hist[gpu_type]
            for count in range(1, len(hist)):
                scanned_count = sum(
                    1 for n in members if n.healthy and n.free_gpus >= count
                )
                if hist[count] != scanned_count:
                    raise AllocationError(
                        f"index availability histogram for {gpu_type} drifted at "
                        f">={count} free: incremental={hist[count]} "
                        f"full-scan={scanned_count}"
                    )
        for position, node in enumerate(self._nodes_sorted):
            if self._free_arr[position] != node.free_gpus:
                raise AllocationError(
                    f"array mirror free count for {node.node_id} drifted: "
                    f"array={int(self._free_arr[position])} node={node.free_gpus}"
                )
            if bool(self._healthy_arr[position]) != node.healthy:
                raise AllocationError(
                    f"array mirror health for {node.node_id} drifted: "
                    f"array={bool(self._healthy_arr[position])} node={node.healthy}"
                )
