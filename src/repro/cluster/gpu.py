"""GPU specification catalogue.

The campus cluster is heterogeneous: datacenter parts (V100, A100) bought on
research grants sit next to consumer cards (RTX 2080 Ti, RTX 3090) bought for
cost efficiency.  Schedulers and the execution-layer performance models need
per-type compute throughput, memory capacity, and intra-node interconnect
bandwidth, which this catalogue provides.

Throughput numbers are vendor peak specs; the performance models only use
them for *relative* speed between GPU types, which is what placement and
scheduling decisions depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes:
        name: Catalogue key, e.g. ``"a100-40"``.
        marketing_name: Human-readable name for reports.
        memory_gb: HBM/GDDR capacity in GiB.
        fp32_tflops: Peak single-precision throughput.
        tensor_tflops: Peak mixed-precision tensor-core throughput (equals
            ``fp32_tflops`` for cards without tensor cores).
        intra_node_gbps: Per-GPU bandwidth to peers in the same node
            (NVLink where present, otherwise PCIe).
        datacenter_grade: True for parts with ECC + NVLink; consumer cards
            fail more often and forbid peer-to-peer in some configurations,
            which the failure model uses.
        tdp_watts: Board power limit, used by the energy accounting in
            :mod:`repro.ops.energy`.
        idle_watts: Power draw of an allocated-but-idle or unallocated
            board (fans + memory refresh).
    """

    name: str
    marketing_name: str
    memory_gb: float
    fp32_tflops: float
    tensor_tflops: float
    intra_node_gbps: float
    datacenter_grade: bool
    tdp_watts: float = 300.0
    idle_watts: float = 50.0

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.fp32_tflops <= 0:
            raise ConfigError(f"GPU spec {self.name} has non-positive capacity")
        if self.tensor_tflops < self.fp32_tflops:
            raise ConfigError(
                f"GPU spec {self.name}: tensor_tflops must be >= fp32_tflops"
            )

    @property
    def relative_speed(self) -> float:
        """Training speed relative to a V100 (the cluster's reference part)."""
        return self.tensor_tflops / GPU_CATALOG["v100"].tensor_tflops


GPU_CATALOG: dict[str, GPUSpec] = {
    spec.name: spec
    for spec in [
        GPUSpec("v100", "NVIDIA V100 32GB", 32, 15.7, 125.0, 300.0, True, 300.0, 55.0),
        GPUSpec("a100-40", "NVIDIA A100 40GB", 40, 19.5, 312.0, 600.0, True, 400.0, 60.0),
        GPUSpec("a100-80", "NVIDIA A100 80GB", 80, 19.5, 312.0, 600.0, True, 400.0, 65.0),
        GPUSpec("p100", "NVIDIA P100 16GB", 16, 10.6, 21.2, 160.0, True, 250.0, 40.0),
        GPUSpec("t4", "NVIDIA T4 16GB", 16, 8.1, 65.0, 32.0, True, 70.0, 15.0),
        GPUSpec("rtx3090", "NVIDIA GeForce RTX 3090", 24, 35.6, 71.0, 32.0, False, 350.0, 35.0),
        GPUSpec("rtx2080ti", "NVIDIA GeForce RTX 2080 Ti", 11, 13.4, 26.9, 32.0, False, 250.0, 25.0),
    ]
}


def get_gpu_spec(name: str) -> GPUSpec:
    """Look up a GPU spec by catalogue key.

    Raises :class:`ConfigError` with the list of known keys on a miss, since
    a typo in a cluster config should fail at build time, not mid-simulation.
    """
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise ConfigError(f"unknown GPU type {name!r}; known types: {known}") from None


def register_gpu_spec(spec: GPUSpec) -> None:
    """Add a custom GPU model to the catalogue (idempotent for equal specs)."""
    existing = GPU_CATALOG.get(spec.name)
    if existing is not None and existing != spec:
        raise ConfigError(f"GPU type {spec.name!r} already registered with a different spec")
    GPU_CATALOG[spec.name] = spec
