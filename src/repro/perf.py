"""Hot-path performance counters.

:class:`PerfCounters` is a plain mutable struct threaded through the layers
that do per-event work — the cluster index counts nodes examined per
candidate scan, the scheduler framework counts placement attempts, and the
simulator accumulates scheduler-pass wall time.  The counters are
*observational only*: nothing in the simulation reads them back, so they
cannot perturb determinism (wall-clock time in particular never feeds a
scheduling decision).

``benchmarks/bench_perf_hotpath.py`` snapshots these counters per run to
track the per-event cost of the scheduler loop as the cluster grows — the
F10 scalability story — and writes the trajectory to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerfCounters:
    """Counters for one simulation run's scheduling hot path.

    Attributes:
        scheduler_passes: Number of scheduling passes executed.
        sched_pass_wall_s: Total wall-clock seconds spent inside passes
            (measurement only — never fed back into the simulation).
        placement_attempts: Placement attempts made by schedulers
            (``Scheduler.try_place`` calls, whether answered by the
            placement policy or short-circuited by the blocked cache).
        candidate_scans: Candidate-node scans performed by placement.
        nodes_examined: Nodes inspected across all candidate scans; divide
            by ``placement_attempts`` for the per-attempt cost the index
            layer is meant to keep flat as the cluster grows.
        blocked_cache_hits: Placement attempts answered from the
            blocked-verdict cache (the request failed earlier and no
            capacity-increasing event has occurred since — see
            ``ClusterIndex.relax_epoch``) without invoking the placement
            policy.  ``blocked_cache_hit_rate`` is the dirty-set hit rate
            of incremental backfill.
        reservations_incremental: Backfill reservations computed from the
            incremental release ledger (O(log running)) instead of a full
            scan over running jobs and nodes.
        reservations_scanned: Backfill reservations that fell back to the
            full scan (restricted ``allowed_nodes`` requests).
        events_enqueued: Events pushed onto the simulation event queue.
        events_dequeued: Events popped and dispatched.
        peak_pending_events: High-water mark of the pending event count —
            for an up-front trace load this is roughly the trace size, the
            regime the calendar queue is built for.
    """

    scheduler_passes: int = 0
    sched_pass_wall_s: float = 0.0
    placement_attempts: int = 0
    candidate_scans: int = 0
    nodes_examined: int = 0
    blocked_cache_hits: int = 0
    reservations_incremental: int = 0
    reservations_scanned: int = 0
    events_enqueued: int = 0
    events_dequeued: int = 0
    peak_pending_events: int = 0

    @property
    def nodes_per_attempt(self) -> float:
        """Mean nodes examined per placement attempt (0 when none ran)."""
        if self.placement_attempts == 0:
            return 0.0
        return self.nodes_examined / self.placement_attempts

    @property
    def blocked_cache_hit_rate(self) -> float:
        """Fraction of placement attempts served by the blocked cache."""
        if self.placement_attempts == 0:
            return 0.0
        return self.blocked_cache_hits / self.placement_attempts

    def as_dict(self) -> dict[str, float]:
        """Flat snapshot for JSON export."""
        return {
            "scheduler_passes": float(self.scheduler_passes),
            "sched_pass_wall_s": self.sched_pass_wall_s,
            "placement_attempts": float(self.placement_attempts),
            "candidate_scans": float(self.candidate_scans),
            "nodes_examined": float(self.nodes_examined),
            "nodes_per_attempt": self.nodes_per_attempt,
            "blocked_cache_hits": float(self.blocked_cache_hits),
            "blocked_cache_hit_rate": self.blocked_cache_hit_rate,
            "reservations_incremental": float(self.reservations_incremental),
            "reservations_scanned": float(self.reservations_scanned),
            "events_enqueued": float(self.events_enqueued),
            "events_dequeued": float(self.events_dequeued),
            "peak_pending_events": float(self.peak_pending_events),
        }
