"""Hot-path performance counters.

:class:`PerfCounters` is a plain mutable struct threaded through the layers
that do per-event work — the cluster index counts nodes examined per
candidate scan, the scheduler framework counts placement attempts, and the
simulator accumulates scheduler-pass wall time.  The counters are
*observational only*: nothing in the simulation reads them back, so they
cannot perturb determinism (wall-clock time in particular never feeds a
scheduling decision).

``benchmarks/bench_perf_hotpath.py`` snapshots these counters per run to
track the per-event cost of the scheduler loop as the cluster grows — the
F10 scalability story — and writes the trajectory to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerfCounters:
    """Counters for one simulation run's scheduling hot path.

    Attributes:
        scheduler_passes: Number of scheduling passes executed.
        sched_pass_wall_s: Total wall-clock seconds spent inside passes
            (measurement only — never fed back into the simulation).
        placement_attempts: ``PlacementPolicy.place`` invocations.
        candidate_scans: Candidate-node scans performed by placement.
        nodes_examined: Nodes inspected across all candidate scans; divide
            by ``placement_attempts`` for the per-attempt cost the index
            layer is meant to keep flat as the cluster grows.
    """

    scheduler_passes: int = 0
    sched_pass_wall_s: float = 0.0
    placement_attempts: int = 0
    candidate_scans: int = 0
    nodes_examined: int = 0

    @property
    def nodes_per_attempt(self) -> float:
        """Mean nodes examined per placement attempt (0 when none ran)."""
        if self.placement_attempts == 0:
            return 0.0
        return self.nodes_examined / self.placement_attempts

    def as_dict(self) -> dict[str, float]:
        """Flat snapshot for JSON export."""
        return {
            "scheduler_passes": float(self.scheduler_passes),
            "sched_pass_wall_s": self.sched_pass_wall_s,
            "placement_attempts": float(self.placement_attempts),
            "candidate_scans": float(self.candidate_scans),
            "nodes_examined": float(self.nodes_examined),
            "nodes_per_attempt": self.nodes_per_attempt,
        }
