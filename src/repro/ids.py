"""Typed identifier helpers.

Identifiers in the library are plain strings (cheap, hashable, trivially
serialisable) with small helpers to mint them in a deterministic, readable
format.  A :class:`IdFactory` produces sequential ids with a prefix, e.g.
``job-000042``; determinism matters because the simulator's tie-breaking and
the test suite both rely on reproducible id sequences.
"""

from __future__ import annotations

import itertools
from typing import Iterator

JobId = str
NodeId = str
UserId = str
LabId = str
RackId = str
PartitionId = str
ServiceId = str


class IdFactory:
    """Mints sequential, zero-padded string ids with a fixed prefix.

    >>> f = IdFactory("job")
    >>> f.next(), f.next()
    ('job-000000', 'job-000001')
    """

    def __init__(self, prefix: str, width: int = 6, start: int = 0) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self.prefix = prefix
        self.width = width
        self._counter = itertools.count(start)

    def next(self) -> str:
        """Return the next id in the sequence."""
        return f"{self.prefix}-{next(self._counter):0{self.width}d}"

    def take(self, n: int) -> list[str]:
        """Return the next *n* ids as a list."""
        return [self.next() for _ in range(n)]

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.next()


def job_id(index: int) -> JobId:
    """Format a job id from an integer index (inverse of :func:`id_index`)."""
    return f"job-{index:06d}"


def node_id(rack: int, slot: int) -> NodeId:
    """Format a node id from rack and in-rack slot numbers."""
    return f"node-r{rack:02d}-s{slot:02d}"


def id_index(identifier: str) -> int:
    """Extract the trailing integer index from an id like ``job-000042``.

    Raises :class:`ValueError` when the id has no trailing integer.
    """
    tail = identifier.rsplit("-", 1)[-1]
    return int(tail)
