"""Metrics collection for trace-driven simulations.

Two kinds of measurement coexist:

* **exact integrals** — GPU utilization is integrated event-by-event
  (every allocation change contributes ``used_gpus × dt``), so the average
  utilization in a result is exact, not sampled;
* **time series samples** — periodic snapshots (queue depth, used GPUs,
  running jobs) drive the F4 utilization-over-time figure.

Aggregation happens once, in :func:`summarize`, which turns the raw job
population into the numbers the paper's tables report: JCT and queueing
percentiles, per-tier breakdowns, preemption and failure counts, makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import SimulationError
from ..workload.job import FailureCategory, Job, JobState, JobTier


def percentiles(
    values: Iterable[float], points: Sequence[int] = (50, 90, 95, 99)
) -> dict[str, float]:
    """Named percentiles of a sequence (empty input → all NaN)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return {f"p{p}": float("nan") for p in points}
    return {f"p{p}": float(np.percentile(array, p)) for p in points}


@dataclass(frozen=True)
class Sample:
    """One periodic snapshot of cluster state."""

    time: float
    used_gpus: int
    total_gpus: int
    queue_depth: int
    running_jobs: int

    @property
    def utilization(self) -> float:
        return self.used_gpus / self.total_gpus if self.total_gpus else 0.0


@dataclass
class MetricsCollector:
    """Accumulates counters, the utilization integral, and samples."""

    total_gpus: int
    samples: list[Sample] = field(default_factory=list)
    preemptions: int = 0
    node_failures: int = 0
    job_restarts: int = 0
    rejected_jobs: int = 0
    provision_seconds: float = 0.0
    stage_seconds: float = 0.0
    transfer_seconds: float = 0.0
    walltime_kills: int = 0
    scheduler_passes: int = 0
    _last_time: float = 0.0
    _used_gpus: int = 0
    _used_integral: float = 0.0  # gpu-seconds
    _healthy_last_time: float = 0.0
    _healthy_gpus: int = field(default=-1)  # -1 = "all of total_gpus" (lazy init)
    _healthy_integral: float = 0.0  # gpu-seconds of healthy capacity

    def on_healthy_changed(self, now: float, healthy_gpus: int) -> None:
        """Advance the healthy-capacity integral to *now* with the new level.

        Feeds the *availability* factor of the goodput decomposition:
        healthy GPU-seconds over total GPU-seconds.  Called on node
        failure/repair; between calls the level is held constant.
        """
        if now < self._healthy_last_time - 1e-9:
            raise SimulationError(
                f"metrics time went backwards: {now} < {self._healthy_last_time}"
            )
        level = self._healthy_gpus if self._healthy_gpus >= 0 else self.total_gpus
        self._healthy_integral += level * max(0.0, now - self._healthy_last_time)
        self._healthy_last_time = now
        self._healthy_gpus = healthy_gpus

    def healthy_gpu_seconds(self, now: float) -> float:
        """Exact healthy-capacity GPU-seconds from time 0 to *now*."""
        level = self._healthy_gpus if self._healthy_gpus >= 0 else self.total_gpus
        return self._healthy_integral + level * max(0.0, now - self._healthy_last_time)

    def on_used_changed(self, now: float, used_gpus: int) -> None:
        """Advance the utilization integral to *now* with the new level."""
        if now < self._last_time - 1e-9:
            raise SimulationError(
                f"metrics time went backwards: {now} < {self._last_time}"
            )
        self._used_integral += self._used_gpus * max(0.0, now - self._last_time)
        self._last_time = now
        self._used_gpus = used_gpus

    def sample(self, now: float, used_gpus: int, queue_depth: int, running: int) -> None:
        self.samples.append(Sample(now, used_gpus, self.total_gpus, queue_depth, running))

    def served_gpu_seconds(self, now: float) -> float:
        """Exact GPU-seconds allocated from time 0 to *now*."""
        return self._used_integral + self._used_gpus * max(0.0, now - self._last_time)

    def average_utilization(self, now: float) -> float:
        if now <= 0 or self.total_gpus == 0:
            return 0.0
        return self.served_gpu_seconds(now) / (self.total_gpus * now)

    @classmethod
    def merged(cls, collectors: Sequence["MetricsCollector"], now: float) -> "MetricsCollector":
        """Fold several sites' collectors into one fleet-level collector.

        Integrals are finalised at the common horizon *now* (every site's
        exact GPU-second integral is evaluated there, so per-site figures
        sum exactly to the fleet figure) and counters are summed.  Samples
        are not merged — per-site time series stay on the site results.
        """
        fleet = cls(total_gpus=sum(c.total_gpus for c in collectors))
        for collector in collectors:
            fleet._used_integral += collector.served_gpu_seconds(now)
            fleet._healthy_integral += collector.healthy_gpu_seconds(now)
            # Counter aggregation on a fresh collector, not a job lifecycle
            # write — the underlying transitions were already controller-logged
            # at their sites.
            fleet.preemptions += collector.preemptions  # simlint: disable=R3
            fleet.node_failures += collector.node_failures
            fleet.job_restarts += collector.job_restarts
            fleet.rejected_jobs += collector.rejected_jobs
            fleet.provision_seconds += collector.provision_seconds
            fleet.stage_seconds += collector.stage_seconds
            fleet.transfer_seconds += collector.transfer_seconds
            fleet.walltime_kills += collector.walltime_kills
            fleet.scheduler_passes += collector.scheduler_passes
        fleet._last_time = now
        fleet._healthy_last_time = now
        fleet._used_gpus = 0
        fleet._healthy_gpus = 0
        return fleet


@dataclass(frozen=True)
class ServingMetrics:
    """Final aggregates of the inference-serving subsystem (one run).

    Request counts are expectations integrated from the offered-rate
    curve through the M/M/c capacity model — exact under the model, not
    sampled.  ``slo_attainment`` is the SLO-goodput ratio: requests
    answered within their service's SLO divided by requests offered.
    ``harvested_gpu_hours`` is capacity served by surge (opportunistic,
    preemptible) replicas — idle GPUs monetised for serving the same way
    the free tier monetises them for training.
    """

    services: int
    offered_requests: float
    served_requests: float
    slo_attained_requests: float
    slo_attainment: float
    goodput_rps: float
    baseline_gpu_hours: float
    harvested_gpu_hours: float
    replica_launches: int
    replica_preemptions: int
    scale_up_events: int
    scale_down_events: int
    per_service: dict[str, dict[str, float]]

    def as_row(self) -> dict[str, float]:
        return {
            "offered_mreq": self.offered_requests / 1e6,
            "slo_attainment": self.slo_attainment,
            "goodput_rps": self.goodput_rps,
            "harvested_gpu_h": self.harvested_gpu_hours,
            "serving_preemptions": float(self.replica_preemptions),
        }


@dataclass(frozen=True)
class GoodputMetrics:
    """The ML-productivity goodput decomposition of one run (or fleet).

    Follows the TPU-fleet framing: *goodput* is the share of the
    theoretically available GPU-time that produced retained training
    progress, factored into three multiplicative terms::

        goodput = availability × efficiency × productive_share
                = (healthy / total) × (served / healthy) × (productive / served)
                = productive / total            (the identity is exact)

    * **availability** — healthy GPU-time over total GPU-time (node
      failures and repair lag erode it);
    * **efficiency** — allocated (served) GPU-time over healthy GPU-time
      (queueing gaps and fragmentation erode it — this is classic
      utilization measured against *healthy* capacity);
    * **productive_share** — GPU-time that produced retained progress
      over allocated GPU-time (setup/provisioning, execution slowdown,
      discarded attempts, checkpoint loss, and migration restore/warmup
      erode it).

    Absolute GPU-hour components are carried alongside the ratios so
    per-site numbers sum exactly to fleet numbers.
    """

    total_gpu_hours: float
    healthy_gpu_hours: float
    served_gpu_hours: float
    productive_gpu_hours: float
    availability: float
    efficiency: float
    productive_share: float
    goodput: float

    @staticmethod
    def from_gpu_hours(
        total: float, healthy: float, served: float, productive: float
    ) -> "GoodputMetrics":
        """Build the decomposition from its four GPU-hour components."""
        return GoodputMetrics(
            total_gpu_hours=total,
            healthy_gpu_hours=healthy,
            served_gpu_hours=served,
            productive_gpu_hours=productive,
            availability=healthy / total if total > 0 else 0.0,
            efficiency=served / healthy if healthy > 0 else 0.0,
            productive_share=productive / served if served > 0 else 0.0,
            goodput=productive / total if total > 0 else 0.0,
        )

    def as_row(self) -> dict[str, float]:
        return {
            "goodput": self.goodput,
            "availability": self.availability,
            "efficiency": self.efficiency,
            "productive_share": self.productive_share,
            "productive_gpu_h": self.productive_gpu_hours,
        }


@dataclass(frozen=True)
class WorkflowMetrics:
    """Per-run rollup of multi-stage workflow (DAG) jobs.

    *Makespan* of a workflow is last stage end minus first stage submit.
    *Critical path* is the analytical lower bound on that makespan: the
    longest dependency chain of stage durations, assuming zero queueing,
    zero transfer, and unit execution speed — on any run with a unit
    execution model, ``makespan >= critical_path`` must hold per workflow
    (``min_slack_s >= 0``), which :mod:`repro.sim.simulator` audits under
    ``debug_invariants``.  Stage waiting decomposes into *dependency hold*
    (submit → last upstream finished) and *post-release queueing*
    (released → started): the first is the workflow's own structure, the
    second is the cluster's congestion — only the second is the
    scheduler's fault.
    """

    workflows: int
    completed_workflows: int
    stages: int
    makespan_mean_s: float
    makespan_max_s: float
    critical_path_mean_s: float
    #: min over completed workflows of (makespan − critical path); ≥ 0
    #: under unit execution (NaN when no workflow completed).
    min_slack_s: float
    dep_hold_wait_mean_s: float
    post_release_wait_mean_s: float
    transfer_seconds: float
    per_workflow: dict[str, dict[str, float]]

    def as_row(self) -> dict[str, float]:
        return {
            "workflows": float(self.workflows),
            "wf_completed": float(self.completed_workflows),
            "wf_makespan_mean_h": self.makespan_mean_s / 3600.0,
            "wf_critical_path_h": self.critical_path_mean_s / 3600.0,
            "wf_transfer_s": self.transfer_seconds,
        }


def _critical_path_s(group: list[Job]) -> float:
    """Longest dependency chain of stage durations within one workflow.

    Kahn's traversal over the in-group edges (cross-workflow dependencies
    are dropped — omitting an edge only loosens the lower bound).  A cycle
    in the trace's ``depends_on`` graph (which would deadlock-hold the
    stages forever in simulation) yields NaN rather than a bogus bound.
    """
    ids = {job.job_id for job in group}
    by_id = {job.job_id: job for job in group}
    indegree = {
        job.job_id: sum(1 for dep in job.depends_on if dep in ids) for job in group
    }
    dependents: dict[str, list[str]] = {job.job_id: [] for job in group}
    for job in group:
        for dep in job.depends_on:
            if dep in ids:
                dependents[dep].append(job.job_id)
    ready = [job_id for job_id, degree in indegree.items() if degree == 0]
    finish: dict[str, float] = {}
    while ready:
        job_id = ready.pop()
        job = by_id[job_id]
        start = max(
            (finish[dep] for dep in job.depends_on if dep in ids), default=0.0
        )
        finish[job_id] = start + job.duration
        for downstream in dependents[job_id]:
            indegree[downstream] -= 1
            if indegree[downstream] == 0:
                ready.append(downstream)
    if len(finish) != len(group):
        return float("nan")
    return max(finish.values()) if finish else 0.0


def workflow_rollup(
    jobs: Iterable[Job], transfer_seconds: float
) -> WorkflowMetrics | None:
    """Aggregate workflow-tagged jobs; ``None`` when the run has none."""
    groups: dict[str, list[Job]] = {}
    for job in jobs:
        if job.workflow_id is not None:
            groups.setdefault(job.workflow_id, []).append(job)
    if not groups:
        return None
    per_workflow: dict[str, dict[str, float]] = {}
    makespans: list[float] = []
    critical_paths: list[float] = []
    slacks: list[float] = []
    hold_waits: list[float] = []
    post_waits: list[float] = []
    stages = 0
    completed_workflows = 0
    for workflow_id, group in sorted(groups.items()):
        stages += len(group)
        submits = [job.submit_time for job in group]
        ends = [job.end_time for job in group if job.end_time is not None]
        makespan = (max(ends) - min(submits)) if ends else float("nan")
        critical_path = _critical_path_s(group)
        complete = all(job.state is JobState.COMPLETED for job in group)
        per_workflow[workflow_id] = {
            "stages": float(len(group)),
            "makespan_s": makespan,
            "critical_path_s": critical_path,
            "completed": 1.0 if complete else 0.0,
        }
        if complete:
            completed_workflows += 1
            makespans.append(makespan)
            critical_paths.append(critical_path)
            slacks.append(makespan - critical_path)
        for job in group:
            if job.deps_released_at is not None:
                hold_waits.append(max(0.0, job.deps_released_at - job.submit_time))
                if job.first_start_time is not None:
                    post_waits.append(
                        max(0.0, job.first_start_time - job.deps_released_at)
                    )
            elif job.wait_time is not None:
                post_waits.append(job.wait_time)
    return WorkflowMetrics(
        workflows=len(groups),
        completed_workflows=completed_workflows,
        stages=stages,
        makespan_mean_s=float(np.mean(makespans)) if makespans else float("nan"),
        makespan_max_s=max(makespans) if makespans else float("nan"),
        critical_path_mean_s=(
            float(np.mean(critical_paths)) if critical_paths else float("nan")
        ),
        min_slack_s=min(slacks) if slacks else float("nan"),
        dep_hold_wait_mean_s=(
            float(np.mean(hold_waits)) if hold_waits else float("nan")
        ),
        post_release_wait_mean_s=(
            float(np.mean(post_waits)) if post_waits else float("nan")
        ),
        transfer_seconds=transfer_seconds,
        per_workflow=per_workflow,
    )


def productive_gpu_seconds(jobs: Iterable[Job]) -> float:
    """Retained-progress GPU-seconds across a job population.

    Work counts as productive only if it was *kept*: completed jobs and
    still-live jobs contribute their accrued productive integral; failed
    and killed jobs contribute nothing (their progress died with them —
    migration shells are re-credited by the federation layer, which knows
    the checkpoint survived).  Serving replicas are productive for their
    whole allocation: their output is served requests, not checkpoints.
    """
    total = 0.0
    for job in jobs:
        if job.service_id is not None:
            total += job.gpu_seconds_used
        elif job.state is JobState.COMPLETED or not job.state.terminal:
            total += job.productive_gpu_seconds
    return total


@dataclass(frozen=True)
class SimMetrics:
    """Final aggregates of one simulation run."""

    jobs_total: int
    jobs_completed: int
    jobs_failed: int
    jobs_killed: int
    jobs_unfinished: int
    makespan_s: float
    avg_utilization: float
    served_gpu_hours: float
    jct_mean_s: float
    jct_percentiles: dict[str, float]
    wait_mean_s: float
    wait_percentiles: dict[str, float]
    wait_mean_by_tier: dict[str, float]
    preemptions: int
    preemptions_by_tier: dict[str, int]
    node_failures: int
    job_restarts: int
    rejected_jobs: int
    provision_seconds: float
    stage_seconds: float
    walltime_kills: int
    failure_taxonomy: dict[str, int]
    gpu_hours_by_lab: dict[str, float]
    scheduler_passes: int
    #: Inference-serving aggregates; ``None`` for training-only runs, so
    #: their summaries (and the golden tests pinning them) are unchanged.
    serving: ServingMetrics | None = None
    #: Goodput decomposition (availability × efficiency × productive work).
    #: Deliberately excluded from :meth:`as_row` so existing golden
    #: summaries stay byte-identical; the ops report and the federation
    #: layer surface it.
    goodput: GoodputMetrics | None = None
    #: Workflow-DAG rollup; ``None`` unless the trace carried workflow
    #: stages, so summaries of plain traces (and every pre-existing
    #: golden) are byte-identical.
    workflow: WorkflowMetrics | None = None

    def as_row(self) -> dict[str, float]:
        """Flat row for the T2 scheduler-comparison table."""
        row = {
            "completed": float(self.jobs_completed),
            "avg_jct_h": self.jct_mean_s / 3600.0,
            "p50_jct_h": self.jct_percentiles["p50"] / 3600.0,
            "p99_jct_h": self.jct_percentiles["p99"] / 3600.0,
            "avg_wait_h": self.wait_mean_s / 3600.0,
            "p99_wait_h": self.wait_percentiles["p99"] / 3600.0,
            "utilization": self.avg_utilization,
            "makespan_h": self.makespan_s / 3600.0,
            "preemptions": float(self.preemptions),
        }
        if self.serving is not None:
            row.update(self.serving.as_row())
        if self.workflow is not None:
            row.update(self.workflow.as_row())
        return row


def summarize(
    jobs: dict[str, Job],
    collector: MetricsCollector,
    now: float,
    serving: ServingMetrics | None = None,
) -> SimMetrics:
    """Aggregate a finished (or truncated) run into :class:`SimMetrics`.

    Service replicas (``job.service_id`` set) are excluded from the
    job-level population: their latency story is request latency, carried
    by *serving*, and a fleet of horizon-long replica "jobs" would drown
    the training JCT/wait distributions the paper's tables report.
    Cluster-level integrals (utilization, served GPU-hours) still include
    them — serving capacity is real capacity.
    """
    population = [job for job in jobs.values() if job.service_id is None]
    completed = [j for j in population if j.state is JobState.COMPLETED]
    failed = [j for j in population if j.state is JobState.FAILED]
    killed = [j for j in population if j.state is JobState.KILLED]
    unfinished = [j for j in population if not j.state.terminal]

    jcts = [j.jct for j in completed if j.jct is not None]
    waits = [j.wait_time for j in population if j.wait_time is not None]

    wait_by_tier: dict[str, list[float]] = {tier.value: [] for tier in JobTier}
    preempt_by_tier: dict[str, int] = {tier.value: 0 for tier in JobTier}
    for job in population:
        if job.wait_time is not None:
            wait_by_tier[job.tier.value].append(job.wait_time)
        preempt_by_tier[job.tier.value] += job.preemptions

    taxonomy: dict[str, int] = {category.value: 0 for category in FailureCategory}
    for job in failed:
        if job.failure_category is not None:
            taxonomy[job.failure_category.value] += 1

    gpu_hours_by_lab: dict[str, float] = {}
    for job in population:
        gpu_hours_by_lab[job.lab_id] = (
            gpu_hours_by_lab.get(job.lab_id, 0.0) + job.gpu_seconds_used / 3600.0
        )

    ends = [j.end_time for j in population if j.end_time is not None]
    submits = [j.submit_time for j in population]
    makespan = (max(ends) - min(submits)) if ends and submits else 0.0

    goodput = GoodputMetrics.from_gpu_hours(
        total=collector.total_gpus * now / 3600.0,
        healthy=collector.healthy_gpu_seconds(now) / 3600.0,
        served=collector.served_gpu_seconds(now) / 3600.0,
        productive=productive_gpu_seconds(jobs.values()) / 3600.0,
    )

    return SimMetrics(
        jobs_total=len(population),
        jobs_completed=len(completed),
        jobs_failed=len(failed),
        jobs_killed=len(killed),
        jobs_unfinished=len(unfinished),
        makespan_s=makespan,
        avg_utilization=collector.average_utilization(now),
        served_gpu_hours=collector.served_gpu_seconds(now) / 3600.0,
        jct_mean_s=float(np.mean(jcts)) if jcts else float("nan"),
        jct_percentiles=percentiles(jcts),
        wait_mean_s=float(np.mean(waits)) if waits else float("nan"),
        wait_percentiles=percentiles(waits),
        wait_mean_by_tier={
            tier: (float(np.mean(values)) if values else float("nan"))
            for tier, values in wait_by_tier.items()
        },
        preemptions=collector.preemptions,
        preemptions_by_tier=preempt_by_tier,
        node_failures=collector.node_failures,
        job_restarts=collector.job_restarts,
        rejected_jobs=collector.rejected_jobs,
        provision_seconds=collector.provision_seconds,
        stage_seconds=collector.stage_seconds,
        walltime_kills=collector.walltime_kills,
        failure_taxonomy=taxonomy,
        gpu_hours_by_lab=dict(sorted(gpu_hours_by_lab.items())),
        scheduler_passes=collector.scheduler_passes,
        serving=serving,
        goodput=goodput,
        workflow=workflow_rollup(population, collector.transfer_seconds),
    )
