"""Discrete-event cluster simulation."""

from .engine import SimulationEngine
from .events import (
    Event,
    JobArrival,
    JobFinish,
    MetricsSample,
    NodeFailure,
    NodeRepair,
    QuantumExpiry,
    RequestRateChange,
    SchedulerTick,
    ServiceScaleDown,
    ServiceScaleUp,
    priority_of,
)
from .failures import FailureConfig, FailureInjector
from .metrics import (
    GoodputMetrics,
    MetricsCollector,
    Sample,
    ServingMetrics,
    SimMetrics,
    percentiles,
    summarize,
)
from .simulator import ClusterSimulator, SimConfig, SimulationResult, simulate

__all__ = [
    "ClusterSimulator",
    "Event",
    "FailureConfig",
    "FailureInjector",
    "GoodputMetrics",
    "JobArrival",
    "JobFinish",
    "MetricsCollector",
    "MetricsSample",
    "NodeFailure",
    "NodeRepair",
    "QuantumExpiry",
    "RequestRateChange",
    "Sample",
    "SchedulerTick",
    "ServiceScaleDown",
    "ServiceScaleUp",
    "ServingMetrics",
    "SimConfig",
    "SimMetrics",
    "SimulationEngine",
    "SimulationResult",
    "percentiles",
    "priority_of",
    "simulate",
    "summarize",
]
