"""Event types for the discrete-event simulator.

Events are small frozen dataclasses dispatched by type.  When several events
share a timestamp, the :data:`PRIORITY` table fixes their order: releases
happen before arrivals, arrivals before scheduling passes, and metrics
sampling last — so a scheduling pass at time *t* always sees every resource
freed and every job submitted at *t*.  Within one (time, priority) bucket
the engine falls back to insertion sequence, making runs fully
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ids import JobId, NodeId, ServiceId


@dataclass(frozen=True)
class Event:
    """Marker base class for simulator events."""


@dataclass(frozen=True)
class JobFinish(Event):
    """A running attempt of a job reached its computed end time.

    ``attempt`` pins the event to one run attempt: if the job was preempted
    and restarted meanwhile, the stale finish event no longer matches
    ``job.attempts`` and is ignored.
    """

    job_id: JobId
    attempt: int


@dataclass(frozen=True)
class DependencyRelease(Event):
    """A workflow job's upstream dependencies have all completed.

    Fired by the controller when the last upstream of a ``PENDING_DEPS``
    job reaches a terminal state; the handler re-checks the dependency set
    (an upstream may have failed at the same timestamp) before admitting
    the job into the scheduler's queue.
    """

    job_id: JobId


@dataclass(frozen=True)
class JobArrival(Event):
    """A trace job reaches its submission time."""

    job_id: JobId


@dataclass(frozen=True)
class NodeFailure(Event):
    """A node fails, killing everything on it."""

    node_id: NodeId


@dataclass(frozen=True)
class NodeRepair(Event):
    """A failed node returns to service."""

    node_id: NodeId


@dataclass(frozen=True)
class SchedulerTick(Event):
    """Run a scheduling pass.  Coalesced: at most one pending per timestamp."""


@dataclass(frozen=True)
class QuantumExpiry(Event):
    """A time-slicing quantum ended (gang scheduling)."""


@dataclass(frozen=True)
class StageComplete(Event):
    """A dataset stage finished; releases one unit of storage concurrency."""

    job_id: JobId


@dataclass(frozen=True)
class MetricsSample(Event):
    """Periodic utilization/queue-depth sampling."""


@dataclass(frozen=True)
class RequestRateChange(Event):
    """An inference service's offered request rate moves to a new level.

    The serving fleet closes the accounting epoch that ends here (served
    requests, SLO attainment under the capacity that was live) and then
    consults the autoscaler against the new rate.
    """

    service_id: ServiceId
    rate_rps: float


@dataclass(frozen=True)
class ServiceScaleDown(Event):
    """The autoscaler retires surge replicas of a service."""

    service_id: ServiceId
    count: int


@dataclass(frozen=True)
class ServiceScaleUp(Event):
    """The autoscaler launches additional replicas of a service."""

    service_id: ServiceId
    count: int


#: Event-class dispatch priority at equal timestamps (lower runs first).
#: DependencyRelease runs right after the JobFinish that triggered it so a
#: downstream stage becomes schedulable in the very pass that sees its
#: upstream finish.  Serving events sit between arrivals and the scheduling pass: rate
#: changes land first (they decide scaling), scale-downs free capacity
#: before scale-ups ask for it, and the SchedulerTick that places the new
#: replica jobs runs after all of them.
PRIORITY: dict[type[Event], int] = {
    JobFinish: 0,
    DependencyRelease: 1,
    StageComplete: 2,
    NodeRepair: 3,
    NodeFailure: 4,
    JobArrival: 5,
    RequestRateChange: 6,
    ServiceScaleDown: 7,
    ServiceScaleUp: 8,
    QuantumExpiry: 9,
    SchedulerTick: 10,
    MetricsSample: 11,
}


def priority_of(event: Event) -> int:
    """Dispatch priority for an event (unknown types run after known ones)."""
    return PRIORITY.get(type(event), 99)
