"""Trace-driven cluster simulator: wires cluster, scheduler, and workload.

:class:`ClusterSimulator` replays a job trace against a cluster under a
scheduling policy, producing :class:`~repro.sim.metrics.SimMetrics`.  All
state mutation — allocations, job lifecycle transitions, metric updates —
flows through the :class:`~repro.controlplane.controller.ClusterController`
owned by the simulator; the simulator's event handlers decide *when* and
*what* (outcome planning, provisioning, staging), the control plane decides
*whether* (lifecycle legality) and records *that it happened* (the
transition log).  Schedulers act only through the ``start_job`` /
``preempt_job`` callbacks in their
:class:`~repro.sched.base.ScheduleContext`, and placement policies only
observe via their hooks.

Event flow per job: ``JobArrival`` enqueues it with the scheduler and
requests a scheduling pass; the pass may start it (allocating resources and
scheduling a ``JobFinish`` at ``now + provision + remaining_work ×
slowdown``); preemption or a node failure cancels the attempt (the stale
``JobFinish`` is ignored via the attempt counter) and requeues the job;
the final ``JobFinish`` completes or fails it per its scripted failure
plan.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..cluster.cluster import Cluster
from ..controlplane.controller import ClusterController, TimelineEvent
from ..controlplane.lifecycle import Actor, Cause, LifecycleState, Transition
from ..errors import ConfigError, SimulationError
from ..execlayer.runtime import RuntimeRegistry
from ..execlayer.speedup import ExecutionModel, UnitExecutionModel
from ..execlayer.transfer import artifact_fetch_seconds
from ..ids import JobId, NodeId
from ..perf import PerfCounters
from ..sched.base import ScheduleContext, Scheduler
from ..sched.placement.base import request_chunks
from ..workload.job import FailureCategory, Job, JobState
from ..workload.trace import Trace
from .engine import SimulationEngine
from .events import (
    DependencyRelease,
    JobArrival,
    JobFinish,
    MetricsSample,
    NodeFailure,
    NodeRepair,
    QuantumExpiry,
    SchedulerTick,
    StageComplete,
)
from .failures import FailureConfig, FailureInjector
from .metrics import MetricsCollector, Sample, SimMetrics, summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from ..execlayer.storage import SharedFilesystem
    from ..serving.fleet import ServingFleet


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs independent of policy.

    Attributes:
        sample_interval_s: Period of time-series snapshots (0 disables).
        checkpoint_loss_s: Work redone after a graceful preemption
            (checkpoint granularity).
        provisioning: When True, runtime provisioning time (execution layer)
            is charged at the start of every attempt.
        verify_every: Audit cluster invariants every N events (0 = off;
            tests use small values, benchmarks 0).
        debug_invariants: Additionally audit cluster invariants on a
            sampled fraction of *scheduler passes* (0 = off, 1.0 = every
            pass).  Sampling is a deterministic stride on the pass
            counter — no RNG draws — so enabling it never perturbs the
            simulated outcome, only adds checking.
        max_events: Safety valve against livelocked policies.
        seed: Seed for simulator-owned randomness (provisioning failures,
            node failure sampling).
        enforce_walltime: Kill jobs whose cumulative running wall time
            exceeds their user wall-time limit, as Slurm does.  Off by
            default because several experiments study estimate *quality*,
            which enforcement would entangle.
        max_job_preemptions: A job preempted more than this many times is
            failed with ``PREEMPTION_LIMIT`` instead of requeued forever
            (0 = unlimited).
        record_timeline: Record every lifecycle event as a
            :class:`TimelineEvent` on the result (Gantt rendering,
            debugging).  Off by default: it grows with job count.
        record_transitions: Retain the control plane's individual
            :class:`Transition` records on the result.  On by default;
            fleet-scale runs (~1M jobs) turn it off to save gigabytes —
            all aggregate counts (``log.count``, churn metrics, the ops
            report's by-cause table) stay exact either way.
    """

    sample_interval_s: float = 600.0
    checkpoint_loss_s: float = 30.0
    provisioning: bool = False
    verify_every: int = 0
    debug_invariants: float = 0.0
    max_events: int | None = None
    seed: int = 0
    enforce_walltime: bool = False
    max_job_preemptions: int = 0
    record_timeline: bool = False
    record_transitions: bool = True


@dataclass
class SimulationResult:
    """Everything a run produced."""

    scheduler: str
    placement: str
    trace_name: str
    metrics: SimMetrics
    jobs: dict[JobId, Job]
    samples: list[Sample]
    end_time: float
    events_processed: int
    timeline: list["TimelineEvent"] = field(default_factory=list)
    #: The control plane's full transition log: every lifecycle edge of
    #: every job, with cause/actor/timestamp.  Empty when the run set
    #: ``record_transitions=False`` (fleet scale); aggregate counts are
    #: kept exact on the controller's log either way.
    transitions: list[Transition] = field(default_factory=list)
    #: Hot-path counters (wall time, nodes examined).  Observational only:
    #: excluded from summary() so results stay byte-identical across runs.
    perf: PerfCounters = field(default_factory=PerfCounters)

    def summary(self) -> dict[str, float]:
        row = self.metrics.as_row()
        row["events"] = float(self.events_processed)
        return row


class ClusterSimulator:
    """Replays a trace on a cluster under a scheduling policy."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        trace: Trace,
        exec_model: ExecutionModel | None = None,
        failure_config: FailureConfig | None = None,
        runtime_registry: RuntimeRegistry | None = None,
        storage: "SharedFilesystem | None" = None,
        config: SimConfig | None = None,
        serving: "ServingFleet | None" = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.trace = trace
        self.config = config or SimConfig()
        self.exec_model = exec_model or UnitExecutionModel()
        self.rng = np.random.default_rng(self.config.seed)
        self.runtime_registry = runtime_registry or RuntimeRegistry()
        self.storage = storage
        self.engine = SimulationEngine()
        self.metrics = MetricsCollector(total_gpus=cluster.total_gpus)
        # The control plane owns all job/cluster mutations; the simulator's
        # job/running/timeline attributes alias its structures so existing
        # observers (schedulers, dashboards, tests) read the same state.
        self.controller = ClusterController(
            cluster,
            scheduler,
            self.metrics,
            checkpoint_loss_s=self.config.checkpoint_loss_s,
            max_job_preemptions=self.config.max_job_preemptions,
            record_timeline=self.config.record_timeline,
            record_transitions=self.config.record_transitions,
        )
        self.jobs: dict[JobId, Job] = self.controller.jobs
        self.running: dict[JobId, Job] = self.controller.running
        self.timeline: list[TimelineEvent] = self.controller.timeline
        self._tick_pending = False
        # Static-feasibility verdicts per distinct request shape: node specs
        # never change mid-run, so the answer is a pure function of the shape.
        self._feasibility_cache: dict[tuple[object, ...], bool] = {}
        # Fresh counters per run, shared with the cluster index so the
        # placement layer accounts into the same struct.
        self.perf = PerfCounters()
        cluster.index.perf = self.perf
        self._failure_injector: FailureInjector | None = None
        if failure_config is not None:
            self._failure_injector = FailureInjector(failure_config, self.rng)

        for job in trace:
            if job.job_id in self.jobs:
                raise SimulationError(f"duplicate job id {job.job_id} in trace")
            self.controller.track(job)
        for job in trace:
            for upstream_id in job.depends_on:
                if upstream_id not in self.jobs:
                    raise SimulationError(
                        f"job {job.job_id} depends on unknown job {upstream_id}"
                    )
        # Held workflow stages re-enter admission via a DependencyRelease
        # event (never synchronously inside the upstream's finish handler),
        # so the release lands at a deterministic rank in the event order.
        self.controller.on_deps_ready = self._schedule_dependency_release
        # Job-aware placement policies (transfer-aware) resolve upstream
        # ids against the live job table.
        scheduler.placement.bind(self.jobs)

        engine = self.engine
        engine.register(JobArrival, self._on_arrival)
        engine.register(JobFinish, self._on_finish)
        engine.register(SchedulerTick, self._on_tick)
        engine.register(QuantumExpiry, self._on_quantum)
        engine.register(MetricsSample, self._on_sample)
        engine.register(NodeFailure, self._on_node_failure)
        engine.register(NodeRepair, self._on_node_repair)
        engine.register(StageComplete, self._on_stage_complete)
        engine.register(DependencyRelease, self._on_dependency_release)

        for job in trace:
            engine.schedule_at(job.submit_time, JobArrival(job.job_id))
        if self.config.sample_interval_s > 0 and trace:
            engine.schedule_at(0.0, MetricsSample())
        quantum = scheduler.tick_interval()
        if quantum is not None and trace:
            engine.schedule_at(quantum, QuantumExpiry())
        if self._failure_injector is not None:
            for time, node_id in self._failure_injector.initial_failures(cluster):
                engine.schedule_at(time, NodeFailure(node_id))
        # The serving fleet (if any) registers its own event handlers and
        # seeds its rate-change timeline; replicas then flow through the
        # ordinary submit/schedule/preempt machinery like any other job.
        self.serving = serving
        if serving is not None:
            serving.attach(self)
            self.controller.serving = serving
            if self.config.sample_interval_s > 0 and not trace:
                engine.schedule_at(0.0, MetricsSample())

    # -- public API ---------------------------------------------------------------

    def submit_job(self, job: Job) -> None:
        """Dynamically submit a job to a live simulation (tcloud path).

        The job's ``submit_time`` must not precede the simulation clock.
        """
        if job.job_id in self.jobs:
            raise SimulationError(f"job {job.job_id} already submitted")
        if job.submit_time < self.engine.now - 1e-9:
            raise SimulationError(
                f"job {job.job_id} submit_time {job.submit_time} is in the past "
                f"(now={self.engine.now})"
            )
        self.controller.track(job)
        self.engine.schedule_at(job.submit_time, JobArrival(job.job_id))
        if self.config.sample_interval_s > 0 and not self.engine.has_pending(MetricsSample):
            self.engine.schedule_at(self.engine.now, MetricsSample())
        quantum = self.scheduler.tick_interval()
        if quantum is not None and not self.engine.has_pending(QuantumExpiry):
            self.engine.schedule_in(quantum, QuantumExpiry())

    def kill_job(
        self,
        job_id: JobId,
        *,
        cause: "Cause | None" = None,
        actor: "Actor | None" = None,
        detail: str = "user",
    ) -> None:
        """Kill a queued or running job immediately (user cancellation).

        Callers other than the user (e.g. the serving autoscaler retiring
        replicas) pass their own ``cause``/``actor`` so the transition log
        attributes the kill correctly.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise SimulationError(f"unknown job {job_id}")
        if job.state.terminal:
            return
        now = self.engine.now
        self.controller.kill(
            now,
            job,
            cause=cause or Cause.USER_KILL,
            actor=actor or Actor.USER,
            detail=detail,
        )
        self._request_tick(now)

    def run(self, until: float | None = None) -> SimulationResult:
        """Run to quiescence (or *until*) and return aggregated results."""
        self.engine.run(until=until, max_events=self.config.max_events)
        now = self.engine.now
        self.metrics.on_used_changed(now, self.cluster.used_gpus)
        self.metrics.on_healthy_changed(now, self.cluster.healthy_gpus)
        # Event-queue telemetry lives on the engine; fold it into the run's
        # counters so benchmarks and run reports see one flat struct.
        self.perf.events_enqueued = self.engine.events_enqueued
        self.perf.events_dequeued = self.engine.events_processed
        self.perf.peak_pending_events = self.engine.peak_pending
        serving_metrics = self.serving.finalize(now) if self.serving is not None else None
        metrics = summarize(self.jobs, self.metrics, now, serving=serving_metrics)
        if self.config.debug_invariants > 0:
            self._verify_workflow_bound(metrics)
        return SimulationResult(
            scheduler=self.scheduler.name,
            placement=self.scheduler.placement.name,
            trace_name=self.trace.name,
            metrics=metrics,
            jobs=self.jobs,
            samples=self.metrics.samples,
            end_time=now,
            events_processed=self.engine.events_processed,
            timeline=self.timeline,
            transitions=self.controller.log.records,
            perf=self.perf,
        )

    # -- event handlers --------------------------------------------------------------

    def _on_arrival(self, now: float, event: JobArrival) -> None:
        job = self.jobs[event.job_id]
        if job.state.terminal:
            return  # killed while still pending (tcloud cancel before arrival)
        if not self._admit_partition(job) or not self._statically_feasible(job):
            self.controller.reject(now, job)
            return
        if job.depends_on:
            unmet = self._unmet_dependencies(now, job)
            if unmet is None:
                return  # an upstream already died; the stage was cascade-killed
            if unmet:
                self.controller.hold_for_deps(now, job, unmet)
                return
        self.controller.admit(now, job)
        self._request_tick(now)

    def _unmet_dependencies(self, now: float, job: Job) -> list[JobId] | None:
        """Upstream ids *job* must still wait on, or ``None`` if doomed.

        An upstream that already failed or was killed dooms the stage on
        the spot: the controller cascade-kills it (which recursively kills
        its own dependents) and this returns ``None``.
        """
        unmet: list[JobId] = []
        for upstream_id in job.depends_on:
            state = self.controller.lifecycle_of(upstream_id).state
            if state is LifecycleState.FINISHED:
                continue
            if state.terminal:
                self.controller.kill(
                    now,
                    job,
                    cause=Cause.UPSTREAM_FAILED,
                    actor=Actor.SIMULATOR,
                    detail=f"upstream={upstream_id}",
                )
                return None
            unmet.append(upstream_id)
        return unmet

    def _schedule_dependency_release(self, now: float, job_id: JobId) -> None:
        self.engine.schedule_at(now, DependencyRelease(job_id))

    def _on_dependency_release(self, now: float, event: DependencyRelease) -> None:
        if (
            self.controller.lifecycle_of(event.job_id).state
            is not LifecycleState.PENDING_DEPS
        ):
            return  # killed (or cascade-killed) while held; release is stale
        self.controller.release_deps(now, self.jobs[event.job_id])
        self._request_tick(now)

    def _admit_partition(self, job: Job) -> bool:
        """Route a partition-named job: admission limits + node restriction.

        Jobs that name no partition bypass routing entirely (the campus
        default); jobs naming an unknown or rejecting partition are
        rejected at submission, as Slurm would.
        """
        if job.partition is None:
            return True
        try:
            partition = self.cluster.partitions.get(job.partition)
        except ConfigError:
            return False
        walltime_hours = (job.walltime_estimate or job.duration) / 3600.0
        if not partition.admits(job.num_gpus, walltime_hours, job.tier.value):
            return False
        self.controller.restrict_to_partition(job, partition.node_ids)
        return True

    def _on_tick(self, now: float, event: SchedulerTick) -> None:
        self._tick_pending = False
        self._run_scheduler_pass(now)

    def _on_quantum(self, now: float, event: QuantumExpiry) -> None:
        self._run_scheduler_pass(now)
        quantum = self.scheduler.tick_interval()
        if quantum is not None and self._work_remains():
            self.engine.schedule_in(quantum, QuantumExpiry())

    def _run_scheduler_pass(self, now: float) -> None:
        ctx = ScheduleContext(
            now=now,
            cluster=self.cluster,
            running=self.running,
            start_job=lambda job, placement: self._start_job(now, job, placement),
            preempt_job=lambda job: self._preempt_job(now, job),
        )
        # Observational-only timing: PerfCounters are excluded from summaries
        # and never feed a simulated decision (see repro/perf.py).
        started = _time.perf_counter()  # simlint: disable=R2
        self.scheduler.schedule(ctx)
        self.perf.sched_pass_wall_s += _time.perf_counter() - started  # simlint: disable=R2
        self.perf.scheduler_passes += 1
        self.metrics.scheduler_passes += 1
        fraction = self.config.debug_invariants
        if fraction > 0:
            stride = max(1, round(1.0 / fraction))
            if self.metrics.scheduler_passes % stride == 0:
                self.cluster.verify_invariants()
                self._verify_no_held_in_queue()
        self._maybe_verify()

    def _on_finish(self, now: float, event: JobFinish) -> None:
        job = self.jobs[event.job_id]
        if job.attempts != event.attempt or job.state is not JobState.RUNNING:
            return  # stale event from a preempted/killed attempt
        outcome, category = self.controller.pop_outcome(job.job_id, event.attempt)
        self.controller.finish(now, job, outcome, category)
        self._request_tick(now)
        self._maybe_verify()

    def _on_sample(self, now: float, event: MetricsSample) -> None:
        self.metrics.sample(
            now, self.cluster.used_gpus, self.scheduler.queue_depth, len(self.running)
        )
        if self.config.sample_interval_s > 0 and self._work_remains():
            self.engine.schedule_in(self.config.sample_interval_s, MetricsSample())

    def _on_node_failure(self, now: float, event: NodeFailure) -> None:
        node = self.cluster.node(event.node_id)
        if not node.healthy:
            return  # already down (overlapping failure sample)
        injector = self._failure_injector
        max_restarts = injector.config.max_job_restarts if injector else 0
        self.controller.apply_node_failure(now, event.node_id, max_restarts=max_restarts)
        assert injector is not None
        self.engine.schedule_in(injector.repair_time_s(), NodeRepair(event.node_id))
        self._request_tick(now)
        self._maybe_verify()

    def _on_stage_complete(self, now: float, event: StageComplete) -> None:
        assert self.storage is not None
        self.storage.end_stage()

    def _on_node_repair(self, now: float, event: NodeRepair) -> None:
        self.controller.apply_node_repair(now, event.node_id)
        assert self._failure_injector is not None
        node = self.cluster.node(event.node_id)
        if self._work_remains():
            self.engine.schedule_in(
                self._failure_injector.time_to_failure_s(node), NodeFailure(event.node_id)
            )
        self._request_tick(now)

    # -- scheduler callbacks -------------------------------------------------------------

    def _start_job(self, now: float, job: Job, placement: dict[NodeId, int]) -> None:
        # Validate before the execution models run: a bad scheduler call
        # must raise without consuming RNG draws (provisioning samples).
        total = self.controller.ensure_startable(job, placement)
        slowdown = self.exec_model.slowdown(job, placement, self.cluster)
        provision_s = 0.0
        if self.config.provisioning:
            env_key = job.model_name or job.name or job.job_id
            result = self.runtime_registry.provision(
                env_key, self.rng, multi_node=len(placement) > 1
            )
            provision_s = result.provision_s
            slowdown *= self.runtime_registry.get(result.runtime).overhead_factor
            self.metrics.provision_seconds += provision_s
        if self.storage is not None and job.dataset_gb > 0:
            dataset_key = f"{job.user_id}:{job.model_name or job.name or job.job_id}"
            self.storage.begin_stage()
            stage_s = self.storage.stage(
                tuple(sorted(placement)), dataset_key, job.dataset_gb
            )
            self.engine.schedule_in(stage_s, StageComplete(job.job_id))
            provision_s += stage_s
            self.metrics.stage_seconds += stage_s
        if job.depends_on:
            # Upstream artifacts must reach this placement before work
            # starts; priced by the same fabric model the transfer-aware
            # placement policy ranks with.
            fetch_s = artifact_fetch_seconds(
                job, tuple(sorted(placement)), self.jobs, self.cluster.topology
            )
            if fetch_s > 0:
                provision_s += fetch_s
                self.metrics.transfer_seconds += fetch_s

        self.controller.start(
            now, job, placement, slowdown=slowdown, setup_s=provision_s
        )

        outcome: tuple[str, FailureCategory | None] = ("complete", None)
        wall = job.remaining_work * slowdown
        plan = job.failure_plan
        if plan is not None:
            fail_point = job.duration * plan.at_fraction
            if job.work_done < fail_point <= job.work_done + job.remaining_work + 1e-9:
                wall = (fail_point - job.work_done) * slowdown
                outcome = ("fail", plan.category)
        if self.config.enforce_walltime:
            # The wall-time limit covers the whole allocation (provisioning
            # included), cumulatively across attempts, as in Slurm.
            cap = (job.walltime_estimate or job.duration) - self.controller.wall_used.get(
                job.job_id, 0.0
            )
            if provision_s + wall > cap + 1e-9:
                wall = max(0.0, cap - provision_s)
                outcome = ("walltime", None)
        self.controller.set_outcome(job, outcome)
        self.engine.schedule_in(provision_s + wall, JobFinish(job.job_id, job.attempts))

    def _preempt_job(self, now: float, job: Job) -> None:
        self.controller.preempt(now, job)

    # -- internals ---------------------------------------------------------------------

    def _request_tick(self, now: float) -> None:
        if not self._tick_pending:
            self._tick_pending = True
            self.engine.schedule_at(now, SchedulerTick())

    def _work_remains(self) -> bool:
        return self.controller.work_remains()

    def statically_feasible(self, job: Job) -> bool:
        """Public static-feasibility probe (memoized; used by routers).

        True iff the request could ever be satisfied on this cluster when
        empty and healthy — the same verdict arrival admission applies.
        """
        return self._statically_feasible(job)

    def _statically_feasible(self, job: Job) -> bool:
        """Could this request EVER be satisfied on an empty, healthy cluster?

        The verdict depends only on static node specs and the request
        *shape*, so it is memoized per distinct shape — arrival processing
        does the O(cluster) spec scan once per shape instead of once per
        job.
        """
        request = job.request
        chunks = request_chunks(request)
        chunk = chunks[0]
        key = (
            request.gpu_type,
            chunk,
            len(chunks),
            request.cpus_per_gpu,
            request.memory_gb_per_gpu,
            request.allowed_nodes,
        )
        cached = self._feasibility_cache.get(key)
        if cached is not None:
            return cached
        by_type: dict[str, int] = {}
        feasible = False
        for node in self.cluster.index.candidate_pool(request.gpu_type):
            spec = node.spec
            if request.allowed_nodes is not None and node.node_id not in request.allowed_nodes:
                continue
            if spec.num_gpus < chunk:
                continue
            if spec.cpus < request.cpus_per_gpu * chunk:
                continue
            if spec.memory_gb < request.memory_gb_per_gpu * chunk:
                continue
            count = by_type.get(spec.gpu_type, 0) + 1
            if count >= len(chunks):
                feasible = True
                break
            by_type[spec.gpu_type] = count
        self._feasibility_cache[key] = feasible
        return feasible

    def _maybe_verify(self) -> None:
        every = self.config.verify_every
        if every and self.engine.events_processed % every == 0:
            self.cluster.verify_invariants()

    def _verify_no_held_in_queue(self) -> None:
        """Audit: dependency-held stages must be invisible to the scheduler.

        ``hold_for_deps`` never enqueues, so a PENDING_DEPS job in the
        scheduler queue means a lifecycle edge leaked around the control
        plane.
        """
        for job in self.scheduler.queue:
            if (
                self.controller.lifecycle_of(job.job_id).state
                is LifecycleState.PENDING_DEPS
            ):
                raise SimulationError(
                    f"dependency-held job {job.job_id} leaked into the scheduler queue"
                )

    def _verify_workflow_bound(self, metrics: SimMetrics) -> None:
        """Audit: no completed workflow may beat its critical-path bound.

        The bound assumes stages run at their nominal duration, so it is
        only exact under the unit execution model; runs with speedup or
        interference models skip the check.
        """
        workflow = metrics.workflow
        if workflow is None or type(self.exec_model) is not UnitExecutionModel:
            return
        if workflow.completed_workflows and workflow.min_slack_s < -1e-6:
            raise SimulationError(
                "workflow makespan beat its critical-path lower bound "
                f"(min slack {workflow.min_slack_s:.6f}s)"
            )


def simulate(
    cluster: Cluster,
    scheduler: Scheduler,
    trace: Trace,
    **kwargs: Any,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(cluster, scheduler, trace, **kwargs).run()
