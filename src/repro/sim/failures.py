"""Node failure injection.

Hardware failures in the operational study follow two regimes: datacenter
parts fail rarely, consumer cards (bought for cost efficiency) markedly more
often.  The injector samples per-node time-to-failure from an exponential
distribution whose rate depends on the node's GPU grade, and repair times
from a log-normal (most repairs are a reboot, a tail needs parts).

The injector only *samples*; the simulator owns applying the consequences
(killing the node's jobs, requeueing or failing them, scheduling the
repair).  This keeps all state mutation in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.node import Node
from ..config import require_positive
from ..errors import ConfigError


@dataclass(frozen=True)
class FailureConfig:
    """Failure-injection parameters.

    Attributes:
        mtbf_hours: Mean time between failures for a datacenter-grade node.
        consumer_mtbf_factor: Consumer-grade nodes fail this many times more
            often (MTBF divided by the factor).
        repair_hours_median: Median repair duration.
        repair_sigma: Log-normal sigma of repair durations.
        max_job_restarts: A job killed by hardware more than this many times
            is marked FAILED(hardware) instead of requeueing forever.
    """

    mtbf_hours: float = 24.0 * 30.0
    consumer_mtbf_factor: float = 4.0
    repair_hours_median: float = 2.0
    repair_sigma: float = 1.0
    max_job_restarts: int = 5

    def __post_init__(self) -> None:
        require_positive("mtbf_hours", self.mtbf_hours)
        require_positive("repair_hours_median", self.repair_hours_median)
        require_positive("repair_sigma", self.repair_sigma)
        if self.consumer_mtbf_factor < 1.0:
            raise ConfigError("consumer_mtbf_factor must be >= 1")
        if self.max_job_restarts < 0:
            raise ConfigError("max_job_restarts must be >= 0")


class FailureInjector:
    """Samples failure and repair times per node."""

    def __init__(self, config: FailureConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    def node_mtbf_s(self, node: Node) -> float:
        mtbf_hours = self.config.mtbf_hours
        if not node.spec.gpu_spec.datacenter_grade:
            mtbf_hours /= self.config.consumer_mtbf_factor
        return mtbf_hours * 3600.0

    def time_to_failure_s(self, node: Node) -> float:
        """Exponential TTF sample for *node*."""
        return float(self.rng.exponential(self.node_mtbf_s(node)))

    def repair_time_s(self) -> float:
        """Log-normal repair duration sample."""
        return float(
            self.rng.lognormal(
                mean=np.log(self.config.repair_hours_median * 3600.0),
                sigma=self.config.repair_sigma,
            )
        )

    def initial_failures(self, cluster: Cluster) -> list[tuple[float, str]]:
        """(time, node_id) of the first failure of every node, time-ordered."""
        events = [
            (self.time_to_failure_s(node), node_id)
            for node_id, node in sorted(cluster.nodes.items())
        ]
        events.sort()
        return events
