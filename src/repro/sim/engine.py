"""Discrete-event engine: a clock plus a deterministically ordered queue.

The engine is deliberately minimal and generic — it knows nothing about
clusters or jobs.  Handlers are registered per event *type*; the engine pops
events in ``(time, priority, sequence)`` order and dispatches.  Determinism
is a hard requirement (the test suite asserts byte-identical reruns), hence
the explicit sequence-number tiebreak instead of relying on queue stability.

The queue itself is a bucketed :class:`~repro.sim.eventq.CalendarEventQueue`
— fleet-scale traces push millions of arrivals up front, and the calendar's
O(1) appends with one lazy sort per time bucket beat a flat heap's per-push
sift at that volume.  The ordering contract is unchanged from the original
``heapq`` implementation and is pinned by a property test against the
reference :class:`~repro.sim.eventq.HeapEventQueue`
(``tests/test_eventq.py``).
"""

from __future__ import annotations

from typing import Callable, TypeVar, cast

from ..errors import EventOrderError, SimulationError
from .events import Event, priority_of
from .eventq import CalendarEventQueue, EventQueue, HeapEventQueue

__all__ = ["SimulationEngine", "CalendarEventQueue", "HeapEventQueue"]

Handler = Callable[[float, Event], None]

E = TypeVar("E", bound=Event)


class SimulationEngine:
    """Event queue + clock + handler dispatch.

    Usage::

        engine = SimulationEngine()
        engine.register(JobArrival, on_arrival)
        engine.schedule_at(0.0, JobArrival("job-000000"))
        engine.run()
    """

    def __init__(self, queue: EventQueue | None = None) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._queue: EventQueue = queue if queue is not None else CalendarEventQueue()
        self._sequence = 0
        self._handlers: dict[type[Event], Handler] = {}
        self._stopped = False
        # Pending events by concrete type, so has_pending() is O(#types)
        # instead of scanning the queue.
        self._pending_counts: dict[type[Event], int] = {}
        # -- queue telemetry (observational only, surfaced via PerfCounters) --
        self.events_enqueued: int = 0
        self.peak_pending: int = 0

    # -- configuration ---------------------------------------------------------

    def register(self, event_type: type[E], handler: Callable[[float, E], None]) -> None:
        """Register the handler for an event type (one handler per type)."""
        if event_type in self._handlers:
            raise SimulationError(f"handler for {event_type.__name__} already registered")
        # The dict erases E; dispatch only ever calls a handler with an
        # instance of the exact type it was registered under.
        self._handlers[event_type] = cast(Handler, handler)

    # -- scheduling -------------------------------------------------------------

    def schedule_at(self, time: float, event: Event) -> None:
        """Enqueue *event* at absolute *time* (must not precede the clock)."""
        if time < self.now - 1e-9:
            raise EventOrderError(
                f"cannot schedule {type(event).__name__} at {time}; clock is at {self.now}"
            )
        self._queue.push((max(time, self.now), priority_of(event), self._sequence, event))
        self._sequence += 1
        self.events_enqueued += 1
        pending = len(self._queue)
        if pending > self.peak_pending:
            self.peak_pending = pending
        event_type = type(event)
        self._pending_counts[event_type] = self._pending_counts.get(event_type, 0) + 1

    def schedule_in(self, delay: float, event: Event) -> None:
        """Enqueue *event* after *delay* seconds."""
        if delay < 0:
            raise EventOrderError(f"negative delay {delay} for {type(event).__name__}")
        self.schedule_at(self.now + delay, event)

    # -- inspection --------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` when the queue is empty."""
        head = self._queue.peek()
        return head[0] if head is not None else None

    def has_pending(self, event_type: type[Event]) -> bool:
        """True when any queued event is an instance of *event_type*."""
        return any(
            count > 0 and issubclass(queued_type, event_type)
            for queued_type, count in self._pending_counts.items()
        )

    # -- execution -----------------------------------------------------------------

    def stop(self) -> None:
        """Request a stop; :meth:`run` returns before the next dispatch."""
        self._stopped = True

    def step(self) -> Event | None:
        """Dispatch one event; returns it, or ``None`` when the queue is empty."""
        if not self._queue:
            return None
        time, _priority, _sequence, event = self._queue.pop()
        self._pending_counts[type(event)] -= 1
        if time < self.now - 1e-9:
            raise EventOrderError(
                f"event {type(event).__name__} at {time} is in the past (now={self.now})"
            )
        self.now = max(self.now, time)
        handler = self._handlers.get(type(event))
        if handler is None:
            raise SimulationError(f"no handler registered for {type(event).__name__}")
        handler(self.now, event)
        self.events_processed += 1
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        Args:
            until: Stop once the next event would be strictly after this
                time (the clock is then advanced to ``until``).
            max_events: Safety valve for runaway simulations.
        """
        processed = 0
        self._stopped = False
        while self._queue and not self._stopped:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events}; "
                    "likely a scheduling livelock"
                )
            next_time = self.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.now = max(self.now, until)
                break
            self.step()
            processed += 1
        if until is not None and not self._queue:
            self.now = max(self.now, until)
        return processed
